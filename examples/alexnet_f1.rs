//! AlexNet on AWS F1: the paper's two AlexNet cases end to end.
//!
//! Uses the paper's measured kernel characterizations (Tables 2) as inputs,
//! runs both the GP+A heuristic and the budgeted exact MINLP+G solver, and
//! prints the allocations side by side.
//!
//! Run with `cargo run --release --example alexnet_f1`.

use mfa_alloc::cases::PaperCase;
use mfa_alloc::exact::ExactOptions;
use mfa_alloc::report::render_summary;
use mfa_alloc::solver::{Backend, SolveRequest};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for case in [PaperCase::Alex16OnTwoFpgas, PaperCase::Alex32OnFourFpgas] {
        let (lo, hi) = case.constraint_range();
        let constraint = 0.5 * (lo + hi);
        let problem = case.problem(constraint)?;
        println!("==============================================================");
        println!(
            "{} at a {:.0}% resource constraint ({} kernels)",
            case.label(),
            constraint * 100.0,
            problem.num_kernels()
        );

        println!("\n--- GP+A heuristic");
        let heuristic = SolveRequest::new(&problem)
            .backend(Backend::gpa())
            .solve()?;
        let timing = heuristic.diagnostics.timing;
        println!(
            "solved in {:.2} ms (GP {:.2} ms, discretize {:.2} ms, allocate {:.2} ms)",
            timing.total.as_secs_f64() * 1e3,
            timing.relaxation.as_secs_f64() * 1e3,
            timing.discretization.as_secs_f64() * 1e3,
            timing.allocation.as_secs_f64() * 1e3,
        );
        println!("{}", render_summary(&problem, &heuristic.allocation));

        println!("--- exact MINLP+G (node/time budgeted, GP+A warm start)");
        let request = SolveRequest::new(&problem)
            .backend(Backend::exact_with(
                ExactOptions::with_spreading_and_budget(1_500, 20.0),
            ))
            .warm_start(heuristic.warm_start());
        match request.solve() {
            Ok(outcome) => {
                println!(
                    "solved in {:.2} s over {} nodes (proven optimal: {:?}, gap {:.2}%, \
                     warm start: {})",
                    outcome.diagnostics.timing.total.as_secs_f64(),
                    outcome.diagnostics.bb_nodes,
                    outcome.diagnostics.proven_optimal,
                    100.0 * outcome.diagnostics.relaxation_gap.unwrap_or(0.0),
                    outcome.diagnostics.warm_start.provenance()
                );
                println!("{}", render_summary(&problem, &outcome.allocation));
            }
            Err(err) => println!("exact solve failed: {err}"),
        }
    }
    Ok(())
}
