//! AlexNet on AWS F1: the paper's two AlexNet cases end to end.
//!
//! Uses the paper's measured kernel characterizations (Tables 2) as inputs,
//! runs both the GP+A heuristic and the budgeted exact MINLP+G solver, and
//! prints the allocations side by side.
//!
//! Run with `cargo run --release --example alexnet_f1`.

use mfa_alloc::cases::PaperCase;
use mfa_alloc::exact::{self, ExactOptions};
use mfa_alloc::gpa::{self, GpaOptions};
use mfa_alloc::report::render_summary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for case in [PaperCase::Alex16OnTwoFpgas, PaperCase::Alex32OnFourFpgas] {
        let (lo, hi) = case.constraint_range();
        let constraint = 0.5 * (lo + hi);
        let problem = case.problem(constraint)?;
        println!("==============================================================");
        println!(
            "{} at a {:.0}% resource constraint ({} kernels)",
            case.label(),
            constraint * 100.0,
            problem.num_kernels()
        );

        println!("\n--- GP+A heuristic");
        let heuristic = gpa::solve(&problem, &GpaOptions::paper_defaults())?;
        println!(
            "solved in {:.2} ms (GP {:.2} ms, discretize {:.2} ms, allocate {:.2} ms)",
            heuristic.elapsed.as_secs_f64() * 1e3,
            heuristic.relaxation_time.as_secs_f64() * 1e3,
            heuristic.discretization_time.as_secs_f64() * 1e3,
            heuristic.allocation_time.as_secs_f64() * 1e3,
        );
        println!("{}", render_summary(&problem, &heuristic.allocation));

        println!("--- exact MINLP+G (node/time budgeted)");
        let options = ExactOptions::with_spreading_and_budget(1_500, 20.0);
        match exact::solve(&problem, &options) {
            Ok(outcome) => {
                println!(
                    "solved in {:.2} s over {} nodes (proven optimal: {}, gap {:.2}%)",
                    outcome.elapsed.as_secs_f64(),
                    outcome.nodes_explored,
                    outcome.proven_optimal,
                    100.0 * outcome.gap()
                );
                println!("{}", render_summary(&problem, &outcome.allocation));
            }
            Err(err) => println!("exact solve failed: {err}"),
        }
    }
    Ok(())
}
