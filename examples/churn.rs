//! `churn` — online reallocation under churn on a mixed FPGA fleet.
//!
//! Serving fleets do not solve the allocation problem once: kernels arrive
//! and leave, input mixes drift the WCETs, and devices drop out. This
//! example replays the committed churn trace
//! (`crates/integration/tests/golden/churn.trace`) against the paper's
//! Alex-16 pipeline on a 2×VU9P + 1×KU115 fleet and sweeps the
//! **reallocation frontier**: for each solver backend and migration weight,
//! every event triggers a re-solve whose objective is the initiation
//! interval *plus* a priced count of CUs moved away from the incumbent
//! placement. The table shows the trade: weight 0 reproduces today's cold
//! re-solve, positive weights hold on to the incumbent and move strictly
//! fewer CUs at a bounded II cost.
//!
//! ```text
//! cargo run --release --example churn -- [--quick] [--out PREFIX]
//! ```
//!
//! `--quick` shrinks the weight axis and drops the exact backend (CI runs
//! it inside the shared wall-clock budget); `--out` writes the frontier
//! table as `PREFIX-frontier.csv` and `PREFIX-frontier.json`.

use std::time::Instant;

use mfa_alloc::cases::PaperCase;
use mfa_alloc::exact::{ExactMode, ExactOptions};
use mfa_alloc::solver::Backend;
use mfa_explore::{frontier_to_csv, frontier_to_json, run_frontier, FrontierPoint, FrontierSpec};
use mfa_platform::{DeviceGroup, FpgaDevice, HeterogeneousPlatform};
use mfa_sim::{parse_trace, SimConfig};

const TRACE: &str = include_str!("../crates/integration/tests/golden/churn.trace");

fn print_table(points: &[FrontierPoint]) {
    println!(
        "{:>8} {:>8} {:>24} {:>12} {:>14} {:>7} {:>10}",
        "backend", "weight", "event", "steady II", "transition II", "moved", "cost"
    );
    for p in points {
        let transition = if p.transition_ii_ms.is_finite() {
            format!("{:.3} ms", p.transition_ii_ms)
        } else {
            "stall".to_owned()
        };
        println!(
            "{:>8} {:>8} {:>24} {:>9.3} ms {:>14} {:>7} {:>10.3}",
            p.backend, p.weight, p.event, p.steady_ii_ms, transition, p.moved_cus, p.migration_cost
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = Some(iter.next().ok_or("--out needs a path prefix")?.to_string()),
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    let started = Instant::now();

    let fleet = HeterogeneousPlatform::new(
        "2×VU9P + 1×KU115",
        vec![
            DeviceGroup::new(FpgaDevice::vu9p(), 2),
            DeviceGroup::new(FpgaDevice::ku115(), 1),
        ],
    );
    let base = PaperCase::Alex16OnTwoFpgas
        .problem(0.70)?
        .with_platform(fleet);
    let trace = parse_trace(TRACE)?;
    println!(
        "replaying {} churn events against {} kernels on {}",
        trace.len(),
        base.num_kernels(),
        base.platform().name()
    );

    let mut backends = vec![Backend::greedy(), Backend::gpa_fast()];
    if !quick {
        // Node-only budget: a wall-clock limit would cut the search at a
        // host-dependent point and break the determinism assertion below.
        backends.push(Backend::exact_with(ExactOptions {
            mode: ExactMode::IiOnly,
            solver: mfa_minlp::SolverOptions {
                max_nodes: 400,
                time_limit_seconds: None,
                ..mfa_minlp::SolverOptions::default()
            },
            symmetry_breaking: true,
        }));
    }
    // Weight 0 is today's cold re-solve; TIE_BREAK_WEIGHT is small enough
    // to only break ties and shed gratuitous movement (the ≤ 2 % II
    // contract is asserted there); the larger weights trace out the rest of
    // the frontier, genuinely trading II for stability.
    const TIE_BREAK_WEIGHT: f64 = 0.01;
    let weights = if quick {
        vec![0.0, TIE_BREAK_WEIGHT, 0.3]
    } else {
        vec![0.0, TIE_BREAK_WEIGHT, 0.05, 0.3, 1.0]
    };
    let spec = FrontierSpec {
        backends,
        sim: SimConfig {
            num_items: if quick { 200 } else { 400 },
            ..SimConfig::default()
        },
        ..FrontierSpec::new(base, trace, weights)
    };

    let points = run_frontier(&spec)?;
    print_table(&points);

    // The frontier is deterministic: a second run must reproduce it exactly.
    assert_eq!(
        run_frontier(&spec)?,
        points,
        "frontier sweeps must be deterministic"
    );

    // The reallocation contract, per backend: penalized re-solves move
    // strictly fewer CUs than cold (weight 0) re-solves across the trace,
    // and give up at most 2 % steady-state II doing so.
    for backend in spec.backends.iter().map(Backend::label) {
        let series = |weight: f64| -> Vec<&FrontierPoint> {
            points
                .iter()
                .filter(|p| p.backend == backend && p.weight == weight)
                .collect()
        };
        let cold = series(0.0);
        let penalized = series(TIE_BREAK_WEIGHT);
        let moved = |rows: &[&FrontierPoint]| rows.iter().map(|p| p.moved_cus).sum::<u32>();
        assert!(
            moved(&penalized) < moved(&cold),
            "{backend}: penalized re-solves moved {} CUs, cold moved {}",
            moved(&penalized),
            moved(&cold)
        );
        for (p, c) in penalized.iter().zip(&cold) {
            assert!(
                p.steady_ii_ms <= c.steady_ii_ms * 1.02,
                "{backend} at {}: penalized II {} vs cold II {} exceeds 2 %",
                p.event,
                p.steady_ii_ms,
                c.steady_ii_ms
            );
        }
        println!(
            "{backend:>8}: cold re-solves moved {} CUs, penalized moved {} (II within 2 %)",
            moved(&cold),
            moved(&penalized)
        );
    }

    if let Some(prefix) = &out {
        let csv_path = format!("{prefix}-frontier.csv");
        let json_path = format!("{prefix}-frontier.json");
        std::fs::write(&csv_path, frontier_to_csv(&points))?;
        std::fs::write(&json_path, frontier_to_json(&points))?;
        println!("wrote {csv_path} and {json_path}");
    }

    println!(
        "churn completed in {:.2} s",
        started.elapsed().as_secs_f64()
    );
    Ok(())
}
