//! `hetero_fleet` — design-space exploration on a heterogeneous FPGA fleet.
//!
//! The paper's model assumes `F` identical FPGAs; real cloud fleets mix
//! device generations. This example serves the paper's Alex-16 and VGG
//! pipelines from a mixed fleet of 4×VU9P + 4×KU115 (the KU115 has ~81 % of
//! the VU9P's DSPs and ~60 % of its DRAM bandwidth, so every per-CU cost
//! inflates there) and demonstrates the generalized engine end to end:
//!
//! * a sweep grid whose platform axis mixes the homogeneous 8×VU9P baseline
//!   with the mixed fleet, and whose budget axis mixes uniform constraints
//!   with a per-resource budget point,
//! * GP and bisection relaxation backends agreeing within 2 % on the
//!   heterogeneous relaxations,
//! * byte-identical parallel and serial sweeps,
//! * discrete-event simulation cross-validating a heterogeneous allocation.
//!
//! ```text
//! cargo run --release --example hetero_fleet -- [--threads N] [--out PREFIX]
//! ```

use std::time::Instant;

use mfa::explore::{
    export, run_sweep, validate, BudgetSpec, CaseSpec, ExecutorOptions, PlatformSpec, SolverSpec,
    SweepGrid, SweepSeries,
};
use mfa_alloc::cases::PaperCase;
use mfa_alloc::gp_step::{self, RelaxationBackend};
use mfa_alloc::gpa::GpaOptions;
use mfa_platform::{DeviceGroup, FpgaDevice, HeterogeneousPlatform, ResourceBudget, ResourceVec};
use mfa_sim::SimConfig;

fn mixed_fleet(vu9p: usize, ku115: usize) -> HeterogeneousPlatform {
    HeterogeneousPlatform::new(
        format!("{vu9p}×VU9P + {ku115}×KU115"),
        vec![
            DeviceGroup::new(FpgaDevice::vu9p(), vu9p),
            DeviceGroup::new(FpgaDevice::ku115(), ku115),
        ],
    )
}

fn print_series(title: &str, budgets: &[BudgetSpec], series: &[SweepSeries]) {
    println!();
    println!("=== {title}");
    print!("{:>12}", "budget");
    for s in series {
        print!(" {:>20}", s.platform);
    }
    println!();
    for b in budgets {
        let key = b.scalar();
        match b {
            BudgetSpec::Uniform(c) => print!("{:>11.0}%", c * 100.0),
            BudgetSpec::PerResource(_) => print!("{:>12}", "per-class"),
        }
        for s in series {
            match s
                .points
                .iter()
                .find(|p| (p.resource_constraint - key).abs() < 1e-9)
            {
                Some(p) => print!(" {:>20.3}", p.initiation_interval_ms),
                None => print!(" {:>20}", "-"),
            }
        }
        println!();
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut threads: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threads" => {
                let v = iter.next().ok_or("--threads needs a value")?;
                threads = Some(v.parse().map_err(|_| format!("bad thread count {v}"))?);
            }
            "--out" => out = Some(iter.next().ok_or("--out needs a path prefix")?.to_string()),
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    let started = Instant::now();
    let fleet = mixed_fleet(4, 4);

    // ---- Relaxation backends must agree on heterogeneous problems.
    println!("=== GP vs bisection on heterogeneous relaxations");
    for (label, case) in [
        ("Alex-16", PaperCase::Alex16OnTwoFpgas),
        ("VGG", PaperCase::VggOnEightFpgas),
    ] {
        let problem = case.problem(0.70)?.with_platform(fleet.clone());
        let bis = gp_step::solve(&problem, RelaxationBackend::Bisection)?;
        let gp = gp_step::solve(&problem, RelaxationBackend::GeometricProgram)?;
        let gap = (gp.initiation_interval_ms - bis.initiation_interval_ms).abs()
            / bis.initiation_interval_ms;
        println!(
            "{label:>8} on {}: bisection {:.4} ms, GP {:.4} ms, gap {:.3}%",
            fleet.name(),
            bis.initiation_interval_ms,
            gp.initiation_interval_ms,
            gap * 100.0
        );
        assert!(
            gap < 0.02,
            "{label}: GP and bisection disagree by {:.2}% on the heterogeneous relaxation",
            gap * 100.0
        );
    }

    // ---- The mixed-device sweep: homogeneous baseline vs fleet, uniform
    //      constraints plus one per-resource budget point.
    let grid = SweepGrid::builder()
        .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
        .case(CaseSpec::from_paper(PaperCase::VggOnEightFpgas))
        .fpga_counts([8])
        .platform(PlatformSpec::platform(fleet.clone()))
        .constraints([0.61, 0.70, 0.80])
        .budget(ResourceBudget::new(
            ResourceVec::new(0.9, 0.9, 0.55, 0.75),
            0.85,
        ))
        .backend(SolverSpec::gpa(GpaOptions::fast()))
        .build()?;

    let options = ExecutorOptions {
        num_threads: threads,
        ..ExecutorOptions::default()
    };
    let t0 = Instant::now();
    let parallel = run_sweep(&grid, &options)?;
    let parallel_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let serial = run_sweep(&grid, &ExecutorOptions::serial())?;
    let serial_s = t1.elapsed().as_secs_f64();

    // Parallel and serial sweeps are byte-identical modulo wall-clock fields.
    let strip = |mut series: Vec<SweepSeries>| -> Vec<SweepSeries> {
        for s in &mut series {
            for p in &mut s.points {
                p.solve_seconds = 0.0;
            }
        }
        series
    };
    assert_eq!(
        strip(serial.clone()),
        strip(parallel.clone()),
        "parallel and serial sweeps must be byte-identical"
    );
    println!();
    println!(
        "sweep of {} points: parallel {parallel_s:.2} s vs serial {serial_s:.2} s \
         (byte-identical results)",
        grid.num_points()
    );

    for case in [PaperCase::Alex16OnTwoFpgas, PaperCase::VggOnEightFpgas] {
        let series: Vec<SweepSeries> = parallel
            .iter()
            .filter(|s| s.case == case.label())
            .cloned()
            .collect();
        print_series(
            &format!("{}: II (ms), 8×VU9P vs mixed fleet", case.label()),
            grid.budgets(),
            &series,
        );
    }
    if let Some(prefix) = &out {
        let json = format!("{prefix}-hetero.json");
        let csv = format!("{prefix}-hetero.csv");
        export::write_json(&json, &parallel)?;
        export::write_csv(&csv, &parallel)?;
        println!("    wrote {json} and {csv}");
    }

    // ---- Cross-validate heterogeneous allocations in the simulator.
    println!();
    println!("=== Simulator cross-validation on the mixed fleet");
    let config = SimConfig {
        num_items: 300,
        ..SimConfig::default()
    };
    let mut validated = 0usize;
    for (case, constraint) in [
        (PaperCase::Alex16OnTwoFpgas, 0.70),
        (PaperCase::VggOnEightFpgas, 0.61),
    ] {
        let instance = case.problem(constraint)?.with_platform(fleet.clone());
        let Some(row) = validate::cross_validate_problem(
            &format!("{} on {}", case.label(), fleet.name()),
            &instance,
            constraint,
            &GpaOptions::fast(),
            &config,
        )?
        else {
            continue;
        };
        println!(
            "{:<28} predicted {:>8.3} ms, simulated {:>8.3} ms, error {:.2}%",
            row.case,
            row.predicted_ii_ms,
            row.simulated_ii_ms,
            row.relative_error * 100.0
        );
        assert!(
            row.relative_error < 0.10,
            "simulation diverges from the analytic model on {}",
            row.case
        );
        validated += 1;
    }
    assert!(
        validated >= 1,
        "at least one heterogeneous allocation must cross-validate"
    );

    println!();
    println!(
        "hetero_fleet completed in {:.2} s",
        started.elapsed().as_secs_f64()
    );
    Ok(())
}
