//! `dse` — reproduce all of the paper's figure data (Figs. 2–5) in one run
//! of the parallel design-space exploration engine, optionally exporting
//! each figure's series as JSON + CSV and cross-validating a sample of the
//! swept designs through the `mfa_sim` discrete-event simulator.
//!
//! ```text
//! cargo run --release --example dse -- [FLAGS]
//!   --quick          reduced grids and tiny MINLP budgets (CI smoke mode;
//!                    also exercises the skip paths for infeasible points
//!                    and budget-exhausted exact solves)
//!   --threads N      worker threads (default: all cores)
//!   --out PREFIX     write PREFIX-fig{2,3,4,5}.{json,csv}
//!   --no-exact       skip the MINLP/MINLP+G series (GP+A only)
//!   --compare-serial also run the Fig. 3 grid serially and report speedup
//! ```

use std::time::Instant;

use mfa::explore::{
    constraint_grid, export, run_sweep, validate, CaseSpec, ExecutorOptions, PlatformSpec,
    SolverSpec, SweepGrid, SweepSeries,
};
use mfa_alloc::cases::PaperCase;
use mfa_alloc::exact::ExactMode;
use mfa_alloc::gpa::GpaOptions;
use mfa_alloc::greedy::GreedyOptions;
use mfa_platform::{DeviceGroup, FpgaDevice, HeterogeneousPlatform, ResourceBudget, ResourceVec};
use mfa_sim::SimConfig;

struct Args {
    quick: bool,
    threads: Option<usize>,
    out: Option<String>,
    exact: bool,
    compare_serial: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        threads: None,
        out: None,
        exact: true,
        compare_serial: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--no-exact" => args.exact = false,
            "--compare-serial" => args.compare_serial = true,
            "--threads" => {
                let v = iter.next().ok_or("--threads needs a value")?;
                args.threads = Some(v.parse().map_err(|_| format!("bad thread count {v}"))?);
            }
            "--out" => args.out = Some(iter.next().ok_or("--out needs a path prefix")?),
            other => return Err(format!("unknown flag {other} (see the header of dse.rs)")),
        }
    }
    Ok(args)
}

/// MINLP node/time budgets: small enough to finish, honest about the gap.
fn exact_backends(quick: bool, vgg: bool) -> Vec<SolverSpec> {
    let (nodes, seconds) = match (quick, vgg) {
        (true, _) => (50, 1.0),
        (false, false) => (2_000, 12.0),
        (false, true) => (200, 15.0),
    };
    [ExactMode::IiOnly, ExactMode::IiAndSpreading]
        .into_iter()
        .map(|mode| {
            SolverSpec::exact(mfa_alloc::exact::ExactOptions {
                mode,
                solver: mfa_minlp::SolverOptions::with_budget(nodes, seconds),
                symmetry_breaking: true,
            })
        })
        .collect()
}

fn print_series_table(title: &str, constraints: &[f64], series: &[SweepSeries]) {
    println!();
    println!("=== {title}");
    print!("{:>12}", "constraint");
    for s in series {
        print!(" {:>10}", s.backend);
    }
    println!();
    for &c in constraints {
        print!("{:>11.0}%", c * 100.0);
        for s in series {
            match s
                .points
                .iter()
                .find(|p| (p.resource_constraint - c).abs() < 1e-9)
            {
                Some(p) => print!(" {:>10.3}", p.initiation_interval_ms),
                None => print!(" {:>10}", "-"),
            }
        }
        println!();
    }
}

fn export_figure(
    out: &Option<String>,
    name: &str,
    series: &[SweepSeries],
) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(prefix) = out {
        let json = format!("{prefix}-{name}.json");
        let csv = format!("{prefix}-{name}.csv");
        export::write_json(&json, series)?;
        export::write_csv(&csv, series)?;
        println!("    wrote {json} and {csv}");
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(|msg| -> Box<dyn std::error::Error> { msg.into() })?;
    let options = ExecutorOptions {
        num_threads: args.threads,
        ..ExecutorOptions::default()
    };
    let started = Instant::now();

    // ---- Fig. 2: the T parameter (one labeled GP+A backend per T value).
    let t_values: &[f64] = if args.quick {
        &[0.0, 0.10]
    } else {
        &[0.0, 0.025, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30]
    };
    let fig2_constraints = if args.quick {
        constraint_grid(0.50, 0.90, 3)?
    } else {
        constraint_grid(0.40, 0.90, 11)?
    };
    let fig2 = run_sweep(
        &SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .fpga_counts([2])
            .constraints(fig2_constraints.iter().copied())
            .backends(t_values.iter().map(|&t| {
                SolverSpec::gpa_labeled(
                    format!("T{:.1}%", t * 100.0),
                    GpaOptions {
                        greedy: GreedyOptions::with_t_delta(t, 0.01),
                        ..GpaOptions::fast()
                    },
                )
            }))
            .build()?,
        &options,
    )?;
    print_series_table(
        "Fig. 2: Alex-16 on 2 FPGAs — II (ms) vs constraint for several T",
        &fig2_constraints,
        &fig2,
    );
    export_figure(&args.out, "fig2", &fig2)?;

    // ---- Figs. 3–5: GP+A vs MINLP vs MINLP+G per case.
    let figures: [(&str, PaperCase, Vec<f64>, bool); 3] = [
        (
            "fig3",
            PaperCase::Alex16OnTwoFpgas,
            if args.quick {
                // 8 % is infeasible for Alex-16 — exercises the skip path.
                vec![0.08, 0.65, 0.85]
            } else {
                constraint_grid(0.55, 0.85, 7)?
            },
            false,
        ),
        (
            "fig4",
            PaperCase::Alex32OnFourFpgas,
            if args.quick {
                // 30 % cannot host CONV2 (37.6 % DSP) — another skip path.
                vec![0.30, 0.70, 0.75]
            } else {
                constraint_grid(0.65, 0.75, 3)?
            },
            false,
        ),
        (
            "fig5",
            PaperCase::VggOnEightFpgas,
            if args.quick {
                vec![0.61, 0.80]
            } else {
                constraint_grid(0.55, 0.80, 6)?
            },
            true,
        ),
    ];
    for (name, case, constraints, is_vgg) in &figures {
        let mut builder = SweepGrid::builder()
            .case(CaseSpec::from_paper(*case))
            .fpga_counts([case.num_fpgas()])
            .constraints(constraints.iter().copied())
            .backend(SolverSpec::gpa(GpaOptions::paper_defaults()));
        if args.exact {
            builder = builder.backends(exact_backends(args.quick, *is_vgg));
        }
        let series = run_sweep(&builder.build()?, &options)?;
        print_series_table(
            &format!("{}: {} — II (ms) by method", name, case.label()),
            constraints,
            &series,
        );
        export_figure(&args.out, name, &series)?;
    }

    // ---- Heterogeneous platform + per-resource budget axes (one point
    //      each, also in --quick mode, so CI exercises both new axes on
    //      every push).
    let mixed_pair = HeterogeneousPlatform::new(
        "1×VU9P + 1×KU115",
        vec![
            DeviceGroup::new(FpgaDevice::vu9p(), 1),
            DeviceGroup::new(FpgaDevice::ku115(), 1),
        ],
    );
    let skewed_budget = ResourceBudget::new(ResourceVec::new(0.9, 0.9, 0.6, 0.75), 0.9);
    let hetero = run_sweep(
        &SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .fpga_counts([2])
            .platform(PlatformSpec::platform(mixed_pair))
            .constraints([0.70])
            .budget(skewed_budget)
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .build()?,
        &options,
    )?;
    println!();
    println!("=== New axes: heterogeneous platform × per-resource budget (Alex-16)");
    for s in &hetero {
        for p in &s.points {
            let b = p.budget.resource_fraction();
            println!(
                "{:<18} budget (lut {:.2}, ff {:.2}, bram {:.2}, dsp {:.2}, bw {:.2}): \
                 II {:.3} ms",
                s.platform,
                b.lut,
                b.ff,
                b.bram,
                b.dsp,
                p.budget.bandwidth_fraction(),
                p.initiation_interval_ms
            );
        }
    }
    let hetero_points: usize = hetero.iter().map(|s| s.points.len()).sum();
    assert_eq!(
        hetero_points, 4,
        "both platform points must solve both budget points"
    );
    export_figure(&args.out, "hetero", &hetero)?;

    // ---- Cross-validate a sample of swept designs through the simulator.
    println!();
    println!("=== Cross-validation: GP+A predictions vs discrete-event simulation");
    println!(
        "{:<22} {:>10} {:>14} {:>14} {:>9}",
        "case", "constraint", "predicted (ms)", "simulated (ms)", "error"
    );
    let sim_config = SimConfig {
        num_items: if args.quick { 120 } else { 400 },
        ..SimConfig::default()
    };
    let mut worst_error = 0.0_f64;
    for case in PaperCase::all() {
        let (lo, hi) = case.constraint_range();
        let samples = [lo, 0.5 * (lo + hi), hi];
        let rows = validate::cross_validate_gpa(
            &CaseSpec::from_paper(case),
            case.num_fpgas(),
            if args.quick { &samples[..1] } else { &samples },
            &GpaOptions::fast(),
            &sim_config,
        )?;
        for row in rows {
            worst_error = worst_error.max(row.relative_error);
            println!(
                "{:<22} {:>9.0}% {:>14.3} {:>14.3} {:>8.2}%",
                row.case,
                row.resource_constraint * 100.0,
                row.predicted_ii_ms,
                row.simulated_ii_ms,
                row.relative_error * 100.0
            );
        }
    }
    if worst_error > 0.10 {
        return Err(format!(
            "simulation diverges from the analytic model: worst relative II error {:.1}% > 10%",
            worst_error * 100.0
        )
        .into());
    }

    // ---- Optional serial-vs-parallel comparison on the Fig. 3 GP+A grid.
    if args.compare_serial {
        let grid = SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .case(CaseSpec::from_paper(PaperCase::Alex32OnFourFpgas))
            .fpga_counts([2, 4])
            .constraints(constraint_grid(0.55, 0.85, 7)?)
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .backend(SolverSpec::gpa_labeled(
                "GP+A/gp",
                GpaOptions::paper_defaults(),
            ))
            .build()?;
        let t0 = Instant::now();
        let serial = run_sweep(&grid, &ExecutorOptions::serial())?;
        let serial_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let parallel = run_sweep(&grid, &options)?;
        let parallel_s = t1.elapsed().as_secs_f64();
        assert_eq!(
            serial.iter().map(|s| s.points.len()).sum::<usize>(),
            parallel.iter().map(|s| s.points.len()).sum::<usize>(),
        );
        println!();
        println!(
            "serial {serial_s:.2} s vs parallel {parallel_s:.2} s ({:.2}x) on {} points",
            serial_s / parallel_s.max(1e-9),
            grid.num_points(),
        );
    }

    println!();
    println!(
        "dse completed in {:.2} s (quick = {}, exact = {})",
        started.elapsed().as_secs_f64(),
        args.quick,
        args.exact
    );
    Ok(())
}
