//! `dse` — reproduce all of the paper's figure data (Figs. 2–5) in one run
//! of the parallel design-space exploration engine, optionally exporting
//! each figure's series as JSON + CSV and cross-validating a sample of the
//! swept designs through the `mfa_sim` discrete-event simulator.
//!
//! ```text
//! cargo run --release --example dse -- [FLAGS]
//!   --quick          reduced grids and tiny MINLP budgets (CI smoke mode;
//!                    also exercises the skip paths for infeasible points
//!                    and budget-exhausted exact solves)
//!   --threads N      worker threads (default: all cores)
//!   --workers N      shard each grid across N sweep-worker processes
//!                    (build them first: cargo build --release -p mfa_dispatch)
//!   --connect ADDR   use a TCP worker at ADDR (host:port started with
//!                    `sweep-worker --listen`; repeatable, overrides --workers)
//!   --out PREFIX     write PREFIX-fig{2,3,4,5}.{json,csv}
//!   --zero-timing    zero the solve_seconds column before exporting (for
//!                    byte-comparable golden snapshots)
//!   --no-exact       skip the MINLP/MINLP+G series (GP+A only)
//!   --no-warm-start  solve every point cold (disable the per-chunk
//!                    warm-start cache; for effort/wall-clock comparisons)
//!   --compare-serial also run the Fig. 3 grid serially and report speedup
//!   --store SPEC     persist every figure sweep in a content-addressed
//!                    result store and replay stored points instead of
//!                    recomputing them; a second identical run computes 0
//!                    points and a killed run resumes from the units that
//!                    finished. SPEC is a directory (one subdirectory per
//!                    figure) or tcp://host:port for a store-server shared
//!                    across sweep hosts (one namespace per figure)
//!   --no-store       ignore an existing store (compute everything fresh,
//!                    persist nothing)
//! ```
//!
//! The figure grids themselves live in `mfa_explore::figures`, shared with
//! the golden-file regression tests and the dispatcher's determinism tests.

use std::time::Instant;

use mfa::dispatch::{
    default_worker_program, run_sweep_sharded, run_sweep_sharded_stored, spawned_workers,
    DispatchOptions, WorkerSpec,
};
use mfa::explore::{
    constraint_grid, export, figures, run_sweep, run_sweep_stored, validate, zero_timing, CaseSpec,
    ExecutorOptions, ResultStore, SolverSpec, StoreRunReport, SweepGrid, SweepSeries, SweepStore,
};
use mfa_alloc::cases::PaperCase;
use mfa_alloc::gpa::GpaOptions;
use mfa_sim::SimConfig;

struct Args {
    quick: bool,
    threads: Option<usize>,
    workers: Option<usize>,
    connect: Vec<String>,
    out: Option<String>,
    zero_timing: bool,
    exact: bool,
    warm_start: bool,
    compare_serial: bool,
    store: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        threads: None,
        workers: None,
        connect: Vec::new(),
        out: None,
        zero_timing: false,
        exact: true,
        warm_start: true,
        compare_serial: false,
        store: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--no-exact" => args.exact = false,
            "--no-warm-start" => args.warm_start = false,
            "--zero-timing" => args.zero_timing = true,
            "--compare-serial" => args.compare_serial = true,
            "--threads" => {
                let v = iter.next().ok_or("--threads needs a value")?;
                args.threads = Some(v.parse().map_err(|_| format!("bad thread count {v}"))?);
            }
            "--workers" => {
                let v = iter.next().ok_or("--workers needs a value")?;
                args.workers = Some(v.parse().map_err(|_| format!("bad worker count {v}"))?);
            }
            "--connect" => args
                .connect
                .push(iter.next().ok_or("--connect needs host:port")?),
            "--out" => args.out = Some(iter.next().ok_or("--out needs a path prefix")?),
            "--store" => {
                args.store = Some(
                    iter.next()
                        .ok_or("--store needs a directory or tcp:// URL")?,
                );
            }
            "--no-store" => args.store = None,
            other => return Err(format!("unknown flag {other} (see the header of dse.rs)")),
        }
    }
    Ok(args)
}

/// How grids are executed this run: in-process threads, or sharded across
/// worker processes / TCP peers.
enum Engine {
    Threads(ExecutorOptions),
    Sharded(Vec<WorkerSpec>),
}

impl Engine {
    fn run(
        &self,
        grid: &SweepGrid,
        store: Option<&mut (dyn ResultStore + 'static)>,
    ) -> Result<(Vec<SweepSeries>, Option<StoreRunReport>), Box<dyn std::error::Error>> {
        match (self, store) {
            (Engine::Threads(options), None) => Ok((run_sweep(grid, options)?, None)),
            (Engine::Threads(options), Some(store)) => {
                let (series, report) = run_sweep_stored(grid, options, store)?;
                Ok((series, Some(report)))
            }
            // The dispatcher's default chunk size and warm-start policy
            // match ExecutorOptions::default(), so both paths produce
            // byte-identical series (timing aside).
            (Engine::Sharded(workers), None) => Ok((
                run_sweep_sharded(grid, workers, &DispatchOptions::default())?,
                None,
            )),
            (Engine::Sharded(workers), Some(store)) => {
                let (series, report) =
                    run_sweep_sharded_stored(grid, workers, &DispatchOptions::default(), store)?;
                Ok((series, Some(report)))
            }
        }
    }
}

/// Opens the per-figure store when `--store` is active: a subdirectory of a
/// local store root, or a namespace on a `tcp://host:port` store-server.
/// Figures share grid points, so each figure gets its own store — a shared
/// one would replay one figure's points into another's first run.
fn open_store(
    args: &Args,
    figure_name: &str,
) -> Result<Option<Box<dyn ResultStore>>, Box<dyn std::error::Error>> {
    let Some(root) = &args.store else {
        return Ok(None);
    };
    Ok(Some(match mfa::storenet::store_url(root) {
        Some(addr) => Box::new(mfa::storenet::RemoteStore::connect(addr, figure_name)?),
        None => {
            let dir = std::path::Path::new(root).join(figure_name);
            Box::new(SweepStore::open(dir)?)
        }
    }))
}

fn report_store(figure_name: &str, report: Option<StoreRunReport>, total: &mut StoreRunReport) {
    if let Some(report) = report {
        println!(
            "    store[{figure_name}]: replayed={} units ({} points), computed={} units \
             ({} points), warm-from-store={}, corrupt={}, version-mismatch={}",
            report.units_replayed,
            report.points_replayed,
            report.units_computed,
            report.points_computed,
            report.warm_from_store,
            report.corrupt_entries,
            report.version_mismatches
        );
        total.absorb(&report);
    }
}

fn print_series_table(title: &str, constraints: &[f64], series: &[SweepSeries]) {
    println!();
    println!("=== {title}");
    print!("{:>12}", "constraint");
    for s in series {
        print!(" {:>10}", s.backend);
    }
    println!();
    for &c in constraints {
        print!("{:>11.0}%", c * 100.0);
        for s in series {
            match s
                .points
                .iter()
                .find(|p| (p.resource_constraint - c).abs() < 1e-9)
            {
                Some(p) => print!(" {:>10.3}", p.initiation_interval_ms),
                None => print!(" {:>10}", "-"),
            }
        }
        println!();
    }
}

fn export_figure(
    args: &Args,
    name: &str,
    series: &[SweepSeries],
) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(prefix) = &args.out {
        let mut series = series.to_vec();
        if args.zero_timing {
            zero_timing(&mut series);
        }
        let json = format!("{prefix}-{name}.json");
        let csv = format!("{prefix}-{name}.csv");
        export::write_json(&json, &series)?;
        export::write_csv(&csv, &series)?;
        println!("    wrote {json} and {csv}");
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(|msg| -> Box<dyn std::error::Error> { msg.into() })?;
    let options = ExecutorOptions {
        num_threads: args.threads,
        warm_start: args.warm_start,
        ..ExecutorOptions::default()
    };
    if !args.warm_start && (args.workers.is_some() || !args.connect.is_empty()) {
        return Err(
            "--no-warm-start configures the in-process executor and has no \
                    effect on sharded runs; drop it or drop --workers/--connect"
                .into(),
        );
    }
    if args.threads.is_some() && (args.workers.is_some() || !args.connect.is_empty()) {
        return Err(
            "--threads configures the in-process executor and has no effect \
                    on sharded runs; drop it or drop --workers/--connect"
                .into(),
        );
    }
    let engine = if !args.connect.is_empty() {
        println!(
            "sharding each grid across {} TCP worker(s): {}",
            args.connect.len(),
            args.connect.join(", ")
        );
        Engine::Sharded(
            args.connect
                .iter()
                .map(|addr| WorkerSpec::Connect { addr: addr.clone() })
                .collect(),
        )
    } else if let Some(n) = args.workers {
        let program = default_worker_program()?;
        println!(
            "sharding each grid across {n} worker process(es) ({})",
            program.display()
        );
        Engine::Sharded(spawned_workers(program, n))
    } else {
        Engine::Threads(options.clone())
    };
    let started = Instant::now();

    let mut store_total = StoreRunReport::default();

    // ---- Figs. 2–5 from the shared presets.
    for figure in figures::paper_figures(args.quick, args.exact)? {
        let mut store = open_store(&args, figure.name)?;
        let (series, report) = engine.run(&figure.grid, store.as_deref_mut())?;
        print_series_table(&figure.title, &figure.constraints, &series);
        report_store(figure.name, report, &mut store_total);
        export_figure(&args, figure.name, &series)?;
    }

    // ---- Heterogeneous platform + per-resource budget axes (one point
    //      each, also in --quick mode, so CI exercises both new axes on
    //      every push).
    let hetero_figure = figures::hetero_smoke()?;
    let mut hetero_store = open_store(&args, hetero_figure.name)?;
    let (hetero, hetero_report) = engine.run(&hetero_figure.grid, hetero_store.as_deref_mut())?;
    println!();
    println!("=== {}", hetero_figure.title);
    for s in &hetero {
        for p in &s.points {
            let b = p.budget.resource_fraction();
            println!(
                "{:<18} budget (lut {:.2}, ff {:.2}, bram {:.2}, dsp {:.2}, bw {:.2}): \
                 II {:.3} ms",
                s.platform,
                b.lut,
                b.ff,
                b.bram,
                b.dsp,
                p.budget.bandwidth_fraction(),
                p.initiation_interval_ms
            );
        }
    }
    let hetero_points: usize = hetero.iter().map(|s| s.points.len()).sum();
    assert_eq!(
        hetero_points, 4,
        "both platform points must solve both budget points"
    );
    report_store(hetero_figure.name, hetero_report, &mut store_total);
    export_figure(&args, hetero_figure.name, &hetero)?;

    if args.store.is_some() {
        println!();
        println!(
            "store total: computed={} points, replayed={} points, warm-from-store={}",
            store_total.points_computed, store_total.points_replayed, store_total.warm_from_store
        );
    }

    // ---- Cross-validate a sample of swept designs through the simulator.
    println!();
    println!("=== Cross-validation: GP+A predictions vs discrete-event simulation");
    println!(
        "{:<22} {:>10} {:>14} {:>14} {:>9}",
        "case", "constraint", "predicted (ms)", "simulated (ms)", "error"
    );
    let sim_config = SimConfig {
        num_items: if args.quick { 120 } else { 400 },
        ..SimConfig::default()
    };
    let mut worst_error = 0.0_f64;
    for case in PaperCase::all() {
        let (lo, hi) = case.constraint_range();
        let samples = [lo, 0.5 * (lo + hi), hi];
        let rows = validate::cross_validate_gpa(
            &CaseSpec::from_paper(case),
            case.num_fpgas(),
            if args.quick { &samples[..1] } else { &samples },
            &GpaOptions::fast(),
            &sim_config,
        )?;
        for row in rows {
            worst_error = worst_error.max(row.relative_error);
            println!(
                "{:<22} {:>9.0}% {:>14.3} {:>14.3} {:>8.2}%",
                row.case,
                row.resource_constraint * 100.0,
                row.predicted_ii_ms,
                row.simulated_ii_ms,
                row.relative_error * 100.0
            );
        }
    }
    if worst_error > 0.10 {
        return Err(format!(
            "simulation diverges from the analytic model: worst relative II error {:.1}% > 10%",
            worst_error * 100.0
        )
        .into());
    }

    // ---- Optional serial-vs-parallel comparison on the Fig. 3 GP+A grid.
    if args.compare_serial {
        let grid = SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .case(CaseSpec::from_paper(PaperCase::Alex32OnFourFpgas))
            .fpga_counts([2, 4])
            .constraints(constraint_grid(0.55, 0.85, 7)?)
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .backend(SolverSpec::gpa_labeled(
                "GP+A/gp",
                GpaOptions::paper_defaults(),
            ))
            .build()?;
        let t0 = Instant::now();
        let serial = run_sweep(&grid, &ExecutorOptions::serial())?;
        let serial_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let parallel = run_sweep(&grid, &options)?;
        let parallel_s = t1.elapsed().as_secs_f64();
        assert_eq!(
            serial.iter().map(|s| s.points.len()).sum::<usize>(),
            parallel.iter().map(|s| s.points.len()).sum::<usize>(),
        );
        println!();
        println!(
            "serial {serial_s:.2} s vs parallel {parallel_s:.2} s ({:.2}x) on {} points",
            serial_s / parallel_s.max(1e-9),
            grid.num_points(),
        );
    }

    println!();
    println!(
        "dse completed in {:.2} s (quick = {}, exact = {})",
        started.elapsed().as_secs_f64(),
        args.quick,
        args.exact
    );
    Ok(())
}
