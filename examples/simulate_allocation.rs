//! Allocate and then *simulate*: validates the analytic initiation-interval
//! prediction of the allocation model against the discrete-event simulator,
//! including the effect of DRAM bandwidth contention.
//!
//! Run with `cargo run --release --example simulate_allocation`.

use mfa_alloc::cases::PaperCase;
use mfa_alloc::solver::{Backend, SolveRequest};
use mfa_sim::{simulate, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<22} {:>12} {:>12} {:>9} {:>14} {:>12}",
        "case", "model II", "sim II", "error", "sim thru/s", "latency (ms)"
    );
    for case in PaperCase::all() {
        let (lo, hi) = case.constraint_range();
        let problem = case.problem(0.5 * (lo + hi))?;
        let outcome = SolveRequest::new(&problem)
            .backend(Backend::gpa())
            .solve()?;
        let predicted = outcome.allocation.initiation_interval(&problem);

        let config = SimConfig {
            num_items: 600,
            service_jitter: 0.05,
            seed: 42,
            model_bandwidth_contention: true,
        };
        let result = simulate(&problem, &outcome.allocation, &config);
        println!(
            "{:<22} {:>9.3} ms {:>9.3} ms {:>8.1}% {:>14.1} {:>12.1}",
            case.label(),
            predicted,
            result.initiation_interval_ms,
            100.0 * result.ii_error_vs(predicted),
            result.throughput_per_second,
            result.pipeline_latency_ms
        );
        for stats in &result.fpga_stats {
            if stats.busy_fraction > 0.0 {
                println!(
                    "    FPGA {}: busy {:.0}% of the time, avg bandwidth demand {:.0}%, peak {:.0}%",
                    stats.fpga + 1,
                    100.0 * stats.busy_fraction,
                    100.0 * stats.average_bandwidth_demand,
                    100.0 * stats.peak_bandwidth_demand
                );
            }
        }
    }
    println!();
    println!("The simulated II tracks the model prediction closely; small excursions come from");
    println!("service-time jitter and from bandwidth contention on heavily packed FPGAs.");
    Ok(())
}
