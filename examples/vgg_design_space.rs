//! Design-space exploration for VGG: sweep the number of FPGAs (2–8) and the
//! per-FPGA resource constraint (55–80 %), printing the achievable initiation
//! interval frontier. This is the kind of loop the paper's fast heuristic is
//! built for (a full MINLP in the inner loop would take hours per point) —
//! here the whole 7 × 6 grid is one `mfa_explore` sweep, fanned out across
//! every available core.
//!
//! Run with `cargo run --release --example vgg_design_space`.

use std::time::Instant;

use mfa::explore::{constraint_grid, run_sweep, CaseSpec, ExecutorOptions, SolverSpec, SweepGrid};
use mfa_alloc::gpa::GpaOptions;
use mfa_alloc::{AllocationProblem, GoalWeights};
use mfa_cnn::paper_data;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = paper_data::vgg_16bit();
    let constraints = constraint_grid(0.55, 0.80, 6)?;
    let base = AllocationProblem::from_application(&app, 8, 0.61, GoalWeights::new(1.0, 50.0))?;
    let grid = SweepGrid::builder()
        .case(CaseSpec::new("VGG-16", base))
        .fpga_counts(2..=8)
        .constraints(constraints.iter().copied())
        .backend(SolverSpec::gpa(GpaOptions::fast()))
        .build()?;

    let start = Instant::now();
    let series = run_sweep(&grid, &ExecutorOptions::default())?;
    let elapsed = start.elapsed();

    println!("VGG-16 (16-bit fixed point), GP+A heuristic");
    println!("initiation interval (ms) by FPGA count and per-FPGA resource constraint:");
    print!("{:>8}", "FPGAs");
    for &c in &constraints {
        print!(" {:>8.0}%", c * 100.0);
    }
    println!("  best throughput");

    for s in &series {
        print!("{:>8}", s.num_fpgas);
        let mut best_ii = f64::INFINITY;
        for &c in &constraints {
            match s
                .points
                .iter()
                .find(|p| (p.resource_constraint - c).abs() < 1e-9)
            {
                Some(p) => {
                    best_ii = best_ii.min(p.initiation_interval_ms);
                    print!(" {:>9.2}", p.initiation_interval_ms);
                }
                None => print!(" {:>9}", "-"),
            }
        }
        if best_ii.is_finite() {
            println!("  {:>6.1} img/s", 1000.0 / best_ii);
        } else {
            println!("  (infeasible at every constraint)");
        }
    }

    println!();
    println!(
        "All {} grid points swept in {:.2} s across the available cores — the same sweep",
        grid.num_points(),
        elapsed.as_secs_f64()
    );
    println!(
        "with an exact MINLP in the loop is what the paper reports as taking minutes to hours per point."
    );
    Ok(())
}
