//! Quickstart: allocate a small synthetic four-kernel pipeline onto two FPGAs
//! with the GP+A heuristic and print the resulting mapping.
//!
//! Run with `cargo run --release --example quickstart`.

use std::time::Duration;

use mfa_alloc::report::render_summary;
use mfa_alloc::solver::{Backend, Deadline, SolveRequest};
use mfa_alloc::{AllocationProblem, GoalWeights, Kernel};
use mfa_platform::{MultiFpgaPlatform, ResourceBudget, ResourceVec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A toy task-level pipeline: decode → detect → track → encode.
    // Per-CU figures are fractions of one FPGA (as produced by an HLS
    // characterization run or by `mfa_cnn::characterize`).
    let kernels = vec![
        Kernel::new("decode", 2.0, ResourceVec::bram_dsp(0.04, 0.06), 0.05)?,
        Kernel::new("detect", 9.0, ResourceVec::bram_dsp(0.08, 0.22), 0.03)?,
        Kernel::new("track", 5.0, ResourceVec::bram_dsp(0.05, 0.12), 0.02)?,
        Kernel::new("encode", 3.0, ResourceVec::bram_dsp(0.06, 0.08), 0.06)?,
    ];

    let problem = AllocationProblem::builder()
        .kernels(kernels)
        .platform(MultiFpgaPlatform::aws_f1_4xlarge()) // two VU9P FPGAs
        .budget(ResourceBudget::uniform(0.70)) // use at most 70 % of each FPGA
        .weights(GoalWeights::new(1.0, 0.7)) // weigh II against CU spreading
        .build()?;

    // One request-shaped entry point drives every backend: pick GP+A, give
    // the solve a generous deadline, and read the structured diagnostics
    // off the report.
    let outcome = SolveRequest::new(&problem)
        .backend(Backend::gpa())
        .deadline(Deadline::within(Duration::from_secs(30)))
        .solve()?;

    println!(
        "GP relaxation:   II = {:.3} ms",
        outcome.diagnostics.relaxed_ii_ms.unwrap_or(f64::NAN)
    );
    println!("discretized CUs: {:?}", outcome.diagnostics.cu_counts);
    println!(
        "heuristic time:  {:.1} ms ({} B&B nodes, {} dropped CUs, {})",
        outcome.diagnostics.timing.total.as_secs_f64() * 1e3,
        outcome.diagnostics.bb_nodes,
        outcome.diagnostics.total_dropped_cus(),
        outcome.diagnostics.warm_start.provenance()
    );
    println!();
    println!("{}", render_summary(&problem, &outcome.allocation));
    Ok(())
}
