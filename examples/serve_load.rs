//! Open-loop load generator for the `serve` allocation daemon.
//!
//! Drives the daemon with a fixed-rate request schedule (arrivals are
//! pre-assigned, so a slow server cannot throttle the offered load — the
//! honest way to measure tail latency), cycling over a band of resource
//! constraints and salting in tight deadlines to exercise the graceful
//! degradation path. Prints p50/p99 end-to-end latency plus the
//! served/degraded/rejected/skipped breakdown.
//!
//! Run with `cargo run --release --example serve_load -- --quick`
//! (self-hosts a daemon in-process), or point it at a running daemon with
//! `--connect ADDR`. Exits nonzero if any reply failed to decode.

use std::process::ExitCode;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use mfa::alloc::cases::PaperCase;
use mfa::serve::{BackendKind, ServeClient, ServeHandle, ServeOptions, SolveReply};

/// One request's fate, reported back from a client thread.
enum Fate {
    Served { degraded: bool },
    Rejected,
    Skipped,
    DecodeError(String),
}

struct Args {
    connect: Option<String>,
    requests: usize,
    clients: usize,
    rps: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        connect: None,
        requests: 96,
        clients: 4,
        rps: 60.0,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--connect" => args.connect = Some(iter.next().ok_or("--connect needs an address")?),
            "--quick" => {
                args.requests = 24;
                args.clients = 2;
            }
            "--requests" => {
                args.requests = iter
                    .next()
                    .ok_or("--requests needs a count")?
                    .parse()
                    .map_err(|_| "--requests needs a positive integer".to_owned())?;
            }
            "--clients" => {
                args.clients = iter
                    .next()
                    .ok_or("--clients needs a count")?
                    .parse()
                    .map_err(|_| "--clients needs a positive integer".to_owned())?;
            }
            "--rps" => {
                args.rps = iter
                    .next()
                    .ok_or("--rps needs a rate")?
                    .parse()
                    .map_err(|_| "--rps needs a number".to_owned())?;
            }
            other => return Err(format!("unknown flag {other} (see serve_load.rs)")),
        }
    }
    if args.requests == 0 || args.clients == 0 || args.rps.is_nan() || args.rps <= 0.0 {
        return Err("--requests, --clients, and --rps must be positive".into());
    }
    Ok(args)
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("serve_load: {msg}");
            return ExitCode::from(2);
        }
    };

    // Without --connect, self-host a daemon so the example runs standalone.
    let (addr, local) = match &args.connect {
        Some(addr) => (addr.clone(), None),
        None => {
            let handle = match ServeHandle::spawn("127.0.0.1:0", ServeOptions::default()) {
                Ok(handle) => handle,
                Err(err) => {
                    eprintln!("serve_load: cannot start an in-process daemon: {err}");
                    return ExitCode::FAILURE;
                }
            };
            (handle.local_addr().to_string(), Some(handle))
        }
    };

    // The offered load: request i arrives at i/rps seconds, cycling through
    // a constraint band so the warm-start cache sees near-neighbours rather
    // than one repeated point. Every fourth request carries a deliberately
    // hopeless deadline to exercise degradation.
    const CONSTRAINTS: [f64; 4] = [0.60, 0.65, 0.70, 0.75];
    let problems: Vec<_> = match CONSTRAINTS
        .iter()
        .map(|&c| PaperCase::Alex16OnTwoFpgas.problem(c))
        .collect()
    {
        Ok(problems) => problems,
        Err(err) => {
            eprintln!("serve_load: cannot build the paper case: {err}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "serve_load: {} requests over {} clients, open-loop at {} req/s -> {addr}",
        args.requests, args.clients, args.rps
    );

    let (tx, rx) = mpsc::channel::<(f64, Fate)>();
    let epoch = Instant::now() + Duration::from_millis(50);
    let mut client_threads = Vec::new();
    for client_idx in 0..args.clients {
        let addr = addr.clone();
        let tx = tx.clone();
        let problems = problems.clone();
        let (requests, clients, rps) = (args.requests, args.clients, args.rps);
        client_threads.push(thread::spawn(move || {
            let mut client = match ServeClient::connect(&addr) {
                Ok(client) => client,
                Err(err) => {
                    let fate = Fate::DecodeError(format!("connect failed: {err}"));
                    let _ = tx.send((0.0, fate));
                    return;
                }
            };
            // Requests are striped round-robin across clients; each thread
            // honours the global arrival schedule for its stripe.
            for i in (client_idx..requests).step_by(clients) {
                let due = epoch + Duration::from_secs_f64(i as f64 / rps);
                if let Some(wait) = due.checked_duration_since(Instant::now()) {
                    thread::sleep(wait);
                }
                let problem = &problems[i % problems.len()];
                let deadline = if i % 4 == 3 { Some(1e-4) } else { Some(5.0) };
                let sent = Instant::now();
                let reply = client.solve(problem, BackendKind::Gpa, deadline, true);
                let latency_ms = sent.elapsed().as_secs_f64() * 1e3;
                let fate = match reply {
                    Ok(SolveReply::Report(outcome)) => Fate::Served {
                        degraded: outcome.degraded_from.is_some(),
                    },
                    Ok(SolveReply::Rejected { .. }) => Fate::Rejected,
                    Ok(SolveReply::Skipped { .. }) => Fate::Skipped,
                    Err(err) => Fate::DecodeError(err.to_string()),
                };
                let _ = tx.send((latency_ms, fate));
            }
        }));
    }
    drop(tx);

    let mut latencies_ms = Vec::new();
    let (mut served, mut degraded, mut rejected, mut skipped) = (0usize, 0usize, 0usize, 0usize);
    let mut decode_errors = Vec::new();
    for (latency_ms, fate) in rx {
        match fate {
            Fate::Served { degraded: d } => {
                served += 1;
                degraded += usize::from(d);
                latencies_ms.push(latency_ms);
            }
            Fate::Rejected => rejected += 1,
            Fate::Skipped => skipped += 1,
            Fate::DecodeError(msg) => decode_errors.push(msg),
        }
    }
    for thread in client_threads {
        let _ = thread.join();
    }
    if let Some(handle) = local {
        handle.stop();
    }

    if latencies_ms.is_empty() {
        eprintln!("serve_load: no request was served");
        return ExitCode::FAILURE;
    }
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    println!(
        "p50 latency = {:.2} ms   p99 latency = {:.2} ms",
        percentile(&latencies_ms, 0.50),
        percentile(&latencies_ms, 0.99),
    );
    println!(
        "served = {served} (degraded = {degraded}, {:.0}%)  rejected = {rejected}  \
         skipped = {skipped}",
        100.0 * degraded as f64 / served.max(1) as f64,
    );
    println!("decode errors: {}", decode_errors.len());
    if decode_errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        for msg in decode_errors.iter().take(5) {
            eprintln!("serve_load: {msg}");
        }
        ExitCode::FAILURE
    }
}
