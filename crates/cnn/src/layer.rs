//! CNN layer descriptors.

use serde::{Deserialize, Serialize};

/// Numeric precision of a kernel implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// IEEE-754 single precision (the paper's "Alex-32").
    Float32,
    /// 16-bit fixed point (the paper's "Alex-16" and VGG).
    Fixed16,
}

impl Precision {
    /// Bytes per element.
    pub fn bytes(self) -> f64 {
        match self {
            Precision::Float32 => 4.0,
            Precision::Fixed16 => 2.0,
        }
    }

    /// DSP slices needed for one multiply-accumulate at this precision on an
    /// UltraScale+ device (a float MAC consumes several DSP48E2 slices, a
    /// 16-bit fixed MAC fits in one).
    pub fn dsp_per_mac(self) -> f64 {
        match self {
            Precision::Float32 => 5.0,
            Precision::Fixed16 => 1.0,
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Precision::Float32 => write!(f, "fp32"),
            Precision::Fixed16 => write!(f, "fx16"),
        }
    }
}

/// A convolutional layer (optionally with a max-pooling stage merged into it,
/// as the paper does when that improves memory access).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvLayer {
    /// Input feature-map height (= width; square maps assumed).
    pub input_size: usize,
    /// Input channels.
    pub input_channels: usize,
    /// Output channels (number of filters).
    pub output_channels: usize,
    /// Square kernel size.
    pub kernel_size: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on each border.
    pub padding: usize,
    /// Pooling window merged into this kernel (1 = no pooling).
    pub merged_pool: usize,
}

impl ConvLayer {
    /// Output feature-map size before any merged pooling.
    pub fn output_size(&self) -> usize {
        (self.input_size + 2 * self.padding - self.kernel_size) / self.stride + 1
    }

    /// Output feature-map size after the merged pooling stage.
    pub fn pooled_output_size(&self) -> usize {
        self.output_size() / self.merged_pool.max(1)
    }

    /// Multiply-accumulate operations for one inference.
    pub fn macs(&self) -> f64 {
        let out = self.output_size() as f64;
        out * out
            * self.output_channels as f64
            * self.input_channels as f64
            * (self.kernel_size * self.kernel_size) as f64
    }

    /// Bytes of weights at the given precision.
    pub fn weight_bytes(&self, precision: Precision) -> f64 {
        (self.kernel_size * self.kernel_size * self.input_channels * self.output_channels) as f64
            * precision.bytes()
    }

    /// Bytes of input plus output feature maps moved through DRAM for one
    /// inference at the given precision.
    pub fn feature_map_bytes(&self, precision: Precision) -> f64 {
        let input = (self.input_size * self.input_size * self.input_channels) as f64;
        let out_size = self.pooled_output_size();
        let output = (out_size * out_size * self.output_channels) as f64;
        (input + output) * precision.bytes()
    }
}

/// A (max- or average-) pooling layer kept as its own kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolLayer {
    /// Input feature-map height (= width).
    pub input_size: usize,
    /// Channels.
    pub channels: usize,
    /// Pooling window size.
    pub window: usize,
    /// Stride.
    pub stride: usize,
}

impl PoolLayer {
    /// Output feature-map size.
    pub fn output_size(&self) -> usize {
        (self.input_size - self.window) / self.stride + 1
    }

    /// Comparison/accumulation operations for one inference.
    pub fn ops(&self) -> f64 {
        let out = self.output_size() as f64;
        out * out * self.channels as f64 * (self.window * self.window) as f64
    }

    /// Bytes moved through DRAM for one inference.
    pub fn bytes(&self, precision: Precision) -> f64 {
        let input = (self.input_size * self.input_size * self.channels) as f64;
        let out = self.output_size() as f64;
        let output = out * out * self.channels as f64;
        (input + output) * precision.bytes()
    }
}

/// A local-response-normalization layer (AlexNet's LRN).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormLayer {
    /// Feature-map height (= width); LRN preserves dimensions.
    pub input_size: usize,
    /// Channels.
    pub channels: usize,
    /// Normalization window across channels.
    pub window: usize,
}

impl NormLayer {
    /// Arithmetic operations for one inference (squares, sums, scaling).
    pub fn ops(&self) -> f64 {
        (self.input_size * self.input_size * self.channels) as f64 * (self.window as f64 + 3.0)
    }

    /// Bytes moved through DRAM for one inference.
    pub fn bytes(&self, precision: Precision) -> f64 {
        2.0 * (self.input_size * self.input_size * self.channels) as f64 * precision.bytes()
    }
}

/// A fully connected layer. The paper excludes these from its pipelines but
/// the descriptor is provided for completeness of the network models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FcLayer {
    /// Input features.
    pub inputs: usize,
    /// Output features.
    pub outputs: usize,
}

impl FcLayer {
    /// Multiply-accumulate operations for one inference.
    pub fn macs(&self) -> f64 {
        (self.inputs * self.outputs) as f64
    }
}

/// Any layer of a CNN.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Layer {
    /// Convolution (optionally with merged pooling).
    Conv(ConvLayer),
    /// Stand-alone pooling.
    Pool(PoolLayer),
    /// Local response normalization.
    Norm(NormLayer),
    /// Fully connected.
    Fc(FcLayer),
}

impl Layer {
    /// Returns `true` for layers the paper maps to pipeline kernels
    /// (everything except fully connected layers).
    pub fn is_pipeline_kernel(&self) -> bool {
        !matches!(self, Layer::Fc(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alexnet_conv1() -> ConvLayer {
        ConvLayer {
            input_size: 227,
            input_channels: 3,
            output_channels: 96,
            kernel_size: 11,
            stride: 4,
            padding: 0,
            merged_pool: 1,
        }
    }

    #[test]
    fn conv_geometry_matches_alexnet() {
        let conv1 = alexnet_conv1();
        assert_eq!(conv1.output_size(), 55);
        // ~105 MMACs for AlexNet conv1.
        assert!((conv1.macs() - 105_415_200.0).abs() < 1.0);
        assert_eq!(conv1.pooled_output_size(), 55);
    }

    #[test]
    fn conv_bytes_scale_with_precision() {
        let conv1 = alexnet_conv1();
        let w32 = conv1.weight_bytes(Precision::Float32);
        let w16 = conv1.weight_bytes(Precision::Fixed16);
        assert!((w32 / w16 - 2.0).abs() < 1e-12);
        assert!(conv1.feature_map_bytes(Precision::Fixed16) > 0.0);
    }

    #[test]
    fn pool_and_norm_metrics() {
        let pool = PoolLayer {
            input_size: 55,
            channels: 96,
            window: 3,
            stride: 2,
        };
        assert_eq!(pool.output_size(), 27);
        assert!(pool.ops() > 0.0);
        assert!(pool.bytes(Precision::Float32) > pool.bytes(Precision::Fixed16));

        let norm = NormLayer {
            input_size: 27,
            channels: 96,
            window: 5,
        };
        assert!(norm.ops() > 0.0);
        assert!(norm.bytes(Precision::Fixed16) > 0.0);
    }

    #[test]
    fn precision_properties() {
        assert_eq!(Precision::Float32.bytes(), 4.0);
        assert_eq!(Precision::Fixed16.bytes(), 2.0);
        assert!(Precision::Float32.dsp_per_mac() > Precision::Fixed16.dsp_per_mac());
        assert_eq!(Precision::Float32.to_string(), "fp32");
        assert_eq!(Precision::Fixed16.to_string(), "fx16");
    }

    #[test]
    fn pipeline_kernel_classification() {
        assert!(Layer::Conv(alexnet_conv1()).is_pipeline_kernel());
        assert!(!Layer::Fc(FcLayer {
            inputs: 9216,
            outputs: 4096
        })
        .is_pipeline_kernel());
    }
}
