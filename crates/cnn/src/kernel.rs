//! Kernel characterization data consumed by the allocation algorithms.

use serde::{Deserialize, Serialize};

use mfa_platform::ResourceVec;

/// Per-compute-unit characterization of one pipeline kernel: exactly the
/// constants the paper's optimization model needs (`WCET_k`, `R_k`, `B_k`).
///
/// Resource and bandwidth figures are *fractions of one FPGA* (the paper's
/// percentage columns divided by 100).
///
/// # Example
///
/// ```
/// use mfa_cnn::KernelCharacterization;
/// use mfa_platform::ResourceVec;
///
/// let conv1 = KernelCharacterization::new(
///     "CONV1",
///     5.16,
///     ResourceVec::bram_dsp(0.1059, 0.0431),
///     0.018,
/// );
/// assert_eq!(conv1.name(), "CONV1");
/// assert!((conv1.wcet_ms() - 5.16).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelCharacterization {
    name: String,
    wcet_ms: f64,
    resources: ResourceVec,
    bandwidth: f64,
}

impl KernelCharacterization {
    /// Creates a characterization record.
    ///
    /// # Panics
    ///
    /// Panics if `wcet_ms` is not strictly positive, if any resource fraction
    /// is invalid, or if the bandwidth fraction is negative.
    pub fn new(
        name: impl Into<String>,
        wcet_ms: f64,
        resources: ResourceVec,
        bandwidth: f64,
    ) -> Self {
        assert!(
            wcet_ms.is_finite() && wcet_ms > 0.0,
            "kernel WCET must be positive"
        );
        assert!(resources.is_valid(), "kernel resources must be valid");
        assert!(
            bandwidth.is_finite() && bandwidth >= 0.0,
            "kernel bandwidth must be nonnegative"
        );
        KernelCharacterization {
            name: name.into(),
            wcet_ms,
            resources,
            bandwidth,
        }
    }

    /// Kernel name (e.g. `"CONV3"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Worst-case execution time of one CU in milliseconds (`WCET_k`).
    pub fn wcet_ms(&self) -> f64 {
        self.wcet_ms
    }

    /// FPGA resources used by one CU, as fractions of one FPGA (`R_k`).
    pub fn resources(&self) -> &ResourceVec {
        &self.resources
    }

    /// DRAM bandwidth used by one CU, as a fraction of one FPGA's bandwidth
    /// (`B_k`).
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }
}

/// A complete multi-kernel application: a named, ordered, linear pipeline of
/// characterized kernels (e.g. "AlexNet 16-bit" with its eight kernels).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    name: String,
    kernels: Vec<KernelCharacterization>,
}

impl Application {
    /// Creates an application from its kernel pipeline (in pipeline order).
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty.
    pub fn new(name: impl Into<String>, kernels: Vec<KernelCharacterization>) -> Self {
        assert!(
            !kernels.is_empty(),
            "an application needs at least one kernel"
        );
        Application {
            name: name.into(),
            kernels,
        }
    }

    /// Application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The kernels, in pipeline order.
    pub fn kernels(&self) -> &[KernelCharacterization] {
        &self.kernels
    }

    /// Number of kernels.
    pub fn num_kernels(&self) -> usize {
        self.kernels.len()
    }

    /// Sum of single-CU WCETs (the latency of a fully serialized pipeline with
    /// one CU per kernel), in milliseconds.
    pub fn total_wcet_ms(&self) -> f64 {
        self.kernels
            .iter()
            .map(KernelCharacterization::wcet_ms)
            .sum()
    }

    /// Sum of single-CU resource fractions across all kernels (the paper's
    /// "SUM" row).
    pub fn total_resources(&self) -> ResourceVec {
        self.kernels.iter().map(|k| *k.resources()).sum()
    }

    /// Sum of single-CU bandwidth fractions across all kernels.
    pub fn total_bandwidth(&self) -> f64 {
        self.kernels
            .iter()
            .map(KernelCharacterization::bandwidth)
            .sum()
    }

    /// The kernel with the largest single-CU WCET (the pipeline bottleneck
    /// before any replication).
    pub fn bottleneck(&self) -> &KernelCharacterization {
        self.kernels
            .iter()
            .max_by(|a, b| a.wcet_ms().total_cmp(&b.wcet_ms()))
            .expect("applications are never empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(name: &str, wcet: f64, dsp: f64) -> KernelCharacterization {
        KernelCharacterization::new(name, wcet, ResourceVec::bram_dsp(0.05, dsp), 0.02)
    }

    #[test]
    fn accessors_round_trip() {
        let k = kernel("CONV1", 13.0, 0.2124);
        assert_eq!(k.name(), "CONV1");
        assert_eq!(k.wcet_ms(), 13.0);
        assert_eq!(k.resources().dsp, 0.2124);
        assert_eq!(k.bandwidth(), 0.02);
    }

    #[test]
    #[should_panic(expected = "WCET")]
    fn zero_wcet_is_rejected() {
        let _ = kernel("bad", 0.0, 0.1);
    }

    #[test]
    fn application_aggregates() {
        let app = Application::new(
            "toy",
            vec![
                kernel("a", 3.0, 0.1),
                kernel("b", 7.0, 0.2),
                kernel("c", 5.0, 0.3),
            ],
        );
        assert_eq!(app.num_kernels(), 3);
        assert_eq!(app.total_wcet_ms(), 15.0);
        assert!((app.total_resources().dsp - 0.6).abs() < 1e-12);
        assert!((app.total_bandwidth() - 0.06).abs() < 1e-12);
        assert_eq!(app.bottleneck().name(), "b");
        assert_eq!(app.name(), "toy");
    }

    #[test]
    #[should_panic(expected = "at least one kernel")]
    fn empty_application_is_rejected() {
        let _ = Application::new("empty", vec![]);
    }
}
