//! Analytic HLS characterization of CNN layers.
//!
//! The paper obtains per-CU cost and performance figures by synthesizing each
//! kernel with Xilinx SDAccel and running it on an AWS F1 FPGA. That flow is
//! not available here, so this module provides an analytic estimator in the
//! style of roofline/accelerator-template models (e.g. Zhang et al.,
//! FPGA 2015, which the paper's kernel code follows): given a layer, a
//! numeric precision and a CU micro-architecture configuration it estimates
//!
//! * compute latency from the operation count and the CU's MACs/cycle,
//! * memory time from the bytes moved and the DRAM bandwidth share,
//! * DSP use from the unroll factor and the per-MAC DSP cost,
//! * BRAM use from the tile/line buffers and weight buffers,
//! * DRAM bandwidth from bytes moved per unit of execution time.
//!
//! The estimator is used by the end-to-end examples and by the
//! characterization benchmark to show the full flow; the reproduced
//! experiments themselves use the paper's measured tables
//! ([`crate::paper_data`]) so that the optimization inputs are identical to
//! the original study.

use mfa_platform::{FpgaDevice, ResourceVec};

use crate::kernel::KernelCharacterization;
use crate::layer::{ConvLayer, Layer, NormLayer, PoolLayer, Precision};

/// Micro-architecture configuration of one compute unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CuConfig {
    /// Parallel multiply-accumulate lanes (loop unroll factor).
    pub unroll: usize,
    /// Output-channel tile size kept on chip.
    pub tile_output_channels: usize,
    /// Feature-map row tile size kept on chip.
    pub tile_rows: usize,
    /// Kernel clock in MHz.
    pub clock_mhz: f64,
    /// Fraction of the peak DRAM bandwidth a single CU's burst engine can
    /// sustain (AXI port width / outstanding transactions limit).
    pub port_bandwidth_fraction: f64,
}

impl Default for CuConfig {
    fn default() -> Self {
        CuConfig {
            unroll: 64,
            tile_output_channels: 16,
            tile_rows: 8,
            clock_mhz: 250.0,
            port_bandwidth_fraction: 0.05,
        }
    }
}

impl CuConfig {
    /// A smaller CU (fewer lanes, smaller tiles), useful to trade resources
    /// for more replication.
    pub fn compact() -> Self {
        CuConfig {
            unroll: 32,
            tile_output_channels: 8,
            tile_rows: 4,
            ..CuConfig::default()
        }
    }
}

/// Estimates the characterization of a named layer.
///
/// Returns `None` for fully connected layers (excluded from the pipeline by
/// the paper's methodology).
pub fn characterize_layer(
    name: &str,
    layer: &Layer,
    precision: Precision,
    config: &CuConfig,
    device: &FpgaDevice,
) -> Option<KernelCharacterization> {
    match layer {
        Layer::Conv(conv) => Some(characterize_conv(name, conv, precision, config, device)),
        Layer::Pool(pool) => Some(characterize_pool(name, pool, precision, config, device)),
        Layer::Norm(norm) => Some(characterize_norm(name, norm, precision, config, device)),
        Layer::Fc(_) => None,
    }
}

/// Characterizes every pipeline layer of a network, in order.
pub fn characterize_network(
    network: &crate::CnnNetwork,
    precision: Precision,
    config: &CuConfig,
    device: &FpgaDevice,
) -> Vec<KernelCharacterization> {
    network
        .layers()
        .iter()
        .filter_map(|(name, layer)| characterize_layer(name, layer, precision, config, device))
        .collect()
}

fn bram_blocks_for_bytes(bytes: f64) -> f64 {
    // One BRAM36 block holds 4 KiB; buffers are double-buffered for
    // ping-pong overlap of compute and transfer.
    2.0 * (bytes / 4096.0).ceil()
}

fn characterize_conv(
    name: &str,
    conv: &ConvLayer,
    precision: Precision,
    config: &CuConfig,
    device: &FpgaDevice,
) -> KernelCharacterization {
    let macs = conv.macs();
    let cycles_compute = macs / config.unroll as f64;
    let compute_ms = cycles_compute / (config.clock_mhz * 1e3);

    let bytes = conv.weight_bytes(precision) + conv.feature_map_bytes(precision);
    let port_gbps = device.dram_bandwidth_gbps() * config.port_bandwidth_fraction;
    let memory_ms = bytes / (port_gbps * 1e6);

    // Compute and transfer overlap; the slower one dominates, the other adds
    // a modest ramp-up contribution.
    let wcet_ms = compute_ms.max(memory_ms) + 0.15 * compute_ms.min(memory_ms);

    // DSP: MAC lanes times per-MAC DSP cost, plus a small fixed control cost.
    let dsp = config.unroll as f64 * precision.dsp_per_mac() + 8.0;

    // BRAM: weight tile + input line buffer + output tile, double buffered.
    let weight_tile_bytes =
        (conv.kernel_size * conv.kernel_size * conv.input_channels * config.tile_output_channels)
            as f64
            * precision.bytes();
    let line_buffer_bytes =
        (conv.input_size * conv.input_channels * (conv.kernel_size + config.tile_rows)) as f64
            * precision.bytes();
    let out_tile_bytes = (conv.output_size() * config.tile_rows * config.tile_output_channels)
        as f64
        * precision.bytes();
    let bram = bram_blocks_for_bytes(weight_tile_bytes)
        + bram_blocks_for_bytes(line_buffer_bytes)
        + bram_blocks_for_bytes(out_tile_bytes);

    let usage = ResourceVec {
        lut: config.unroll as f64 * 320.0,
        ff: config.unroll as f64 * 480.0,
        bram,
        dsp,
    };
    let bandwidth = (bytes / (wcet_ms * 1e6)) / device.dram_bandwidth_gbps();
    KernelCharacterization::new(name, wcet_ms, device.utilization(&usage), bandwidth)
}

fn characterize_pool(
    name: &str,
    pool: &PoolLayer,
    precision: Precision,
    config: &CuConfig,
    device: &FpgaDevice,
) -> KernelCharacterization {
    // Pooling is memory bound: one comparison per element, wide vectorization.
    let bytes = pool.bytes(precision);
    let port_gbps = device.dram_bandwidth_gbps() * config.port_bandwidth_fraction;
    let memory_ms = bytes / (port_gbps * 1e6);
    let compute_ms = pool.ops() / 16.0 / (config.clock_mhz * 1e3);
    let wcet_ms = memory_ms.max(compute_ms);

    let line_buffer_bytes =
        (pool.input_size * pool.channels * pool.window) as f64 * precision.bytes();
    let usage = ResourceVec {
        lut: 6_000.0,
        ff: 8_000.0,
        bram: bram_blocks_for_bytes(line_buffer_bytes),
        dsp: 0.0,
    };
    let bandwidth = (bytes / (wcet_ms * 1e6)) / device.dram_bandwidth_gbps();
    KernelCharacterization::new(name, wcet_ms, device.utilization(&usage), bandwidth)
}

fn characterize_norm(
    name: &str,
    norm: &NormLayer,
    precision: Precision,
    config: &CuConfig,
    device: &FpgaDevice,
) -> KernelCharacterization {
    let bytes = norm.bytes(precision);
    let port_gbps = device.dram_bandwidth_gbps() * config.port_bandwidth_fraction;
    let memory_ms = bytes / (port_gbps * 1e6);
    let compute_ms = norm.ops() / 8.0 / (config.clock_mhz * 1e3);
    let wcet_ms = memory_ms.max(compute_ms);

    // LRN needs a channel window of the feature map on chip plus a small
    // divider/exponent pipeline (a handful of DSPs for fp32, almost none for
    // fixed point).
    let buffer_bytes = (norm.input_size * norm.input_size * norm.window) as f64 * precision.bytes();
    let dsp = match precision {
        Precision::Float32 => 144.0,
        Precision::Fixed16 => 4.0,
    };
    let usage = ResourceVec {
        lut: 9_000.0,
        ff: 12_000.0,
        bram: bram_blocks_for_bytes(buffer_bytes),
        dsp,
    };
    let bandwidth = (bytes / (wcet_ms * 1e6)) / device.dram_bandwidth_gbps();
    KernelCharacterization::new(name, wcet_ms, device.utilization(&usage), bandwidth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::CnnNetwork;
    use crate::paper_data;

    #[test]
    fn characterizes_all_alexnet_pipeline_layers() {
        let net = CnnNetwork::alexnet();
        let device = FpgaDevice::vu9p();
        let kernels = characterize_network(&net, Precision::Fixed16, &CuConfig::default(), &device);
        assert_eq!(kernels.len(), 8);
        for k in &kernels {
            assert!(k.wcet_ms() > 0.0, "{}", k.name());
            assert!(k.resources().max_component() < 1.0, "{}", k.name());
            assert!(k.bandwidth() > 0.0 && k.bandwidth() < 1.0, "{}", k.name());
        }
    }

    #[test]
    fn fully_connected_layers_are_skipped() {
        let device = FpgaDevice::vu9p();
        let fc = Layer::Fc(crate::FcLayer {
            inputs: 4096,
            outputs: 4096,
        });
        assert!(
            characterize_layer("FC", &fc, Precision::Fixed16, &CuConfig::default(), &device)
                .is_none()
        );
    }

    #[test]
    fn float_costs_more_dsp_than_fixed() {
        let net = CnnNetwork::alexnet();
        let device = FpgaDevice::vu9p();
        let config = CuConfig::default();
        let fx = characterize_network(&net, Precision::Fixed16, &config, &device);
        let fp = characterize_network(&net, Precision::Float32, &config, &device);
        for (a, b) in fx.iter().zip(fp.iter()) {
            assert!(
                b.resources().dsp >= a.resources().dsp,
                "{}: fp32 {} < fx16 {}",
                a.name(),
                b.resources().dsp,
                a.resources().dsp
            );
        }
    }

    #[test]
    fn estimates_are_in_the_same_regime_as_the_paper() {
        // The estimator is not expected to match Table 2 exactly (different
        // HLS code, device calibration), but the bottleneck structure should
        // be similar: convolution kernels dominate latency, pooling uses no
        // DSPs, every kernel is a single-digit-to-tens-of-ms affair.
        let net = CnnNetwork::alexnet();
        let device = FpgaDevice::vu9p();
        let kernels = characterize_network(&net, Precision::Fixed16, &CuConfig::default(), &device);
        let conv1 = kernels.iter().find(|k| k.name() == "CONV1").unwrap();
        let pool1 = kernels.iter().find(|k| k.name() == "POOL1").unwrap();
        assert!(conv1.wcet_ms() > pool1.wcet_ms());
        assert!((0.1..100.0).contains(&conv1.wcet_ms()));
        assert_eq!(pool1.resources().dsp, 0.0);
        // The paper's measured bottleneck for Alex-16 is CONV3/CONV1-class
        // kernels; ours must also be a convolution.
        let bottleneck = kernels
            .iter()
            .max_by(|a, b| a.wcet_ms().total_cmp(&b.wcet_ms()))
            .unwrap();
        assert!(bottleneck.name().starts_with("CONV"));
    }

    #[test]
    fn smaller_cu_uses_fewer_resources() {
        let net = CnnNetwork::vgg16();
        let device = FpgaDevice::vu9p();
        let big = characterize_network(&net, Precision::Fixed16, &CuConfig::default(), &device);
        let small = characterize_network(&net, Precision::Fixed16, &CuConfig::compact(), &device);
        let big_dsp: f64 = big.iter().map(|k| k.resources().dsp).sum();
        let small_dsp: f64 = small.iter().map(|k| k.resources().dsp).sum();
        assert!(small_dsp < big_dsp);
        // And is correspondingly slower on the compute-bound kernels.
        let big_conv2 = big.iter().find(|k| k.name() == "CONV2").unwrap();
        let small_conv2 = small.iter().find(|k| k.name() == "CONV2").unwrap();
        assert!(small_conv2.wcet_ms() >= big_conv2.wcet_ms());
    }

    #[test]
    fn estimator_and_paper_tables_describe_the_same_kernels() {
        // Kernel naming lines up with the embedded paper tables so either
        // source can feed the allocator interchangeably.
        let net = CnnNetwork::alexnet();
        let device = FpgaDevice::vu9p();
        let estimated =
            characterize_network(&net, Precision::Fixed16, &CuConfig::default(), &device);
        let measured = paper_data::alexnet_16bit();
        let estimated_names: Vec<&str> = estimated.iter().map(|k| k.name()).collect();
        let measured_names: Vec<&str> = measured.kernels().iter().map(|k| k.name()).collect();
        assert_eq!(estimated_names, measured_names);
    }
}
