//! CNN network descriptions, kernel characterization and the paper's measured
//! datasets.
//!
//! The reproduced paper drives its allocation experiments with two
//! convolutional neural networks — AlexNet (32-bit float and 16-bit fixed
//! point) and VGG16 (16-bit fixed point) — whose layers were implemented as
//! HLS kernels and characterized on an AWS F1 FPGA: per compute unit (CU),
//! the worst-case execution time `WCET`, BRAM and DSP utilization, and DRAM
//! bandwidth (paper Tables 2 and 3).
//!
//! We cannot run Xilinx SDAccel on AWS F1 here, so this crate substitutes
//! that flow with three pieces (see `DESIGN.md`):
//!
//! * [`network`] — layer-accurate descriptions of AlexNet and VGG16,
//! * [`characterize`] — an analytic HLS cost/latency estimator that turns a
//!   layer plus a CU configuration into a [`KernelCharacterization`]
//!   (the same *kind* of numbers the paper measured),
//! * [`paper_data`] — the paper's own measured Tables 2–3, embedded verbatim,
//!   which are the primary inputs to every reproduced experiment so that the
//!   optimization stage sees exactly the constants the authors used.
//!
//! # Example
//!
//! ```
//! use mfa_cnn::paper_data;
//!
//! let alex16 = paper_data::alexnet_16bit();
//! assert_eq!(alex16.kernels().len(), 8);
//! let total_dsp: f64 = alex16.kernels().iter().map(|k| k.resources().dsp).sum();
//! // Table 2 reports 32.82 % total DSP for Alex-16.
//! assert!((total_dsp - 0.3282).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characterize;
mod kernel;
mod layer;
pub mod network;
pub mod paper_data;

pub use kernel::{Application, KernelCharacterization};
pub use layer::{ConvLayer, FcLayer, Layer, NormLayer, PoolLayer, Precision};
pub use network::CnnNetwork;
