//! The paper's measured kernel characterizations (Tables 2 and 3), embedded
//! verbatim.
//!
//! These are the primary inputs to every reproduced experiment: they are the
//! per-CU constants (`WCET_k`, BRAM %, DSP %, BW %) measured by the authors on
//! an AWS F1 FPGA, so using them makes the optimization stage see exactly the
//! numbers the paper's own optimizer saw. Percentages are converted to
//! fractions.

use mfa_platform::ResourceVec;

use crate::{Application, KernelCharacterization};

fn kernel(
    name: &str,
    bram_pct: f64,
    dsp_pct: f64,
    bw_pct: f64,
    wcet_ms: f64,
) -> KernelCharacterization {
    KernelCharacterization::new(
        name,
        wcet_ms,
        ResourceVec::bram_dsp(bram_pct / 100.0, dsp_pct / 100.0),
        bw_pct / 100.0,
    )
}

/// AlexNet, 32-bit floating point ("Alex-32", paper Table 2, left half).
pub fn alexnet_32bit() -> Application {
    Application::new(
        "Alex-32",
        vec![
            kernel("CONV1", 13.07, 21.24, 1.3, 13.0),
            kernel("POOL1", 2.84, 0.0, 7.03, 1.78),
            kernel("NORM1", 6.10, 2.11, 5.7, 0.839),
            kernel("CONV2", 8.73, 37.59, 2.4, 7.19),
            kernel("NORM2", 7.75, 2.11, 3.7, 0.807),
            kernel("CONV3", 5.22, 28.13, 5.0, 7.78),
            kernel("CONV4", 2.13, 37.50, 3.7, 9.08),
            kernel("CONV5", 8.73, 37.50, 4.2, 4.84),
        ],
    )
}

/// AlexNet, 16-bit fixed point ("Alex-16", paper Table 2, right half).
pub fn alexnet_16bit() -> Application {
    Application::new(
        "Alex-16",
        vec![
            kernel("CONV1", 10.59, 4.31, 1.8, 5.16),
            kernel("POOL1", 0.05, 0.0, 3.5, 1.78),
            kernel("NORM1", 2.53, 0.06, 3.1, 0.78),
            kernel("CONV2", 4.39, 7.63, 2.1, 4.11),
            kernel("NORM2", 6.66, 0.06, 2.2, 0.67),
            kernel("CONV3", 2.63, 5.66, 2.9, 6.7),
            kernel("CONV4", 1.91, 7.55, 3.2, 5.06),
            kernel("CONV5", 4.39, 7.55, 3.1, 3.29),
        ],
    )
}

/// VGG16, 16-bit fixed point ("VGG", paper Table 3).
///
/// Rows reported for a group of identical layers (CONV6,7 — CONV9,10 —
/// CONV11,12,13) are expanded into one kernel per layer, matching the 17
/// kernels shown in the paper's Fig. 6.
pub fn vgg_16bit() -> Application {
    let conv6 = |name: &str| kernel(name, 8.32, 15.05, 2.3, 32.9);
    let conv9 = |name: &str| kernel(name, 2.12, 15.02, 2.5, 37.7);
    let conv11 = |name: &str| kernel(name, 2.12, 14.99, 2.6, 20.3);
    Application::new(
        "VGG",
        vec![
            kernel("CONV1", 3.67, 2.95, 2.0, 28.8),
            kernel("CONV2", 9.97, 15.14, 2.1, 67.8),
            kernel("POOL2", 11.62, 0.03, 5.2, 13.3),
            kernel("CONV3", 9.97, 15.14, 2.3, 22.7),
            kernel("CONV4", 9.97, 15.14, 2.4, 32.1),
            kernel("POOL4", 2.94, 0.03, 5.1, 6.9),
            kernel("CONV5", 8.32, 15.07, 2.0, 22.8),
            conv6("CONV6"),
            conv6("CONV7"),
            kernel("POOL7", 1.50, 0.03, 5.0, 3.5),
            kernel("CONV8", 2.12, 15.02, 2.1, 24.5),
            conv9("CONV9"),
            conv9("CONV10"),
            kernel("POOL10", 0.05, 0.01, 4.0, 2.1),
            conv11("CONV11"),
            conv11("CONV12"),
            conv11("CONV13"),
        ],
    )
}

/// All three applications used in the paper's evaluation, in the order they
/// appear there.
pub fn all_applications() -> Vec<Application> {
    vec![alexnet_32bit(), alexnet_16bit(), vgg_16bit()]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The "SUM" rows of Tables 2 and 3 act as checksums on the transcription.
    #[test]
    fn alex32_sums_match_table2() {
        let app = alexnet_32bit();
        assert_eq!(app.num_kernels(), 8);
        let totals = app.total_resources();
        assert!(
            (totals.bram - 0.5457).abs() < 1e-4,
            "BRAM sum {}",
            totals.bram
        );
        assert!((totals.dsp - 1.6618).abs() < 1e-4, "DSP sum {}", totals.dsp);
        assert!((app.total_bandwidth() - 0.331).abs() < 2e-3);
        assert!((app.total_wcet_ms() - 45.32).abs() < 0.01);
    }

    #[test]
    fn alex16_sums_match_table2() {
        let app = alexnet_16bit();
        assert_eq!(app.num_kernels(), 8);
        let totals = app.total_resources();
        assert!((totals.bram - 0.3315).abs() < 1e-4);
        assert!((totals.dsp - 0.3282).abs() < 1e-4);
        assert!((app.total_bandwidth() - 0.219).abs() < 1e-3);
        assert!((app.total_wcet_ms() - 27.55).abs() < 0.01);
    }

    #[test]
    fn vgg_sums_match_table3() {
        let app = vgg_16bit();
        assert_eq!(app.num_kernels(), 17);
        let totals = app.total_resources();
        // Table 3's SUM row counts each grouped row once; the expanded totals
        // are therefore larger. Check the per-row values via spot checks and
        // the grouped sum via reconstruction.
        let grouped_bram: f64 = [
            3.67, 9.97, 11.62, 9.97, 9.97, 2.94, 8.32, 8.32, 1.50, 2.12, 2.12, 0.05, 2.12,
        ]
        .iter()
        .sum();
        assert!((grouped_bram - 72.69).abs() < 0.01);
        assert!(totals.bram > grouped_bram / 100.0);
        // Bottleneck kernel is CONV2 at 67.8 ms.
        assert_eq!(app.bottleneck().name(), "CONV2");
        assert!((app.bottleneck().wcet_ms() - 67.8).abs() < 1e-9);
        // Total single-CU latency ≈ 0.4 s as reported (426.6 ms with grouped
        // rows expanded per layer).
        assert!((app.total_wcet_ms() - 426.6).abs() < 1.0);
    }

    #[test]
    fn grouped_vgg_rows_are_expanded_identically() {
        let app = vgg_16bit();
        let get = |name: &str| {
            app.kernels()
                .iter()
                .find(|k| k.name() == name)
                .unwrap_or_else(|| panic!("kernel {name} missing"))
        };
        assert_eq!(get("CONV6").resources(), get("CONV7").resources());
        assert_eq!(get("CONV9").wcet_ms(), get("CONV10").wcet_ms());
        assert_eq!(get("CONV11").bandwidth(), get("CONV13").bandwidth());
    }

    #[test]
    fn all_applications_returns_the_three_paper_cases() {
        let apps = all_applications();
        let names: Vec<&str> = apps.iter().map(Application::name).collect();
        assert_eq!(names, vec!["Alex-32", "Alex-16", "VGG"]);
    }

    /// Every kernel must fit on one FPGA on its own (otherwise the model's
    /// "at least one CU per kernel" constraint could never be satisfied).
    #[test]
    fn every_kernel_fits_a_single_fpga() {
        for app in all_applications() {
            for k in app.kernels() {
                assert!(
                    k.resources().max_component() < 1.0,
                    "{} too large",
                    k.name()
                );
                assert!(k.bandwidth() < 1.0);
            }
        }
    }
}
