//! Layer-accurate CNN network descriptions.

use serde::{Deserialize, Serialize};

use crate::layer::{ConvLayer, FcLayer, Layer, NormLayer, PoolLayer};

/// A named CNN: an ordered list of layers.
///
/// # Example
///
/// ```
/// use mfa_cnn::CnnNetwork;
///
/// let vgg = CnnNetwork::vgg16();
/// assert_eq!(vgg.name(), "VGG16");
/// assert!(vgg.num_pipeline_kernels() >= 17);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CnnNetwork {
    name: String,
    layers: Vec<(String, Layer)>,
}

impl CnnNetwork {
    /// Creates a network from named layers, in execution order.
    pub fn new(name: impl Into<String>, layers: Vec<(String, Layer)>) -> Self {
        CnnNetwork {
            name: name.into(),
            layers,
        }
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All layers with their names, in execution order.
    pub fn layers(&self) -> &[(String, Layer)] {
        &self.layers
    }

    /// Layers that become pipeline kernels (everything except the fully
    /// connected classifier head, which the paper excludes).
    pub fn pipeline_layers(&self) -> impl Iterator<Item = &(String, Layer)> {
        self.layers.iter().filter(|(_, l)| l.is_pipeline_kernel())
    }

    /// Number of pipeline kernels.
    pub fn num_pipeline_kernels(&self) -> usize {
        self.pipeline_layers().count()
    }

    /// Total multiply-accumulate count of the convolutional part.
    pub fn conv_macs(&self) -> f64 {
        self.layers
            .iter()
            .map(|(_, l)| match l {
                Layer::Conv(c) => c.macs(),
                _ => 0.0,
            })
            .sum()
    }

    /// AlexNet (Krizhevsky et al., 2012) with the paper's kernel granularity:
    /// the pooling layers after CONV2 and CONV5 are merged into their
    /// preceding convolution (`merged_pool = 2` … actually window 3 stride 2,
    /// modeled as a stride-2 decimation), while POOL1 stays a separate kernel,
    /// matching the eight kernels of Table 2 (fully connected layers are kept
    /// in the description but excluded from the pipeline).
    pub fn alexnet() -> Self {
        let conv = |input_size,
                    input_channels,
                    output_channels,
                    kernel_size,
                    stride,
                    padding,
                    merged_pool| {
            Layer::Conv(ConvLayer {
                input_size,
                input_channels,
                output_channels,
                kernel_size,
                stride,
                padding,
                merged_pool,
            })
        };
        CnnNetwork::new(
            "AlexNet",
            vec![
                ("CONV1".into(), conv(227, 3, 96, 11, 4, 0, 1)),
                (
                    "POOL1".into(),
                    Layer::Pool(PoolLayer {
                        input_size: 55,
                        channels: 96,
                        window: 3,
                        stride: 2,
                    }),
                ),
                (
                    "NORM1".into(),
                    Layer::Norm(NormLayer {
                        input_size: 27,
                        channels: 96,
                        window: 5,
                    }),
                ),
                // CONV2's trailing max-pool is merged into the kernel.
                ("CONV2".into(), conv(27, 96, 256, 5, 1, 2, 2)),
                (
                    "NORM2".into(),
                    Layer::Norm(NormLayer {
                        input_size: 13,
                        channels: 256,
                        window: 5,
                    }),
                ),
                ("CONV3".into(), conv(13, 256, 384, 3, 1, 1, 1)),
                ("CONV4".into(), conv(13, 384, 384, 3, 1, 1, 1)),
                // CONV5's trailing max-pool is merged into the kernel.
                ("CONV5".into(), conv(13, 384, 256, 3, 1, 1, 2)),
                (
                    "FC6".into(),
                    Layer::Fc(FcLayer {
                        inputs: 9216,
                        outputs: 4096,
                    }),
                ),
                (
                    "FC7".into(),
                    Layer::Fc(FcLayer {
                        inputs: 4096,
                        outputs: 4096,
                    }),
                ),
                (
                    "FC8".into(),
                    Layer::Fc(FcLayer {
                        inputs: 4096,
                        outputs: 1000,
                    }),
                ),
            ],
        )
    }

    /// VGG16 (Simonyan & Zisserman, 2014) with the paper's kernel granularity:
    /// the max-pool after the last block (CONV13) is merged into the preceding
    /// convolution, leaving the 17 pipeline kernels of Table 3 / Fig. 6
    /// (POOL2, POOL4, POOL7 and POOL10 stay separate).
    pub fn vgg16() -> Self {
        let conv = |input_size, input_channels, output_channels, merged_pool| {
            Layer::Conv(ConvLayer {
                input_size,
                input_channels,
                output_channels,
                kernel_size: 3,
                stride: 1,
                padding: 1,
                merged_pool,
            })
        };
        let pool = |input_size, channels| {
            Layer::Pool(PoolLayer {
                input_size,
                channels,
                window: 2,
                stride: 2,
            })
        };
        CnnNetwork::new(
            "VGG16",
            vec![
                ("CONV1".into(), conv(224, 3, 64, 1)),
                ("CONV2".into(), conv(224, 64, 64, 1)),
                ("POOL2".into(), pool(224, 64)),
                ("CONV3".into(), conv(112, 64, 128, 1)),
                ("CONV4".into(), conv(112, 128, 128, 1)),
                ("POOL4".into(), pool(112, 128)),
                ("CONV5".into(), conv(56, 128, 256, 1)),
                ("CONV6".into(), conv(56, 256, 256, 1)),
                ("CONV7".into(), conv(56, 256, 256, 1)),
                ("POOL7".into(), pool(56, 256)),
                ("CONV8".into(), conv(28, 256, 512, 1)),
                ("CONV9".into(), conv(28, 512, 512, 1)),
                ("CONV10".into(), conv(28, 512, 512, 1)),
                ("POOL10".into(), pool(28, 512)),
                ("CONV11".into(), conv(14, 512, 512, 1)),
                ("CONV12".into(), conv(14, 512, 512, 1)),
                // Block 5's trailing max-pool is merged into CONV13 (the paper
                // lists no POOL13 kernel).
                ("CONV13".into(), conv(14, 512, 512, 2)),
                (
                    "FC14".into(),
                    Layer::Fc(FcLayer {
                        inputs: 25088,
                        outputs: 4096,
                    }),
                ),
                (
                    "FC15".into(),
                    Layer::Fc(FcLayer {
                        inputs: 4096,
                        outputs: 4096,
                    }),
                ),
                (
                    "FC16".into(),
                    Layer::Fc(FcLayer {
                        inputs: 4096,
                        outputs: 1000,
                    }),
                ),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_structure() {
        let net = CnnNetwork::alexnet();
        assert_eq!(net.name(), "AlexNet");
        // Eight pipeline kernels as in Table 2, plus three FC layers.
        assert_eq!(net.num_pipeline_kernels(), 8);
        assert_eq!(net.layers().len(), 11);
        // AlexNet's convolutional MAC count is ≈ 1.08 GMACs when the original
        // two-group convolutions are modeled as dense (single-group) layers.
        let gmacs = net.conv_macs() / 1e9;
        assert!((1.0..1.2).contains(&gmacs), "GMACs = {gmacs}");
    }

    #[test]
    fn vgg16_structure() {
        let net = CnnNetwork::vgg16();
        assert_eq!(net.num_pipeline_kernels(), 17);
        // VGG16's convolutional MAC count is ≈ 15.3 GMACs; merging one pool
        // into CONV7 does not change MACs.
        let gmacs = net.conv_macs() / 1e9;
        assert!((14.0..16.5).contains(&gmacs), "GMACs = {gmacs}");
    }

    #[test]
    fn pipeline_layers_exclude_fc() {
        let net = CnnNetwork::vgg16();
        assert!(net
            .pipeline_layers()
            .all(|(name, _)| !name.starts_with("FC")));
    }
}
