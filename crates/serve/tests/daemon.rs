//! End-to-end tests of the allocation daemon over real TCP sessions:
//! graceful degradation, cross-request warm starts, and bounded admission.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use mfa_alloc::cases::PaperCase;
use mfa_alloc::AllocationProblem;
use mfa_serve::{
    BackendKind, FromServe, ServeClient, ServeHandle, ServeOptions, SolveReply, ToServe,
    PROTOCOL_VERSION,
};

fn alex16(constraint: f64) -> AllocationProblem {
    PaperCase::Alex16OnTwoFpgas.problem(constraint).unwrap()
}

fn spawn(options: ServeOptions) -> (ServeHandle, String) {
    let handle = ServeHandle::spawn("127.0.0.1:0", options).unwrap();
    let addr = handle.local_addr().to_string();
    (handle, addr)
}

#[test]
fn near_exhausted_deadlines_degrade_to_greedy_with_provenance() {
    let (handle, addr) = spawn(ServeOptions {
        workers: 1,
        ..ServeOptions::default()
    });
    let mut client = ServeClient::connect(&addr).unwrap();
    // A zero-second budget is exhausted on arrival: a direct solve would die
    // to DeadlineExceeded, but the daemon must downgrade to the greedy
    // backend and still return a real allocation — with the substitution
    // recorded, not silently passed off as GP+A output.
    let reply = client
        .solve(&alex16(0.70), BackendKind::Gpa, Some(0.0), true)
        .unwrap();
    let outcome = match reply {
        SolveReply::Report(outcome) => outcome,
        other => panic!("expected a degraded report, got {other:?}"),
    };
    assert_eq!(outcome.backend, "Greedy");
    assert_eq!(outcome.degraded_from.as_deref(), Some("GP+A"));
    assert!(outcome.ii_ms.is_finite() && outcome.ii_ms > 0.0);
    assert!(!outcome.cu_counts.is_empty());
    let stats = handle.stats();
    assert_eq!(stats.served, 1);
    assert_eq!(stats.degraded, 1);
    handle.stop();
}

#[test]
fn exhausted_deadlines_yield_a_result_on_every_backend() {
    let (handle, addr) = spawn(ServeOptions {
        workers: 1,
        ..ServeOptions::default()
    });
    let mut client = ServeClient::connect(&addr).unwrap();
    for kind in BackendKind::ALL {
        let reply = client
            .solve(&alex16(0.70), kind, Some(0.0), false)
            .unwrap_or_else(|err| panic!("backend {kind:?} errored: {err}"));
        let outcome = match reply {
            SolveReply::Report(outcome) => outcome,
            other => panic!("backend {kind:?}: expected a report, got {other:?}"),
        };
        // Every starved request lands on the greedy fallback: backends other
        // than greedy record the downgrade, greedy itself just runs with the
        // doomed deadline dropped.
        assert_eq!(outcome.backend, "Greedy", "backend {kind:?}");
        if kind == BackendKind::Greedy {
            assert_eq!(outcome.degraded_from, None);
        } else {
            assert!(outcome.degraded_from.is_some(), "backend {kind:?}");
        }
    }
    assert_eq!(handle.stats().served, 4);
    handle.stop();
}

#[test]
fn repeated_requests_hit_the_fingerprint_cache_and_cut_barrier_effort() {
    let (handle, addr) = spawn(ServeOptions {
        workers: 1,
        ..ServeOptions::default()
    });
    let mut client = ServeClient::connect(&addr).unwrap();
    let problem = alex16(0.70);
    let solve = |client: &mut ServeClient| match client
        .solve(&problem, BackendKind::Gpa, None, true)
        .unwrap()
    {
        SolveReply::Report(outcome) => outcome,
        other => panic!("expected a report, got {other:?}"),
    };
    let cold = solve(&mut client);
    assert!(!cold.cache_hit);
    assert!(
        cold.barrier_iterations > 0,
        "GP relaxation must run barriers"
    );
    let warm = solve(&mut client);
    // The identical request maps to the same family fingerprint and budget,
    // so the second solve re-enters the barrier path from the first solve's
    // dual endpoint: strictly fewer iterations than its cold twin.
    assert_eq!(warm.fingerprint, cold.fingerprint);
    assert!(warm.cache_hit);
    assert!(
        warm.barrier_iterations < cold.barrier_iterations,
        "warm {} vs cold {}",
        warm.barrier_iterations,
        cold.barrier_iterations
    );
    // Same answer either way: warm starts accelerate, never change results.
    assert!((warm.ii_ms - cold.ii_ms).abs() < 1e-9);
    handle.stop();
}

#[test]
fn a_full_queue_rejects_with_typed_backpressure() {
    // Zero workers: admitted requests stay queued forever, so the queue
    // state under test is deterministic.
    let (handle, addr) = spawn(ServeOptions {
        workers: 0,
        queue_capacity: 1,
        ..ServeOptions::default()
    });
    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let send = |frame: &ToServe| {
        let mut line = frame.encode().unwrap();
        line.push('\n');
        (&stream).write_all(line.as_bytes()).unwrap();
    };
    let mut read = || {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        FromServe::decode(line.trim_end()).unwrap()
    };
    send(&ToServe::Hello {
        protocol: PROTOCOL_VERSION,
    });
    assert_eq!(
        read(),
        FromServe::Ready {
            protocol: PROTOCOL_VERSION
        }
    );
    let solve = |id: usize| ToServe::Solve {
        id,
        problem: alex16(0.70),
        backend: BackendKind::Greedy,
        deadline_seconds: None,
        warm: false,
    };
    // First request fills the queue (capacity 1, nobody draining)…
    send(&solve(1));
    // …second must bounce with the observed depth and the capacity.
    send(&solve(2));
    assert_eq!(
        read(),
        FromServe::Rejected {
            id: 2,
            queue_depth: 1,
            capacity: 1,
        }
    );
    assert_eq!(handle.stats().rejected, 1);
    drop(stream);
    handle.stop();
}

#[test]
fn malformed_deadlines_are_request_errors_not_panics() {
    let (handle, addr) = spawn(ServeOptions {
        workers: 1,
        ..ServeOptions::default()
    });
    let mut client = ServeClient::connect(&addr).unwrap();
    // NaN/infinite deadlines never encode (the wire codec rejects them), so
    // the hostile case reaching the daemon is a finite-but-huge budget that
    // would overflow Duration/Instant arithmetic.
    let err = client
        .solve(&alex16(0.70), BackendKind::Greedy, Some(1e19), false)
        .unwrap_err();
    assert!(err.to_string().contains("overflows"), "{err}");
    // The session stays usable after a request-level error reply? No — the
    // daemon answers `error` frames and this client surfaces them as
    // ServeError::Server; the connection itself is still open.
    let reply = client
        .solve(&alex16(0.70), BackendKind::Greedy, Some(5.0), false)
        .unwrap();
    assert!(matches!(reply, SolveReply::Report(_)));
    handle.stop();
}

#[test]
fn infeasible_points_are_skipped_not_errors() {
    let (handle, addr) = spawn(ServeOptions {
        workers: 1,
        ..ServeOptions::default()
    });
    let mut client = ServeClient::connect(&addr).unwrap();
    // A 1% uniform constraint cannot even place one CU per kernel: the
    // daemon's lenient policy answers `skipped` with the solver's reason.
    let reply = client
        .solve(&alex16(0.01), BackendKind::Gpa, None, true)
        .unwrap();
    match reply {
        SolveReply::Skipped { reason } => {
            assert!(!reason.is_empty());
        }
        other => panic!("expected skipped, got {other:?}"),
    }
    assert_eq!(handle.stats().skipped, 1);
    handle.stop();
}

#[test]
fn a_shutdown_frame_stops_the_daemon() {
    let (handle, addr) = spawn(ServeOptions {
        workers: 1,
        ..ServeOptions::default()
    });
    let client = ServeClient::connect(&addr).unwrap();
    client.shutdown().unwrap();
    // The stop flag flips promptly; stop() then joins cleanly.
    for _ in 0..100 {
        if handle.is_stopped() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(handle.is_stopped());
    handle.stop();
}

#[test]
fn stalled_clients_are_timed_out_and_counted() {
    let (handle, addr) = spawn(ServeOptions {
        workers: 1,
        read_timeout: Some(Duration::from_millis(150)),
        ..ServeOptions::default()
    });
    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = ToServe::Hello {
        protocol: PROTOCOL_VERSION,
    }
    .encode()
    .unwrap();
    line.push('\n');
    (&stream).write_all(line.as_bytes()).unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert_eq!(
        FromServe::decode(reply.trim_end()).unwrap(),
        FromServe::Ready {
            protocol: PROTOCOL_VERSION
        }
    );
    // Half a frame, then silence: the daemon must reclaim the reader thread
    // instead of waiting forever, answering a typed timeout error first.
    (&stream).write_all(b"{\"type\":\"solve\",\"id\":").unwrap();
    reply.clear();
    reader.read_line(&mut reply).unwrap();
    match FromServe::decode(reply.trim_end()).unwrap() {
        FromServe::Error { message, .. } => {
            assert!(message.contains("timed out"), "{message}");
        }
        other => panic!("expected a timeout error frame, got {other:?}"),
    }
    // The dropped connection is counted, and the daemon still serves others.
    assert_eq!(handle.stats().read_timeouts, 1);
    let mut client = ServeClient::connect(&addr).unwrap();
    let reply = client
        .solve(&alex16(0.70), BackendKind::Greedy, None, false)
        .unwrap();
    assert!(matches!(reply, SolveReply::Report(_)));
    handle.stop();
}

#[test]
fn pending_replies_hold_off_the_read_timeout() {
    // Zero workers: the admitted request is never answered, standing in for
    // a queue-wait + solve that outlasts any number of timeout windows.
    let (handle, addr) = spawn(ServeOptions {
        workers: 0,
        read_timeout: Some(Duration::from_millis(100)),
        ..ServeOptions::default()
    });
    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let send = |frame: &ToServe| {
        let mut line = frame.encode().unwrap();
        line.push('\n');
        (&stream).write_all(line.as_bytes()).unwrap();
    };
    let mut read = || {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        FromServe::decode(line.trim_end()).unwrap()
    };
    send(&ToServe::Hello {
        protocol: PROTOCOL_VERSION,
    });
    assert_eq!(
        read(),
        FromServe::Ready {
            protocol: PROTOCOL_VERSION
        }
    );
    send(&ToServe::Solve {
        id: 1,
        problem: alex16(0.70),
        backend: BackendKind::Greedy,
        deadline_seconds: None,
        warm: false,
    });
    // The client now blocks on its own reply for several timeout windows.
    // The daemon must keep the connection: the reader is waiting on the
    // solve, not on a stalled client.
    std::thread::sleep(Duration::from_millis(400));
    // Proof of life: the same connection still answers frames, and no
    // timeout drop was counted.
    send(&ToServe::Stats { id: 2 });
    match read() {
        FromServe::Stats { id, .. } => assert_eq!(id, 2),
        other => panic!("expected a stats reply on the live connection, got {other:?}"),
    }
    assert_eq!(handle.stats().read_timeouts, 0);
    drop(stream);
    handle.stop();
}

#[test]
fn stats_frames_report_the_cache_hit_rate() {
    let (handle, addr) = spawn(ServeOptions {
        workers: 1,
        ..ServeOptions::default()
    });
    let mut client = ServeClient::connect(&addr).unwrap();
    let solve = |client: &mut ServeClient| match client
        .solve(&alex16(0.70), BackendKind::Gpa, None, true)
        .unwrap()
    {
        SolveReply::Report(outcome) => outcome,
        other => panic!("expected a report, got {other:?}"),
    };
    assert!(!solve(&mut client).cache_hit);
    assert!(solve(&mut client).cache_hit);
    let stats = client.stats().unwrap();
    assert_eq!(stats.served, 2);
    assert_eq!(stats.cache_families, 1);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);
    assert!((stats.hit_rate - 0.5).abs() < 1e-12, "{}", stats.hit_rate);
    assert_eq!(stats.read_timeouts, 0);
    // The in-process accessor answers the same payload.
    assert_eq!(handle.stats_report(), stats);
    handle.stop();
}

fn spill_temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mfa-serve-spill-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn gpa_outcome(client: &mut ServeClient, constraint: f64) -> mfa_serve::SolveOutcome {
    match client
        .solve(&alex16(constraint), BackendKind::Gpa, None, true)
        .unwrap()
    {
        SolveReply::Report(outcome) => outcome,
        other => panic!("expected a report, got {other:?}"),
    }
}

#[test]
fn a_restarted_daemon_warms_from_its_spill_directory() {
    let dir = spill_temp_dir("restart");
    let options = || ServeOptions {
        workers: 1,
        spill: Some(dir.display().to_string()),
        ..ServeOptions::default()
    };
    // First daemon lifetime: one cold solve, spilled on record.
    let (handle, addr) = spawn(options());
    let mut client = ServeClient::connect(&addr).unwrap();
    let cold = gpa_outcome(&mut client, 0.70);
    assert!(!cold.cache_hit);
    assert!(cold.barrier_iterations > 0);
    handle.stop();

    // Second lifetime, fresh process state, same spill dir: the repeated
    // request re-enters the barrier from the spilled dual endpoint — a
    // cache hit with strictly fewer iterations than the cold solve, not a
    // second cold start. (Barrier iterations are machine-independent effort,
    // so "strictly fewer" is a stable contract.)
    let (handle, addr) = spawn(options());
    let mut client = ServeClient::connect(&addr).unwrap();
    let warm = gpa_outcome(&mut client, 0.70);
    assert_eq!(warm.fingerprint, cold.fingerprint);
    assert!(warm.cache_hit, "restart-warm lookup must hit the spill");
    assert!(
        warm.barrier_iterations < cold.barrier_iterations,
        "warm {} vs cold {}",
        warm.barrier_iterations,
        cold.barrier_iterations
    );
    assert!((warm.ii_ms - cold.ii_ms).abs() < 1e-9);
    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn daemons_sharing_a_store_server_see_each_others_families() {
    let root = spill_temp_dir("shared");
    let store = mfa_storenet::StoreServer::spawn("127.0.0.1:0", root.clone()).unwrap();
    let spill = format!("tcp://{}", store.local_addr());
    let options = || ServeOptions {
        workers: 1,
        spill: Some(spill.clone()),
        ..ServeOptions::default()
    };
    let (first, first_addr) = spawn(options());
    let (second, second_addr) = spawn(options());

    // Daemon one pays the cold solve and spills it to the store-server…
    let mut client = ServeClient::connect(&first_addr).unwrap();
    let cold = gpa_outcome(&mut client, 0.70);
    assert!(!cold.cache_hit);

    // …so daemon two — which never saw this family — warms from it.
    let mut client = ServeClient::connect(&second_addr).unwrap();
    let warm = gpa_outcome(&mut client, 0.70);
    assert_eq!(warm.fingerprint, cold.fingerprint);
    assert!(
        warm.cache_hit,
        "the shared store must seed the second daemon"
    );
    assert!(
        warm.barrier_iterations < cold.barrier_iterations,
        "warm {} vs cold {}",
        warm.barrier_iterations,
        cold.barrier_iterations
    );
    assert!((warm.ii_ms - cold.ii_ms).abs() < 1e-9);

    first.stop();
    second.stop();
    store.stop();
    std::fs::remove_dir_all(&root).unwrap();
}
