//! `serve-client` — a one-shot CLI client of the allocation daemon.
//!
//! ```text
//! serve-client --connect ADDR [FLAGS]
//!   --connect ADDR       daemon address (as printed by `serve`)
//!   --case NAME          paper case: alex16 (default), alex32, vgg
//!   --constraint F       uniform resource constraint in (0, 1] (default 0.7)
//!   --backend NAME       gpa (default), gpa-fast, greedy, exact
//!   --deadline-ms F      wall-clock budget in milliseconds (default: none)
//!   --no-warm            opt this request out of the warm-start cache
//!   --stats              print the daemon's serving/cache counters instead
//!                        of solving
//!   --shutdown           send a shutdown frame instead of a solve request
//! ```

use std::process::ExitCode;

use mfa_alloc::cases::PaperCase;
use mfa_serve::{BackendKind, ServeClient, SolveReply};

struct Args {
    connect: String,
    case: PaperCase,
    constraint: f64,
    backend: BackendKind,
    deadline_ms: Option<f64>,
    warm: bool,
    stats: bool,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        connect: String::new(),
        case: PaperCase::Alex16OnTwoFpgas,
        constraint: 0.7,
        backend: BackendKind::Gpa,
        deadline_ms: None,
        warm: true,
        stats: false,
        shutdown: false,
    };
    let mut connect = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--connect" => connect = Some(iter.next().ok_or("--connect needs an address")?),
            "--case" => {
                args.case = match iter.next().ok_or("--case needs a name")?.as_str() {
                    "alex16" => PaperCase::Alex16OnTwoFpgas,
                    "alex32" => PaperCase::Alex32OnFourFpgas,
                    "vgg" => PaperCase::VggOnEightFpgas,
                    other => return Err(format!("unknown case '{other}'")),
                };
            }
            "--constraint" => {
                args.constraint = iter
                    .next()
                    .ok_or("--constraint needs a value")?
                    .parse()
                    .map_err(|_| "--constraint needs a number".to_owned())?;
            }
            "--backend" => {
                let name = iter.next().ok_or("--backend needs a name")?;
                args.backend = BackendKind::from_wire_label(&name)
                    .ok_or(format!("unknown backend '{name}'"))?;
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    iter.next()
                        .ok_or("--deadline-ms needs a value")?
                        .parse()
                        .map_err(|_| "--deadline-ms needs a number".to_owned())?,
                );
            }
            "--no-warm" => args.warm = false,
            "--stats" => args.stats = true,
            "--shutdown" => args.shutdown = true,
            other => {
                return Err(format!(
                    "unknown flag {other} (see the header of serve_client.rs)"
                ))
            }
        }
    }
    args.connect = connect.ok_or("--connect is required")?;
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("serve-client: {msg}");
            return ExitCode::from(2);
        }
    };
    let result = (|| -> Result<ExitCode, Box<dyn std::error::Error>> {
        let mut client = ServeClient::connect(&args.connect)?;
        if args.shutdown {
            client.shutdown()?;
            println!("shutdown sent");
            return Ok(ExitCode::SUCCESS);
        }
        if args.stats {
            let stats = client.stats()?;
            println!(
                "served={} degraded={} rejected={} skipped={} decode_errors={} \
                 read_timeouts={} cache_families={} cache_hits={} cache_misses={} \
                 cache_evictions={} hit_rate={:.3}",
                stats.served,
                stats.degraded,
                stats.rejected,
                stats.skipped,
                stats.decode_errors,
                stats.read_timeouts,
                stats.cache_families,
                stats.cache_hits,
                stats.cache_misses,
                stats.cache_evictions,
                stats.hit_rate,
            );
            return Ok(ExitCode::SUCCESS);
        }
        let problem = args.case.problem(args.constraint)?;
        let reply = client.solve(
            &problem,
            args.backend,
            args.deadline_ms.map(|ms| ms / 1e3),
            args.warm,
        )?;
        match reply {
            SolveReply::Report(outcome) => {
                let degraded = match &outcome.degraded_from {
                    Some(from) => format!(" (degraded from {from})"),
                    None => String::new(),
                };
                // Abbreviate the warm-family digest for the terminal; the full
                // 32-digit form stays on the wire for exact comparisons.
                let family = outcome
                    .fingerprint
                    .parse::<mfa_alloc::fingerprint::Fingerprint>()
                    .map(|fp| fp.short_hex())
                    .unwrap_or_else(|_| outcome.fingerprint.clone());
                println!(
                    "II = {:.4} ms  backend = {}{degraded}  warm = {}  cache_hit = {}  \
                     family = {family}  solve = {:.2} ms  queue = {:.2} ms",
                    outcome.ii_ms,
                    outcome.backend,
                    outcome.warm_start,
                    outcome.cache_hit,
                    outcome.solve_ms,
                    outcome.queue_ms,
                );
                Ok(ExitCode::SUCCESS)
            }
            SolveReply::Rejected {
                queue_depth,
                capacity,
            } => {
                println!("rejected: queue {queue_depth}/{capacity} full");
                Ok(ExitCode::FAILURE)
            }
            SolveReply::Skipped { reason } => {
                println!("skipped: {reason}");
                Ok(ExitCode::FAILURE)
            }
        }
    })();
    match result {
        Ok(code) => code,
        Err(err) => {
            eprintln!("serve-client: {err}");
            ExitCode::FAILURE
        }
    }
}
