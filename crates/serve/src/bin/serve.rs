//! `serve` — the allocation-as-a-service daemon.
//!
//! ```text
//! serve --listen ADDR [FLAGS]
//!   --listen ADDR        bind ADDR (e.g. 127.0.0.1:0), print the bound
//!                        address to stdout, then serve until a client sends
//!                        a shutdown frame
//!   --workers N          solver worker threads (default 2)
//!   --queue N            admission queue capacity (default 64)
//!   --batch N            requests a worker claims per queue pass (default 4)
//!   --degrade-margin-ms N  remaining-deadline threshold below which requests
//!                        degrade to the greedy backend (default 50)
//!   --no-warm-start      disable the fingerprint-keyed warm-start cache
//!   --read-timeout-ms N  drop connections producing no frame within N ms
//!                        (default 30000; 0 waits forever)
//!   --spill SPEC         persist the warm cache: a store directory path, or
//!                        tcp://host:port for a shared store-server
//! ```

use std::process::ExitCode;
use std::time::Duration;

use mfa_serve::{ServeHandle, ServeOptions};

struct Args {
    listen: String,
    options: ServeOptions,
}

fn parse_args() -> Result<Args, String> {
    let mut listen = None;
    let mut options = ServeOptions::default();
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut count_flag = |name: &str| -> Result<usize, String> {
            iter.next()
                .ok_or(format!("{name} needs a value"))?
                .parse()
                .map_err(|_| format!("{name} needs a nonnegative integer"))
        };
        match arg.as_str() {
            "--listen" => {
                listen = Some(iter.next().ok_or("--listen needs an address")?);
            }
            "--workers" => options.workers = count_flag("--workers")?,
            "--queue" => options.queue_capacity = count_flag("--queue")?,
            "--batch" => options.batch_size = count_flag("--batch")?,
            "--degrade-margin-ms" => {
                options.degrade_margin =
                    Duration::from_millis(count_flag("--degrade-margin-ms")? as u64);
            }
            "--no-warm-start" => options.warm_start = false,
            "--read-timeout-ms" => {
                options.read_timeout = match count_flag("--read-timeout-ms")? {
                    0 => None,
                    ms => Some(Duration::from_millis(ms as u64)),
                };
            }
            "--spill" => {
                options.spill = Some(iter.next().ok_or("--spill needs a path or tcp:// URL")?);
            }
            other => {
                return Err(format!("unknown flag {other} (see the header of serve.rs)"));
            }
        }
    }
    Ok(Args {
        listen: listen.ok_or("--listen is required (e.g. --listen 127.0.0.1:0)")?,
        options,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("serve: {msg}");
            return ExitCode::from(2);
        }
    };
    let handle = match ServeHandle::spawn(&args.listen, args.options) {
        Ok(handle) => handle,
        Err(err) => {
            eprintln!("serve: cannot bind {}: {err}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    // Print the bound address (resolves :0 to the actual port) so a parent
    // process can point clients at it — same convention as sweep-worker.
    println!("listening on {}", handle.local_addr());
    let _ = std::io::Write::flush(&mut std::io::stdout());

    // The daemon runs until a client's shutdown frame flips the stop flag;
    // park-and-poll keeps the main thread cheap without a dedicated signal.
    while !handle.is_stopped() {
        std::thread::park_timeout(Duration::from_millis(200));
    }
    let stats = handle.stats();
    handle.stop();
    println!(
        "served={} degraded={} rejected={} skipped={} decode_errors={} read_timeouts={}",
        stats.served,
        stats.degraded,
        stats.rejected,
        stats.skipped,
        stats.decode_errors,
        stats.read_timeouts
    );
    ExitCode::SUCCESS
}
