//! The JSON-lines session protocol between allocation clients and the
//! `serve` daemon.
//!
//! Every frame is one compact JSON object on one `\n`-terminated line with a
//! `"type"` tag, exactly like the sweep dispatcher's frames
//! ([`mfa_dispatch::protocol`]); the two frame families share one version
//! constant ([`PROTOCOL_VERSION`]) so any incompatible change to either is a
//! single bump visible to every JSON-lines peer in the workspace. Payload
//! codecs come from [`mfa_explore::wire`], so floats round-trip bit-for-bit
//! and NaNs are rejected at the edge.
//!
//! Session shape (the client is always the initiator):
//!
//! ```text
//! client → daemon   {"type":"hello","protocol":5}
//! daemon → client   {"type":"ready","protocol":5}
//! client → daemon   {"type":"solve","id":1,"backend":"gpa","warm":true,
//!                    "deadline_seconds":0.25,"problem":{…}}     (repeated)
//! daemon → client   {"type":"report","id":1,"outcome":{…}}      (success)
//!                   {"type":"rejected","id":2,"queue_depth":64,
//!                    "capacity":64}                             (queue full)
//!                   {"type":"skipped","id":3,"reason":"…"}      (no solution)
//!                   {"type":"error","id":4,"message":"…"}       (bad request)
//! client → daemon   {"type":"stats","id":5}
//! daemon → client   {"type":"stats","id":5,"served":…,"hit_rate":…}
//! client → daemon   {"type":"shutdown"}
//! ```
//!
//! Replies carry the request's `id` because the daemon solves admitted
//! requests on a worker pool: replies to one connection may interleave out
//! of submission order when several requests are in flight.

use mfa_alloc::AllocationProblem;
use mfa_explore::json::Json;
use mfa_explore::wire::{self, WireError};

/// Solver backend selection carried by `solve` frames: the four entries of
/// the built-in [`Backend`](mfa_alloc::Backend) registry, each with its
/// default options. Wire labels are lowercase and stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// [`mfa_alloc::Backend::gpa`] — the paper's GP+A heuristic.
    Gpa,
    /// [`mfa_alloc::Backend::gpa_fast`] — GP+A with the bisection relaxation.
    GpaFast,
    /// [`mfa_alloc::Backend::greedy`] — the cheap serving fallback.
    Greedy,
    /// [`mfa_alloc::Backend::exact`] — the exact MINLP.
    Exact,
}

impl BackendKind {
    /// Every backend kind, in wire-label order (useful for sweeping tests
    /// and CLI help text).
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Gpa,
        BackendKind::GpaFast,
        BackendKind::Greedy,
        BackendKind::Exact,
    ];

    /// The stable lowercase label used on the wire and by the CLIs.
    pub fn wire_label(self) -> &'static str {
        match self {
            BackendKind::Gpa => "gpa",
            BackendKind::GpaFast => "gpa-fast",
            BackendKind::Greedy => "greedy",
            BackendKind::Exact => "exact",
        }
    }

    /// Parses a [`wire_label`](Self::wire_label).
    pub fn from_wire_label(label: &str) -> Option<Self> {
        match label {
            "gpa" => Some(BackendKind::Gpa),
            "gpa-fast" => Some(BackendKind::GpaFast),
            "greedy" => Some(BackendKind::Greedy),
            "exact" => Some(BackendKind::Exact),
            _ => None,
        }
    }

    /// Resolves the kind to the registry [`Backend`](mfa_alloc::Backend)
    /// with its default options.
    pub fn backend(self) -> mfa_alloc::Backend {
        match self {
            BackendKind::Gpa => mfa_alloc::Backend::gpa(),
            BackendKind::GpaFast => mfa_alloc::Backend::gpa_fast(),
            BackendKind::Greedy => mfa_alloc::Backend::greedy(),
            BackendKind::Exact => mfa_alloc::Backend::exact(),
        }
    }
}

/// The result payload of a `report` frame: the solved allocation's headline
/// metrics plus full serving provenance — which backend actually ran,
/// whether the daemon degraded the request, and what the warm-start cache
/// contributed.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOutcome {
    /// Achieved initiation interval in milliseconds.
    pub ii_ms: f64,
    /// Name of the backend that served the request (the *substituted*
    /// backend when the daemon degraded).
    pub backend: String,
    /// Label of the originally requested backend when the daemon downgraded
    /// the request to a cheaper one (deadline-aware graceful degradation);
    /// `None` when the request ran as asked.
    pub degraded_from: Option<String>,
    /// Final integer CU counts per kernel.
    pub cu_counts: Vec<u32>,
    /// Warm-start provenance label of the solve (see
    /// [`mfa_alloc::solver::WarmStartReport::provenance`]).
    pub warm_start: String,
    /// `true` when the daemon's fingerprint-keyed cache supplied a
    /// warm-start hint for this solve.
    pub cache_hit: bool,
    /// Hex digest of the request's cache family (problem content with the
    /// budget erased, plus the served backend label).
    pub fingerprint: String,
    /// Interior-point barrier iterations spent (machine-independent effort).
    pub barrier_iterations: usize,
    /// Branch-and-bound nodes visited.
    pub bb_nodes: usize,
    /// Wall-clock milliseconds the solve itself took.
    pub solve_ms: f64,
    /// Wall-clock milliseconds the request waited in the admission queue.
    pub queue_ms: f64,
}

/// The payload of a daemon `stats` reply: the serving counters plus the
/// warm-start cache's effectiveness, so operators can watch the hit rate a
/// shared spill store buys without scraping the daemon's exit line.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StatsReport {
    /// Requests answered with a report frame.
    pub served: usize,
    /// Served requests that ran on a downgraded backend.
    pub degraded: usize,
    /// Requests refused at admission because the queue was full.
    pub rejected: usize,
    /// Requests answered as skipped (no solution under the lenient policy).
    pub skipped: usize,
    /// Client lines that failed to decode.
    pub decode_errors: usize,
    /// Connections dropped by the per-request read timeout.
    pub read_timeouts: usize,
    /// Request families currently held by the warm-start cache.
    pub cache_families: usize,
    /// Cache lookups answered with a warm start.
    pub cache_hits: usize,
    /// Cache lookups answered empty.
    pub cache_misses: usize,
    /// Families evicted by the cache's LRU policy.
    pub cache_evictions: usize,
    /// `cache_hits / (cache_hits + cache_misses)`, `0.0` before any lookup.
    pub hit_rate: f64,
}

/// A frame sent from a client to the daemon.
//
// `Solve` dwarfs the other variants because it carries the full problem —
// but solve frames *are* the traffic, so boxing would add an allocation to
// the common case to slim the rare ones.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum ToServe {
    /// Opens a session; the daemon answers with [`FromServe::Ready`] or
    /// closes the connection on version skew.
    Hello {
        /// Protocol version of the client.
        protocol: usize,
    },
    /// One allocation request.
    Solve {
        /// Client-chosen request id, echoed on the reply.
        id: usize,
        /// The full allocation problem (kernels, platform, budget, weights).
        problem: AllocationProblem,
        /// Which registry backend to run.
        backend: BackendKind,
        /// Wall-clock budget in seconds, measured from admission. `None`
        /// runs without a deadline.
        deadline_seconds: Option<f64>,
        /// Whether the daemon may warm-start this solve from its
        /// fingerprint-keyed cache (and record the result back into it).
        warm: bool,
    },
    /// Asks for the daemon's serving and cache counters.
    Stats {
        /// Client-chosen request id, echoed on the reply.
        id: usize,
    },
    /// Stops the daemon (all connections, not just this session).
    Shutdown,
}

/// A frame sent from the daemon to a client.
#[derive(Debug, Clone, PartialEq)]
pub enum FromServe {
    /// Acknowledges [`ToServe::Hello`].
    Ready {
        /// Protocol version of the daemon.
        protocol: usize,
    },
    /// A solved request.
    Report {
        /// Request id being answered.
        id: usize,
        /// The result payload.
        outcome: SolveOutcome,
    },
    /// The admission queue was full; the request was not solved. The client
    /// may retry after backing off.
    Rejected {
        /// Request id being answered.
        id: usize,
        /// Queue occupancy observed at rejection time.
        queue_depth: usize,
        /// The daemon's configured queue capacity.
        capacity: usize,
    },
    /// The problem has no solution at this point (infeasible constraint,
    /// unplaceable discretization) under the daemon's lenient skip policy.
    Skipped {
        /// Request id being answered.
        id: usize,
        /// Display form of the underlying solver error.
        reason: String,
    },
    /// Answers a [`ToServe::Stats`].
    Stats {
        /// Request id being answered.
        id: usize,
        /// The counters.
        stats: StatsReport,
    },
    /// The request itself was broken (malformed deadline, non-skippable
    /// solver failure).
    Error {
        /// Request id being answered (0 when the frame could not be decoded
        /// far enough to learn it).
        id: usize,
        /// What went wrong.
        message: String,
    },
}

/// Protocol version of the serve session frames — shared with the sweep
/// dispatcher (see [`mfa_dispatch::protocol::PROTOCOL_VERSION`], which
/// documents the version history).
pub use mfa_dispatch::protocol::PROTOCOL_VERSION;

fn num(name: &'static str, value: f64) -> Result<Json, WireError> {
    if value.is_finite() {
        Ok(Json::Num(value))
    } else {
        Err(WireError::NonFinite(name))
    }
}

fn type_tag(doc: &Json) -> Result<&str, WireError> {
    doc.get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::Schema("frame needs a string 'type' tag".into()))
}

fn usize_field(doc: &Json, key: &str) -> Result<usize, WireError> {
    doc.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| WireError::Schema(format!("frame field '{key}' must be an integer")))
}

fn f64_field(doc: &Json, key: &str) -> Result<f64, WireError> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| WireError::Schema(format!("frame field '{key}' must be a number")))
}

fn str_field<'a>(doc: &'a Json, key: &str) -> Result<&'a str, WireError> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::Schema(format!("frame field '{key}' must be a string")))
}

fn bool_field(doc: &Json, key: &str) -> Result<bool, WireError> {
    doc.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| WireError::Schema(format!("frame field '{key}' must be a boolean")))
}

fn outcome_to_json(outcome: &SolveOutcome) -> Result<Json, WireError> {
    let degraded_from = match &outcome.degraded_from {
        Some(label) => Json::str(label.as_str()),
        None => Json::Null,
    };
    Ok(Json::obj(vec![
        ("ii_ms", num("ii_ms", outcome.ii_ms)?),
        ("backend", Json::str(outcome.backend.as_str())),
        ("degraded_from", degraded_from),
        (
            "cu_counts",
            Json::Arr(
                outcome
                    .cu_counts
                    .iter()
                    .map(|&n| Json::Num(f64::from(n)))
                    .collect(),
            ),
        ),
        ("warm_start", Json::str(outcome.warm_start.as_str())),
        ("cache_hit", Json::Bool(outcome.cache_hit)),
        ("fingerprint", Json::str(outcome.fingerprint.as_str())),
        (
            "barrier_iterations",
            Json::Num(outcome.barrier_iterations as f64),
        ),
        ("bb_nodes", Json::Num(outcome.bb_nodes as f64)),
        ("solve_ms", num("solve_ms", outcome.solve_ms)?),
        ("queue_ms", num("queue_ms", outcome.queue_ms)?),
    ]))
}

fn outcome_from_json(doc: &Json) -> Result<SolveOutcome, WireError> {
    let degraded_from = match doc
        .get("degraded_from")
        .ok_or_else(|| WireError::Schema("outcome needs 'degraded_from'".into()))?
    {
        Json::Null => None,
        other => Some(
            other
                .as_str()
                .ok_or_else(|| {
                    WireError::Schema("'degraded_from' must be a string or null".into())
                })?
                .to_owned(),
        ),
    };
    let cu_counts = doc
        .get("cu_counts")
        .and_then(Json::as_arr)
        .ok_or_else(|| WireError::Schema("outcome needs a 'cu_counts' array".into()))?
        .iter()
        .map(|item| {
            let raw = item
                .as_f64()
                .ok_or_else(|| WireError::Schema("cu_counts entries must be numbers".into()))?;
            if raw < 0.0 || raw.fract() != 0.0 || raw > f64::from(u32::MAX) {
                return Err(WireError::Invalid(format!(
                    "cu_counts entry {raw} is not a u32"
                )));
            }
            Ok(raw as u32)
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    Ok(SolveOutcome {
        ii_ms: f64_field(doc, "ii_ms")?,
        backend: str_field(doc, "backend")?.to_owned(),
        degraded_from,
        cu_counts,
        warm_start: str_field(doc, "warm_start")?.to_owned(),
        cache_hit: bool_field(doc, "cache_hit")?,
        fingerprint: str_field(doc, "fingerprint")?.to_owned(),
        barrier_iterations: usize_field(doc, "barrier_iterations")?,
        bb_nodes: usize_field(doc, "bb_nodes")?,
        solve_ms: f64_field(doc, "solve_ms")?,
        queue_ms: f64_field(doc, "queue_ms")?,
    })
}

impl ToServe {
    /// Encodes the frame as one JSON line (no trailing newline).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::NonFinite`] when the problem or deadline carries
    /// a NaN/infinite float.
    pub fn encode(&self) -> Result<String, WireError> {
        let doc = match self {
            ToServe::Hello { protocol } => Json::obj(vec![
                ("type", Json::str("hello")),
                ("protocol", Json::Num(*protocol as f64)),
            ]),
            ToServe::Solve {
                id,
                problem,
                backend,
                deadline_seconds,
                warm,
            } => {
                let deadline = match deadline_seconds {
                    Some(seconds) => num("deadline_seconds", *seconds)?,
                    None => Json::Null,
                };
                Json::obj(vec![
                    ("type", Json::str("solve")),
                    ("id", Json::Num(*id as f64)),
                    ("backend", Json::str(backend.wire_label())),
                    ("warm", Json::Bool(*warm)),
                    ("deadline_seconds", deadline),
                    ("problem", wire::problem_to_json(problem)?),
                ])
            }
            ToServe::Stats { id } => Json::obj(vec![
                ("type", Json::str("stats")),
                ("id", Json::Num(*id as f64)),
            ]),
            ToServe::Shutdown => Json::obj(vec![("type", Json::str("shutdown"))]),
        };
        Ok(doc.to_string())
    }

    /// Decodes one client→daemon line.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed JSON, unknown frame types, or
    /// invalid payloads.
    pub fn decode(line: &str) -> Result<ToServe, WireError> {
        let doc = Json::parse(line).map_err(|err| WireError::Parse(err.to_string()))?;
        match type_tag(&doc)? {
            "hello" => Ok(ToServe::Hello {
                protocol: usize_field(&doc, "protocol")?,
            }),
            "solve" => {
                let backend = str_field(&doc, "backend")?;
                let backend = BackendKind::from_wire_label(backend).ok_or_else(|| {
                    WireError::Schema(format!("unknown backend kind '{backend}'"))
                })?;
                let deadline_seconds = match doc.get("deadline_seconds").ok_or_else(|| {
                    WireError::Schema("solve frame needs 'deadline_seconds'".into())
                })? {
                    Json::Null => None,
                    other => Some(other.as_f64().ok_or_else(|| {
                        WireError::Schema("'deadline_seconds' must be a number or null".into())
                    })?),
                };
                Ok(ToServe::Solve {
                    id: usize_field(&doc, "id")?,
                    problem: wire::problem_from_json(
                        doc.get("problem").ok_or_else(|| {
                            WireError::Schema("solve frame needs 'problem'".into())
                        })?,
                    )?,
                    backend,
                    deadline_seconds,
                    warm: bool_field(&doc, "warm")?,
                })
            }
            "stats" => Ok(ToServe::Stats {
                id: usize_field(&doc, "id")?,
            }),
            "shutdown" => Ok(ToServe::Shutdown),
            other => Err(WireError::Schema(format!(
                "unknown client frame type '{other}'"
            ))),
        }
    }
}

impl FromServe {
    /// Encodes the frame as one JSON line (no trailing newline).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::NonFinite`] when the outcome carries a
    /// NaN/infinite float.
    pub fn encode(&self) -> Result<String, WireError> {
        let doc = match self {
            FromServe::Ready { protocol } => Json::obj(vec![
                ("type", Json::str("ready")),
                ("protocol", Json::Num(*protocol as f64)),
            ]),
            FromServe::Report { id, outcome } => Json::obj(vec![
                ("type", Json::str("report")),
                ("id", Json::Num(*id as f64)),
                ("outcome", outcome_to_json(outcome)?),
            ]),
            FromServe::Rejected {
                id,
                queue_depth,
                capacity,
            } => Json::obj(vec![
                ("type", Json::str("rejected")),
                ("id", Json::Num(*id as f64)),
                ("queue_depth", Json::Num(*queue_depth as f64)),
                ("capacity", Json::Num(*capacity as f64)),
            ]),
            FromServe::Skipped { id, reason } => Json::obj(vec![
                ("type", Json::str("skipped")),
                ("id", Json::Num(*id as f64)),
                ("reason", Json::str(reason.as_str())),
            ]),
            FromServe::Stats { id, stats } => Json::obj(vec![
                ("type", Json::str("stats")),
                ("id", Json::Num(*id as f64)),
                ("served", Json::Num(stats.served as f64)),
                ("degraded", Json::Num(stats.degraded as f64)),
                ("rejected", Json::Num(stats.rejected as f64)),
                ("skipped", Json::Num(stats.skipped as f64)),
                ("decode_errors", Json::Num(stats.decode_errors as f64)),
                ("read_timeouts", Json::Num(stats.read_timeouts as f64)),
                ("cache_families", Json::Num(stats.cache_families as f64)),
                ("cache_hits", Json::Num(stats.cache_hits as f64)),
                ("cache_misses", Json::Num(stats.cache_misses as f64)),
                ("cache_evictions", Json::Num(stats.cache_evictions as f64)),
                ("hit_rate", num("hit_rate", stats.hit_rate)?),
            ]),
            FromServe::Error { id, message } => Json::obj(vec![
                ("type", Json::str("error")),
                ("id", Json::Num(*id as f64)),
                ("message", Json::str(message.as_str())),
            ]),
        };
        Ok(doc.to_string())
    }

    /// Decodes one daemon→client line.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed JSON, unknown frame types, or
    /// invalid payloads — a client treats any of these as a broken session.
    pub fn decode(line: &str) -> Result<FromServe, WireError> {
        let doc = Json::parse(line).map_err(|err| WireError::Parse(err.to_string()))?;
        match type_tag(&doc)? {
            "ready" => Ok(FromServe::Ready {
                protocol: usize_field(&doc, "protocol")?,
            }),
            "report" => Ok(FromServe::Report {
                id: usize_field(&doc, "id")?,
                outcome: outcome_from_json(
                    doc.get("outcome")
                        .ok_or_else(|| WireError::Schema("report frame needs 'outcome'".into()))?,
                )?,
            }),
            "rejected" => Ok(FromServe::Rejected {
                id: usize_field(&doc, "id")?,
                queue_depth: usize_field(&doc, "queue_depth")?,
                capacity: usize_field(&doc, "capacity")?,
            }),
            "skipped" => Ok(FromServe::Skipped {
                id: usize_field(&doc, "id")?,
                reason: str_field(&doc, "reason")?.to_owned(),
            }),
            "stats" => Ok(FromServe::Stats {
                id: usize_field(&doc, "id")?,
                stats: StatsReport {
                    served: usize_field(&doc, "served")?,
                    degraded: usize_field(&doc, "degraded")?,
                    rejected: usize_field(&doc, "rejected")?,
                    skipped: usize_field(&doc, "skipped")?,
                    decode_errors: usize_field(&doc, "decode_errors")?,
                    read_timeouts: usize_field(&doc, "read_timeouts")?,
                    cache_families: usize_field(&doc, "cache_families")?,
                    cache_hits: usize_field(&doc, "cache_hits")?,
                    cache_misses: usize_field(&doc, "cache_misses")?,
                    cache_evictions: usize_field(&doc, "cache_evictions")?,
                    hit_rate: f64_field(&doc, "hit_rate")?,
                },
            }),
            "error" => Ok(FromServe::Error {
                id: usize_field(&doc, "id")?,
                message: str_field(&doc, "message")?.to_owned(),
            }),
            other => Err(WireError::Schema(format!(
                "unknown daemon frame type '{other}'"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfa_alloc::cases::PaperCase;

    fn sample_outcome() -> SolveOutcome {
        SolveOutcome {
            // 0.1 + 0.2 has a long binary expansion: exercises the
            // shortest-round-trip float path, not just tidy literals.
            ii_ms: 0.1 + 0.2,
            backend: "Greedy".into(),
            degraded_from: Some("GP+A".into()),
            cu_counts: vec![3, 1, 4],
            warm_start: "ii+dual".into(),
            cache_hit: true,
            fingerprint: "9a7be84621861e5523aa1fdb34592dd3".into(),
            barrier_iterations: 17,
            bb_nodes: 23,
            solve_ms: 1.5,
            queue_ms: 0.25,
        }
    }

    #[test]
    fn handshake_frames_match_their_goldens_exactly() {
        // The v5 handshake bytes are the protocol's stable surface: any
        // drift here is an incompatible change and must bump the shared
        // PROTOCOL_VERSION.
        assert_eq!(
            ToServe::Hello {
                protocol: PROTOCOL_VERSION
            }
            .encode()
            .unwrap(),
            r#"{"type":"hello","protocol":5}"#
        );
        assert_eq!(
            FromServe::Ready {
                protocol: PROTOCOL_VERSION
            }
            .encode()
            .unwrap(),
            r#"{"type":"ready","protocol":5}"#
        );
        assert_eq!(
            ToServe::Shutdown.encode().unwrap(),
            r#"{"type":"shutdown"}"#
        );
    }

    #[test]
    fn reply_frames_match_their_goldens_exactly() {
        assert_eq!(
            FromServe::Rejected {
                id: 7,
                queue_depth: 64,
                capacity: 64,
            }
            .encode()
            .unwrap(),
            r#"{"type":"rejected","id":7,"queue_depth":64,"capacity":64}"#
        );
        assert_eq!(
            FromServe::Skipped {
                id: 3,
                reason: "infeasible problem: constraint too tight".into(),
            }
            .encode()
            .unwrap(),
            r#"{"type":"skipped","id":3,"reason":"infeasible problem: constraint too tight"}"#
        );
        assert_eq!(
            ToServe::Stats { id: 6 }.encode().unwrap(),
            r#"{"type":"stats","id":6}"#
        );
        assert_eq!(
            FromServe::Stats {
                id: 6,
                stats: StatsReport {
                    served: 12,
                    degraded: 1,
                    rejected: 0,
                    skipped: 2,
                    decode_errors: 0,
                    read_timeouts: 1,
                    cache_families: 3,
                    cache_hits: 6,
                    cache_misses: 6,
                    cache_evictions: 0,
                    hit_rate: 0.5,
                },
            }
            .encode()
            .unwrap(),
            concat!(
                r#"{"type":"stats","id":6,"served":12,"degraded":1,"rejected":0,"#,
                r#""skipped":2,"decode_errors":0,"read_timeouts":1,"cache_families":3,"#,
                r#""cache_hits":6,"cache_misses":6,"cache_evictions":0,"hit_rate":0.5}"#
            )
        );
        let report = FromServe::Report {
            id: 1,
            outcome: sample_outcome(),
        }
        .encode()
        .unwrap();
        assert_eq!(
            report,
            concat!(
                r#"{"type":"report","id":1,"outcome":{"ii_ms":0.30000000000000004,"#,
                r#""backend":"Greedy","degraded_from":"GP+A","cu_counts":[3,1,4],"#,
                r#""warm_start":"ii+dual","cache_hit":true,"#,
                r#""fingerprint":"9a7be84621861e5523aa1fdb34592dd3","#,
                r#""barrier_iterations":17,"bb_nodes":23,"solve_ms":1.5,"queue_ms":0.25}}"#
            )
        );
    }

    #[test]
    fn frames_round_trip_exactly() {
        let problem = PaperCase::Alex16OnTwoFpgas.problem(0.7).unwrap();
        let to = [
            ToServe::Hello {
                protocol: PROTOCOL_VERSION,
            },
            ToServe::Solve {
                id: 42,
                problem,
                backend: BackendKind::GpaFast,
                deadline_seconds: Some(0.1 + 0.2),
                warm: true,
            },
            ToServe::Stats { id: 9 },
            ToServe::Shutdown,
        ];
        for frame in to {
            let line = frame.encode().unwrap();
            assert!(!line.contains('\n'), "frames must be single-line");
            assert_eq!(ToServe::decode(&line).unwrap(), frame);
        }
        let from = [
            FromServe::Ready {
                protocol: PROTOCOL_VERSION,
            },
            FromServe::Report {
                id: 1,
                outcome: sample_outcome(),
            },
            FromServe::Report {
                id: 2,
                outcome: SolveOutcome {
                    degraded_from: None,
                    cache_hit: false,
                    ..sample_outcome()
                },
            },
            FromServe::Rejected {
                id: 9,
                queue_depth: 3,
                capacity: 4,
            },
            FromServe::Skipped {
                id: 5,
                reason: "greedy allocation failed".into(),
            },
            FromServe::Stats {
                id: 9,
                stats: StatsReport {
                    served: 4,
                    hit_rate: 0.75,
                    ..StatsReport::default()
                },
            },
            FromServe::Error {
                id: 0,
                message: "malformed frame".into(),
            },
        ];
        for frame in from {
            let line = frame.encode().unwrap();
            assert!(!line.contains('\n'), "frames must be single-line");
            assert_eq!(FromServe::decode(&line).unwrap(), frame);
        }
    }

    #[test]
    fn backend_kind_labels_round_trip() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::from_wire_label(kind.wire_label()), Some(kind));
        }
        assert_eq!(BackendKind::from_wire_label("quantum"), None);
        // The registry mapping reaches every built-in backend.
        assert_eq!(BackendKind::Gpa.backend().label(), "GP+A");
        assert_eq!(BackendKind::Greedy.backend().label(), "Greedy");
    }

    #[test]
    fn garbage_lines_are_rejected_not_fatal() {
        for bad in [
            "",
            "not json",
            "{\"type\":\"solve\",\"id\":",
            "{\"id\":1}",
            "{\"type\":\"warp\"}",
            "{\"type\":\"solve\",\"id\":1}",
            "{\"type\":\"solve\",\"id\":1,\"backend\":\"quantum\"}",
            "{\"type\":\"report\",\"id\":1}",
            "[1,2,3]",
        ] {
            assert!(ToServe::decode(bad).is_err(), "{bad:?}");
            assert!(FromServe::decode(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn non_finite_outcomes_are_rejected_on_encode() {
        let mut outcome = sample_outcome();
        outcome.ii_ms = f64::NAN;
        assert!(matches!(
            FromServe::Report { id: 1, outcome }.encode(),
            Err(WireError::NonFinite("ii_ms"))
        ));
        assert!(matches!(
            ToServe::Solve {
                id: 1,
                problem: PaperCase::Alex16OnTwoFpgas.problem(0.7).unwrap(),
                backend: BackendKind::Gpa,
                deadline_seconds: Some(f64::INFINITY),
                warm: false,
            }
            .encode(),
            Err(WireError::NonFinite("deadline_seconds"))
        ));
    }
}
