//! A blocking client of the allocation daemon.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use mfa_alloc::AllocationProblem;

use crate::error::ServeError;
use crate::protocol::{
    BackendKind, FromServe, SolveOutcome, StatsReport, ToServe, PROTOCOL_VERSION,
};

/// How the daemon answered one solve request (the non-error outcomes; a
/// daemon-side request failure surfaces as [`ServeError::Server`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SolveReply {
    /// The request was solved; here is the result.
    Report(SolveOutcome),
    /// The admission queue was full; retry after backing off.
    Rejected {
        /// Queue occupancy observed at rejection time.
        queue_depth: usize,
        /// The daemon's configured queue capacity.
        capacity: usize,
    },
    /// The problem has no solution at this point (infeasible constraint,
    /// unplaceable discretization).
    Skipped {
        /// Display form of the underlying solver error.
        reason: String,
    },
}

/// A connected, handshaken session with the allocation daemon. One request
/// is in flight at a time; [`solve`](Self::solve) blocks until the daemon
/// replies.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: usize,
}

impl ServeClient {
    /// Connects to the daemon at `addr` and performs the `hello`/`ready`
    /// handshake.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on connection failure, [`ServeError::Protocol`] on
    /// version skew or an unexpected first frame.
    pub fn connect(addr: &str) -> Result<ServeClient, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        let mut client = ServeClient {
            reader: BufReader::new(stream),
            writer,
            next_id: 0,
        };
        client.send(&ToServe::Hello {
            protocol: PROTOCOL_VERSION,
        })?;
        match client.read_frame()? {
            FromServe::Ready { protocol } if protocol == PROTOCOL_VERSION => Ok(client),
            FromServe::Ready { protocol } => Err(ServeError::Protocol(format!(
                "version skew: daemon speaks {protocol}, this client speaks {PROTOCOL_VERSION}"
            ))),
            FromServe::Error { message, .. } => Err(ServeError::Server(message)),
            other => Err(ServeError::Protocol(format!(
                "expected ready, got {other:?}"
            ))),
        }
    }

    /// Sends one solve request and blocks for its reply.
    ///
    /// # Errors
    ///
    /// [`ServeError::Server`] when the daemon reports the request broken or
    /// failed; transport and protocol errors otherwise.
    pub fn solve(
        &mut self,
        problem: &AllocationProblem,
        backend: BackendKind,
        deadline_seconds: Option<f64>,
        warm: bool,
    ) -> Result<SolveReply, ServeError> {
        self.next_id += 1;
        let id = self.next_id;
        self.send(&ToServe::Solve {
            id,
            problem: problem.clone(),
            backend,
            deadline_seconds,
            warm,
        })?;
        match self.read_frame()? {
            FromServe::Report { id: got, outcome } if got == id => Ok(SolveReply::Report(outcome)),
            FromServe::Rejected {
                id: got,
                queue_depth,
                capacity,
            } if got == id => Ok(SolveReply::Rejected {
                queue_depth,
                capacity,
            }),
            FromServe::Skipped { id: got, reason } if got == id => {
                Ok(SolveReply::Skipped { reason })
            }
            FromServe::Error { message, .. } => Err(ServeError::Server(message)),
            other => Err(ServeError::Protocol(format!(
                "reply for the wrong request: expected id {id}, got {other:?}"
            ))),
        }
    }

    /// Fetches the daemon's serving and warm-cache counters.
    ///
    /// # Errors
    ///
    /// [`ServeError::Server`] when the daemon reports a failure; transport
    /// and protocol errors otherwise.
    pub fn stats(&mut self) -> Result<StatsReport, ServeError> {
        self.next_id += 1;
        let id = self.next_id;
        self.send(&ToServe::Stats { id })?;
        match self.read_frame()? {
            FromServe::Stats { id: got, stats } if got == id => Ok(stats),
            FromServe::Error { message, .. } => Err(ServeError::Server(message)),
            other => Err(ServeError::Protocol(format!(
                "reply for the wrong request: expected id {id}, got {other:?}"
            ))),
        }
    }

    /// Asks the daemon to shut down (all connections, not just this one) and
    /// closes the session.
    ///
    /// # Errors
    ///
    /// Transport errors while sending the frame.
    pub fn shutdown(mut self) -> Result<(), ServeError> {
        self.send(&ToServe::Shutdown)
    }

    fn send(&mut self, frame: &ToServe) -> Result<(), ServeError> {
        let line = frame.encode()?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_frame(&mut self) -> Result<FromServe, ServeError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ServeError::Protocol(
                "daemon closed the connection mid-session".into(),
            ));
        }
        Ok(FromServe::decode(line.trim_end())?)
    }
}
