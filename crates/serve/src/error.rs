//! Error type of the allocation service.

use std::fmt;
use std::time::Duration;

use mfa_explore::wire::WireError;

/// Error returned by the serving layer (daemon, client, and protocol).
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// A transport-level I/O failure (connect, read, write, bind).
    Io(std::io::Error),
    /// A frame failed to encode or decode.
    Wire(WireError),
    /// The peer violated the session protocol (version skew, an unexpected
    /// frame, a reply for the wrong request id).
    Protocol(String),
    /// The daemon reported a request-level failure (invalid deadline,
    /// non-skippable solver error). Carries the daemon's message verbatim.
    Server(String),
    /// A connection produced no complete frame within the per-request read
    /// timeout; the daemon dropped it to reclaim the reader thread.
    ReadTimeout(Duration),
    /// The warm-cache spill backend could not be opened at startup.
    Spill(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(err) => write!(f, "I/O error: {err}"),
            ServeError::Wire(err) => write!(f, "wire error: {err}"),
            ServeError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ServeError::Server(msg) => write!(f, "server error: {msg}"),
            ServeError::ReadTimeout(limit) => {
                write!(f, "read timed out: no complete frame within {:.0?}", limit)
            }
            ServeError::Spill(msg) => write!(f, "cannot open spill backend: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(err) => Some(err),
            ServeError::Wire(err) => Some(err),
            ServeError::Protocol(_)
            | ServeError::Server(_)
            | ServeError::ReadTimeout(_)
            | ServeError::Spill(_) => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(err: std::io::Error) -> Self {
        ServeError::Io(err)
    }
}

impl From<WireError> for ServeError {
    fn from(err: WireError) -> Self {
        ServeError::Wire(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_context() {
        assert!(ServeError::Protocol("hello before ready".into())
            .to_string()
            .contains("hello"));
        assert!(ServeError::Server("invalid deadline".into())
            .to_string()
            .contains("deadline"));
        assert!(ServeError::Wire(WireError::NonFinite("ii_ms"))
            .to_string()
            .contains("ii_ms"));
        assert!(ServeError::ReadTimeout(Duration::from_millis(250))
            .to_string()
            .contains("timed out"));
        assert!(ServeError::Spill("no such dir".into())
            .to_string()
            .contains("spill"));
    }
}
