//! The allocation daemon: accept loop, bounded admission queue, solver
//! worker pool, and the deadline-aware degradation policy.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mfa_alloc::solver::{Backend, Deadline, SkipPolicy, SolveRequest, WarmStart};
use mfa_alloc::{AllocError, AllocationProblem};

use crate::cache::{family_fingerprint, ServeCache};
use crate::error::ServeError;
use crate::protocol::{
    BackendKind, FromServe, SolveOutcome, StatsReport, ToServe, PROTOCOL_VERSION,
};

/// Configuration of a [`ServeHandle`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bound on requests admitted but not yet solved. A `solve` frame
    /// arriving at a full queue is answered with [`FromServe::Rejected`]
    /// instead of being buffered without limit.
    pub queue_capacity: usize,
    /// Solver worker threads draining the queue. `0` is admission-only — no
    /// request is ever solved — which exists so tests can fill the queue
    /// deterministically and observe the rejection path.
    pub workers: usize,
    /// Requests a worker claims from the queue in one batch. Batching keeps
    /// queue-lock traffic low and lets neighbouring requests of one burst
    /// warm-start each other back to back.
    pub batch_size: usize,
    /// Remaining-deadline threshold below which a non-greedy request is
    /// degraded to [`Backend::greedy`] instead of being started (and then
    /// almost certainly dying to [`AllocError::DeadlineExceeded`]).
    pub degrade_margin: Duration,
    /// Whether solves consult and feed the fingerprint-keyed warm-start
    /// cache (individual requests can still opt out per frame).
    pub warm_start: bool,
    /// Bound on distinct request families the cache holds (FIFO eviction).
    pub family_capacity: usize,
    /// Bound on budget entries cached per family.
    pub budget_capacity: usize,
    /// Per-request read timeout of the connection reader: a connection that
    /// produces no complete frame within this window *while no reply is
    /// pending on it* is dropped (and counted), so a stalled client cannot
    /// pin a reader thread forever. While the connection has admitted
    /// requests still awaiting their reply the timeout never fires — the
    /// client is blocked on the daemon (queue wait plus solve), not stalled.
    /// `None` waits indefinitely.
    pub read_timeout: Option<Duration>,
    /// Warm-cache spill backend: a store directory path, or `tcp://host:port`
    /// to share a store-server with other daemons. `None` keeps the cache
    /// memory-only.
    pub spill: Option<String>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            queue_capacity: 64,
            workers: 2,
            batch_size: 4,
            degrade_margin: Duration::from_millis(50),
            warm_start: true,
            family_capacity: 32,
            budget_capacity: mfa_explore::DEFAULT_CACHE_CAPACITY,
            read_timeout: Some(Duration::from_secs(30)),
            spill: None,
        }
    }
}

/// A snapshot of the daemon's monotonic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered with a [`FromServe::Report`].
    pub served: usize,
    /// Served requests that ran on a downgraded backend.
    pub degraded: usize,
    /// Requests refused at admission because the queue was full.
    pub rejected: usize,
    /// Requests answered with [`FromServe::Skipped`] (no solution at this
    /// point under the lenient policy).
    pub skipped: usize,
    /// Client lines that failed to decode.
    pub decode_errors: usize,
    /// Connections dropped by the per-request read timeout.
    pub read_timeouts: usize,
}

/// One client connection's state, shared between its reader thread and the
/// solver workers answering its jobs.
struct Conn {
    writer: Mutex<TcpStream>,
    /// Admitted requests whose reply has not been written yet. While this is
    /// non-zero the client is legitimately blocked waiting on the daemon, so
    /// the reader's idle timeout must not drop the connection under it.
    pending: AtomicUsize,
}

/// One admitted request waiting for a solver worker.
struct Job {
    id: usize,
    problem: AllocationProblem,
    backend: BackendKind,
    deadline: Option<Deadline>,
    warm: bool,
    admitted: Instant,
    conn: Arc<Conn>,
}

/// State shared by the accept loop, connection readers, and solver workers.
struct Shared {
    stop: AtomicBool,
    options: ServeOptions,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    cache: Mutex<ServeCache>,
    served: AtomicUsize,
    degraded: AtomicUsize,
    rejected: AtomicUsize,
    skipped: AtomicUsize,
    decode_errors: AtomicUsize,
    read_timeouts: AtomicUsize,
}

/// A running allocation daemon bound to a TCP address.
///
/// [`spawn`](ServeHandle::spawn) binds the listener and starts the accept
/// loop plus the solver workers; [`stop`](ServeHandle::stop) shuts all of
/// them down and joins them. Each client connection is served by its own
/// reader thread, which exits when the client disconnects.
pub struct ServeHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeHandle {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts the daemon.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the address cannot be bound.
    pub fn spawn(addr: &str, options: ServeOptions) -> Result<ServeHandle, ServeError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let cache = match &options.spill {
            Some(spec) => ServeCache::with_spill(
                options.family_capacity,
                options.budget_capacity,
                open_spill(spec)?,
            ),
            None => ServeCache::new(options.family_capacity, options.budget_capacity),
        };
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            cache: Mutex::new(cache),
            options,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            served: AtomicUsize::new(0),
            degraded: AtomicUsize::new(0),
            rejected: AtomicUsize::new(0),
            skipped: AtomicUsize::new(0),
            decode_errors: AtomicUsize::new(0),
            read_timeouts: AtomicUsize::new(0),
        });
        let workers = (0..shared.options.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(ServeHandle {
            addr: local,
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (with `:0` resolved to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once the daemon has been asked to stop (by a client's
    /// shutdown frame or a concurrent [`stop`](Self::stop)); the `serve`
    /// binary polls this to know when to exit.
    pub fn is_stopped(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// A snapshot of the daemon's counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            served: self.shared.served.load(Ordering::Relaxed),
            degraded: self.shared.degraded.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            skipped: self.shared.skipped.load(Ordering::Relaxed),
            decode_errors: self.shared.decode_errors.load(Ordering::Relaxed),
            read_timeouts: self.shared.read_timeouts.load(Ordering::Relaxed),
        }
    }

    /// The full stats payload a `stats` frame answers with (serving
    /// counters plus warm-cache effectiveness).
    pub fn stats_report(&self) -> StatsReport {
        stats_report(&self.shared)
    }

    /// Stops the daemon: wakes the accept loop and the workers, then joins
    /// them. Jobs still queued are dropped unanswered; connection reader
    /// threads exit when their clients disconnect.
    pub fn stop(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Bound on any single round trip to a remote spill store. Spill I/O runs
/// while the cache mutex is held, so a hung (not erroring) store-server
/// must cost a bounded stall — surfacing as a spill error the cache absorbs
/// (cold solve), never an indefinitely blocked worker pool.
const SPILL_IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Opens the warm-cache spill backend a `--spill` spec names: a
/// `tcp://host:port` store-server session (namespace `serve-cache`, shared
/// by every daemon pointing at that server) or a local store directory.
fn open_spill(spec: &str) -> Result<Box<dyn mfa_explore::ResultStore + Send>, ServeError> {
    match mfa_storenet::store_url(spec) {
        Some(addr) => mfa_storenet::RemoteStore::connect_with_timeout(
            addr,
            "serve-cache",
            Some(SPILL_IO_TIMEOUT),
        )
        .map(|store| Box::new(store) as Box<dyn mfa_explore::ResultStore + Send>)
        .map_err(|err| ServeError::Spill(format!("{spec}: {err}"))),
        None => mfa_explore::SweepStore::open(spec)
            .map(|store| Box::new(store) as Box<dyn mfa_explore::ResultStore + Send>)
            .map_err(|err| ServeError::Spill(format!("{spec}: {err}"))),
    }
}

fn stats_report(shared: &Shared) -> StatsReport {
    let cache = shared.cache.lock().expect("cache mutex poisoned");
    StatsReport {
        served: shared.served.load(Ordering::Relaxed),
        degraded: shared.degraded.load(Ordering::Relaxed),
        rejected: shared.rejected.load(Ordering::Relaxed),
        skipped: shared.skipped.load(Ordering::Relaxed),
        decode_errors: shared.decode_errors.load(Ordering::Relaxed),
        read_timeouts: shared.read_timeouts.load(Ordering::Relaxed),
        cache_families: cache.len(),
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
        cache_evictions: cache.evictions(),
        hit_rate: cache.hit_rate(),
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                let shared = Arc::clone(shared);
                // Reader threads are not joined: they exit at client EOF.
                std::thread::spawn(move || connection_loop(stream, &shared));
            }
            Err(err) => {
                eprintln!("serve: accept failed: {err}");
            }
        }
    }
}

/// Serves one client connection: decodes frames, answers the handshake,
/// admits solve requests into the bounded queue, and honours shutdown.
fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let conn = match stream.try_clone() {
        Ok(clone) => Arc::new(Conn {
            writer: Mutex::new(clone),
            pending: AtomicUsize::new(0),
        }),
        Err(err) => {
            eprintln!("serve: cannot clone connection: {err}");
            return;
        }
    };
    if let Err(err) = stream.set_read_timeout(shared.options.read_timeout) {
        eprintln!("serve: cannot arm read timeout: {err}");
        return;
    }
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        line.clear();
        // Read one complete frame, riding out timeout windows while this
        // connection is owed a reply.
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => return,
                Ok(_) => break,
                // A timed-out read surfaces as WouldBlock or TimedOut
                // depending on the platform.
                Err(err)
                    if matches!(
                        err.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if shared.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    // A client blocked on its own solve reply (queue wait
                    // plus solve can outlast any timeout window) is waiting
                    // on us, not stalled: keep listening. Bytes of a partial
                    // frame read so far stay accumulated in `line`.
                    if conn.pending.load(Ordering::Acquire) > 0 {
                        continue;
                    }
                    // No reply owed: the client stalled mid-frame (or went
                    // silent) and the reader thread is reclaimed.
                    shared.read_timeouts.fetch_add(1, Ordering::Relaxed);
                    let limit = shared
                        .options
                        .read_timeout
                        .expect("a read only times out when a timeout is armed");
                    let _ = write_frame(
                        &conn.writer,
                        &FromServe::Error {
                            id: 0,
                            message: ServeError::ReadTimeout(limit).to_string(),
                        },
                    );
                    return;
                }
                Err(err) => {
                    eprintln!("serve: connection read failed: {err}");
                    return;
                }
            }
        }
        if line.trim().is_empty() {
            continue;
        }
        match ToServe::decode(line.trim_end()) {
            Ok(ToServe::Hello { protocol }) => {
                if protocol != PROTOCOL_VERSION {
                    let _ = write_frame(
                        &conn.writer,
                        &FromServe::Error {
                            id: 0,
                            message: format!(
                                "protocol version skew: daemon speaks {PROTOCOL_VERSION}, \
                                 client sent {protocol}"
                            ),
                        },
                    );
                    return;
                }
                let _ = write_frame(
                    &conn.writer,
                    &FromServe::Ready {
                        protocol: PROTOCOL_VERSION,
                    },
                );
            }
            Ok(ToServe::Solve {
                id,
                problem,
                backend,
                deadline_seconds,
                warm,
            }) => {
                admit(shared, &conn, id, problem, backend, deadline_seconds, warm);
            }
            Ok(ToServe::Stats { id }) => {
                let _ = write_frame(
                    &conn.writer,
                    &FromServe::Stats {
                        id,
                        stats: stats_report(shared),
                    },
                );
            }
            Ok(ToServe::Shutdown) => {
                shared.stop.store(true, Ordering::SeqCst);
                shared.queue_cv.notify_all();
                // Unblock the accept loop exactly like `ServeHandle::stop`.
                if let Ok(Ok(local)) = conn.writer.lock().map(|w| w.local_addr()) {
                    let _ = TcpStream::connect(local);
                }
                return;
            }
            Err(err) => {
                shared.decode_errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_frame(
                    &conn.writer,
                    &FromServe::Error {
                        id: 0,
                        message: format!("malformed frame: {err}"),
                    },
                );
                // A stream that desynchronized once cannot be trusted to
                // frame the next line either.
                return;
            }
        }
    }
}

/// Admission control: validates the deadline, then either enqueues the
/// request or answers [`FromServe::Rejected`] when the queue is full.
#[allow(clippy::too_many_arguments)]
fn admit(
    shared: &Arc<Shared>,
    conn: &Arc<Conn>,
    id: usize,
    problem: AllocationProblem,
    backend: BackendKind,
    deadline_seconds: Option<f64>,
    warm: bool,
) {
    // The deadline clock starts at admission: queue wait burns budget, which
    // is exactly what lets the degradation policy fire on queued requests.
    let deadline = match deadline_seconds.map(Deadline::within_seconds).transpose() {
        Ok(deadline) => deadline,
        Err(err) => {
            let _ = write_frame(
                &conn.writer,
                &FromServe::Error {
                    id,
                    message: err.to_string(),
                },
            );
            return;
        }
    };
    let job = Job {
        id,
        problem,
        backend,
        deadline,
        warm,
        admitted: Instant::now(),
        conn: Arc::clone(conn),
    };
    let rejected = {
        let mut queue = shared.queue.lock().expect("queue mutex poisoned");
        if queue.len() >= shared.options.queue_capacity {
            Some(queue.len())
        } else {
            // Raised under the queue lock, so the count is visibly non-zero
            // before any worker can claim (and answer) the job.
            conn.pending.fetch_add(1, Ordering::AcqRel);
            queue.push_back(job);
            shared.queue_cv.notify_one();
            None
        }
    };
    if let Some(queue_depth) = rejected {
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        let _ = write_frame(
            &conn.writer,
            &FromServe::Rejected {
                id,
                queue_depth,
                capacity: shared.options.queue_capacity,
            },
        );
    }
}

/// One solver worker: claims batches off the queue and serves them.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let batch = {
            let mut queue = shared.queue.lock().expect("queue mutex poisoned");
            while queue.is_empty() && !shared.stop.load(Ordering::SeqCst) {
                queue = shared.queue_cv.wait(queue).expect("queue mutex poisoned");
            }
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            let take = shared.options.batch_size.max(1).min(queue.len());
            queue.drain(..take).collect::<Vec<_>>()
        };
        for job in batch {
            let conn = Arc::clone(&job.conn);
            let reply = serve_one(shared, job);
            let _ = write_frame(&conn.writer, &reply);
            conn.pending.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// Serves one admitted request end to end: degradation decision, cache
/// lookup, solve, cache update, reply construction.
fn serve_one(shared: &Arc<Shared>, job: Job) -> FromServe {
    let requested = job.backend.backend();
    let requested_label = requested.label().to_owned();

    // Deadline-aware graceful degradation: a request whose remaining budget
    // cannot plausibly fund the requested backend is downgraded to the
    // greedy fallback — run *without* the doomed deadline — instead of being
    // admitted into a solve that would only die to DeadlineExceeded. A
    // degraded result is still a real allocation; the substitution is
    // recorded in the report's provenance.
    let starved = job
        .deadline
        .map(|d| d.is_expired() || d.remaining() < shared.options.degrade_margin)
        .unwrap_or(false);
    let (served, deadline, degraded_from) = if starved {
        match requested {
            Backend::Greedy { .. } => (requested, None, None),
            _ => (Backend::greedy(), None, Some(requested_label.clone())),
        }
    } else {
        (requested, job.deadline, None)
    };

    match solve_with(shared, &job, &served, deadline, degraded_from) {
        Ok(reply) => reply,
        // Mid-flight exhaustion: the margin was optimistic and the requested
        // backend ran out of wall-clock anyway. Fall back to greedy with no
        // deadline so the daemon still returns an allocation.
        Err(AllocError::DeadlineExceeded { .. }) => {
            match solve_with(
                shared,
                &job,
                &Backend::greedy(),
                None,
                Some(requested_label),
            ) {
                Ok(reply) => reply,
                Err(err) => error_reply(shared, &job, &err),
            }
        }
        Err(err) => error_reply(shared, &job, &err),
    }
}

/// Runs one solve on `backend` and builds the reply frame. Returns `Err`
/// only for failures the caller may want to degrade on; skippable
/// no-solution outcomes become [`FromServe::Skipped`] directly.
fn solve_with(
    shared: &Arc<Shared>,
    job: &Job,
    backend: &Backend,
    deadline: Option<Deadline>,
    degraded_from: Option<String>,
) -> Result<FromServe, AllocError> {
    let family = family_fingerprint(&job.problem, backend.label())
        .map_err(|err| AllocError::InvalidArgument(err.to_string()))?;
    let warm_enabled = shared.options.warm_start && job.warm;
    let hint: Option<WarmStart> = if warm_enabled {
        shared
            .cache
            .lock()
            .expect("cache mutex poisoned")
            .lookup(family, job.problem.budget())
    } else {
        None
    };
    let cache_hit = hint.is_some();

    let mut request = SolveRequest::new(&job.problem)
        .backend(backend.clone())
        .skip_policy(SkipPolicy::Lenient);
    if let Some(hint) = hint {
        request = request.warm_start(hint);
    }
    if let Some(deadline) = deadline {
        request = request.deadline(deadline);
    }

    let started = Instant::now();
    match request.solve() {
        Ok(mut report) => {
            let solve_ms = started.elapsed().as_secs_f64() * 1e3;
            if warm_enabled {
                shared.cache.lock().expect("cache mutex poisoned").record(
                    family,
                    job.problem.budget(),
                    report.warm_start(),
                );
            }
            report.diagnostics.degraded_from = degraded_from;
            shared.served.fetch_add(1, Ordering::Relaxed);
            if report.diagnostics.degraded_from.is_some() {
                shared.degraded.fetch_add(1, Ordering::Relaxed);
            }
            let queue_ms = job.admitted.elapsed().as_secs_f64() * 1e3 - solve_ms;
            Ok(FromServe::Report {
                id: job.id,
                outcome: SolveOutcome {
                    ii_ms: report.initiation_interval_ms(&job.problem),
                    backend: report.backend.clone(),
                    degraded_from: report.diagnostics.degraded_from.clone(),
                    cu_counts: report.diagnostics.cu_counts.clone(),
                    warm_start: report.diagnostics.warm_start.provenance().to_owned(),
                    cache_hit,
                    fingerprint: family.to_hex(),
                    barrier_iterations: report.diagnostics.barrier_iterations,
                    bb_nodes: report.diagnostics.bb_nodes,
                    solve_ms,
                    queue_ms: queue_ms.max(0.0),
                },
            })
        }
        Err(err @ AllocError::DeadlineExceeded { .. }) => Err(err),
        Err(err) if SkipPolicy::Lenient.is_skippable(&err) => {
            shared.skipped.fetch_add(1, Ordering::Relaxed);
            Ok(FromServe::Skipped {
                id: job.id,
                reason: err.to_string(),
            })
        }
        Err(err) => Err(err),
    }
}

fn error_reply(shared: &Arc<Shared>, job: &Job, err: &AllocError) -> FromServe {
    // Skippable failures of the *fallback* solve still mean "no solution
    // here", not "broken request".
    if SkipPolicy::Lenient.is_skippable(err) {
        shared.skipped.fetch_add(1, Ordering::Relaxed);
        FromServe::Skipped {
            id: job.id,
            reason: err.to_string(),
        }
    } else {
        FromServe::Error {
            id: job.id,
            message: err.to_string(),
        }
    }
}

fn write_frame(writer: &Mutex<TcpStream>, frame: &FromServe) -> Result<(), ServeError> {
    let line = frame.encode()?;
    let mut stream = writer.lock().expect("writer mutex poisoned");
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    Ok(())
}
