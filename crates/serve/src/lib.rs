//! Allocation as a service: a long-running daemon that solves
//! [`SolveRequest`](mfa_alloc::solver::SolveRequest)s over the workspace's
//! JSON-lines wire protocol.
//!
//! The sweep stack ([`mfa_explore`], [`mfa_dispatch`]) answers the batch
//! question — "map the whole design space, once". This crate answers the
//! online one: allocation requests arrive continuously (tenants sizing
//! deployments, a reallocation controller reacting to churn), each with its
//! own problem, backend choice, and latency budget. Three serving-layer
//! mechanisms turn the one-shot solvers into a service:
//!
//! * **Fingerprint-keyed warm starts across requests** ([`ServeCache`]) —
//!   the per-sweep [`WarmStartCache`](mfa_explore::WarmStartCache) is
//!   generalized by keying caches on a content [`Fingerprint`] of the
//!   request family (problem minus budget, plus backend label), so repeat
//!   and neighbouring requests re-enter the GP barrier path near a solved
//!   point's endpoint instead of from cold. Families are LRU-bounded, and
//!   an optional spill backend (a store directory, or a shared
//!   `mfa_storenet` store-server via `tcp://host:port`) persists the cache
//!   so a restarted daemon — or a *fleet* of daemons — warms from prior
//!   work instead of from cold.
//! * **Bounded admission** — requests queue up to a fixed capacity and are
//!   answered with a typed `rejected` frame (current depth + capacity) when
//!   the queue is full, so overload degrades into explicit backpressure
//!   instead of unbounded memory growth and silent latency.
//! * **Deadline-aware graceful degradation** — a request whose remaining
//!   budget cannot plausibly fund the requested backend is downgraded to
//!   [`Backend::greedy`](mfa_alloc::Backend::greedy) (roughly one relaxation
//!   of cost) instead of being started and dying to `DeadlineExceeded`; the
//!   substitution is recorded in the report's provenance
//!   ([`SolveDiagnostics::degraded_from`](mfa_alloc::solver::SolveDiagnostics::degraded_from)),
//!   so a degraded answer is auditable, never silent.
//! * **Bounded reads and live stats** — a per-request read timeout reclaims
//!   reader threads from stalled clients, and a `stats` frame reports the
//!   serving counters plus the warm cache's hit rate on demand.
//!
//! The frame protocol ([`protocol`]) shares its version constant with the
//! sweep dispatcher ([`mfa_dispatch::protocol::PROTOCOL_VERSION`]); the
//! `serve` binary hosts the daemon, `serve-client` is a one-shot CLI, and
//! the root package's `serve_load` example drives an open-loop load test
//! against either.
//!
//! # Example
//!
//! ```no_run
//! use mfa_serve::{BackendKind, ServeClient, ServeHandle, ServeOptions, SolveReply};
//! use mfa_alloc::cases::PaperCase;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let daemon = ServeHandle::spawn("127.0.0.1:0", ServeOptions::default())?;
//! let mut client = ServeClient::connect(&daemon.local_addr().to_string())?;
//! let problem = PaperCase::Alex16OnTwoFpgas.problem(0.7)?;
//! match client.solve(&problem, BackendKind::Gpa, Some(0.5), true)? {
//!     SolveReply::Report(outcome) => println!("II = {:.3} ms", outcome.ii_ms),
//!     other => println!("{other:?}"),
//! }
//! daemon.stop();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod client;
mod error;
pub mod protocol;
mod server;

pub use cache::{family_fingerprint, ServeCache};
pub use client::{ServeClient, SolveReply};
pub use error::ServeError;
pub use protocol::{BackendKind, FromServe, SolveOutcome, StatsReport, ToServe, PROTOCOL_VERSION};
pub use server::{ServeHandle, ServeOptions, ServeStats};

// Re-export the fingerprint type the cache keys on, so callers can hold and
// compare family keys without depending on the core crate directly.
pub use mfa_alloc::fingerprint::Fingerprint;
