//! The daemon's cross-request warm-start cache.
//!
//! The sweep executor's [`WarmStartCache`] warms neighbouring budget points
//! *within one grid*; the daemon generalizes it across arbitrary requests by
//! keying caches on a content [`Fingerprint`] of the request *family* — the
//! canonical wire encoding of the problem with the budget erased, plus the
//! label of the backend that serves it. Two requests share a family exactly
//! when they solve the same kernels on the same platform with the same goal
//! weights and backend; within a family, budgets index a [`WarmStartCache`]
//! so the nearest solved budget (under
//! [`budget_distance`](mfa_explore::budget_distance)) seeds each new solve.
//!
//! Erasing the budget from the family key is what makes the cache useful
//! under multi-tenant load: a tenant sweeping budgets for one application
//! lands every request in one family, and each solve warms from its nearest
//! predecessor — including the exact same budget on a repeat request, whose
//! refreshed entry hands back the solved point's own GP dual state.
//!
//! Two policies bound and extend the cache:
//!
//! - **LRU family eviction** — once `family_capacity` families exist, the
//!   least-recently *used* family makes room, so a hot tenant's family
//!   survives a flood of one-shot requests (FIFO would rotate it out).
//! - **Spill persistence** — an optional [`ResultStore`] backend (a local
//!   store directory or `mfa_storenet`'s remote client) receives every
//!   recorded warm start and re-seeds families on a miss, so a restarted
//!   daemon warms from its predecessor's work and daemons sharing one
//!   store-server warm from each other's. The spill is best-effort: a
//!   broken backend only costs cold solves, never requests — and a remote
//!   backend runs with a socket I/O timeout, so even a hung (not erroring)
//!   store-server costs a bounded stall that surfaces as a spill error.

use std::fmt;

use mfa_alloc::fingerprint::Fingerprint;
use mfa_alloc::solver::WarmStart;
use mfa_alloc::AllocationProblem;
use mfa_explore::json::Json;
use mfa_explore::wire::{budget_to_json, problem_to_json, WireError};
use mfa_explore::{ResultStore, StoreEntry, WarmStartCache, STORE_VERSION};
use mfa_platform::ResourceBudget;

use crate::protocol::PROTOCOL_VERSION;

/// Computes the cache-family fingerprint of a request: the problem's
/// canonical wire JSON with the `budget` field erased, plus the serving
/// backend's label, hashed under the protocol version.
///
/// # Errors
///
/// Returns [`WireError::NonFinite`] when the problem carries a NaN/infinite
/// float (a validated problem never does).
pub fn family_fingerprint(
    problem: &AllocationProblem,
    backend_label: &str,
) -> Result<Fingerprint, WireError> {
    let mut doc = problem_to_json(problem)?;
    if let Json::Obj(pairs) = &mut doc {
        pairs.retain(|(key, _)| key != "budget");
    }
    Ok(Fingerprint::of_parts(
        PROTOCOL_VERSION as u64,
        &[backend_label, &doc.to_string()],
    ))
}

/// The store key of one spilled warm start: family plus exact budget, in
/// the store's version domain (a store-version bump invalidates spilled
/// state exactly like it invalidates sweep results).
fn spill_key(family: &Fingerprint, budget: &ResourceBudget) -> Option<Fingerprint> {
    let budget = budget_to_json(budget).ok()?;
    Some(Fingerprint::of_parts(
        STORE_VERSION as u64,
        &["serve-spill", &family.to_hex(), &budget.to_string()],
    ))
}

/// Fingerprint-keyed warm-start store: one bounded [`WarmStartCache`] per
/// request family, LRU eviction of whole families once `family_capacity` is
/// reached, hit/miss accounting, and optional spill persistence.
pub struct ServeCache {
    /// `(family, budgets, last_used)` — `last_used` is a tick of the
    /// monotonic `clock`, bumped by every lookup and record that touches
    /// the family.
    families: Vec<(Fingerprint, WarmStartCache, u64)>,
    family_capacity: usize,
    budget_capacity: usize,
    clock: u64,
    hits: usize,
    misses: usize,
    evictions: usize,
    spill_errors: usize,
    spill: Option<Box<dyn ResultStore + Send>>,
}

impl fmt::Debug for ServeCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeCache")
            .field("families", &self.families.len())
            .field("family_capacity", &self.family_capacity)
            .field("budget_capacity", &self.budget_capacity)
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .field("evictions", &self.evictions)
            .field("spill", &self.spill.is_some())
            .field("spill_errors", &self.spill_errors)
            .finish()
    }
}

impl ServeCache {
    /// An empty in-memory cache holding at most `family_capacity` families
    /// of at most `budget_capacity` budget entries each. A zero
    /// `family_capacity` caches nothing.
    pub fn new(family_capacity: usize, budget_capacity: usize) -> Self {
        ServeCache {
            families: Vec::new(),
            family_capacity,
            budget_capacity,
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            spill_errors: 0,
            spill: None,
        }
    }

    /// Like [`new`](Self::new), but backed by a spill store: recorded warm
    /// starts are persisted to it and family misses re-seed from it.
    pub fn with_spill(
        family_capacity: usize,
        budget_capacity: usize,
        spill: Box<dyn ResultStore + Send>,
    ) -> Self {
        ServeCache {
            spill: Some(spill),
            ..ServeCache::new(family_capacity, budget_capacity)
        }
    }

    /// Number of families currently cached in memory.
    pub fn len(&self) -> usize {
        self.families.len()
    }

    /// `true` when no family is held in memory.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// Lookups answered with a warm start.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Lookups answered empty.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Families evicted to make room.
    pub fn evictions(&self) -> usize {
        self.evictions
    }

    /// Best-effort spill operations that failed (the cache keeps serving
    /// from memory when the backend misbehaves).
    pub fn spill_errors(&self) -> usize {
        self.spill_errors
    }

    /// Fraction of lookups answered with a warm start (`0.0` before any
    /// lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The warm-start state of the solved budget nearest to `budget` within
    /// `family`, if that family has any entries — consulting the spill
    /// store for families not in memory (which is how a restarted daemon
    /// warms from its predecessor's spilled state).
    pub fn lookup(&mut self, family: Fingerprint, budget: &ResourceBudget) -> Option<WarmStart> {
        if self.family_capacity == 0 {
            self.misses += 1;
            return None;
        }
        self.clock += 1;
        let mut slot = self.families.iter().position(|(fp, _, _)| *fp == family);
        if slot.is_none() {
            if let Some(cache) = self.unspill(&family) {
                self.insert_family(family, cache);
                slot = Some(self.families.len() - 1);
            }
        }
        let found = slot.and_then(|at| {
            let (_, cache, last_used) = &mut self.families[at];
            *last_used = self.clock;
            cache.nearest(budget).cloned()
        });
        match found.is_some() {
            true => self.hits += 1,
            false => self.misses += 1,
        }
        found
    }

    /// Records the warm-start state a solved request published, creating the
    /// family (and evicting the least-recently-used one when at capacity)
    /// if needed, and persisting the entry to the spill store when one is
    /// configured.
    pub fn record(&mut self, family: Fingerprint, budget: &ResourceBudget, warm: WarmStart) {
        if self.family_capacity == 0 {
            return;
        }
        self.clock += 1;
        self.persist(&family, budget, &warm);
        if let Some((_, cache, last_used)) =
            self.families.iter_mut().find(|(fp, _, _)| *fp == family)
        {
            *last_used = self.clock;
            cache.insert(budget, warm);
            return;
        }
        let mut cache = WarmStartCache::with_capacity(self.budget_capacity);
        cache.insert(budget, warm);
        self.insert_family(family, cache);
    }

    /// Inserts a family, evicting the LRU one when at capacity.
    fn insert_family(&mut self, family: Fingerprint, cache: WarmStartCache) {
        if self.families.len() == self.family_capacity {
            let lru = self
                .families
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, last_used))| *last_used)
                .map(|(at, _)| at)
                .expect("capacity > 0 means a nonempty full cache");
            self.families.remove(lru);
            self.evictions += 1;
        }
        self.families.push((family, cache, self.clock));
    }

    /// Loads a family's spilled budget entries, if a spill store is
    /// configured and holds any. Entries arrive sorted by store fingerprint,
    /// so the rebuilt cache is deterministic for a given store content.
    fn unspill(&mut self, family: &Fingerprint) -> Option<WarmStartCache> {
        let spill = self.spill.as_mut()?;
        let entries = match spill.get_series(family) {
            Ok(entries) => entries,
            Err(_) => {
                self.spill_errors += 1;
                return None;
            }
        };
        let mut cache = WarmStartCache::with_capacity(self.budget_capacity);
        for (_, entry) in entries {
            if !entry.warm.is_empty() {
                cache.insert(&entry.budget, entry.warm);
            }
        }
        (!cache.is_empty()).then_some(cache)
    }

    /// Best-effort spill of one recorded warm start.
    fn persist(&mut self, family: &Fingerprint, budget: &ResourceBudget, warm: &WarmStart) {
        if warm.is_empty() {
            return;
        }
        let Some(spill) = self.spill.as_mut() else {
            return;
        };
        let Some(key) = spill_key(family, budget) else {
            self.spill_errors += 1;
            return;
        };
        let entry = StoreEntry {
            series: *family,
            budget: *budget,
            point: None,
            warm: warm.clone(),
        };
        if spill.put(vec![(key, entry)]).is_err() {
            self.spill_errors += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfa_alloc::cases::PaperCase;
    use mfa_explore::SweepStore;
    use proptest::prelude::*;

    fn warm(ii: f64) -> WarmStart {
        WarmStart::none().with_relaxed_ii(ii)
    }

    fn fam(name: &str) -> Fingerprint {
        Fingerprint::of_parts(1, &[name])
    }

    #[test]
    fn family_key_erases_the_budget() {
        let loose = PaperCase::Alex16OnTwoFpgas.problem(0.8).unwrap();
        let tight = PaperCase::Alex16OnTwoFpgas.problem(0.6).unwrap();
        assert_eq!(
            family_fingerprint(&loose, "GP+A").unwrap(),
            family_fingerprint(&tight, "GP+A").unwrap(),
        );
        // …while the backend label and the problem content both matter.
        assert_ne!(
            family_fingerprint(&loose, "GP+A").unwrap(),
            family_fingerprint(&loose, "Greedy").unwrap(),
        );
        let other_case = PaperCase::Alex32OnFourFpgas.problem(0.8).unwrap();
        assert_ne!(
            family_fingerprint(&loose, "GP+A").unwrap(),
            family_fingerprint(&other_case, "GP+A").unwrap(),
        );
    }

    #[test]
    fn lookup_warms_from_the_nearest_budget_in_the_right_family() {
        let mut cache = ServeCache::new(4, 8);
        assert!(cache.is_empty());
        cache.record(fam("a"), &ResourceBudget::uniform(0.55), warm(2.0));
        cache.record(fam("a"), &ResourceBudget::uniform(0.85), warm(1.0));
        cache.record(fam("b"), &ResourceBudget::uniform(0.60), warm(9.0));
        assert_eq!(cache.len(), 2);
        let hit = cache
            .lookup(fam("a"), &ResourceBudget::uniform(0.60))
            .unwrap();
        assert!((hit.relaxed_ii_ms.unwrap() - 2.0).abs() < 1e-12);
        // The other family's entry at 0.60 exactly never leaks across.
        let far = cache
            .lookup(fam("a"), &ResourceBudget::uniform(0.80))
            .unwrap();
        assert!((far.relaxed_ii_ms.unwrap() - 1.0).abs() < 1e-12);
        assert!(cache
            .lookup(fam("c"), &ResourceBudget::uniform(0.6))
            .is_none());
        // 2 hits, 1 miss — the rate the stats frame reports.
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
        assert!((cache.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn family_eviction_is_lru_and_bounded() {
        let budget = ResourceBudget::uniform(0.5);
        let mut cache = ServeCache::new(2, 8);
        cache.record(fam("a"), &budget, warm(0.0));
        cache.record(fam("b"), &budget, warm(1.0));
        // Touch "a": under LRU the next eviction takes "b"; FIFO would have
        // taken "a".
        assert!(cache.lookup(fam("a"), &budget).is_some());
        cache.record(fam("c"), &budget, warm(2.0));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.lookup(fam("b"), &budget).is_none());
        assert!(cache.lookup(fam("a"), &budget).is_some());
        assert!(cache.lookup(fam("c"), &budget).is_some());
        // Touching an existing family refreshes it in place, no growth.
        cache.record(fam("a"), &budget, warm(7.0));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_family_capacity_caches_nothing() {
        let mut cache = ServeCache::new(0, 8);
        cache.record(fam("a"), &ResourceBudget::uniform(0.5), warm(1.0));
        assert!(cache.is_empty());
        assert!(cache
            .lookup(fam("a"), &ResourceBudget::uniform(0.5))
            .is_none());
        assert_eq!(cache.hit_rate(), 0.0);
    }

    #[test]
    fn spilled_state_survives_a_cache_restart() {
        let dir =
            std::env::temp_dir().join(format!("mfa-serve-cache-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let budget = ResourceBudget::uniform(0.7);
        {
            let spill = Box::new(SweepStore::open(&dir).unwrap());
            let mut cache = ServeCache::with_spill(4, 8, spill);
            cache.record(fam("a"), &budget, warm(3.0));
            // Empty warm starts are not worth persisting.
            cache.record(fam("b"), &budget, WarmStart::none());
            assert_eq!(cache.spill_errors(), 0);
        }
        // A fresh cache over the same spill dir — the restarted daemon.
        let spill = Box::new(SweepStore::open(&dir).unwrap());
        let mut cache = ServeCache::with_spill(4, 8, spill);
        assert!(cache.is_empty());
        let hit = cache.lookup(fam("a"), &budget).expect("unspilled hit");
        assert!((hit.relaxed_ii_ms.unwrap() - 3.0).abs() < 1e-12);
        assert_eq!(cache.hits(), 1);
        assert!(cache.lookup(fam("b"), &budget).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    proptest! {
        // The LRU guarantee that matters operationally: a family that stays
        // hot (touched between arrivals) survives any flood of cold
        // families, whatever their number or order.
        #[test]
        fn a_hot_family_survives_a_cold_family_flood(
            cold in proptest::collection::vec(0usize..=40, 0usize..64),
            capacity in 2usize..6,
        ) {
            let budget = ResourceBudget::uniform(0.5);
            let mut cache = ServeCache::new(capacity, 4);
            cache.record(fam("hot"), &budget, warm(1.0));
            for (i, key) in cold.iter().enumerate() {
                prop_assert!(cache.lookup(fam("hot"), &budget).is_some());
                cache.record(fam(&format!("cold-{key}")), &budget, warm(i as f64));
                prop_assert!(cache.len() <= capacity);
            }
            prop_assert!(cache.lookup(fam("hot"), &budget).is_some());
        }
    }
}
