//! The daemon's cross-request warm-start cache.
//!
//! The sweep executor's [`WarmStartCache`] warms neighbouring budget points
//! *within one grid*; the daemon generalizes it across arbitrary requests by
//! keying caches on a content [`Fingerprint`] of the request *family* — the
//! canonical wire encoding of the problem with the budget erased, plus the
//! label of the backend that serves it. Two requests share a family exactly
//! when they solve the same kernels on the same platform with the same goal
//! weights and backend; within a family, budgets index a [`WarmStartCache`]
//! so the nearest solved budget (under
//! [`budget_distance`](mfa_explore::budget_distance)) seeds each new solve.
//!
//! Erasing the budget from the family key is what makes the cache useful
//! under multi-tenant load: a tenant sweeping budgets for one application
//! lands every request in one family, and each solve warms from its nearest
//! predecessor — including the exact same budget on a repeat request, whose
//! refreshed entry hands back the solved point's own GP dual state.

use mfa_alloc::fingerprint::Fingerprint;
use mfa_alloc::solver::WarmStart;
use mfa_alloc::AllocationProblem;
use mfa_explore::json::Json;
use mfa_explore::wire::{problem_to_json, WireError};
use mfa_explore::WarmStartCache;
use mfa_platform::ResourceBudget;

use crate::protocol::PROTOCOL_VERSION;

/// Computes the cache-family fingerprint of a request: the problem's
/// canonical wire JSON with the `budget` field erased, plus the serving
/// backend's label, hashed under the protocol version.
///
/// # Errors
///
/// Returns [`WireError::NonFinite`] when the problem carries a NaN/infinite
/// float (a validated problem never does).
pub fn family_fingerprint(
    problem: &AllocationProblem,
    backend_label: &str,
) -> Result<Fingerprint, WireError> {
    let mut doc = problem_to_json(problem)?;
    if let Json::Obj(pairs) = &mut doc {
        pairs.retain(|(key, _)| key != "budget");
    }
    Ok(Fingerprint::of_parts(
        PROTOCOL_VERSION as u64,
        &[backend_label, &doc.to_string()],
    ))
}

/// Fingerprint-keyed warm-start store: one bounded [`WarmStartCache`] per
/// request family, with FIFO eviction of whole families once
/// `family_capacity` is reached (the same deterministic bounded-growth
/// policy the per-family caches use for budgets).
#[derive(Debug)]
pub struct ServeCache {
    families: Vec<(Fingerprint, WarmStartCache)>,
    family_capacity: usize,
    budget_capacity: usize,
}

impl ServeCache {
    /// An empty cache holding at most `family_capacity` families of at most
    /// `budget_capacity` budget entries each. A zero `family_capacity`
    /// caches nothing.
    pub fn new(family_capacity: usize, budget_capacity: usize) -> Self {
        ServeCache {
            families: Vec::new(),
            family_capacity,
            budget_capacity,
        }
    }

    /// Number of families currently cached.
    pub fn len(&self) -> usize {
        self.families.len()
    }

    /// `true` when no family has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// The warm-start state of the solved budget nearest to `budget` within
    /// `family`, if that family has any entries.
    pub fn lookup(&self, family: Fingerprint, budget: &ResourceBudget) -> Option<WarmStart> {
        self.families
            .iter()
            .find(|(fp, _)| *fp == family)
            .and_then(|(_, cache)| cache.nearest(budget))
            .cloned()
    }

    /// Records the warm-start state a solved request published, creating the
    /// family (and evicting the oldest one when at capacity) if needed.
    pub fn record(&mut self, family: Fingerprint, budget: &ResourceBudget, warm: WarmStart) {
        if self.family_capacity == 0 {
            return;
        }
        if let Some((_, cache)) = self.families.iter_mut().find(|(fp, _)| *fp == family) {
            cache.insert(budget, warm);
            return;
        }
        if self.families.len() == self.family_capacity {
            self.families.remove(0);
        }
        let mut cache = WarmStartCache::with_capacity(self.budget_capacity);
        cache.insert(budget, warm);
        self.families.push((family, cache));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfa_alloc::cases::PaperCase;

    fn warm(ii: f64) -> WarmStart {
        WarmStart::none().with_relaxed_ii(ii)
    }

    #[test]
    fn family_key_erases_the_budget() {
        let loose = PaperCase::Alex16OnTwoFpgas.problem(0.8).unwrap();
        let tight = PaperCase::Alex16OnTwoFpgas.problem(0.6).unwrap();
        assert_eq!(
            family_fingerprint(&loose, "GP+A").unwrap(),
            family_fingerprint(&tight, "GP+A").unwrap(),
        );
        // …while the backend label and the problem content both matter.
        assert_ne!(
            family_fingerprint(&loose, "GP+A").unwrap(),
            family_fingerprint(&loose, "Greedy").unwrap(),
        );
        let other_case = PaperCase::Alex32OnFourFpgas.problem(0.8).unwrap();
        assert_ne!(
            family_fingerprint(&loose, "GP+A").unwrap(),
            family_fingerprint(&other_case, "GP+A").unwrap(),
        );
    }

    #[test]
    fn lookup_warms_from_the_nearest_budget_in_the_right_family() {
        let mut cache = ServeCache::new(4, 8);
        let fam_a = Fingerprint::of_parts(1, &["a"]);
        let fam_b = Fingerprint::of_parts(1, &["b"]);
        assert!(cache.is_empty());
        cache.record(fam_a, &ResourceBudget::uniform(0.55), warm(2.0));
        cache.record(fam_a, &ResourceBudget::uniform(0.85), warm(1.0));
        cache.record(fam_b, &ResourceBudget::uniform(0.60), warm(9.0));
        assert_eq!(cache.len(), 2);
        let hit = cache.lookup(fam_a, &ResourceBudget::uniform(0.60)).unwrap();
        assert!((hit.relaxed_ii_ms.unwrap() - 2.0).abs() < 1e-12);
        // The other family's entry at 0.60 exactly never leaks across.
        let far = cache.lookup(fam_a, &ResourceBudget::uniform(0.80)).unwrap();
        assert!((far.relaxed_ii_ms.unwrap() - 1.0).abs() < 1e-12);
        assert!(cache
            .lookup(
                Fingerprint::of_parts(1, &["c"]),
                &ResourceBudget::uniform(0.6)
            )
            .is_none());
    }

    #[test]
    fn family_eviction_is_fifo_and_bounded() {
        let mut cache = ServeCache::new(2, 8);
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            cache.record(
                Fingerprint::of_parts(1, &[name]),
                &ResourceBudget::uniform(0.5),
                warm(i as f64),
            );
        }
        assert_eq!(cache.len(), 2);
        // The oldest family ("a") is gone; "b" and "c" remain.
        assert!(cache
            .lookup(
                Fingerprint::of_parts(1, &["a"]),
                &ResourceBudget::uniform(0.5)
            )
            .is_none());
        assert!(cache
            .lookup(
                Fingerprint::of_parts(1, &["b"]),
                &ResourceBudget::uniform(0.5)
            )
            .is_some());
        // Touching an existing family refreshes it in place, no growth.
        cache.record(
            Fingerprint::of_parts(1, &["b"]),
            &ResourceBudget::uniform(0.5),
            warm(7.0),
        );
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_family_capacity_caches_nothing() {
        let mut cache = ServeCache::new(0, 8);
        cache.record(
            Fingerprint::of_parts(1, &["a"]),
            &ResourceBudget::uniform(0.5),
            warm(1.0),
        );
        assert!(cache.is_empty());
    }
}
