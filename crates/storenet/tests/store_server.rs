//! End-to-end tests of a live store-server: session round trips, namespace
//! isolation and validation, damage handling, and remote GC.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use mfa_alloc::fingerprint::Fingerprint;
use mfa_alloc::solver::WarmStart;
use mfa_explore::store::{entry_to_json, ResultStore, StoreEntry, SweepStore};
use mfa_platform::ResourceBudget;
use mfa_storenet::{
    FromStore, RemoteStore, StoreNetError, StoreServer, StoreServerOptions, StoreServerStats,
    ToStore,
};

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mfa-storenet-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sample_entry(budget: f64) -> StoreEntry {
    StoreEntry {
        series: Fingerprint::of_parts(1, &["series"]),
        budget: ResourceBudget::uniform(budget),
        point: None,
        warm: WarmStart::none()
            .with_relaxed_ii(0.1 + budget)
            .with_cu_counts(vec![2, 1]),
    }
}

fn spawn(root: &Path) -> (StoreServer, String) {
    let server = StoreServer::spawn("127.0.0.1:0", root.to_path_buf()).expect("bind store-server");
    let addr = server.local_addr().to_string();
    (server, addr)
}

#[test]
fn sessions_round_trip_entries_and_namespaces_stay_isolated() {
    let root = temp_root("roundtrip");
    let (server, addr) = spawn(&root);

    let fp_a = Fingerprint::of_parts(1, &["a"]);
    let fp_b = Fingerprint::of_parts(1, &["b"]);
    let entry_a = sample_entry(0.6);
    let entry_b = sample_entry(0.8);

    let mut fig2 = RemoteStore::connect(&addr, "fig2").expect("connect fig2");
    fig2.put(vec![(fp_a, entry_a.clone()), (fp_b, entry_b.clone())])
        .expect("put");

    // Batched point lookup answers one slot per fingerprint, misses as None.
    let missing = Fingerprint::of_parts(1, &["missing"]);
    let slots = fig2.get_many(&[fp_a, missing, fp_b]).expect("get_many");
    assert_eq!(
        slots,
        vec![Some(entry_a.clone()), None, Some(entry_b.clone())]
    );

    // Series and snapshot queries come back sorted by fingerprint.
    let mut expected = vec![(fp_a, entry_a.clone()), (fp_b, entry_b.clone())];
    expected.sort_by_key(|(fp, _)| *fp);
    assert_eq!(fig2.get_series(&entry_a.series).expect("series"), expected);
    assert_eq!(fig2.snapshot().expect("snapshot"), expected);

    // A different namespace shares the server but none of the data.
    let mut fig3 = RemoteStore::connect(&addr, "fig3").expect("connect fig3");
    assert_eq!(fig3.snapshot().expect("snapshot"), Vec::new());
    assert_eq!(fig3.get_many(&[fp_a]).expect("get_many"), vec![None]);

    let stats = fig2.stats().expect("stats");
    assert_eq!(stats.namespaces, 2);
    assert_eq!(stats.entries, 2);
    assert_eq!(stats.puts, 2);
    // fig2's 3-point get scored 2 hits + 1 miss; fig3's 1-point get missed.
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.misses, 2);

    server.stop();

    // Committed data survives a server restart on the same root — the whole
    // point of a shared persistent cache.
    let (server, addr) = spawn(&root);
    let mut fig2 = RemoteStore::connect(&addr, "fig2").expect("reconnect fig2");
    assert_eq!(
        fig2.get_many(&[fp_a]).expect("get_many"),
        vec![Some(entry_a)]
    );
    server.stop();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn damaged_segments_answer_typed_misses_never_client_errors() {
    let root = temp_root("damage");
    let good_fp = Fingerprint::of_parts(1, &["good"]);
    let good = sample_entry(0.7);
    {
        let mut store = SweepStore::open(root.join("fig2")).unwrap();
        store.put(vec![(good_fp, good.clone())]).unwrap();
    }
    // One segment with a garbage line and a version-skewed line next to
    // nothing valid: damage a remote client must never decode-fail on.
    let future = entry_to_json(&Fingerprint::of_parts(1, &["future"]), &sample_entry(0.9))
        .unwrap()
        .to_string()
        .replace("\"v\":1", "\"v\":999");
    std::fs::write(
        root.join("fig2").join("seg-damaged.jsonl"),
        format!("not json at all\n{future}\n"),
    )
    .unwrap();

    let (server, addr) = spawn(&root);
    let mut client = RemoteStore::connect(&addr, "fig2").expect("connect");

    // The good entry still serves; the damaged lines are plain misses.
    let skewed_fp = Fingerprint::of_parts(1, &["future"]);
    assert_eq!(
        client.get_many(&[good_fp, skewed_fp]).expect("get_many"),
        vec![Some(good), None]
    );

    // The damage is *accounted*, on the server and through the client's
    // trait surface (the sweep report prints these).
    let stats = client.stats().expect("stats");
    assert_eq!(stats.corrupt_entries, 1);
    assert_eq!(stats.version_mismatches, 1);
    assert_eq!(client.corrupt_count(), 1);
    assert_eq!(client.version_mismatch_count(), 1);

    server.stop();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn path_escaping_namespaces_are_rejected_at_the_handshake() {
    let root = temp_root("badns");
    let (server, addr) = spawn(&root);
    for bad in ["../evil", "a/b", "", ".hidden"] {
        match RemoteStore::connect(&addr, bad) {
            Err(StoreNetError::Server(msg)) => {
                assert!(msg.contains("namespace"), "{bad:?}: {msg}");
            }
            other => panic!("namespace {bad:?} must be rejected, got {other:?}"),
        }
    }
    // The rejected handshakes created nothing — in particular nothing
    // *outside* the root.
    assert!(!root.parent().unwrap().join("evil").exists());
    server.stop();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn remote_evict_folds_duplicates_and_compacts_segments() {
    let root = temp_root("evict");
    let (server, addr) = spawn(&root);
    let fp_a = Fingerprint::of_parts(1, &["a"]);
    let fp_b = Fingerprint::of_parts(1, &["b"]);
    let fp_c = Fingerprint::of_parts(1, &["c"]);

    let mut client = RemoteStore::connect(&addr, "fig2").expect("connect");
    // Two overlapping batches leave two segments with `a` stored twice.
    client
        .put(vec![(fp_a, sample_entry(0.6)), (fp_b, sample_entry(0.7))])
        .expect("put 1");
    client
        .put(vec![(fp_a, sample_entry(0.6)), (fp_c, sample_entry(0.8))])
        .expect("put 2");
    let before = client.stats().expect("stats");
    assert_eq!(before.segments, 2);
    assert_eq!(before.duplicate_entries, 1);

    let report = client.evict().expect("evict");
    assert_eq!(report.segments_folded, 2);
    assert_eq!(report.duplicates_folded, 1);
    assert_eq!(report.entries_kept, 3);

    let after = client.stats().expect("stats");
    assert_eq!(after.segments, 1);
    assert_eq!(after.entries, 3);
    assert_eq!(after.duplicate_entries, 0);

    // The compacted namespace still answers everything.
    assert_eq!(client.snapshot().expect("snapshot").len(), 3);
    server.stop();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn stalled_sessions_are_timed_out_and_reclaimed() {
    let root = temp_root("stall");
    let server = StoreServer::spawn_with(
        "127.0.0.1:0",
        root.clone(),
        StoreServerOptions {
            read_timeout: Some(Duration::from_millis(100)),
        },
    )
    .expect("bind store-server");
    let addr = server.local_addr().to_string();

    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = ToStore::Hello {
        protocol: mfa_storenet::PROTOCOL_VERSION,
        namespace: Some("fig2".into()),
    }
    .encode()
    .unwrap();
    line.push('\n');
    (&stream).write_all(line.as_bytes()).unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(matches!(
        FromStore::decode(reply.trim_end()).unwrap(),
        FromStore::Ready { .. }
    ));
    // Silence: the server must reclaim the session thread instead of
    // parking it forever, answering a typed timeout error first.
    reply.clear();
    reader.read_line(&mut reply).unwrap();
    match FromStore::decode(reply.trim_end()).unwrap() {
        FromStore::Error { id, message } => {
            assert_eq!(id, 0);
            assert!(message.contains("timed out"), "{message}");
        }
        other => panic!("expected a timeout error frame, got {other:?}"),
    }
    // …and then closes the connection.
    reply.clear();
    assert_eq!(reader.read_line(&mut reply).unwrap(), 0, "expected EOF");

    // The server itself keeps serving fresh sessions.
    let mut client = RemoteStore::connect(&addr, "fig2").expect("connect after stall");
    assert_eq!(client.stats().expect("stats").namespaces, 1);
    server.stop();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn an_idle_timed_out_session_reconnects_transparently() {
    let root = temp_root("idle-reconnect");
    let server = StoreServer::spawn_with(
        "127.0.0.1:0",
        root.clone(),
        StoreServerOptions {
            read_timeout: Some(Duration::from_millis(100)),
        },
    )
    .expect("bind store-server");
    let addr = server.local_addr().to_string();

    let fp = Fingerprint::of_parts(1, &["a"]);
    let entry = sample_entry(0.6);
    let mut client = RemoteStore::connect(&addr, "fig2").expect("connect");
    client.put(vec![(fp, entry.clone())]).expect("put");

    // Outlive the server's idle timeout: the session is dropped under the
    // client (exactly what happens to a long-idle serve daemon's spill).
    std::thread::sleep(Duration::from_millis(400));

    // The next request must redial and replay instead of failing forever.
    assert_eq!(
        client.get_many(&[fp]).expect("get after idle drop"),
        vec![Some(entry)]
    );
    server.stop();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn a_hung_store_server_costs_a_bounded_typed_error_not_a_stall() {
    // A scripted peer that completes the handshake and the connect-time
    // stats exchange, then goes silent while keeping the socket open — the
    // "hung, not erroring" failure mode a spill backend must bound.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let peer = std::thread::spawn(move || {
        // Serve each dial attempt (the client retries once on a fresh
        // session) with handshake + stats, then hang.
        for _ in 0..2 {
            let Ok((stream, _)) = listener.accept() else {
                return;
            };
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            let answer = |frame: &FromStore| {
                let mut line = frame.encode().unwrap();
                line.push('\n');
                (&stream).write_all(line.as_bytes()).unwrap();
            };
            if reader.read_line(&mut line).is_err() {
                return;
            }
            answer(&FromStore::Ready {
                protocol: mfa_storenet::PROTOCOL_VERSION,
            });
            line.clear();
            if reader.read_line(&mut line).is_err() {
                return;
            }
            if let Ok(ToStore::Stats { id }) = ToStore::decode(line.trim_end()) {
                answer(&FromStore::Stats {
                    id,
                    stats: StoreServerStats::default(),
                });
            }
            // Read the next request and never answer it; hold the socket.
            line.clear();
            let _ = reader.read_line(&mut line);
            std::thread::sleep(Duration::from_millis(800));
        }
    });

    let mut client =
        RemoteStore::connect_with_timeout(&addr, "fig2", Some(Duration::from_millis(150)))
            .expect("connect");
    let started = Instant::now();
    let err = client
        .get_many(&[Fingerprint::of_parts(1, &["a"])])
        .expect_err("a hung server must surface a typed error");
    // Bounded: one timed-out attempt plus one timed-out retry, not forever.
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "took {:?}",
        started.elapsed()
    );
    assert!(!err.to_string().is_empty());
    peer.join().unwrap();
}

#[test]
fn a_client_shutdown_frame_stops_the_whole_server() {
    let root = temp_root("shutdown");
    let (server, addr) = spawn(&root);
    let client = RemoteStore::connect(&addr, "fig2").expect("connect");
    client.shutdown().expect("shutdown");
    let deadline = Instant::now() + Duration::from_secs(5);
    while !server.is_stopped() {
        assert!(Instant::now() < deadline, "server did not stop");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.stop();
    std::fs::remove_dir_all(&root).unwrap();
}
