//! The store-server: accept loop and per-connection sessions serving
//! namespaced [`SweepStore`] directories over the JSON-lines protocol.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use mfa_explore::store::{ResultStore, SweepStore};

use crate::error::StoreNetError;
use crate::protocol::{FromStore, GetQuery, StoreServerStats, ToStore, PROTOCOL_VERSION};

/// Longest namespace a client may bind (a directory name under the root).
const NAMESPACE_MAX_LEN: usize = 64;

/// Configuration of a [`StoreServer`].
#[derive(Debug, Clone)]
pub struct StoreServerOptions {
    /// Per-frame read timeout of a session: a connection producing no
    /// complete frame within this window is answered with a typed error and
    /// dropped, so a stalled client cannot park a session thread forever
    /// (mirroring the serve daemon's `ServeOptions::read_timeout`). Store
    /// sessions are strict request/reply — the server never owes a waiting
    /// client a reply while it reads — so no in-flight request can be
    /// timed out under a blocked client; the default is still generous
    /// because sweep clients legitimately compute between frames, and a
    /// [`RemoteStore`](crate::RemoteStore) whose idle session was dropped
    /// transparently redials on its next request anyway. `None` waits
    /// indefinitely.
    pub read_timeout: Option<Duration>,
}

impl Default for StoreServerOptions {
    fn default() -> Self {
        StoreServerOptions {
            read_timeout: Some(Duration::from_secs(300)),
        }
    }
}

/// Validates a client-supplied namespace before it becomes a directory name.
/// The namespace travels from an untrusted socket straight into a filesystem
/// path, so everything that could escape the root (`..`, separators, hidden
/// prefixes) is rejected, not sanitised.
fn validate_namespace(namespace: &str) -> Result<(), String> {
    if namespace.is_empty() {
        return Err("namespace must not be empty".into());
    }
    if namespace.len() > NAMESPACE_MAX_LEN {
        return Err(format!(
            "namespace longer than {NAMESPACE_MAX_LEN} characters"
        ));
    }
    if namespace.starts_with('.') {
        return Err(format!("namespace '{namespace}' must not start with '.'"));
    }
    if let Some(bad) = namespace
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')))
    {
        return Err(format!(
            "namespace '{namespace}' has forbidden character '{bad}' \
             (allowed: ASCII letters, digits, '.', '_', '-')"
        ));
    }
    Ok(())
}

/// One open namespace's store, individually locked so sessions on
/// different namespaces never serialize behind one store's disk I/O.
type SharedStore = Arc<Mutex<SweepStore>>;

/// State shared by the accept loop and the connection sessions.
struct Shared {
    stop: AtomicBool,
    root: PathBuf,
    options: StoreServerOptions,
    /// Open namespaces, one lock per store. A `BTreeMap` so stats
    /// aggregation walks them in a stable order; the map is append-only
    /// (stores stay open once bound), and its own lock is only held to look
    /// up or insert handles — never across store I/O.
    stores: Mutex<BTreeMap<String, SharedStore>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    puts: AtomicUsize,
}

impl Shared {
    fn stats(&self) -> StoreServerStats {
        // Snapshot the handles first so per-store stats (a disk-backed
        // index walk) never run under the namespace map lock.
        let stores: Vec<SharedStore> = {
            let map = self.stores.lock().expect("stores mutex poisoned");
            map.values().cloned().collect()
        };
        let mut stats = StoreServerStats {
            namespaces: stores.len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            ..StoreServerStats::default()
        };
        for store in stores {
            let s = store.lock().expect("store mutex poisoned").stats();
            stats.entries += s.entries;
            stats.segments += s.segments;
            stats.orphan_tmp += s.orphan_tmp;
            stats.duplicate_entries += s.duplicate_entries;
            stats.corrupt_entries += s.corrupt_entries;
            stats.version_mismatches += s.version_mismatches;
        }
        stats
    }
}

/// A running store-server bound to a TCP address, serving the namespaces
/// under one root directory.
///
/// [`spawn`](StoreServer::spawn) binds the listener and starts the accept
/// loop; each client connection gets its own session thread (exiting at
/// client EOF). [`stop`](StoreServer::stop) shuts the accept loop down and
/// joins it — sessions hold no dirty state (every `put` is committed to disk
/// before `put-ok` is written), so they are simply abandoned.
pub struct StoreServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl StoreServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving the store
    /// directories under `root` (created on first use per namespace) with
    /// [`StoreServerOptions::default`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreNetError::Io`] when the address cannot be bound.
    pub fn spawn(addr: &str, root: impl Into<PathBuf>) -> Result<StoreServer, StoreNetError> {
        Self::spawn_with(addr, root, StoreServerOptions::default())
    }

    /// Like [`spawn`](Self::spawn) with explicit [`StoreServerOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreNetError::Io`] when the address cannot be bound.
    pub fn spawn_with(
        addr: &str,
        root: impl Into<PathBuf>,
        options: StoreServerOptions,
    ) -> Result<StoreServer, StoreNetError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            root: root.into(),
            options,
            stores: Mutex::new(BTreeMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            puts: AtomicUsize::new(0),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(StoreServer {
            addr: local,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (with `:0` resolved to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once the server has been asked to stop (by a client's
    /// shutdown frame or a concurrent [`stop`](Self::stop)); the
    /// `store-server` binary polls this to know when to exit.
    pub fn is_stopped(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// A snapshot of the server's aggregate counters.
    pub fn stats(&self) -> StoreServerStats {
        self.shared.stats()
    }

    /// Stops the server: wakes the accept loop and joins it. Session
    /// threads exit when their clients disconnect; committed data is
    /// already on disk.
    pub fn stop(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                let shared = Arc::clone(shared);
                // Session threads are not joined: they exit at client EOF.
                std::thread::spawn(move || session_loop(stream, &shared));
            }
            Err(err) => {
                eprintln!("store-server: accept failed: {err}");
            }
        }
    }
}

/// Runs `op` against the session's bound namespace, or builds the error
/// frame when no namespace is bound yet. Only the one namespace's store
/// lock is taken, so sessions on other namespaces proceed concurrently.
fn with_bound_store<T>(
    bound: &Option<SharedStore>,
    id: usize,
    op: impl FnOnce(&mut SweepStore) -> Result<T, StoreNetError>,
) -> Result<T, FromStore> {
    let Some(store) = bound else {
        return Err(FromStore::Error {
            id,
            message: "no namespace bound: open the session with a \
                      store-hello carrying a namespace"
                .into(),
        });
    };
    let mut store = store.lock().expect("store mutex poisoned");
    op(&mut store).map_err(|err| FromStore::Error {
        id,
        message: err.to_string(),
    })
}

/// Serves one client session: handshake (which binds the namespace), then
/// get/put/stats/evict requests until EOF or shutdown.
fn session_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(err) => {
            eprintln!("store-server: cannot clone connection: {err}");
            return;
        }
    };
    if let Err(err) = stream.set_read_timeout(shared.options.read_timeout) {
        eprintln!("store-server: cannot arm read timeout: {err}");
        return;
    }
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut bound: Option<SharedStore> = None;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {}
            // A timed-out read surfaces as WouldBlock or TimedOut depending
            // on the platform. Sessions are strict request/reply — the
            // server never owes this client a reply while it waits here —
            // so a silent window this long means a stalled (or gone)
            // client, and the session thread is reclaimed. A RemoteStore
            // client that was merely idle redials on its next request.
            Err(err)
                if matches!(
                    err.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                let limit = shared
                    .options
                    .read_timeout
                    .expect("a read only times out when a timeout is armed");
                let _ = write_frame(
                    &mut writer,
                    &FromStore::Error {
                        id: 0,
                        message: format!("session timed out: no complete frame within {limit:?}"),
                    },
                );
                return;
            }
            Err(err) => {
                eprintln!("store-server: connection read failed: {err}");
                return;
            }
        }
        if line.trim().is_empty() {
            continue;
        }
        let frame = match ToStore::decode(line.trim_end()) {
            Ok(frame) => frame,
            Err(err) => {
                let _ = write_frame(
                    &mut writer,
                    &FromStore::Error {
                        id: 0,
                        message: format!("malformed frame: {err}"),
                    },
                );
                // A stream that desynchronized once cannot be trusted to
                // frame the next line either.
                return;
            }
        };
        let reply = match frame {
            ToStore::Hello {
                protocol,
                namespace,
            } => {
                if protocol != PROTOCOL_VERSION {
                    let _ = write_frame(
                        &mut writer,
                        &FromStore::Error {
                            id: 0,
                            message: format!(
                                "protocol version skew: store-server speaks \
                                 {PROTOCOL_VERSION}, client sent {protocol}"
                            ),
                        },
                    );
                    return;
                }
                match bind_namespace(shared, namespace) {
                    Ok(store) => {
                        bound = store;
                        FromStore::Ready {
                            protocol: PROTOCOL_VERSION,
                        }
                    }
                    Err(message) => {
                        let _ = write_frame(&mut writer, &FromStore::Error { id: 0, message });
                        return;
                    }
                }
            }
            ToStore::Get { id, query } => {
                match with_bound_store(&bound, id, |store| serve_get(store, &query)) {
                    Ok(entries) => {
                        if matches!(query, GetQuery::Points(_)) {
                            let hits = entries.iter().filter(|slot| slot.is_some()).count();
                            shared.hits.fetch_add(hits, Ordering::Relaxed);
                            shared
                                .misses
                                .fetch_add(entries.len() - hits, Ordering::Relaxed);
                        }
                        FromStore::Entries { id, entries }
                    }
                    Err(reply) => reply,
                }
            }
            ToStore::Put { id, entries } => {
                let appended = entries.len();
                match with_bound_store(&bound, id, |store| {
                    store.put(entries).map_err(StoreNetError::from)
                }) {
                    Ok(()) => {
                        shared.puts.fetch_add(appended, Ordering::Relaxed);
                        FromStore::PutOk { id, appended }
                    }
                    Err(reply) => reply,
                }
            }
            ToStore::Stats { id } => FromStore::Stats {
                id,
                stats: shared.stats(),
            },
            ToStore::Evict { id } => {
                match with_bound_store(&bound, id, |store| store.gc().map_err(StoreNetError::from))
                {
                    Ok(report) => FromStore::Evicted { id, report },
                    Err(reply) => reply,
                }
            }
            ToStore::Shutdown => {
                shared.stop.store(true, Ordering::SeqCst);
                // Unblock the accept loop exactly like `StoreServer::stop`.
                if let Ok(local) = writer.local_addr() {
                    let _ = TcpStream::connect(local);
                }
                return;
            }
        };
        if write_frame(&mut writer, &reply).is_err() {
            return;
        }
    }
}

/// Validates and opens (creating if needed) the namespace a handshake
/// binds, handing the session its per-namespace store lock.
fn bind_namespace(
    shared: &Shared,
    namespace: Option<String>,
) -> Result<Option<SharedStore>, String> {
    let Some(namespace) = namespace else {
        return Ok(None);
    };
    validate_namespace(&namespace)?;
    let mut stores = shared.stores.lock().expect("stores mutex poisoned");
    if let Some(store) = stores.get(&namespace) {
        return Ok(Some(Arc::clone(store)));
    }
    let store = SweepStore::open(shared.root.join(&namespace))
        .map_err(|err| format!("cannot open namespace '{namespace}': {err}"))?;
    let store = Arc::new(Mutex::new(store));
    stores.insert(namespace, Arc::clone(&store));
    Ok(Some(store))
}

type Slots = Vec<Option<(mfa_alloc::fingerprint::Fingerprint, mfa_explore::StoreEntry)>>;

fn serve_get(store: &mut SweepStore, query: &GetQuery) -> Result<Slots, StoreNetError> {
    Ok(match query {
        GetQuery::Points(fps) => store
            .get_many(fps)?
            .into_iter()
            .zip(fps)
            .map(|(slot, fp)| slot.map(|entry| (*fp, entry)))
            .collect(),
        GetQuery::Series(series) => store.get_series(series)?.into_iter().map(Some).collect(),
        GetQuery::All => store.snapshot()?.into_iter().map(Some).collect(),
    })
}

fn write_frame(writer: &mut TcpStream, frame: &FromStore) -> Result<(), StoreNetError> {
    let line = frame.encode()?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespace_validation_rejects_path_escapes() {
        for bad in [
            "",
            "..",
            "../evil",
            "a/b",
            "a\\b",
            ".hidden",
            "fig 2",
            "fig\u{e9}",
        ] {
            assert!(validate_namespace(bad).is_err(), "{bad:?}");
        }
        for good in ["fig2", "quick.zero-timing", "serve-cache", "A_b-c.9"] {
            assert!(validate_namespace(good).is_ok(), "{good:?}");
        }
        assert!(validate_namespace(&"n".repeat(NAMESPACE_MAX_LEN)).is_ok());
        assert!(validate_namespace(&"n".repeat(NAMESPACE_MAX_LEN + 1)).is_err());
    }
}
