//! `store-server` — the shared result-store daemon and its lifecycle
//! tooling.
//!
//! ```text
//! store-server --dir DIR --listen ADDR [--read-timeout-ms MS]
//!     bind ADDR (e.g. 127.0.0.1:0), print the bound address to stdout,
//!     then serve the store namespaces under DIR until a client sends a
//!     shutdown frame; sessions producing no frame within MS milliseconds
//!     are dropped (default 300000; 0 waits forever)
//! store-server --dir DIR --stats
//!     print aggregate stats of the store directories under DIR (DIR itself
//!     plus its immediate subdirectories) without starting a server
//! store-server --dir DIR --gc
//!     run the GC/compaction pass on every store directory under DIR and
//!     print what it folded
//! store-server --connect ADDR [--namespace NS] --stats|--gc|--shutdown
//!     talk to a live store-server: print its aggregate stats, compact the
//!     given namespace, or shut it down
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use mfa_explore::{GcReport, SweepStore};
use mfa_storenet::{RemoteStore, StoreServer, StoreServerOptions, StoreServerStats};

enum Action {
    Listen(String),
    Stats,
    Gc,
    Shutdown,
}

struct Args {
    dir: Option<PathBuf>,
    connect: Option<String>,
    namespace: String,
    options: StoreServerOptions,
    action: Action,
}

fn parse_args() -> Result<Args, String> {
    let mut dir = None;
    let mut connect = None;
    let mut namespace = "default".to_owned();
    let mut options = StoreServerOptions::default();
    let mut action = None;
    let set_action = |next: Action, current: &mut Option<Action>| -> Result<(), String> {
        if current.is_some() {
            return Err("pick exactly one of --listen/--stats/--gc/--shutdown".into());
        }
        *current = Some(next);
        Ok(())
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--dir" => dir = Some(PathBuf::from(iter.next().ok_or("--dir needs a path")?)),
            "--connect" => {
                connect = Some(iter.next().ok_or("--connect needs an address")?);
            }
            "--namespace" => {
                namespace = iter.next().ok_or("--namespace needs a name")?;
            }
            "--listen" => {
                let addr = iter.next().ok_or("--listen needs an address")?;
                set_action(Action::Listen(addr), &mut action)?;
            }
            "--read-timeout-ms" => {
                let ms: u64 = iter
                    .next()
                    .ok_or("--read-timeout-ms needs a value")?
                    .parse()
                    .map_err(|_| "--read-timeout-ms needs a nonnegative integer".to_owned())?;
                options.read_timeout = match ms {
                    0 => None,
                    ms => Some(Duration::from_millis(ms)),
                };
            }
            "--stats" => set_action(Action::Stats, &mut action)?,
            "--gc" => set_action(Action::Gc, &mut action)?,
            "--shutdown" => set_action(Action::Shutdown, &mut action)?,
            other => {
                return Err(format!(
                    "unknown flag {other} (see the header of store_server.rs)"
                ));
            }
        }
    }
    if dir.is_some() == connect.is_some() {
        return Err("pick exactly one of --dir DIR (local) or --connect ADDR (wire)".into());
    }
    Ok(Args {
        dir,
        connect,
        namespace,
        options,
        action: action.ok_or("pick an action: --listen/--stats/--gc/--shutdown")?,
    })
}

fn print_stats(stats: &StoreServerStats) {
    println!(
        "namespaces={} entries={} segments={} orphan_tmp={} duplicate_entries={} \
         corrupt_entries={} version_mismatches={} hits={} misses={} puts={}",
        stats.namespaces,
        stats.entries,
        stats.segments,
        stats.orphan_tmp,
        stats.duplicate_entries,
        stats.corrupt_entries,
        stats.version_mismatches,
        stats.hits,
        stats.misses,
        stats.puts
    );
}

fn print_gc(label: &str, report: &GcReport) {
    println!(
        "{label}: segments_folded={} orphans_removed={} entries_kept={} \
         duplicates_folded={} lines_dropped={}",
        report.segments_folded,
        report.orphans_removed,
        report.entries_kept,
        report.duplicates_folded,
        report.lines_dropped
    );
}

/// Store directories under `root` for the offline modes: `root` itself when
/// it holds segments, plus every immediate subdirectory holding any (the
/// layout a store-server's namespaces or `dse`'s per-figure subdirs leave
/// behind).
fn local_store_dirs(root: &Path) -> Result<Vec<PathBuf>, String> {
    let holds_segments = |dir: &Path| -> bool {
        std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .flatten()
                    .any(|e| e.path().extension().is_some_and(|ext| ext == "jsonl"))
            })
            .unwrap_or(false)
    };
    let mut dirs = Vec::new();
    if holds_segments(root) {
        dirs.push(root.to_path_buf());
    }
    let listing =
        std::fs::read_dir(root).map_err(|err| format!("cannot list {}: {err}", root.display()))?;
    let mut subdirs: Vec<PathBuf> = listing
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir() && holds_segments(p))
        .collect();
    subdirs.sort();
    dirs.extend(subdirs);
    if dirs.is_empty() {
        return Err(format!(
            "no store segments under {} (nothing to report)",
            root.display()
        ));
    }
    Ok(dirs)
}

fn run_local(root: &Path, action: &Action) -> Result<(), String> {
    let dirs = local_store_dirs(root)?;
    let mut total = StoreServerStats {
        namespaces: dirs.len(),
        ..StoreServerStats::default()
    };
    for dir in &dirs {
        let mut store =
            SweepStore::open(dir.clone()).map_err(|err| format!("{}: {err}", dir.display()))?;
        if matches!(action, Action::Gc) {
            let report = store
                .gc()
                .map_err(|err| format!("{}: {err}", dir.display()))?;
            print_gc(&dir.display().to_string(), &report);
        }
        let stats = store.stats();
        total.entries += stats.entries;
        total.segments += stats.segments;
        total.orphan_tmp += stats.orphan_tmp;
        total.duplicate_entries += stats.duplicate_entries;
        total.corrupt_entries += stats.corrupt_entries;
        total.version_mismatches += stats.version_mismatches;
    }
    print_stats(&total);
    Ok(())
}

fn run_wire(addr: &str, namespace: &str, action: &Action) -> Result<(), String> {
    let err_ctx = |err: mfa_storenet::StoreNetError| format!("store-server at {addr}: {err}");
    let mut client = RemoteStore::connect(addr, namespace).map_err(err_ctx)?;
    match action {
        Action::Stats => {
            let stats = client.stats().map_err(err_ctx)?;
            print_stats(&stats);
        }
        Action::Gc => {
            let report = client.evict().map_err(err_ctx)?;
            print_gc(namespace, &report);
        }
        Action::Shutdown => {
            client.shutdown().map_err(err_ctx)?;
            println!("shutdown sent to {addr}");
        }
        Action::Listen(_) => unreachable!("--listen is rejected with --connect at parse time"),
    }
    Ok(())
}

fn serve(dir: PathBuf, addr: &str, options: StoreServerOptions) -> Result<(), String> {
    let server = StoreServer::spawn_with(addr, dir, options)
        .map_err(|err| format!("cannot bind {addr}: {err}"))?;
    // Print the bound address (resolves :0 to the actual port) so a parent
    // process can point clients at it — same convention as serve and
    // sweep-worker.
    println!("listening on {}", server.local_addr());
    let _ = std::io::Write::flush(&mut std::io::stdout());

    // The server runs until a client's shutdown frame flips the stop flag;
    // park-and-poll keeps the main thread cheap without a dedicated signal.
    while !server.is_stopped() {
        std::thread::park_timeout(Duration::from_millis(200));
    }
    let stats = server.stats();
    server.stop();
    print_stats(&stats);
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("store-server: {msg}");
            return ExitCode::from(2);
        }
    };
    let run = match (&args.action, args.dir, args.connect) {
        (Action::Listen(addr), Some(dir), None) => serve(dir, addr, args.options),
        (Action::Listen(_), None, Some(_)) => {
            Err("--listen serves a local --dir, not a --connect peer".into())
        }
        (action, Some(dir), None) => match action {
            Action::Shutdown => Err("--shutdown needs --connect ADDR (a live server)".into()),
            action => run_local(&dir, action),
        },
        (action, None, Some(addr)) => run_wire(&addr, &args.namespace, action),
        _ => unreachable!("parse_args enforces exactly one of --dir/--connect"),
    };
    match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("store-server: {msg}");
            ExitCode::FAILURE
        }
    }
}
