//! Networked shared result store for multi-host sweeps.
//!
//! The persistent sweep store (`mfa_explore::store`) keeps solved points in
//! a content-addressed directory so repeated sweeps replay instead of
//! recompute. This crate puts that directory behind a TCP daemon so *many*
//! hosts share one cache:
//!
//! - [`StoreServer`] — the store-server: serves the namespaces under one
//!   root directory over the workspace's JSON-lines wire protocol
//!   ([`protocol`], version-locked to the dispatcher's and daemon's frames
//!   through the shared [`protocol::PROTOCOL_VERSION`]).
//! - [`RemoteStore`] — the client: implements the same
//!   [`ResultStore`](mfa_explore::ResultStore) trait a local
//!   [`SweepStore`](mfa_explore::SweepStore) does, so the threaded and
//!   sharded executors, `dse --store tcp://host:port`, and the allocation
//!   daemon's warm-cache spill all consume a shared store with no special
//!   casing. Entries cross the wire in the store's canonical line encoding,
//!   so remote replay is byte-identical to local replay.
//! - Lifecycle tooling — `stats` frames report aggregate hit/miss/damage
//!   counters, `evict` frames run the store's GC/compaction pass (fold
//!   duplicate fingerprints, drop orphaned temp files) remotely; the
//!   `store-server` binary exposes both against live servers and offline
//!   directories.
//!
//! Damage never propagates: corrupt or version-mismatched entries answer as
//! typed misses (counted in stats), so the worst a damaged shared cache can
//! cost any client is recomputation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod protocol;
pub mod server;

pub use client::{store_url, RemoteStore};
pub use error::StoreNetError;
pub use protocol::{FromStore, GetQuery, StoreServerStats, ToStore, PROTOCOL_VERSION};
pub use server::{StoreServer, StoreServerOptions};
