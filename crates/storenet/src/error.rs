//! Error type of the networked store layer.

use std::fmt;

use mfa_explore::wire::WireError;
use mfa_explore::ExploreError;

/// Error returned by the store-server, the [`RemoteStore`](crate::RemoteStore)
/// client, and the store frame codec.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreNetError {
    /// A transport-level I/O failure (connect, read, write, bind).
    Io(std::io::Error),
    /// A frame failed to encode or decode.
    Wire(WireError),
    /// The peer violated the session protocol (version skew, an unexpected
    /// frame, a reply for the wrong request id).
    Protocol(String),
    /// The store-server reported a request-level failure (unknown namespace,
    /// store I/O on its side). Carries the server's message verbatim.
    Server(String),
    /// A local store operation failed (the server's own directory, or a
    /// local spill dir used through the same client surface).
    Store(ExploreError),
}

impl fmt::Display for StoreNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreNetError::Io(err) => write!(f, "I/O error: {err}"),
            StoreNetError::Wire(err) => write!(f, "wire error: {err}"),
            StoreNetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            StoreNetError::Server(msg) => write!(f, "store-server error: {msg}"),
            StoreNetError::Store(err) => write!(f, "store error: {err}"),
        }
    }
}

impl std::error::Error for StoreNetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreNetError::Io(err) => Some(err),
            StoreNetError::Wire(err) => Some(err),
            StoreNetError::Store(err) => Some(err),
            StoreNetError::Protocol(_) | StoreNetError::Server(_) => None,
        }
    }
}

impl From<std::io::Error> for StoreNetError {
    fn from(err: std::io::Error) -> Self {
        StoreNetError::Io(err)
    }
}

impl From<WireError> for StoreNetError {
    fn from(err: WireError) -> Self {
        StoreNetError::Wire(err)
    }
}

impl From<ExploreError> for StoreNetError {
    fn from(err: ExploreError) -> Self {
        StoreNetError::Store(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_context() {
        assert!(StoreNetError::Protocol("get before hello".into())
            .to_string()
            .contains("get before hello"));
        assert!(StoreNetError::Server("unknown namespace".into())
            .to_string()
            .contains("namespace"));
        assert!(StoreNetError::Wire(WireError::NonFinite("budget"))
            .to_string()
            .contains("budget"));
    }
}
