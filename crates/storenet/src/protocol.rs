//! The JSON-lines session protocol between store clients and the
//! store-server.
//!
//! Every frame is one compact JSON object on one `\n`-terminated line with a
//! `"type"` tag, exactly like the sweep dispatcher's and the allocation
//! daemon's frames; all three families share one version constant
//! ([`PROTOCOL_VERSION`]) so any incompatible change to any of them is a
//! single bump visible to every JSON-lines peer in the workspace. Entry
//! payloads are the store's own canonical line documents
//! ([`mfa_explore::store::entry_to_json`]), so an entry crosses the wire in
//! exactly the bytes a segment file would hold — floats round-trip
//! bit-for-bit, which is what keeps remote replay byte-identical to local.
//!
//! Session shape (the client is always the initiator):
//!
//! ```text
//! client → server   {"type":"store-hello","protocol":5,"namespace":"fig2"}
//! server → client   {"type":"store-ready","protocol":5}
//! client → server   {"type":"get","id":1,"fps":["<hex>",…]}       (points)
//!                   {"type":"get","id":2,"series":"<hex>"}        (one family)
//!                   {"type":"get","id":3,"all":true}              (snapshot)
//! server → client   {"type":"entries","id":1,"entries":[{…}|null,…]}
//! client → server   {"type":"put","id":4,"entries":[{…},…]}
//! server → client   {"type":"put-ok","id":4,"appended":3}
//! client → server   {"type":"stats","id":5}
//! server → client   {"type":"stats","id":5,"namespaces":1,…}
//! client → server   {"type":"evict","id":6}
//! server → client   {"type":"evicted","id":6,"segments_folded":2,…}
//!                   {"type":"error","id":0,"message":"…"}         (failures)
//! client → server   {"type":"shutdown"}
//! ```
//!
//! A `get` over point fingerprints answers one slot per requested
//! fingerprint, `null` for misses — absent, corrupt and version-mismatched
//! entries all answer as typed misses, never as errors, because the store is
//! a cache and a damaged cache must only ever cost recomputation.

use mfa_alloc::fingerprint::Fingerprint;
use mfa_explore::json::Json;
use mfa_explore::store::{entry_from_json, entry_to_json, GcReport, StoreEntry};
use mfa_explore::wire::WireError;

/// Protocol version of the store frames — shared with the sweep dispatcher
/// and the allocation daemon (see
/// [`mfa_dispatch::protocol::PROTOCOL_VERSION`], which documents the version
/// history).
pub use mfa_dispatch::protocol::PROTOCOL_VERSION;

/// What a `get` frame asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GetQuery {
    /// A batched point lookup: one reply slot per fingerprint, in order.
    Points(Vec<Fingerprint>),
    /// Every entry of one series (request family), sorted by fingerprint.
    Series(Fingerprint),
    /// A snapshot of every entry in the namespace, sorted by fingerprint.
    All,
}

/// Aggregate counters of a running store-server: per-directory health summed
/// over every open namespace, plus the server's own hit/miss/put traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreServerStats {
    /// Namespaces opened so far (one store directory each).
    pub namespaces: usize,
    /// Valid entries indexed across all open namespaces.
    pub entries: usize,
    /// Segment files across all open namespaces.
    pub segments: usize,
    /// Orphaned `.tmp` files across all open namespaces.
    pub orphan_tmp: usize,
    /// Stored lines shadowed by a duplicate fingerprint.
    pub duplicate_entries: usize,
    /// Corrupt or truncated lines skipped when opening.
    pub corrupt_entries: usize,
    /// Lines skipped for a store-version mismatch when opening.
    pub version_mismatches: usize,
    /// Point lookups answered with an entry.
    pub hits: usize,
    /// Point lookups answered with a miss.
    pub misses: usize,
    /// Entries appended by `put` frames.
    pub puts: usize,
}

/// A frame sent from a client to the store-server.
#[derive(Debug, Clone, PartialEq)]
pub enum ToStore {
    /// Opens a session and binds it to a namespace (one store directory).
    /// `None` binds no namespace: `stats` and `shutdown` still work, data
    /// frames answer an error.
    Hello {
        /// Protocol version of the client.
        protocol: usize,
        /// Namespace to bind (opened — and created — at the handshake).
        namespace: Option<String>,
    },
    /// A read request against the bound namespace.
    Get {
        /// Client-chosen request id, echoed on the reply.
        id: usize,
        /// What to read.
        query: GetQuery,
    },
    /// Persists a batch of entries atomically in the bound namespace.
    Put {
        /// Client-chosen request id, echoed on the reply.
        id: usize,
        /// The entries, in the store's canonical line encoding.
        entries: Vec<(Fingerprint, StoreEntry)>,
    },
    /// Asks for the server's aggregate counters.
    Stats {
        /// Client-chosen request id, echoed on the reply.
        id: usize,
    },
    /// Runs a GC/compaction pass on the bound namespace.
    Evict {
        /// Client-chosen request id, echoed on the reply.
        id: usize,
    },
    /// Stops the store-server (all connections, not just this session).
    Shutdown,
}

/// A frame sent from the store-server to a client.
#[derive(Debug, Clone, PartialEq)]
pub enum FromStore {
    /// Acknowledges [`ToStore::Hello`].
    Ready {
        /// Protocol version of the server.
        protocol: usize,
    },
    /// Answers a [`ToStore::Get`]: one slot per requested point fingerprint
    /// (misses are `None`), or every matching entry for series/snapshot
    /// queries.
    Entries {
        /// Request id being answered.
        id: usize,
        /// The entries.
        entries: Vec<Option<(Fingerprint, StoreEntry)>>,
    },
    /// Acknowledges a [`ToStore::Put`].
    PutOk {
        /// Request id being answered.
        id: usize,
        /// Number of entries appended.
        appended: usize,
    },
    /// Answers a [`ToStore::Stats`].
    Stats {
        /// Request id being answered.
        id: usize,
        /// The aggregate counters.
        stats: StoreServerStats,
    },
    /// Answers a [`ToStore::Evict`] with the compaction report.
    Evicted {
        /// Request id being answered.
        id: usize,
        /// What the GC pass did.
        report: GcReport,
    },
    /// The request failed (no namespace bound, invalid namespace, store
    /// I/O on the server side).
    Error {
        /// Request id being answered (0 when the frame could not be decoded
        /// far enough to learn it).
        id: usize,
        /// What went wrong.
        message: String,
    },
}

fn type_tag(doc: &Json) -> Result<&str, WireError> {
    doc.get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::Schema("frame needs a string 'type' tag".into()))
}

fn usize_field(doc: &Json, key: &str) -> Result<usize, WireError> {
    doc.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| WireError::Schema(format!("frame field '{key}' must be an integer")))
}

fn str_field<'a>(doc: &'a Json, key: &str) -> Result<&'a str, WireError> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::Schema(format!("frame field '{key}' must be a string")))
}

fn fingerprint_of(raw: &str) -> Result<Fingerprint, WireError> {
    raw.parse()
        .map_err(|_| WireError::Invalid(format!("'{raw}' is not a fingerprint")))
}

fn entry_doc(fp: &Fingerprint, entry: &StoreEntry) -> Result<Json, WireError> {
    // The store's codec reports non-finite floats as ExploreError::Store;
    // fold that into the wire error domain the frame codec lives in.
    entry_to_json(fp, entry).map_err(|err| WireError::Invalid(err.to_string()))
}

impl ToStore {
    /// Encodes the frame as one JSON line (no trailing newline).
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] when an entry payload carries a NaN/infinite
    /// float.
    pub fn encode(&self) -> Result<String, WireError> {
        let doc = match self {
            ToStore::Hello {
                protocol,
                namespace,
            } => Json::obj(vec![
                ("type", Json::str("store-hello")),
                ("protocol", Json::Num(*protocol as f64)),
                (
                    "namespace",
                    match namespace {
                        Some(ns) => Json::str(ns.as_str()),
                        None => Json::Null,
                    },
                ),
            ]),
            ToStore::Get { id, query } => {
                let mut fields = vec![("type", Json::str("get")), ("id", Json::Num(*id as f64))];
                match query {
                    GetQuery::Points(fps) => fields.push((
                        "fps",
                        Json::Arr(fps.iter().map(|fp| Json::str(fp.to_hex())).collect()),
                    )),
                    GetQuery::Series(series) => {
                        fields.push(("series", Json::str(series.to_hex())));
                    }
                    GetQuery::All => fields.push(("all", Json::Bool(true))),
                }
                Json::obj(fields)
            }
            ToStore::Put { id, entries } => {
                let docs = entries
                    .iter()
                    .map(|(fp, entry)| entry_doc(fp, entry))
                    .collect::<Result<Vec<_>, WireError>>()?;
                Json::obj(vec![
                    ("type", Json::str("put")),
                    ("id", Json::Num(*id as f64)),
                    ("entries", Json::Arr(docs)),
                ])
            }
            ToStore::Stats { id } => Json::obj(vec![
                ("type", Json::str("stats")),
                ("id", Json::Num(*id as f64)),
            ]),
            ToStore::Evict { id } => Json::obj(vec![
                ("type", Json::str("evict")),
                ("id", Json::Num(*id as f64)),
            ]),
            ToStore::Shutdown => Json::obj(vec![("type", Json::str("shutdown"))]),
        };
        Ok(doc.to_string())
    }

    /// Decodes one client→server line.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed JSON, unknown frame types, or
    /// invalid payloads. A corrupt *entry* inside a `put` is a frame error
    /// here (the sender built it from live data); damaged entries at rest
    /// are the server's open-scan concern, not the codec's.
    pub fn decode(line: &str) -> Result<ToStore, WireError> {
        let doc = Json::parse(line).map_err(|err| WireError::Parse(err.to_string()))?;
        match type_tag(&doc)? {
            "store-hello" => {
                let namespace = match doc
                    .get("namespace")
                    .ok_or_else(|| WireError::Schema("store-hello needs 'namespace'".into()))?
                {
                    Json::Null => None,
                    other => Some(
                        other
                            .as_str()
                            .ok_or_else(|| {
                                WireError::Schema("'namespace' must be a string or null".into())
                            })?
                            .to_owned(),
                    ),
                };
                Ok(ToStore::Hello {
                    protocol: usize_field(&doc, "protocol")?,
                    namespace,
                })
            }
            "get" => {
                let id = usize_field(&doc, "id")?;
                let query =
                    if let Some(fps) = doc.get("fps") {
                        let fps = fps
                            .as_arr()
                            .ok_or_else(|| WireError::Schema("'fps' must be an array".into()))?
                            .iter()
                            .map(|item| {
                                fingerprint_of(item.as_str().ok_or_else(|| {
                                    WireError::Schema("'fps' entries must be strings".into())
                                })?)
                            })
                            .collect::<Result<Vec<_>, WireError>>()?;
                        GetQuery::Points(fps)
                    } else if let Some(series) = doc.get("series") {
                        GetQuery::Series(fingerprint_of(series.as_str().ok_or_else(|| {
                            WireError::Schema("'series' must be a string".into())
                        })?)?)
                    } else if doc.get("all").and_then(Json::as_bool) == Some(true) {
                        GetQuery::All
                    } else {
                        return Err(WireError::Schema(
                            "get frame needs 'fps', 'series' or 'all':true".into(),
                        ));
                    };
                Ok(ToStore::Get { id, query })
            }
            "put" => {
                let entries = doc
                    .get("entries")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| WireError::Schema("put frame needs an 'entries' array".into()))?
                    .iter()
                    .map(|item| {
                        entry_from_json(item)?.ok_or_else(|| {
                            WireError::Invalid("put entry has a mismatched store version".into())
                        })
                    })
                    .collect::<Result<Vec<_>, WireError>>()?;
                Ok(ToStore::Put {
                    id: usize_field(&doc, "id")?,
                    entries,
                })
            }
            "stats" => Ok(ToStore::Stats {
                id: usize_field(&doc, "id")?,
            }),
            "evict" => Ok(ToStore::Evict {
                id: usize_field(&doc, "id")?,
            }),
            "shutdown" => Ok(ToStore::Shutdown),
            other => Err(WireError::Schema(format!(
                "unknown store client frame type '{other}'"
            ))),
        }
    }
}

impl FromStore {
    /// Encodes the frame as one JSON line (no trailing newline).
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] when an entry payload carries a NaN/infinite
    /// float.
    pub fn encode(&self) -> Result<String, WireError> {
        let doc = match self {
            FromStore::Ready { protocol } => Json::obj(vec![
                ("type", Json::str("store-ready")),
                ("protocol", Json::Num(*protocol as f64)),
            ]),
            FromStore::Entries { id, entries } => {
                let docs = entries
                    .iter()
                    .map(|slot| match slot {
                        Some((fp, entry)) => entry_doc(fp, entry),
                        None => Ok(Json::Null),
                    })
                    .collect::<Result<Vec<_>, WireError>>()?;
                Json::obj(vec![
                    ("type", Json::str("entries")),
                    ("id", Json::Num(*id as f64)),
                    ("entries", Json::Arr(docs)),
                ])
            }
            FromStore::PutOk { id, appended } => Json::obj(vec![
                ("type", Json::str("put-ok")),
                ("id", Json::Num(*id as f64)),
                ("appended", Json::Num(*appended as f64)),
            ]),
            FromStore::Stats { id, stats } => Json::obj(vec![
                ("type", Json::str("stats")),
                ("id", Json::Num(*id as f64)),
                ("namespaces", Json::Num(stats.namespaces as f64)),
                ("entries", Json::Num(stats.entries as f64)),
                ("segments", Json::Num(stats.segments as f64)),
                ("orphan_tmp", Json::Num(stats.orphan_tmp as f64)),
                (
                    "duplicate_entries",
                    Json::Num(stats.duplicate_entries as f64),
                ),
                ("corrupt_entries", Json::Num(stats.corrupt_entries as f64)),
                (
                    "version_mismatches",
                    Json::Num(stats.version_mismatches as f64),
                ),
                ("hits", Json::Num(stats.hits as f64)),
                ("misses", Json::Num(stats.misses as f64)),
                ("puts", Json::Num(stats.puts as f64)),
            ]),
            FromStore::Evicted { id, report } => Json::obj(vec![
                ("type", Json::str("evicted")),
                ("id", Json::Num(*id as f64)),
                ("segments_folded", Json::Num(report.segments_folded as f64)),
                ("orphans_removed", Json::Num(report.orphans_removed as f64)),
                ("entries_kept", Json::Num(report.entries_kept as f64)),
                (
                    "duplicates_folded",
                    Json::Num(report.duplicates_folded as f64),
                ),
                ("lines_dropped", Json::Num(report.lines_dropped as f64)),
            ]),
            FromStore::Error { id, message } => Json::obj(vec![
                ("type", Json::str("error")),
                ("id", Json::Num(*id as f64)),
                ("message", Json::str(message.as_str())),
            ]),
        };
        Ok(doc.to_string())
    }

    /// Decodes one server→client line.
    ///
    /// Entry slots that decode to a mismatched store version become `None`
    /// — a typed miss. The client never fails on a version-skewed entry; it
    /// simply recomputes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed JSON, unknown frame types, or
    /// invalid payloads — a client treats any of these as a broken session.
    pub fn decode(line: &str) -> Result<FromStore, WireError> {
        let doc = Json::parse(line).map_err(|err| WireError::Parse(err.to_string()))?;
        match type_tag(&doc)? {
            "store-ready" => Ok(FromStore::Ready {
                protocol: usize_field(&doc, "protocol")?,
            }),
            "entries" => {
                let entries = doc
                    .get("entries")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| {
                        WireError::Schema("entries frame needs an 'entries' array".into())
                    })?
                    .iter()
                    .map(|item| match item {
                        Json::Null => Ok(None),
                        other => entry_from_json(other),
                    })
                    .collect::<Result<Vec<_>, WireError>>()?;
                Ok(FromStore::Entries {
                    id: usize_field(&doc, "id")?,
                    entries,
                })
            }
            "put-ok" => Ok(FromStore::PutOk {
                id: usize_field(&doc, "id")?,
                appended: usize_field(&doc, "appended")?,
            }),
            "stats" => Ok(FromStore::Stats {
                id: usize_field(&doc, "id")?,
                stats: StoreServerStats {
                    namespaces: usize_field(&doc, "namespaces")?,
                    entries: usize_field(&doc, "entries")?,
                    segments: usize_field(&doc, "segments")?,
                    orphan_tmp: usize_field(&doc, "orphan_tmp")?,
                    duplicate_entries: usize_field(&doc, "duplicate_entries")?,
                    corrupt_entries: usize_field(&doc, "corrupt_entries")?,
                    version_mismatches: usize_field(&doc, "version_mismatches")?,
                    hits: usize_field(&doc, "hits")?,
                    misses: usize_field(&doc, "misses")?,
                    puts: usize_field(&doc, "puts")?,
                },
            }),
            "evicted" => Ok(FromStore::Evicted {
                id: usize_field(&doc, "id")?,
                report: GcReport {
                    segments_folded: usize_field(&doc, "segments_folded")?,
                    orphans_removed: usize_field(&doc, "orphans_removed")?,
                    entries_kept: usize_field(&doc, "entries_kept")?,
                    duplicates_folded: usize_field(&doc, "duplicates_folded")?,
                    lines_dropped: usize_field(&doc, "lines_dropped")?,
                },
            }),
            "error" => Ok(FromStore::Error {
                id: usize_field(&doc, "id")?,
                message: str_field(&doc, "message")?.to_owned(),
            }),
            other => Err(WireError::Schema(format!(
                "unknown store server frame type '{other}'"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfa_alloc::solver::WarmStart;
    use mfa_platform::ResourceBudget;

    fn sample_entry(tag: &str) -> (Fingerprint, StoreEntry) {
        (
            Fingerprint::of_parts(1, &[tag]),
            StoreEntry {
                series: Fingerprint::of_parts(1, &["series"]),
                budget: ResourceBudget::uniform(0.7),
                point: None,
                warm: WarmStart::none()
                    // A long-binary-expansion float exercises the
                    // shortest-round-trip encoder, not just tidy literals.
                    .with_relaxed_ii(0.1 + 0.2)
                    .with_cu_counts(vec![3, 1, 4]),
            },
        )
    }

    #[test]
    fn handshake_and_control_frames_match_their_goldens_exactly() {
        // The v5 store handshake bytes are the protocol's stable surface:
        // any drift here is an incompatible change and must bump the shared
        // PROTOCOL_VERSION.
        assert_eq!(
            ToStore::Hello {
                protocol: PROTOCOL_VERSION,
                namespace: Some("fig2".into()),
            }
            .encode()
            .unwrap(),
            r#"{"type":"store-hello","protocol":5,"namespace":"fig2"}"#
        );
        assert_eq!(
            ToStore::Hello {
                protocol: PROTOCOL_VERSION,
                namespace: None,
            }
            .encode()
            .unwrap(),
            r#"{"type":"store-hello","protocol":5,"namespace":null}"#
        );
        assert_eq!(
            FromStore::Ready {
                protocol: PROTOCOL_VERSION
            }
            .encode()
            .unwrap(),
            r#"{"type":"store-ready","protocol":5}"#
        );
        assert_eq!(
            ToStore::Stats { id: 7 }.encode().unwrap(),
            r#"{"type":"stats","id":7}"#
        );
        assert_eq!(
            ToStore::Evict { id: 8 }.encode().unwrap(),
            r#"{"type":"evict","id":8}"#
        );
        assert_eq!(
            ToStore::Shutdown.encode().unwrap(),
            r#"{"type":"shutdown"}"#
        );
    }

    #[test]
    fn query_and_reply_frames_match_their_goldens_exactly() {
        let fp = Fingerprint::of_parts(1, &["a"]);
        let hex = fp.to_hex();
        assert_eq!(
            ToStore::Get {
                id: 1,
                query: GetQuery::Points(vec![fp]),
            }
            .encode()
            .unwrap(),
            format!(r#"{{"type":"get","id":1,"fps":["{hex}"]}}"#)
        );
        assert_eq!(
            ToStore::Get {
                id: 2,
                query: GetQuery::Series(fp),
            }
            .encode()
            .unwrap(),
            format!(r#"{{"type":"get","id":2,"series":"{hex}"}}"#)
        );
        assert_eq!(
            ToStore::Get {
                id: 3,
                query: GetQuery::All,
            }
            .encode()
            .unwrap(),
            r#"{"type":"get","id":3,"all":true}"#
        );
        assert_eq!(
            FromStore::PutOk { id: 4, appended: 3 }.encode().unwrap(),
            r#"{"type":"put-ok","id":4,"appended":3}"#
        );
        assert_eq!(
            FromStore::Stats {
                id: 5,
                stats: StoreServerStats {
                    namespaces: 1,
                    entries: 10,
                    segments: 2,
                    orphan_tmp: 0,
                    duplicate_entries: 1,
                    corrupt_entries: 3,
                    version_mismatches: 1,
                    hits: 20,
                    misses: 4,
                    puts: 10,
                },
            }
            .encode()
            .unwrap(),
            concat!(
                r#"{"type":"stats","id":5,"namespaces":1,"entries":10,"segments":2,"#,
                r#""orphan_tmp":0,"duplicate_entries":1,"corrupt_entries":3,"#,
                r#""version_mismatches":1,"hits":20,"misses":4,"puts":10}"#
            )
        );
        assert_eq!(
            FromStore::Evicted {
                id: 6,
                report: GcReport {
                    segments_folded: 2,
                    orphans_removed: 1,
                    entries_kept: 10,
                    duplicates_folded: 1,
                    lines_dropped: 4,
                },
            }
            .encode()
            .unwrap(),
            concat!(
                r#"{"type":"evicted","id":6,"segments_folded":2,"orphans_removed":1,"#,
                r#""entries_kept":10,"duplicates_folded":1,"lines_dropped":4}"#
            )
        );
        assert_eq!(
            FromStore::Error {
                id: 0,
                message: "no namespace bound".into(),
            }
            .encode()
            .unwrap(),
            r#"{"type":"error","id":0,"message":"no namespace bound"}"#
        );
    }

    #[test]
    fn frames_round_trip_exactly() {
        let (fp_a, entry_a) = sample_entry("a");
        let (fp_b, entry_b) = sample_entry("b");
        let to = [
            ToStore::Hello {
                protocol: PROTOCOL_VERSION,
                namespace: Some("fig3".into()),
            },
            ToStore::Get {
                id: 1,
                query: GetQuery::Points(vec![fp_a, fp_b]),
            },
            ToStore::Get {
                id: 2,
                query: GetQuery::Series(entry_a.series),
            },
            ToStore::Get {
                id: 3,
                query: GetQuery::All,
            },
            ToStore::Put {
                id: 4,
                entries: vec![(fp_a, entry_a.clone()), (fp_b, entry_b.clone())],
            },
            ToStore::Stats { id: 5 },
            ToStore::Evict { id: 6 },
            ToStore::Shutdown,
        ];
        for frame in to {
            let line = frame.encode().unwrap();
            assert!(!line.contains('\n'), "frames must be single-line");
            assert_eq!(ToStore::decode(&line).unwrap(), frame);
        }
        let from = [
            FromStore::Ready {
                protocol: PROTOCOL_VERSION,
            },
            FromStore::Entries {
                id: 1,
                entries: vec![Some((fp_a, entry_a)), None, Some((fp_b, entry_b))],
            },
            FromStore::PutOk { id: 4, appended: 2 },
            FromStore::Stats {
                id: 5,
                stats: StoreServerStats::default(),
            },
            FromStore::Evicted {
                id: 6,
                report: GcReport::default(),
            },
            FromStore::Error {
                id: 0,
                message: "boom".into(),
            },
        ];
        for frame in from {
            let line = frame.encode().unwrap();
            assert!(!line.contains('\n'), "frames must be single-line");
            assert_eq!(FromStore::decode(&line).unwrap(), frame);
        }
    }

    #[test]
    fn version_mismatched_entry_slots_decode_as_typed_misses() {
        let (fp, entry) = sample_entry("future");
        let line = FromStore::Entries {
            id: 1,
            entries: vec![Some((fp, entry))],
        }
        .encode()
        .unwrap()
        .replace("\"v\":1", "\"v\":999");
        // The skewed entry becomes a miss — never a client-side error.
        assert_eq!(
            FromStore::decode(&line).unwrap(),
            FromStore::Entries {
                id: 1,
                entries: vec![None],
            }
        );
    }

    #[test]
    fn garbage_lines_are_rejected_not_fatal() {
        for bad in [
            "",
            "not json",
            "{\"type\":\"get\",\"id\":",
            "{\"id\":1}",
            "{\"type\":\"warp\"}",
            "{\"type\":\"get\",\"id\":1}",
            "{\"type\":\"get\",\"id\":1,\"fps\":[7]}",
            "{\"type\":\"put\",\"id\":1,\"entries\":[{\"v\":1}]}",
            "{\"type\":\"entries\",\"id\":1}",
            "[1,2,3]",
        ] {
            assert!(ToStore::decode(bad).is_err(), "{bad:?}");
            assert!(FromStore::decode(bad).is_err(), "{bad:?}");
        }
    }
}
