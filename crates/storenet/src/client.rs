//! The [`RemoteStore`] client: the store-server side of the
//! [`ResultStore`] trait, so executors, `dse` and serve daemons consume a
//! shared network store through the exact surface a local directory store
//! offers.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use mfa_alloc::fingerprint::Fingerprint;
use mfa_explore::store::{ResultStore, StoreEntry};
use mfa_explore::{ExploreError, GcReport};

use crate::error::StoreNetError;
use crate::protocol::{FromStore, GetQuery, StoreServerStats, ToStore, PROTOCOL_VERSION};

/// Extracts the address from a `tcp://host:port` store spec, the form the
/// CLI surfaces (`dse --store tcp://…`, `serve --spill tcp://…`) use to
/// pick the remote backend over a local directory.
pub fn store_url(spec: &str) -> Option<&str> {
    spec.strip_prefix("tcp://")
}

/// A [`ResultStore`] served by a remote store-server over one TCP session.
///
/// The session is bound to one namespace at the handshake (callers use one
/// namespace per figure/sweep so seeds never leak across incompatible
/// grids). All trait calls are synchronous request/reply exchanges; batched
/// lookups ([`get_many`](ResultStore::get_many)) cross the wire as one
/// frame, which is what keeps a remote sweep at two round trips per unit
/// planning pass.
///
/// Damage accounting: the server reports its on-disk corrupt/version-skew
/// counts through a `stats` exchange at connect time, and any entry slot
/// that arrives version-mismatched decodes as a plain miss — the client
/// never surfaces a decode error for damaged cached data, it just
/// recomputes.
#[derive(Debug)]
pub struct RemoteStore {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    namespace: String,
    next_id: usize,
    corrupt_entries: usize,
    version_mismatches: usize,
}

impl RemoteStore {
    /// Connects to a store-server at `addr` (e.g. `127.0.0.1:7070`), runs
    /// the v5 handshake binding `namespace`, and snapshots the server's
    /// damage counters.
    ///
    /// # Errors
    ///
    /// Returns [`StoreNetError`] when the connection, the handshake, or the
    /// initial stats exchange fails (including a namespace the server
    /// rejects).
    pub fn connect(addr: &str, namespace: &str) -> Result<RemoteStore, StoreNetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        let mut client = RemoteStore {
            reader: BufReader::new(stream),
            writer,
            namespace: namespace.to_owned(),
            next_id: 0,
            corrupt_entries: 0,
            version_mismatches: 0,
        };
        client.send(&ToStore::Hello {
            protocol: PROTOCOL_VERSION,
            namespace: Some(namespace.to_owned()),
        })?;
        match client.read_frame()? {
            FromStore::Ready { protocol } if protocol == PROTOCOL_VERSION => {}
            FromStore::Ready { protocol } => {
                return Err(StoreNetError::Protocol(format!(
                    "protocol version skew: client speaks {PROTOCOL_VERSION}, \
                     store-server sent {protocol}"
                )));
            }
            FromStore::Error { message, .. } => return Err(StoreNetError::Server(message)),
            other => {
                return Err(StoreNetError::Protocol(format!(
                    "expected store-ready, got {other:?}"
                )));
            }
        }
        let stats = client.stats()?;
        client.corrupt_entries = stats.corrupt_entries;
        client.version_mismatches = stats.version_mismatches;
        Ok(client)
    }

    /// The namespace this session is bound to.
    pub fn namespace(&self) -> &str {
        &self.namespace
    }

    /// Fetches the server's aggregate counters.
    ///
    /// # Errors
    ///
    /// Returns [`StoreNetError`] on transport or protocol failure.
    pub fn stats(&mut self) -> Result<StoreServerStats, StoreNetError> {
        let id = self.fresh_id();
        self.send(&ToStore::Stats { id })?;
        match self.expect_reply(id)? {
            FromStore::Stats { stats, .. } => Ok(stats),
            other => Err(StoreNetError::Protocol(format!(
                "expected stats, got {other:?}"
            ))),
        }
    }

    /// Runs a GC/compaction pass on this session's namespace and returns
    /// the server's report.
    ///
    /// # Errors
    ///
    /// Returns [`StoreNetError`] on transport or protocol failure, or when
    /// the server's GC pass fails.
    pub fn evict(&mut self) -> Result<GcReport, StoreNetError> {
        let id = self.fresh_id();
        self.send(&ToStore::Evict { id })?;
        match self.expect_reply(id)? {
            FromStore::Evicted { report, .. } => Ok(report),
            other => Err(StoreNetError::Protocol(format!(
                "expected evicted, got {other:?}"
            ))),
        }
    }

    /// Asks the store-server to shut down (all sessions, not just this
    /// one), consuming the client.
    ///
    /// # Errors
    ///
    /// Returns [`StoreNetError`] when the shutdown frame cannot be sent.
    pub fn shutdown(mut self) -> Result<(), StoreNetError> {
        self.send(&ToStore::Shutdown)
    }

    fn fresh_id(&mut self) -> usize {
        self.next_id += 1;
        self.next_id
    }

    fn send(&mut self, frame: &ToStore) -> Result<(), StoreNetError> {
        let line = frame.encode()?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_frame(&mut self) -> Result<FromStore, StoreNetError> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(StoreNetError::Protocol(
                    "store-server closed the session mid-request".into(),
                ));
            }
            if line.trim().is_empty() {
                continue;
            }
            return Ok(FromStore::decode(line.trim_end())?);
        }
    }

    /// Reads the reply to request `id`, turning server error frames into
    /// [`StoreNetError::Server`] and id skew into a protocol error.
    fn expect_reply(&mut self, id: usize) -> Result<FromStore, StoreNetError> {
        let frame = self.read_frame()?;
        let got = match &frame {
            FromStore::Ready { .. } => None,
            FromStore::Entries { id, .. }
            | FromStore::PutOk { id, .. }
            | FromStore::Stats { id, .. }
            | FromStore::Evicted { id, .. }
            | FromStore::Error { id, .. } => Some(*id),
        };
        match got {
            Some(got) if got == id => match frame {
                FromStore::Error { message, .. } => Err(StoreNetError::Server(message)),
                frame => Ok(frame),
            },
            // Error frames with id 0 are session-level (e.g. version skew
            // noticed late); surface their message rather than "wrong id".
            Some(0) => match frame {
                FromStore::Error { message, .. } => Err(StoreNetError::Server(message)),
                frame => Err(StoreNetError::Protocol(format!(
                    "reply for request 0, expected {id}: {frame:?}"
                ))),
            },
            _ => Err(StoreNetError::Protocol(format!(
                "reply does not match request {id}: {frame:?}"
            ))),
        }
    }

    fn get(
        &mut self,
        query: GetQuery,
    ) -> Result<Vec<Option<(Fingerprint, StoreEntry)>>, StoreNetError> {
        let id = self.fresh_id();
        self.send(&ToStore::Get { id, query })?;
        match self.expect_reply(id)? {
            FromStore::Entries { entries, .. } => Ok(entries),
            other => Err(StoreNetError::Protocol(format!(
                "expected entries, got {other:?}"
            ))),
        }
    }
}

/// Folds a networked failure into the explore error domain the store trait
/// speaks.
fn store_err(err: StoreNetError) -> ExploreError {
    ExploreError::Store(err.to_string())
}

impl ResultStore for RemoteStore {
    fn get_many(&mut self, fps: &[Fingerprint]) -> Result<Vec<Option<StoreEntry>>, ExploreError> {
        if fps.is_empty() {
            return Ok(Vec::new());
        }
        let slots = self
            .get(GetQuery::Points(fps.to_vec()))
            .map_err(store_err)?;
        if slots.len() != fps.len() {
            return Err(store_err(StoreNetError::Protocol(format!(
                "asked for {} points, server answered {} slots",
                fps.len(),
                slots.len()
            ))));
        }
        Ok(slots
            .into_iter()
            .map(|slot| slot.map(|(_, entry)| entry))
            .collect())
    }

    fn get_series(
        &mut self,
        series: &Fingerprint,
    ) -> Result<Vec<(Fingerprint, StoreEntry)>, ExploreError> {
        Ok(self
            .get(GetQuery::Series(*series))
            .map_err(store_err)?
            .into_iter()
            .flatten()
            .collect())
    }

    fn snapshot(&mut self) -> Result<Vec<(Fingerprint, StoreEntry)>, ExploreError> {
        Ok(self
            .get(GetQuery::All)
            .map_err(store_err)?
            .into_iter()
            .flatten()
            .collect())
    }

    fn put(&mut self, entries: Vec<(Fingerprint, StoreEntry)>) -> Result<(), ExploreError> {
        if entries.is_empty() {
            return Ok(());
        }
        let id = self.fresh_id();
        let count = entries.len();
        self.send(&ToStore::Put { id, entries })
            .map_err(store_err)?;
        match self.expect_reply(id).map_err(store_err)? {
            FromStore::PutOk { appended, .. } if appended == count => Ok(()),
            FromStore::PutOk { appended, .. } => Err(store_err(StoreNetError::Protocol(format!(
                "put {count} entries, server appended {appended}"
            )))),
            other => Err(store_err(StoreNetError::Protocol(format!(
                "expected put-ok, got {other:?}"
            )))),
        }
    }

    fn corrupt_count(&self) -> usize {
        self.corrupt_entries
    }

    fn version_mismatch_count(&self) -> usize {
        self.version_mismatches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_urls_strip_the_tcp_scheme_only() {
        assert_eq!(store_url("tcp://127.0.0.1:7070"), Some("127.0.0.1:7070"));
        assert_eq!(store_url("tcp://host:1"), Some("host:1"));
        assert_eq!(store_url("/tmp/store-dir"), None);
        assert_eq!(store_url("relative/dir"), None);
        assert_eq!(store_url("udp://x:1"), None);
    }
}
