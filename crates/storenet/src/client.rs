//! The [`RemoteStore`] client: the store-server side of the
//! [`ResultStore`] trait, so executors, `dse` and serve daemons consume a
//! shared network store through the exact surface a local directory store
//! offers.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use mfa_alloc::fingerprint::Fingerprint;
use mfa_explore::store::{ResultStore, StoreEntry};
use mfa_explore::{ExploreError, GcReport};

use crate::error::StoreNetError;
use crate::protocol::{FromStore, GetQuery, StoreServerStats, ToStore, PROTOCOL_VERSION};

/// Extracts the address from a `tcp://host:port` store spec, the form the
/// CLI surfaces (`dse --store tcp://…`, `serve --spill tcp://…`) use to
/// pick the remote backend over a local directory.
pub fn store_url(spec: &str) -> Option<&str> {
    spec.strip_prefix("tcp://")
}

/// One live TCP session with the store-server: the handshaken socket pair.
///
/// A session is disposable — any transport or framing failure tears the
/// whole session down (a half-read reply cannot be resynchronized), and the
/// owning [`RemoteStore`] dials a fresh one on the next request.
#[derive(Debug)]
struct Session {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Session {
    fn send(&mut self, frame: &ToStore) -> Result<(), StoreNetError> {
        let line = frame.encode()?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_frame(&mut self) -> Result<FromStore, StoreNetError> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(StoreNetError::Protocol(
                    "store-server closed the session mid-request".into(),
                ));
            }
            if line.trim().is_empty() {
                continue;
            }
            return Ok(FromStore::decode(line.trim_end())?);
        }
    }

    /// Reads the reply to request `id`, turning server error frames into
    /// [`StoreNetError::Server`] and id skew into a protocol error.
    fn expect_reply(&mut self, id: usize) -> Result<FromStore, StoreNetError> {
        let frame = self.read_frame()?;
        let got = match &frame {
            FromStore::Ready { .. } => None,
            FromStore::Entries { id, .. }
            | FromStore::PutOk { id, .. }
            | FromStore::Stats { id, .. }
            | FromStore::Evicted { id, .. }
            | FromStore::Error { id, .. } => Some(*id),
        };
        match got {
            Some(got) if got == id => match frame {
                FromStore::Error { message, .. } => Err(StoreNetError::Server(message)),
                frame => Ok(frame),
            },
            // Error frames with id 0 are session-level (e.g. version skew
            // noticed late, or the server's idle timeout dropping the
            // session); surface their message rather than "wrong id".
            Some(0) => match frame {
                FromStore::Error { message, .. } => Err(StoreNetError::Server(message)),
                frame => Err(StoreNetError::Protocol(format!(
                    "reply for request 0, expected {id}: {frame:?}"
                ))),
            },
            _ => Err(StoreNetError::Protocol(format!(
                "reply does not match request {id}: {frame:?}"
            ))),
        }
    }
}

/// A [`ResultStore`] served by a remote store-server over TCP.
///
/// The client is bound to one namespace (callers use one namespace per
/// figure/sweep so seeds never leak across incompatible grids); each
/// underlying session re-binds it at the handshake. All trait calls are
/// synchronous request/reply exchanges; batched lookups
/// ([`get_many`](ResultStore::get_many)) cross the wire as one frame, which
/// is what keeps a remote sweep at two round trips per unit planning pass.
///
/// Resilience: every request is idempotent (the store is content-addressed,
/// so replaying a `put` at worst re-appends a duplicate the next GC pass
/// folds), so when a request fails on a session that predates it — the
/// server restarted, or its idle timeout dropped the session — the client
/// redials once and replays the request instead of staying broken. An
/// optional I/O timeout ([`connect_with_timeout`](Self::connect_with_timeout))
/// bounds how long any single exchange can stall on a hung (not erroring)
/// server.
///
/// Damage accounting: the server reports its on-disk corrupt/version-skew
/// counts through a `stats` exchange at connect time, and any entry slot
/// that arrives version-mismatched decodes as a plain miss — the client
/// never surfaces a decode error for damaged cached data, it just
/// recomputes.
#[derive(Debug)]
pub struct RemoteStore {
    addr: String,
    namespace: String,
    io_timeout: Option<Duration>,
    session: Option<Session>,
    next_id: usize,
    corrupt_entries: usize,
    version_mismatches: usize,
}

impl RemoteStore {
    /// Connects to a store-server at `addr` (e.g. `127.0.0.1:7070`), runs
    /// the v5 handshake binding `namespace`, and snapshots the server's
    /// damage counters. The session socket has no I/O timeout; see
    /// [`connect_with_timeout`](Self::connect_with_timeout) for a bounded
    /// variant.
    ///
    /// # Errors
    ///
    /// Returns [`StoreNetError`] when the connection, the handshake, or the
    /// initial stats exchange fails (including a namespace the server
    /// rejects).
    pub fn connect(addr: &str, namespace: &str) -> Result<RemoteStore, StoreNetError> {
        Self::connect_with_timeout(addr, namespace, None)
    }

    /// Like [`connect`](Self::connect), but arms `io_timeout` as both the
    /// read and the write timeout of every session socket, so a hung (not
    /// erroring) store-server costs a bounded stall and a typed
    /// [`StoreNetError::Io`] instead of blocking the caller forever. The
    /// serve daemon's warm-cache spill uses this so a wedged shared store
    /// can never pin its solver workers.
    ///
    /// # Errors
    ///
    /// Returns [`StoreNetError`] when the connection, the handshake, or the
    /// initial stats exchange fails.
    pub fn connect_with_timeout(
        addr: &str,
        namespace: &str,
        io_timeout: Option<Duration>,
    ) -> Result<RemoteStore, StoreNetError> {
        let mut client = RemoteStore {
            addr: addr.to_owned(),
            namespace: namespace.to_owned(),
            io_timeout,
            session: None,
            next_id: 0,
            corrupt_entries: 0,
            version_mismatches: 0,
        };
        client.ensure_session()?;
        let stats = client.stats()?;
        client.corrupt_entries = stats.corrupt_entries;
        client.version_mismatches = stats.version_mismatches;
        Ok(client)
    }

    /// The namespace this client is bound to.
    pub fn namespace(&self) -> &str {
        &self.namespace
    }

    /// Fetches the server's aggregate counters.
    ///
    /// # Errors
    ///
    /// Returns [`StoreNetError`] on transport or protocol failure.
    pub fn stats(&mut self) -> Result<StoreServerStats, StoreNetError> {
        let id = self.fresh_id();
        match self.exchange(&ToStore::Stats { id }, id)? {
            FromStore::Stats { stats, .. } => Ok(stats),
            other => Err(StoreNetError::Protocol(format!(
                "expected stats, got {other:?}"
            ))),
        }
    }

    /// Runs a GC/compaction pass on this client's namespace and returns
    /// the server's report.
    ///
    /// # Errors
    ///
    /// Returns [`StoreNetError`] on transport or protocol failure, or when
    /// the server's GC pass fails.
    pub fn evict(&mut self) -> Result<GcReport, StoreNetError> {
        let id = self.fresh_id();
        match self.exchange(&ToStore::Evict { id }, id)? {
            FromStore::Evicted { report, .. } => Ok(report),
            other => Err(StoreNetError::Protocol(format!(
                "expected evicted, got {other:?}"
            ))),
        }
    }

    /// Asks the store-server to shut down (all sessions, not just this
    /// one), consuming the client.
    ///
    /// # Errors
    ///
    /// Returns [`StoreNetError`] when the shutdown frame cannot be sent.
    pub fn shutdown(mut self) -> Result<(), StoreNetError> {
        self.ensure_session()?;
        self.session
            .as_mut()
            .expect("just ensured a session")
            .send(&ToStore::Shutdown)
    }

    fn fresh_id(&mut self) -> usize {
        self.next_id += 1;
        self.next_id
    }

    /// Dials, handshakes, and namespace-binds a fresh session.
    fn dial(&self) -> Result<Session, StoreNetError> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.io_timeout)?;
        stream.set_write_timeout(self.io_timeout)?;
        let writer = stream.try_clone()?;
        let mut session = Session {
            reader: BufReader::new(stream),
            writer,
        };
        session.send(&ToStore::Hello {
            protocol: PROTOCOL_VERSION,
            namespace: Some(self.namespace.clone()),
        })?;
        match session.read_frame()? {
            FromStore::Ready { protocol } if protocol == PROTOCOL_VERSION => Ok(session),
            FromStore::Ready { protocol } => Err(StoreNetError::Protocol(format!(
                "protocol version skew: client speaks {PROTOCOL_VERSION}, \
                 store-server sent {protocol}"
            ))),
            FromStore::Error { message, .. } => Err(StoreNetError::Server(message)),
            other => Err(StoreNetError::Protocol(format!(
                "expected store-ready, got {other:?}"
            ))),
        }
    }

    fn ensure_session(&mut self) -> Result<(), StoreNetError> {
        if self.session.is_none() {
            self.session = Some(self.dial()?);
        }
        Ok(())
    }

    /// One request/reply round trip on the current session.
    fn try_exchange(&mut self, frame: &ToStore, id: usize) -> Result<FromStore, StoreNetError> {
        self.ensure_session()?;
        let session = self.session.as_mut().expect("just ensured a session");
        session.send(frame)?;
        session.expect_reply(id)
    }

    /// Runs one exchange, retrying once on a fresh session when the failed
    /// session predates the request — it may simply have been dropped by a
    /// server restart or idle timeout, and every store request is
    /// idempotent, so replaying is always safe. A failure on a session
    /// dialed for this very request propagates as-is.
    fn exchange(&mut self, frame: &ToStore, id: usize) -> Result<FromStore, StoreNetError> {
        let stale = self.session.is_some();
        match self.try_exchange(frame, id) {
            Ok(reply) => Ok(reply),
            Err(err) => {
                // Whatever failed, the session can no longer be trusted to
                // be request/reply aligned.
                self.session = None;
                if !stale {
                    return Err(err);
                }
                self.try_exchange(frame, id).map_err(|retry_err| {
                    self.session = None;
                    retry_err
                })
            }
        }
    }

    fn get(
        &mut self,
        query: GetQuery,
    ) -> Result<Vec<Option<(Fingerprint, StoreEntry)>>, StoreNetError> {
        let id = self.fresh_id();
        match self.exchange(&ToStore::Get { id, query }, id)? {
            FromStore::Entries { entries, .. } => Ok(entries),
            other => Err(StoreNetError::Protocol(format!(
                "expected entries, got {other:?}"
            ))),
        }
    }
}

/// Folds a networked failure into the explore error domain the store trait
/// speaks.
fn store_err(err: StoreNetError) -> ExploreError {
    ExploreError::Store(err.to_string())
}

impl ResultStore for RemoteStore {
    fn get_many(&mut self, fps: &[Fingerprint]) -> Result<Vec<Option<StoreEntry>>, ExploreError> {
        if fps.is_empty() {
            return Ok(Vec::new());
        }
        let slots = self
            .get(GetQuery::Points(fps.to_vec()))
            .map_err(store_err)?;
        if slots.len() != fps.len() {
            return Err(store_err(StoreNetError::Protocol(format!(
                "asked for {} points, server answered {} slots",
                fps.len(),
                slots.len()
            ))));
        }
        Ok(slots
            .into_iter()
            .map(|slot| slot.map(|(_, entry)| entry))
            .collect())
    }

    fn get_series(
        &mut self,
        series: &Fingerprint,
    ) -> Result<Vec<(Fingerprint, StoreEntry)>, ExploreError> {
        Ok(self
            .get(GetQuery::Series(*series))
            .map_err(store_err)?
            .into_iter()
            .flatten()
            .collect())
    }

    fn snapshot(&mut self) -> Result<Vec<(Fingerprint, StoreEntry)>, ExploreError> {
        Ok(self
            .get(GetQuery::All)
            .map_err(store_err)?
            .into_iter()
            .flatten()
            .collect())
    }

    fn put(&mut self, entries: Vec<(Fingerprint, StoreEntry)>) -> Result<(), ExploreError> {
        if entries.is_empty() {
            return Ok(());
        }
        let id = self.fresh_id();
        let count = entries.len();
        match self
            .exchange(&ToStore::Put { id, entries }, id)
            .map_err(store_err)?
        {
            FromStore::PutOk { appended, .. } if appended == count => Ok(()),
            FromStore::PutOk { appended, .. } => Err(store_err(StoreNetError::Protocol(format!(
                "put {count} entries, server appended {appended}"
            )))),
            other => Err(store_err(StoreNetError::Protocol(format!(
                "expected put-ok, got {other:?}"
            )))),
        }
    }

    fn corrupt_count(&self) -> usize {
        self.corrupt_entries
    }

    fn version_mismatch_count(&self) -> usize {
        self.version_mismatches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_urls_strip_the_tcp_scheme_only() {
        assert_eq!(store_url("tcp://127.0.0.1:7070"), Some("127.0.0.1:7070"));
        assert_eq!(store_url("tcp://host:1"), Some("host:1"));
        assert_eq!(store_url("/tmp/store-dir"), None);
        assert_eq!(store_url("relative/dir"), None);
        assert_eq!(store_url("udp://x:1"), None);
    }
}
