//! LP problem builder: variables, linear constraints, objective.

use crate::simplex;
use crate::solution::LpSolution;
use crate::LpError;

/// Handle to a decision variable of an [`LpProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of the variable in the order of creation.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a constraint of an [`LpProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConstraintId(pub(crate) usize);

impl ConstraintId {
    /// Index of the constraint in the order of creation.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Direction of optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Sense {
    /// Minimize the objective (default).
    #[default]
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Relation of a linear constraint to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// Left-hand side `≤` right-hand side.
    LessEq,
    /// Left-hand side `≥` right-hand side.
    GreaterEq,
    /// Left-hand side `=` right-hand side.
    Equal,
}

#[derive(Debug, Clone)]
pub(crate) struct VarData {
    pub(crate) name: String,
    pub(crate) lower: f64,
    pub(crate) upper: f64,
    pub(crate) objective: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct ConstraintData {
    pub(crate) name: String,
    /// `(variable index, coefficient)` pairs; at most one entry per variable.
    pub(crate) terms: Vec<(usize, f64)>,
    pub(crate) relation: Relation,
    pub(crate) rhs: f64,
}

/// A linear program under construction.
///
/// Variables are added with bounds, an objective coefficient is attached per
/// variable, and constraints are linear combinations of variables related to
/// a constant. See the [crate-level example](crate) for typical use.
#[derive(Debug, Clone)]
pub struct LpProblem {
    sense: Sense,
    pub(crate) vars: Vec<VarData>,
    pub(crate) constraints: Vec<ConstraintData>,
}

impl LpProblem {
    /// Creates an empty problem with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        LpProblem {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Optimization sense of the problem.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Adds a variable with bounds `lower ≤ x ≤ upper` and zero objective
    /// coefficient, returning its handle.
    ///
    /// `lower` may be `-∞` and `upper` may be `+∞`.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::InvalidBounds`] if `lower > upper`, and
    /// [`LpError::InvalidArgument`] if either bound is NaN.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
    ) -> Result<VarId, LpError> {
        let name = name.into();
        if lower.is_nan() || upper.is_nan() {
            return Err(LpError::InvalidArgument(format!(
                "bounds of variable {name} must not be NaN"
            )));
        }
        if lower > upper {
            return Err(LpError::InvalidBounds { name, lower, upper });
        }
        self.vars.push(VarData {
            name,
            lower,
            upper,
            objective: 0.0,
        });
        Ok(VarId(self.vars.len() - 1))
    }

    /// Sets the objective coefficient of `var`.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::UnknownId`] if the variable does not belong to this
    /// problem, and [`LpError::InvalidArgument`] for a non-finite coefficient.
    pub fn set_objective_coefficient(&mut self, var: VarId, coeff: f64) -> Result<(), LpError> {
        if !coeff.is_finite() {
            return Err(LpError::InvalidArgument(format!(
                "objective coefficient must be finite, got {coeff}"
            )));
        }
        let data = self
            .vars
            .get_mut(var.0)
            .ok_or_else(|| LpError::UnknownId(format!("variable #{}", var.0)))?;
        data.objective = coeff;
        Ok(())
    }

    /// Adds the linear constraint `Σ coeff·var  rel  rhs`, returning its handle.
    ///
    /// Duplicate variable entries in `terms` are summed.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::UnknownId`] if a term references a foreign variable
    /// and [`LpError::InvalidArgument`] for non-finite coefficients or
    /// right-hand side.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        terms: &[(VarId, f64)],
        relation: Relation,
        rhs: f64,
    ) -> Result<ConstraintId, LpError> {
        let name = name.into();
        if !rhs.is_finite() {
            return Err(LpError::InvalidArgument(format!(
                "right-hand side of constraint {name} must be finite, got {rhs}"
            )));
        }
        let mut combined: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
        for &(var, coeff) in terms {
            if var.0 >= self.vars.len() {
                return Err(LpError::UnknownId(format!(
                    "variable #{} in constraint {name}",
                    var.0
                )));
            }
            if !coeff.is_finite() {
                return Err(LpError::InvalidArgument(format!(
                    "coefficient of variable {} in constraint {name} must be finite",
                    self.vars[var.0].name
                )));
            }
            match combined.iter_mut().find(|(idx, _)| *idx == var.0) {
                Some((_, existing)) => *existing += coeff,
                None => combined.push((var.0, coeff)),
            }
        }
        self.constraints.push(ConstraintData {
            name,
            terms: combined,
            relation,
            rhs,
        });
        Ok(ConstraintId(self.constraints.len() - 1))
    }

    /// Updates the bounds of an existing variable.
    ///
    /// This is the hook used by branch-and-bound solvers to tighten bounds
    /// without rebuilding the model.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LpProblem::add_var`].
    pub fn set_bounds(&mut self, var: VarId, lower: f64, upper: f64) -> Result<(), LpError> {
        if lower.is_nan() || upper.is_nan() {
            return Err(LpError::InvalidArgument("bounds must not be NaN".into()));
        }
        let data = self
            .vars
            .get_mut(var.0)
            .ok_or_else(|| LpError::UnknownId(format!("variable #{}", var.0)))?;
        if lower > upper {
            return Err(LpError::InvalidBounds {
                name: data.name.clone(),
                lower,
                upper,
            });
        }
        data.lower = lower;
        data.upper = upper;
        Ok(())
    }

    /// Returns the `(lower, upper)` bounds of a variable.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::UnknownId`] for a foreign variable.
    pub fn bounds(&self, var: VarId) -> Result<(f64, f64), LpError> {
        let data = self
            .vars
            .get(var.0)
            .ok_or_else(|| LpError::UnknownId(format!("variable #{}", var.0)))?;
        Ok((data.lower, data.upper))
    }

    /// Returns the name of a variable.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::UnknownId`] for a foreign variable.
    pub fn var_name(&self, var: VarId) -> Result<&str, LpError> {
        self.vars
            .get(var.0)
            .map(|v| v.name.as_str())
            .ok_or_else(|| LpError::UnknownId(format!("variable #{}", var.0)))
    }

    /// Returns the name of a constraint.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::UnknownId`] for a foreign constraint.
    pub fn constraint_name(&self, constraint: ConstraintId) -> Result<&str, LpError> {
        self.constraints
            .get(constraint.0)
            .map(|c| c.name.as_str())
            .ok_or_else(|| LpError::UnknownId(format!("constraint #{}", constraint.0)))
    }

    /// Solves the problem with the two-phase simplex method and default
    /// [`SimplexOptions`](crate::SimplexOptions).
    ///
    /// # Errors
    ///
    /// Returns [`LpError::PivotBudgetExceeded`] if the default pivot budget
    /// is exhausted. Infeasibility and unboundedness are *not* errors; they
    /// are reported via [`LpSolution::status`].
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        self.solve_with(&crate::SimplexOptions::default())
    }

    /// Solves the problem with the two-phase simplex method under explicit
    /// [`SimplexOptions`](crate::SimplexOptions).
    ///
    /// # Errors
    ///
    /// Returns [`LpError::PivotBudgetExceeded`] if
    /// [`SimplexOptions::max_pivots`](crate::SimplexOptions::max_pivots) is
    /// exhausted — a structured stop, never a hang. Infeasibility and
    /// unboundedness are *not* errors; they are reported via
    /// [`LpSolution::status`].
    pub fn solve_with(&self, options: &crate::SimplexOptions) -> Result<LpSolution, LpError> {
        simplex::solve(self, options)
    }

    /// Evaluates the objective at a given assignment (useful for checking
    /// candidate solutions independently of the solver).
    ///
    /// # Errors
    ///
    /// Returns [`LpError::InvalidArgument`] if `values` has the wrong length.
    pub fn objective_value(&self, values: &[f64]) -> Result<f64, LpError> {
        if values.len() != self.vars.len() {
            return Err(LpError::InvalidArgument(format!(
                "expected {} values, got {}",
                self.vars.len(),
                values.len()
            )));
        }
        Ok(self
            .vars
            .iter()
            .zip(values.iter())
            .map(|(v, x)| v.objective * x)
            .sum())
    }

    /// Checks whether an assignment satisfies every constraint and bound
    /// within tolerance `tol`.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::InvalidArgument`] if `values` has the wrong length.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> Result<bool, LpError> {
        if values.len() != self.vars.len() {
            return Err(LpError::InvalidArgument(format!(
                "expected {} values, got {}",
                self.vars.len(),
                values.len()
            )));
        }
        for (v, &x) in self.vars.iter().zip(values.iter()) {
            if x < v.lower - tol || x > v.upper + tol {
                return Ok(false);
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(j, a)| a * values[j]).sum();
            let ok = match c.relation {
                Relation::LessEq => lhs <= c.rhs + tol,
                Relation::GreaterEq => lhs >= c.rhs - tol,
                Relation::Equal => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_var_validates_bounds() {
        let mut lp = LpProblem::new(Sense::Minimize);
        assert!(lp.add_var("x", 1.0, 0.0).is_err());
        assert!(lp.add_var("x", f64::NAN, 0.0).is_err());
        assert!(lp.add_var("x", 0.0, 1.0).is_ok());
    }

    #[test]
    fn objective_coefficient_requires_known_var() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x", 0.0, 1.0).unwrap();
        assert!(lp.set_objective_coefficient(x, 1.0).is_ok());
        assert!(lp.set_objective_coefficient(VarId(7), 1.0).is_err());
        assert!(lp.set_objective_coefficient(x, f64::INFINITY).is_err());
    }

    #[test]
    fn duplicate_terms_are_combined() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x", 0.0, 10.0).unwrap();
        let c = lp
            .add_constraint("c", &[(x, 1.0), (x, 2.0)], Relation::LessEq, 6.0)
            .unwrap();
        assert_eq!(c.index(), 0);
        assert_eq!(lp.constraint_name(c).unwrap(), "c");
        assert!(lp.constraint_name(ConstraintId(5)).is_err());
        assert_eq!(lp.constraints[0].terms, vec![(0, 3.0)]);
    }

    #[test]
    fn feasibility_check_covers_bounds_and_rows() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x", 0.0, 5.0).unwrap();
        let y = lp.add_var("y", 0.0, 5.0).unwrap();
        lp.add_constraint("c", &[(x, 1.0), (y, 1.0)], Relation::LessEq, 4.0)
            .unwrap();
        assert!(lp.is_feasible(&[1.0, 2.0], 1e-9).unwrap());
        assert!(!lp.is_feasible(&[3.0, 2.0], 1e-9).unwrap());
        assert!(!lp.is_feasible(&[-1.0, 0.0], 1e-9).unwrap());
        assert!(lp.is_feasible(&[0.0], 1e-9).is_err());
    }

    #[test]
    fn set_bounds_round_trips() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x", 0.0, 5.0).unwrap();
        lp.set_bounds(x, 1.0, 2.0).unwrap();
        assert_eq!(lp.bounds(x).unwrap(), (1.0, 2.0));
        assert!(lp.set_bounds(x, 3.0, 2.0).is_err());
        assert!(lp.bounds(VarId(9)).is_err());
    }

    #[test]
    fn objective_value_is_linear() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x", 0.0, 5.0).unwrap();
        let y = lp.add_var("y", 0.0, 5.0).unwrap();
        lp.set_objective_coefficient(x, 2.0).unwrap();
        lp.set_objective_coefficient(y, -1.0).unwrap();
        assert_eq!(lp.objective_value(&[1.0, 3.0]).unwrap(), -1.0);
    }
}
