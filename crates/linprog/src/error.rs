//! Error type for LP model construction and solving.

use std::error::Error;
use std::fmt;

/// Error returned by LP model construction or the simplex solver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LpError {
    /// A variable or constraint referenced an id that does not belong to the
    /// problem.
    UnknownId(String),
    /// A bound, coefficient or right-hand side was NaN or otherwise invalid.
    InvalidArgument(String),
    /// Variable bounds are contradictory (`lower > upper`).
    InvalidBounds {
        /// Name of the offending variable.
        name: String,
        /// Lower bound.
        lower: f64,
        /// Upper bound.
        upper: f64,
    },
    /// The simplex iteration limit was exceeded (numerical trouble).
    ///
    /// Legacy variant kept for matching compatibility; the solver now reports
    /// pivot exhaustion as [`LpError::PivotBudgetExceeded`].
    IterationLimit {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The configured pivot budget was exhausted before the solve finished
    /// (see [`SimplexOptions::max_pivots`](crate::SimplexOptions::max_pivots)).
    ///
    /// A structured stop, never a hang: degenerate or cycling-prone models
    /// surface here after exactly `pivots` pivots. Callers that iterate over
    /// many candidate models (e.g. the water-filling feasibility probes of a
    /// bisection) can treat this as "give up on the point" rather than a
    /// fatal error.
    PivotBudgetExceeded {
        /// Number of pivots performed before giving up (the budget).
        pivots: usize,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::UnknownId(what) => write!(f, "unknown id: {what}"),
            LpError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            LpError::InvalidBounds { name, lower, upper } => write!(
                f,
                "invalid bounds for variable {name}: lower {lower} exceeds upper {upper}"
            ),
            LpError::IterationLimit { iterations } => {
                write!(
                    f,
                    "simplex iteration limit exceeded after {iterations} pivots"
                )
            }
            LpError::PivotBudgetExceeded { pivots } => {
                write!(f, "simplex pivot budget exhausted after {pivots} pivots")
            }
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_context() {
        let err = LpError::InvalidBounds {
            name: "x1".into(),
            lower: 2.0,
            upper: 1.0,
        };
        assert!(err.to_string().contains("x1"));
        let err = LpError::IterationLimit { iterations: 10 };
        assert!(err.to_string().contains("10"));
        let err = LpError::PivotBudgetExceeded { pivots: 128 };
        assert!(err.to_string().contains("128"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LpError>();
    }
}
