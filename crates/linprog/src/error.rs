//! Error type for LP model construction and solving.

use std::error::Error;
use std::fmt;

/// Error returned by LP model construction or the simplex solver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LpError {
    /// A variable or constraint referenced an id that does not belong to the
    /// problem.
    UnknownId(String),
    /// A bound, coefficient or right-hand side was NaN or otherwise invalid.
    InvalidArgument(String),
    /// Variable bounds are contradictory (`lower > upper`).
    InvalidBounds {
        /// Name of the offending variable.
        name: String,
        /// Lower bound.
        lower: f64,
        /// Upper bound.
        upper: f64,
    },
    /// The simplex iteration limit was exceeded (numerical trouble).
    IterationLimit {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::UnknownId(what) => write!(f, "unknown id: {what}"),
            LpError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            LpError::InvalidBounds { name, lower, upper } => write!(
                f,
                "invalid bounds for variable {name}: lower {lower} exceeds upper {upper}"
            ),
            LpError::IterationLimit { iterations } => {
                write!(
                    f,
                    "simplex iteration limit exceeded after {iterations} pivots"
                )
            }
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_context() {
        let err = LpError::InvalidBounds {
            name: "x1".into(),
            lower: 2.0,
            upper: 1.0,
        };
        assert!(err.to_string().contains("x1"));
        let err = LpError::IterationLimit { iterations: 10 };
        assert!(err.to_string().contains("10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LpError>();
    }
}
