//! A small linear-programming library: model builder plus a dense two-phase
//! simplex solver.
//!
//! This crate is the LP substrate for the MINLP branch-and-bound solver in
//! `mfa-minlp` (node relaxations of the multi-FPGA allocation problem are
//! LPs after outer-approximation and secant convexification). It is a general
//! LP library, not tied to that use: variables with arbitrary bounds, `≤`/`≥`/
//! `=` constraints, minimization or maximization.
//!
//! The solver is a dense tableau two-phase simplex with Bland's rule as an
//! anti-cycling fallback. Problem sizes in this workspace are small
//! (≲ a few hundred rows/columns), for which a dense tableau is simple and
//! entirely adequate.
//!
//! # Example
//!
//! ```
//! use mfa_linprog::{LpProblem, Relation, Sense, SolverStatus};
//!
//! # fn main() -> Result<(), mfa_linprog::LpError> {
//! // maximize 3x + 5y  s.t.  x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18, x,y ≥ 0
//! let mut lp = LpProblem::new(Sense::Maximize);
//! let x = lp.add_var("x", 0.0, f64::INFINITY)?;
//! let y = lp.add_var("y", 0.0, f64::INFINITY)?;
//! lp.set_objective_coefficient(x, 3.0)?;
//! lp.set_objective_coefficient(y, 5.0)?;
//! lp.add_constraint("c1", &[(x, 1.0)], Relation::LessEq, 4.0)?;
//! lp.add_constraint("c2", &[(y, 2.0)], Relation::LessEq, 12.0)?;
//! lp.add_constraint("c3", &[(x, 3.0), (y, 2.0)], Relation::LessEq, 18.0)?;
//! let solution = lp.solve()?;
//! assert_eq!(solution.status(), SolverStatus::Optimal);
//! assert!((solution.objective() - 36.0).abs() < 1e-9);
//! assert!((solution.value(x) - 2.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod model;
mod simplex;
mod solution;

pub use error::LpError;
pub use model::{ConstraintId, LpProblem, Relation, Sense, VarId};
pub use simplex::SimplexOptions;
pub use solution::{LpSolution, SolverStatus};
