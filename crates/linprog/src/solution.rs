//! Solution container returned by the simplex solver.

use crate::model::VarId;

/// Outcome status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolverStatus {
    /// An optimal solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

impl std::fmt::Display for SolverStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverStatus::Optimal => write!(f, "optimal"),
            SolverStatus::Infeasible => write!(f, "infeasible"),
            SolverStatus::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// Result of solving an [`LpProblem`](crate::LpProblem).
///
/// For non-[`Optimal`](SolverStatus::Optimal) statuses the variable values and
/// objective are unspecified placeholders (zeros); check
/// [`status`](LpSolution::status) before reading them.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    status: SolverStatus,
    objective: f64,
    values: Vec<f64>,
    iterations: usize,
}

impl LpSolution {
    pub(crate) fn new(
        status: SolverStatus,
        objective: f64,
        values: Vec<f64>,
        iterations: usize,
    ) -> Self {
        LpSolution {
            status,
            objective,
            values,
            iterations,
        }
    }

    /// Solver status.
    pub fn status(&self) -> SolverStatus {
        self.status
    }

    /// Returns `true` if the status is [`SolverStatus::Optimal`].
    pub fn is_optimal(&self) -> bool {
        self.status == SolverStatus::Optimal
    }

    /// Optimal objective value (in the problem's original sense).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Value of a variable in the optimal solution.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved problem.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// All variable values, in order of variable creation.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of simplex pivots performed (phase 1 + phase 2).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Alias for [`iterations`](Self::iterations): the pivot is the simplex
    /// iteration unit, and downstream effort counters name it that way.
    pub fn pivots(&self) -> usize {
        self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_display() {
        assert_eq!(SolverStatus::Optimal.to_string(), "optimal");
        assert_eq!(SolverStatus::Infeasible.to_string(), "infeasible");
        assert_eq!(SolverStatus::Unbounded.to_string(), "unbounded");
    }

    #[test]
    fn accessors_round_trip() {
        let s = LpSolution::new(SolverStatus::Optimal, 3.5, vec![1.0, 2.5], 7);
        assert!(s.is_optimal());
        assert_eq!(s.objective(), 3.5);
        assert_eq!(s.value(VarId(1)), 2.5);
        assert_eq!(s.values(), &[1.0, 2.5]);
        assert_eq!(s.iterations(), 7);
    }
}
