//! Dense two-phase tableau simplex.
//!
//! The solver first rewrites the user model into standard form
//! `min cᵀx  s.t.  A x = b, x ≥ 0, b ≥ 0` by shifting/splitting bounded
//! variables and adding slack, surplus and artificial columns, then runs the
//! classic two-phase tableau method. Dantzig's rule is used for speed with a
//! switch to Bland's rule after a pivot budget to guarantee termination.

use crate::model::{LpProblem, Relation, Sense};
use crate::solution::{LpSolution, SolverStatus};
use crate::LpError;

const EPS: f64 = 1e-9;
/// Pivot budget after which the solver switches to Bland's rule.
const DANTZIG_PIVOTS: usize = 5_000;
/// Default hard pivot limit (both phases combined).
const MAX_PIVOTS: usize = 50_000;

/// Options controlling the simplex solver.
///
/// # Example
///
/// ```
/// use mfa_linprog::{LpProblem, Sense, SimplexOptions};
///
/// # fn main() -> Result<(), mfa_linprog::LpError> {
/// let mut lp = LpProblem::new(Sense::Minimize);
/// let x = lp.add_var("x", 0.0, 1.0)?;
/// lp.set_objective_coefficient(x, 1.0)?;
/// let solution = lp.solve_with(&SimplexOptions::default())?;
/// assert!(solution.is_optimal());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimplexOptions {
    /// Hard pivot budget, phase 1 and phase 2 combined. When the budget is
    /// exhausted the solve stops with [`LpError::PivotBudgetExceeded`]
    /// (`crate::LpError::PivotBudgetExceeded`) rather than iterating further
    /// — a structured stop, never a hang. The default (50 000) is far above
    /// any well-posed model in this workspace; lower it to bound the cost of
    /// feasibility probes on potentially degenerate models.
    pub max_pivots: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_pivots: MAX_PIVOTS,
        }
    }
}

impl SimplexOptions {
    /// Default options with the given pivot budget.
    pub fn with_max_pivots(max_pivots: usize) -> Self {
        SimplexOptions { max_pivots }
    }
}

/// How a user variable was mapped into standard-form columns.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = lower + column`, optional upper-bound row added separately.
    Shifted { col: usize, lower: f64 },
    /// `x = upper − column` (used when only an upper bound is finite).
    Reflected { col: usize, upper: f64 },
    /// `x = plus − minus` (free variable).
    Split { plus: usize, minus: usize },
}

/// A single standard-form row `Σ a_j x_j (≤,≥,=) rhs` with `rhs ≥ 0` ensured
/// later during tableau construction.
#[derive(Debug, Clone)]
struct StdRow {
    coeffs: Vec<(usize, f64)>,
    relation: Relation,
    rhs: f64,
}

/// Standard-form representation of a user problem.
#[derive(Debug)]
struct StandardForm {
    /// Number of structural (non-slack) columns.
    num_cols: usize,
    /// Objective coefficients for structural columns (minimization).
    costs: Vec<f64>,
    rows: Vec<StdRow>,
    var_map: Vec<VarMap>,
}

fn build_standard_form(problem: &LpProblem) -> StandardForm {
    let sign = match problem.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut var_map = Vec::with_capacity(problem.vars.len());
    let mut costs: Vec<f64> = Vec::new();
    let mut extra_rows: Vec<StdRow> = Vec::new();

    for v in &problem.vars {
        let c = sign * v.objective;
        if v.lower.is_finite() {
            let col = costs.len();
            costs.push(c);
            var_map.push(VarMap::Shifted {
                col,
                lower: v.lower,
            });
            if v.upper.is_finite() {
                extra_rows.push(StdRow {
                    coeffs: vec![(col, 1.0)],
                    relation: Relation::LessEq,
                    rhs: v.upper - v.lower,
                });
            }
        } else if v.upper.is_finite() {
            // Only an upper bound: reflect so the new column is nonnegative.
            let col = costs.len();
            costs.push(-c);
            var_map.push(VarMap::Reflected {
                col,
                upper: v.upper,
            });
        } else {
            let plus = costs.len();
            costs.push(c);
            let minus = costs.len();
            costs.push(-c);
            var_map.push(VarMap::Split { plus, minus });
        }
    }

    let mut rows: Vec<StdRow> = Vec::with_capacity(problem.constraints.len() + extra_rows.len());
    for c in &problem.constraints {
        let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(c.terms.len() + 1);
        let mut rhs = c.rhs;
        for &(j, a) in &c.terms {
            match var_map[j] {
                VarMap::Shifted { col, lower } => {
                    rhs -= a * lower;
                    push_coeff(&mut coeffs, col, a);
                }
                VarMap::Reflected { col, upper } => {
                    rhs -= a * upper;
                    push_coeff(&mut coeffs, col, -a);
                }
                VarMap::Split { plus, minus } => {
                    push_coeff(&mut coeffs, plus, a);
                    push_coeff(&mut coeffs, minus, -a);
                }
            }
        }
        rows.push(StdRow {
            coeffs,
            relation: c.relation,
            rhs,
        });
    }
    rows.extend(extra_rows);

    StandardForm {
        num_cols: costs.len(),
        costs,
        rows,
        var_map,
    }
}

fn push_coeff(coeffs: &mut Vec<(usize, f64)>, col: usize, a: f64) {
    if a == 0.0 {
        return;
    }
    match coeffs.iter_mut().find(|(j, _)| *j == col) {
        Some((_, existing)) => *existing += a,
        None => coeffs.push((col, a)),
    }
}

/// Dense tableau with an explicit basis.
struct Tableau {
    /// `rows × (total_cols + 1)`; last column is the right-hand side.
    data: Vec<Vec<f64>>,
    /// Basic column index per row.
    basis: Vec<usize>,
    total_cols: usize,
    /// Indices of artificial columns (never allowed to re-enter in phase 2).
    artificial: Vec<bool>,
    pivots: usize,
    /// Hard pivot budget (both phases combined).
    max_pivots: usize,
}

impl Tableau {
    fn rhs(&self, row: usize) -> f64 {
        self.data[row][self.total_cols]
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let pivot_val = self.data[row][col];
        let width = self.total_cols + 1;
        for j in 0..width {
            self.data[row][j] /= pivot_val;
        }
        for r in 0..self.data.len() {
            if r == row {
                continue;
            }
            let factor = self.data[r][col];
            if factor.abs() < EPS {
                continue;
            }
            for j in 0..width {
                self.data[r][j] -= factor * self.data[row][j];
            }
        }
        self.basis[row] = col;
        self.pivots += 1;
    }

    /// Runs the simplex iteration on the current tableau for the given cost
    /// vector (length `total_cols`). Returns `None` if the LP is unbounded.
    fn optimize(&mut self, costs: &[f64], forbid_artificial: bool) -> Result<Option<()>, LpError> {
        loop {
            if self.pivots >= self.max_pivots {
                return Err(LpError::PivotBudgetExceeded {
                    pivots: self.pivots,
                });
            }
            let reduced = self.reduced_costs(costs);
            let use_bland = self.pivots >= DANTZIG_PIVOTS;
            let entering = self.pick_entering(&reduced, forbid_artificial, use_bland);
            let Some(col) = entering else {
                return Ok(Some(()));
            };
            // Ratio test.
            let mut best_row: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.data.len() {
                let a = self.data[r][col];
                if a > EPS {
                    let ratio = self.rhs(r) / a;
                    let better = match best_row {
                        None => true,
                        Some(br) => {
                            ratio < best_ratio - EPS
                                || ((ratio - best_ratio).abs() <= EPS
                                    && self.basis[r] < self.basis[br])
                        }
                    };
                    if better {
                        best_ratio = ratio;
                        best_row = Some(r);
                    }
                }
            }
            let Some(row) = best_row else {
                return Ok(None); // unbounded direction
            };
            self.pivot(row, col);
        }
    }

    fn reduced_costs(&self, costs: &[f64]) -> Vec<f64> {
        // reduced_j = c_j − c_Bᵀ B⁻¹ A_j; with a full tableau, B⁻¹A_j is just
        // the current column, and c_B are costs of basic columns.
        let m = self.data.len();
        let mut reduced = vec![0.0; self.total_cols];
        for (j, red) in reduced.iter_mut().enumerate() {
            let mut acc = costs[j];
            for r in 0..m {
                let cb = costs[self.basis[r]];
                if cb != 0.0 {
                    acc -= cb * self.data[r][j];
                }
            }
            *red = acc;
        }
        reduced
    }

    fn pick_entering(
        &self,
        reduced: &[f64],
        forbid_artificial: bool,
        use_bland: bool,
    ) -> Option<usize> {
        if use_bland {
            for (j, &rc) in reduced.iter().enumerate() {
                if forbid_artificial && self.artificial[j] {
                    continue;
                }
                if rc < -EPS {
                    return Some(j);
                }
            }
            None
        } else {
            let mut best: Option<(usize, f64)> = None;
            for (j, &rc) in reduced.iter().enumerate() {
                if forbid_artificial && self.artificial[j] {
                    continue;
                }
                if rc < -EPS {
                    match best {
                        None => best = Some((j, rc)),
                        Some((_, b)) if rc < b => best = Some((j, rc)),
                        _ => {}
                    }
                }
            }
            best.map(|(j, _)| j)
        }
    }
}

/// Solves the problem; the public entry point used by [`LpProblem::solve`]
/// and [`LpProblem::solve_with`].
pub(crate) fn solve(problem: &LpProblem, options: &SimplexOptions) -> Result<LpSolution, LpError> {
    let std_form = build_standard_form(problem);
    let n = std_form.num_cols;
    let m = std_form.rows.len();

    if m == 0 {
        return solve_unconstrained(problem, &std_form);
    }

    // Column layout: [structural | slack/surplus | artificial].
    let mut num_slack = 0usize;
    for row in &std_form.rows {
        // A slack/surplus column is needed unless the row is an equality.
        let rhs_nonneg = row.rhs >= 0.0;
        match (row.relation, rhs_nonneg) {
            (Relation::Equal, _) => {}
            _ => num_slack += 1,
        }
    }
    let total_cols_estimate = n + num_slack + m;

    let mut data: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut basis: Vec<usize> = vec![usize::MAX; m];
    let mut artificial_flags = vec![false; total_cols_estimate];
    let mut next_slack = n;
    let mut next_artificial = n + num_slack;
    let mut artificial_used = 0usize;

    for (r, row) in std_form.rows.iter().enumerate() {
        let mut dense = vec![0.0; total_cols_estimate + 1];
        let mut sign = 1.0;
        let mut relation = row.relation;
        let mut rhs = row.rhs;
        if rhs < 0.0 {
            sign = -1.0;
            rhs = -rhs;
            relation = match relation {
                Relation::LessEq => Relation::GreaterEq,
                Relation::GreaterEq => Relation::LessEq,
                Relation::Equal => Relation::Equal,
            };
        }
        for &(j, a) in &row.coeffs {
            dense[j] += sign * a;
        }
        dense[total_cols_estimate] = rhs;
        match relation {
            Relation::LessEq => {
                let s = next_slack;
                next_slack += 1;
                dense[s] = 1.0;
                basis[r] = s;
            }
            Relation::GreaterEq => {
                let s = next_slack;
                next_slack += 1;
                dense[s] = -1.0;
                let a = next_artificial;
                next_artificial += 1;
                artificial_used += 1;
                dense[a] = 1.0;
                artificial_flags[a] = true;
                basis[r] = a;
            }
            Relation::Equal => {
                let a = next_artificial;
                next_artificial += 1;
                artificial_used += 1;
                dense[a] = 1.0;
                artificial_flags[a] = true;
                basis[r] = a;
            }
        }
        data.push(dense);
    }

    // Trim unused artificial columns (keep indexing consistent by only
    // trimming the tail, which is always the unused part).
    let total_cols = n + (next_slack - n) + artificial_used;
    for row in &mut data {
        let rhs = row[total_cols_estimate];
        row.truncate(total_cols);
        row.push(rhs);
    }
    artificial_flags.truncate(total_cols);

    let mut tableau = Tableau {
        data,
        basis,
        total_cols,
        artificial: artificial_flags,
        pivots: 0,
        max_pivots: options.max_pivots,
    };

    // Phase 1: minimize the sum of artificial variables.
    if artificial_used > 0 {
        let mut phase1_costs = vec![0.0; total_cols];
        for (j, flag) in tableau.artificial.iter().enumerate() {
            if *flag {
                phase1_costs[j] = 1.0;
            }
        }
        let outcome = tableau.optimize(&phase1_costs, false)?;
        if outcome.is_none() {
            // Phase 1 objective is bounded below by zero, so this cannot
            // happen; treat defensively as infeasible.
            return Ok(LpSolution::new(
                SolverStatus::Infeasible,
                0.0,
                vec![0.0; problem.num_vars()],
                tableau.pivots,
            ));
        }
        let phase1_value: f64 = (0..m)
            .map(|r| {
                if tableau.artificial[tableau.basis[r]] {
                    tableau.rhs(r)
                } else {
                    0.0
                }
            })
            .sum();
        if phase1_value > 1e-7 {
            return Ok(LpSolution::new(
                SolverStatus::Infeasible,
                0.0,
                vec![0.0; problem.num_vars()],
                tableau.pivots,
            ));
        }
        // Drive remaining artificial variables out of the basis when possible.
        for r in 0..m {
            if tableau.artificial[tableau.basis[r]] {
                let col = (0..n + (next_slack - n))
                    .find(|&j| tableau.data[r][j].abs() > 1e-7 && !tableau.artificial[j]);
                if let Some(col) = col {
                    tableau.pivot(r, col);
                }
                // If no pivot column exists the row is redundant; the
                // artificial stays basic at value ~0, which is harmless.
            }
        }
    }

    // Phase 2: original (minimization) costs on structural columns.
    let mut phase2_costs = vec![0.0; total_cols];
    phase2_costs[..n].copy_from_slice(&std_form.costs);
    let outcome = tableau.optimize(&phase2_costs, true)?;
    if outcome.is_none() {
        return Ok(LpSolution::new(
            SolverStatus::Unbounded,
            0.0,
            vec![0.0; problem.num_vars()],
            tableau.pivots,
        ));
    }

    // Read structural column values from the basis.
    let mut col_values = vec![0.0; total_cols];
    for r in 0..m {
        col_values[tableau.basis[r]] = tableau.rhs(r);
    }
    let mut user_values = vec![0.0; problem.num_vars()];
    for (i, vm) in std_form.var_map.iter().enumerate() {
        user_values[i] = match *vm {
            VarMap::Shifted { col, lower } => lower + col_values[col],
            VarMap::Reflected { col, upper } => upper - col_values[col],
            VarMap::Split { plus, minus } => col_values[plus] - col_values[minus],
        };
    }
    let objective = problem
        .objective_value(&user_values)
        .expect("solver produced values for every variable");
    Ok(LpSolution::new(
        SolverStatus::Optimal,
        objective,
        user_values,
        tableau.pivots,
    ))
}

/// Handles the degenerate case of a problem with no constraint rows: each
/// variable independently moves to whichever bound its cost prefers.
fn solve_unconstrained(
    problem: &LpProblem,
    std_form: &StandardForm,
) -> Result<LpSolution, LpError> {
    let _ = std_form;
    let sign = match problem.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut values = vec![0.0; problem.num_vars()];
    for (i, v) in problem.vars.iter().enumerate() {
        let c = sign * v.objective;
        let target = if c > 0.0 {
            v.lower
        } else if c < 0.0 {
            v.upper
        } else if v.lower.is_finite() {
            v.lower
        } else if v.upper.is_finite() {
            v.upper
        } else {
            0.0
        };
        if !target.is_finite() && c != 0.0 {
            return Ok(LpSolution::new(
                SolverStatus::Unbounded,
                0.0,
                vec![0.0; problem.num_vars()],
                0,
            ));
        }
        values[i] = if target.is_finite() { target } else { 0.0 };
    }
    let objective = problem.objective_value(&values)?;
    Ok(LpSolution::new(SolverStatus::Optimal, objective, values, 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LpProblem, Relation, Sense};

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_var("x", 0.0, f64::INFINITY).unwrap();
        let y = lp.add_var("y", 0.0, f64::INFINITY).unwrap();
        lp.set_objective_coefficient(x, 3.0).unwrap();
        lp.set_objective_coefficient(y, 5.0).unwrap();
        lp.add_constraint("c1", &[(x, 1.0)], Relation::LessEq, 4.0)
            .unwrap();
        lp.add_constraint("c2", &[(y, 2.0)], Relation::LessEq, 12.0)
            .unwrap();
        lp.add_constraint("c3", &[(x, 3.0), (y, 2.0)], Relation::LessEq, 18.0)
            .unwrap();
        let s = lp.solve().unwrap();
        assert!(s.is_optimal());
        assert_close(s.objective(), 36.0, 1e-8);
        assert_close(s.value(x), 2.0, 1e-8);
        assert_close(s.value(y), 6.0, 1e-8);
    }

    #[test]
    fn minimization_with_geq_rows_needs_phase_one() {
        // min 2x + 3y s.t. x + y >= 4, x + 3y >= 6, x,y >= 0 — optimum at (3,1): 9.
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x", 0.0, f64::INFINITY).unwrap();
        let y = lp.add_var("y", 0.0, f64::INFINITY).unwrap();
        lp.set_objective_coefficient(x, 2.0).unwrap();
        lp.set_objective_coefficient(y, 3.0).unwrap();
        lp.add_constraint("c1", &[(x, 1.0), (y, 1.0)], Relation::GreaterEq, 4.0)
            .unwrap();
        lp.add_constraint("c2", &[(x, 1.0), (y, 3.0)], Relation::GreaterEq, 6.0)
            .unwrap();
        let s = lp.solve().unwrap();
        assert!(s.is_optimal());
        assert_close(s.objective(), 9.0, 1e-8);
        assert_close(s.value(x), 3.0, 1e-8);
        assert_close(s.value(y), 1.0, 1e-8);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 10, x - y = 2 → x=6, y=4, obj 10.
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x", 0.0, f64::INFINITY).unwrap();
        let y = lp.add_var("y", 0.0, f64::INFINITY).unwrap();
        lp.set_objective_coefficient(x, 1.0).unwrap();
        lp.set_objective_coefficient(y, 1.0).unwrap();
        lp.add_constraint("sum", &[(x, 1.0), (y, 1.0)], Relation::Equal, 10.0)
            .unwrap();
        lp.add_constraint("diff", &[(x, 1.0), (y, -1.0)], Relation::Equal, 2.0)
            .unwrap();
        let s = lp.solve().unwrap();
        assert!(s.is_optimal());
        assert_close(s.value(x), 6.0, 1e-8);
        assert_close(s.value(y), 4.0, 1e-8);
    }

    #[test]
    fn detects_infeasible() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x", 0.0, f64::INFINITY).unwrap();
        lp.set_objective_coefficient(x, 1.0).unwrap();
        lp.add_constraint("lo", &[(x, 1.0)], Relation::GreaterEq, 5.0)
            .unwrap();
        lp.add_constraint("hi", &[(x, 1.0)], Relation::LessEq, 3.0)
            .unwrap();
        let s = lp.solve().unwrap();
        assert_eq!(s.status(), SolverStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_var("x", 0.0, f64::INFINITY).unwrap();
        let y = lp.add_var("y", 0.0, f64::INFINITY).unwrap();
        lp.set_objective_coefficient(x, 1.0).unwrap();
        lp.set_objective_coefficient(y, 1.0).unwrap();
        lp.add_constraint("c", &[(x, 1.0), (y, -1.0)], Relation::LessEq, 1.0)
            .unwrap();
        let s = lp.solve().unwrap();
        assert_eq!(s.status(), SolverStatus::Unbounded);
    }

    #[test]
    fn respects_variable_upper_bounds() {
        // max x + y with x,y in [0, 2] and x + y <= 3.5 → 3.5.
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_var("x", 0.0, 2.0).unwrap();
        let y = lp.add_var("y", 0.0, 2.0).unwrap();
        lp.set_objective_coefficient(x, 1.0).unwrap();
        lp.set_objective_coefficient(y, 1.0).unwrap();
        lp.add_constraint("cap", &[(x, 1.0), (y, 1.0)], Relation::LessEq, 3.5)
            .unwrap();
        let s = lp.solve().unwrap();
        assert!(s.is_optimal());
        assert_close(s.objective(), 3.5, 1e-8);
        assert!(s.value(x) <= 2.0 + 1e-9);
        assert!(s.value(y) <= 2.0 + 1e-9);
    }

    #[test]
    fn handles_nonzero_lower_bounds() {
        // min x + y with x >= 2, y >= 3, x + y >= 7 → 7.
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x", 2.0, f64::INFINITY).unwrap();
        let y = lp.add_var("y", 3.0, f64::INFINITY).unwrap();
        lp.set_objective_coefficient(x, 1.0).unwrap();
        lp.set_objective_coefficient(y, 1.0).unwrap();
        lp.add_constraint("c", &[(x, 1.0), (y, 1.0)], Relation::GreaterEq, 7.0)
            .unwrap();
        let s = lp.solve().unwrap();
        assert!(s.is_optimal());
        assert_close(s.objective(), 7.0, 1e-8);
        assert!(s.value(x) >= 2.0 - 1e-9);
        assert!(s.value(y) >= 3.0 - 1e-9);
    }

    #[test]
    fn handles_free_variables() {
        // min |style| problem: min x s.t. x >= -5 as a free var with a >= row.
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x", f64::NEG_INFINITY, f64::INFINITY).unwrap();
        lp.set_objective_coefficient(x, 1.0).unwrap();
        lp.add_constraint("c", &[(x, 1.0)], Relation::GreaterEq, -5.0)
            .unwrap();
        let s = lp.solve().unwrap();
        assert!(s.is_optimal());
        assert_close(s.value(x), -5.0, 1e-8);
    }

    #[test]
    fn handles_upper_bounded_only_variable() {
        // max x with x <= 7 (no lower bound) → 7.
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_var("x", f64::NEG_INFINITY, 7.0).unwrap();
        lp.set_objective_coefficient(x, 1.0).unwrap();
        lp.add_constraint("c", &[(x, 1.0)], Relation::LessEq, 100.0)
            .unwrap();
        let s = lp.solve().unwrap();
        assert!(s.is_optimal());
        assert_close(s.value(x), 7.0, 1e-8);
    }

    #[test]
    fn no_constraints_moves_to_bounds() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x", 1.0, 4.0).unwrap();
        let y = lp.add_var("y", -2.0, 2.0).unwrap();
        lp.set_objective_coefficient(x, 1.0).unwrap();
        lp.set_objective_coefficient(y, -1.0).unwrap();
        let s = lp.solve().unwrap();
        assert!(s.is_optimal());
        assert_close(s.value(x), 1.0, 1e-12);
        assert_close(s.value(y), 2.0, 1e-12);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // min x s.t. -x <= -3  (i.e. x >= 3).
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x", 0.0, f64::INFINITY).unwrap();
        lp.set_objective_coefficient(x, 1.0).unwrap();
        lp.add_constraint("c", &[(x, -1.0)], Relation::LessEq, -3.0)
            .unwrap();
        let s = lp.solve().unwrap();
        assert!(s.is_optimal());
        assert_close(s.value(x), 3.0, 1e-8);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classically degenerate LP; checks anti-cycling protection.
        let mut lp = LpProblem::new(Sense::Minimize);
        let x1 = lp.add_var("x1", 0.0, f64::INFINITY).unwrap();
        let x2 = lp.add_var("x2", 0.0, f64::INFINITY).unwrap();
        let x3 = lp.add_var("x3", 0.0, f64::INFINITY).unwrap();
        let x4 = lp.add_var("x4", 0.0, f64::INFINITY).unwrap();
        lp.set_objective_coefficient(x1, -0.75).unwrap();
        lp.set_objective_coefficient(x2, 150.0).unwrap();
        lp.set_objective_coefficient(x3, -0.02).unwrap();
        lp.set_objective_coefficient(x4, 6.0).unwrap();
        lp.add_constraint(
            "r1",
            &[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Relation::LessEq,
            0.0,
        )
        .unwrap();
        lp.add_constraint(
            "r2",
            &[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Relation::LessEq,
            0.0,
        )
        .unwrap();
        lp.add_constraint("r3", &[(x3, 1.0)], Relation::LessEq, 1.0)
            .unwrap();
        let s = lp.solve().unwrap();
        assert!(s.is_optimal());
        assert_close(s.objective(), -0.05, 1e-6);
    }

    #[test]
    fn pivot_budget_stops_the_solve_with_a_structured_error() {
        // The textbook maximization needs a handful of pivots; a budget of
        // one cannot finish and must surface as PivotBudgetExceeded.
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_var("x", 0.0, f64::INFINITY).unwrap();
        let y = lp.add_var("y", 0.0, f64::INFINITY).unwrap();
        lp.set_objective_coefficient(x, 3.0).unwrap();
        lp.set_objective_coefficient(y, 5.0).unwrap();
        lp.add_constraint("c1", &[(x, 1.0)], Relation::LessEq, 4.0)
            .unwrap();
        lp.add_constraint("c2", &[(y, 2.0)], Relation::LessEq, 12.0)
            .unwrap();
        lp.add_constraint("c3", &[(x, 3.0), (y, 2.0)], Relation::LessEq, 18.0)
            .unwrap();
        let err = lp
            .solve_with(&SimplexOptions::with_max_pivots(1))
            .unwrap_err();
        assert!(
            matches!(err, LpError::PivotBudgetExceeded { pivots: 1 }),
            "expected PivotBudgetExceeded, got {err}"
        );
        // A sufficient budget solves identically to the default path and
        // reports its pivot count.
        let s = lp.solve_with(&SimplexOptions::default()).unwrap();
        assert!(s.is_optimal());
        assert_close(s.objective(), 36.0, 1e-8);
        assert!(s.pivots() > 1);
        assert_eq!(s.pivots(), s.iterations());
    }

    #[test]
    fn solution_satisfies_original_model() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_var("x", 0.0, 10.0).unwrap();
        let y = lp.add_var("y", 1.0, 8.0).unwrap();
        let z = lp.add_var("z", 0.0, f64::INFINITY).unwrap();
        lp.set_objective_coefficient(x, 1.0).unwrap();
        lp.set_objective_coefficient(y, 2.0).unwrap();
        lp.set_objective_coefficient(z, 1.5).unwrap();
        lp.add_constraint("a", &[(x, 1.0), (y, 1.0), (z, 1.0)], Relation::LessEq, 12.0)
            .unwrap();
        lp.add_constraint("b", &[(x, 2.0), (z, 1.0)], Relation::LessEq, 9.0)
            .unwrap();
        lp.add_constraint("c", &[(y, 1.0), (z, -1.0)], Relation::GreaterEq, 0.5)
            .unwrap();
        let s = lp.solve().unwrap();
        assert!(s.is_optimal());
        assert!(lp.is_feasible(s.values(), 1e-6).unwrap());
    }
}
