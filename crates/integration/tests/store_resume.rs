//! Persistent sweep-store integration tests: kill-and-resume against the
//! committed goldens, damaged-store robustness, store-fed warm starts, and
//! fingerprint invariants.
//!
//! The kill-and-resume tests replay the exact scenario the store exists
//! for: a sweep is interrupted after committing some of its work units (the
//! executor persists each unit the moment it completes, so a killed process
//! leaves exactly a unit-granular prefix behind), then re-run against the
//! same store. The resumed output must be byte-identical to the committed
//! `gp-*` goldens — the same bytes an uninterrupted cold run produces.

use std::path::PathBuf;

use proptest::prelude::*;

use mfa_alloc::cases::PaperCase;
use mfa_alloc::exact::{ExactMode, ExactOptions};
use mfa_alloc::gpa::GpaOptions;
use mfa_alloc::{AllocationProblem, GoalWeights, Kernel};
use mfa_explore::store::{commit_unit, plan_store, point_fingerprint, series_fingerprint};
use mfa_explore::{
    compute_unit_hinted, export, figures, plan_units, run_sweep, run_sweep_stored, zero_timing,
    CaseSpec, ExecutorOptions, SolverSpec, SweepGrid, SweepSeries, SweepStore,
    DEFAULT_CACHE_CAPACITY,
};
use mfa_minlp::SolverOptions;
use mfa_platform::{MultiFpgaPlatform, ResourceBudget, ResourceVec};

/// A fresh per-test store directory under the system temp dir. Each test
/// passes a distinct tag so parallel test threads never share a store.
fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mfa-store-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn golden(name: &str, ext: &str) -> String {
    let path = format!(
        "{}/tests/golden/gp-{name}.{ext}",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).expect("committed golden snapshot exists")
}

/// The quick Fig. 2 grid (the greedy `T` sweep — several GP+A series, so
/// several work units): the committed `gp-fig2` goldens' input, affordable
/// in debug mode.
fn fig2_grid() -> SweepGrid {
    figures::paper_figures(true, false)
        .expect("quick grids are well-formed")
        .into_iter()
        .find(|f| f.name == "fig2")
        .expect("fig2 is one of the paper figures")
        .grid
}

fn assert_golden_bytes(mut series: Vec<SweepSeries>, label: &str) {
    zero_timing(&mut series);
    assert_eq!(
        export::series_to_json(&series),
        golden("fig2", "json"),
        "{label}: JSON diverged from the committed golden"
    );
    assert_eq!(
        export::series_to_csv(&series),
        golden("fig2", "csv"),
        "{label}: CSV diverged from the committed golden"
    );
}

/// Simulates a sweep killed mid-run: computes and commits only the units in
/// `keep`, exactly as the executor would have before dying.
fn commit_partial(grid: &SweepGrid, dir: &PathBuf, keep: impl Fn(usize) -> bool) {
    let options = ExecutorOptions::default();
    let units = plan_units(grid, options.chunk_size).expect("grid plans");
    let mut store = SweepStore::open(dir).expect("store opens");
    let plan = plan_store(grid, &units, options.warm_start, &mut store).expect("store plans");
    for (idx, unit) in units.iter().enumerate() {
        if !keep(idx) {
            continue;
        }
        let output = compute_unit_hinted(
            grid,
            unit,
            options.warm_start,
            DEFAULT_CACHE_CAPACITY,
            &plan.units[idx].seeds,
        )
        .expect("unit computes");
        commit_unit(&mut store, &plan.units[idx], &output).expect("unit commits");
    }
}

#[test]
fn killed_sweep_resumes_byte_identically_to_the_golden() {
    let grid = fig2_grid();
    let dir = temp_store("resume");
    let units = plan_units(&grid, ExecutorOptions::default().chunk_size).expect("grid plans");
    assert!(units.len() >= 2, "the scenario needs at least two units");
    let half = units.len() / 2;

    // "Kill" the first run after the first half of its units committed.
    commit_partial(&grid, &dir, |idx| idx < half);

    // Resume: the stored half replays, the rest computes fresh.
    let mut store = SweepStore::open(&dir).expect("store reopens");
    let (series, report) =
        run_sweep_stored(&grid, &ExecutorOptions::default(), &mut store).expect("resume runs");
    assert_eq!(report.units_replayed, half);
    assert_eq!(report.units_computed, units.len() - half);
    assert_golden_bytes(series, "resumed run");

    // A second full run replays everything and stays byte-identical.
    let mut store = SweepStore::open(&dir).expect("store reopens again");
    let (series, report) =
        run_sweep_stored(&grid, &ExecutorOptions::default(), &mut store).expect("replay runs");
    assert_eq!(report.points_computed, 0, "nothing left to compute");
    assert_eq!(report.units_replayed, units.len());
    assert_golden_bytes(series, "full replay");

    let _ = std::fs::remove_dir_all(&dir);
}

/// A GP+A-only grid with three labeled backends — three series, hence
/// three store segments at the default chunk size.
fn three_segment_grid() -> SweepGrid {
    let mut builder = SweepGrid::builder()
        .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
        .fpga_counts([2])
        .constraints([0.60, 0.70, 0.80, 0.90]);
    for (label, relaxation) in [("t0", 0.0), ("t3", 0.03), ("t5", 0.05)] {
        let mut options = GpaOptions::fast();
        options.greedy.max_relaxation = relaxation;
        builder = builder.backend(SolverSpec::gpa_labeled(label, options));
    }
    builder.build().unwrap()
}

#[test]
fn damaged_store_entries_are_counted_misses_and_never_change_output() {
    let grid = three_segment_grid();
    let dir = temp_store("damage");

    // Populate the store fully, then damage it in every way the decoder
    // distinguishes: a garbage line, a truncated frame, a version-mismatched
    // entry, and one whole segment replaced by binary junk.
    commit_partial(&grid, &dir, |_| true);
    let mut segments: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("store directory lists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("jsonl"))
        .collect();
    segments.sort();
    assert_eq!(segments.len(), 3, "one segment per series");

    // Segment 0: append garbage and a version-mismatched clone of a line.
    let text = std::fs::read_to_string(&segments[0]).expect("segment reads");
    let first_line = text.lines().next().expect("segment has entries").to_owned();
    let mismatched = first_line.replacen("{\"v\":1,", "{\"v\":999,", 1);
    assert_ne!(first_line, mismatched, "the entry carries the version");
    std::fs::write(
        &segments[0],
        format!("{text}not json at all\n{mismatched}\n"),
    )
    .expect("segment rewrites");

    // Segment 1: truncate mid-frame (as if the process died writing —
    // impossible with the tempfile-rename commit, but the decoder must
    // still absorb a torn file restored from a backup, say).
    let text = std::fs::read_to_string(&segments[1]).expect("segment reads");
    std::fs::write(&segments[1], &text[..text.len() / 2]).expect("segment truncates");

    // Segment 2: binary junk wholesale.
    std::fs::write(&segments[2], b"\x00\xff\xfe garbage \x01").expect("segment rewrites");

    let mut store = SweepStore::open(&dir).expect("a damaged store still opens");
    assert!(
        store.corrupt_entries() > 0,
        "the garbage lines must be counted"
    );
    assert!(
        store.version_mismatches() > 0,
        "the version-mismatched entry must be counted"
    );

    // The damaged points recompute; output is byte-identical to a cold run.
    let (mut series, report) =
        run_sweep_stored(&grid, &ExecutorOptions::default(), &mut store).expect("damaged run");
    assert!(
        report.points_computed > 0,
        "damaged units must be recomputed"
    );
    assert!(report.corrupt_entries > 0);
    assert!(report.version_mismatches > 0);
    let mut cold = run_sweep(&grid, &ExecutorOptions::default()).expect("cold reference run");
    zero_timing(&mut series);
    zero_timing(&mut cold);
    assert_eq!(
        export::series_to_json(&series),
        export::series_to_json(&cold),
        "a damaged store must not change the output bytes"
    );
    assert_eq!(export::series_to_csv(&series), export::series_to_csv(&cold));

    let _ = std::fs::remove_dir_all(&dir);
}

/// A small synthetic pipeline whose MINLP branch-and-bound completes, so
/// store-fed incumbents can only change effort, never the achieved II.
fn synthetic_grid(constraints: &[f64]) -> SweepGrid {
    let base = AllocationProblem::builder()
        .kernels(vec![
            Kernel::new("load", 3.0, ResourceVec::bram_dsp(0.05, 0.16), 0.02).unwrap(),
            Kernel::new("conv", 7.0, ResourceVec::bram_dsp(0.09, 0.30), 0.03).unwrap(),
            Kernel::new("pool", 4.0, ResourceVec::bram_dsp(0.04, 0.12), 0.02).unwrap(),
        ])
        .platform(MultiFpgaPlatform::aws_f1_4xlarge())
        .budget(ResourceBudget::uniform(1.0))
        .weights(GoalWeights::new(1.0, 0.7))
        .build()
        .unwrap();
    SweepGrid::builder()
        .case(CaseSpec::new("store-smoke", base))
        .fpga_counts([2])
        .constraints(constraints.iter().copied())
        .backend(SolverSpec::gpa(GpaOptions::fast()))
        .backend(SolverSpec::exact(ExactOptions {
            mode: ExactMode::IiOnly,
            solver: SolverOptions {
                max_nodes: 20_000,
                time_limit_seconds: None,
                ..SolverOptions::default()
            },
            symmetry_breaking: true,
        }))
        .build()
        .unwrap()
}

#[test]
fn stored_neighbours_warm_shifted_grids_without_changing_the_ii() {
    let dir = temp_store("neighbour");
    let options = ExecutorOptions::default();
    let populate = synthetic_grid(&[0.65, 0.85]);
    let shifted = synthetic_grid(&[0.75]);

    let mut store = SweepStore::open(&dir).expect("store opens");
    run_sweep_stored(&populate, &options, &mut store).expect("populate runs");

    let cold = run_sweep(&shifted, &options).expect("cold shifted run");
    let mut store = SweepStore::open(&dir).expect("store reopens");
    let (warmed, report) =
        run_sweep_stored(&shifted, &options, &mut store).expect("seeded shifted run");

    assert!(
        report.warm_from_store > 0,
        "the shifted grid must accept at least one store-neighbour hint"
    );
    let hints_accepted = warmed.iter().flat_map(|s| &s.points).any(|p| {
        p.warm_start.ii_hint_used || p.warm_start.dual_hint_used || p.warm_start.incumbent_used
    });
    assert!(hints_accepted, "some point must record an accepted hint");
    // The warm-start contract: hints change effort, never the achieved II.
    for (c, w) in cold.iter().zip(&warmed) {
        assert_eq!(c.points.len(), w.points.len());
        for (cp, wp) in c.points.iter().zip(&w.points) {
            assert_eq!(cp.budget, wp.budget);
            assert_eq!(
                cp.initiation_interval_ms, wp.initiation_interval_ms,
                "store hints must not change the achieved II"
            );
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bounded_cache_eviction_never_changes_the_achieved_ii() {
    let grid = three_segment_grid();
    let roomy = run_sweep(&grid, &ExecutorOptions::default()).expect("default-capacity run");
    let tight = run_sweep(
        &grid,
        &ExecutorOptions {
            cache_capacity: 1,
            ..ExecutorOptions::default()
        },
    )
    .expect("capacity-1 run");
    assert_eq!(roomy.len(), tight.len());
    for (r, t) in roomy.iter().zip(&tight) {
        assert_eq!(r.points.len(), t.points.len());
        for (rp, tp) in r.points.iter().zip(&t.points) {
            assert_eq!(rp.budget, tp.budget);
            assert_eq!(
                rp.initiation_interval_ms, tp.initiation_interval_ms,
                "eviction must not change the achieved II"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Fingerprint invariants.

/// Every solver-config mutation the fingerprint must be sensitive to: the
/// label-stripped backend options, field by field.
fn config_variants() -> Vec<(&'static str, SolverSpec)> {
    let gpa = |label: &'static str, options: GpaOptions| (label, SolverSpec::gpa(options));
    let mut variants = vec![
        gpa("gpa-default", GpaOptions::default()),
        gpa("gpa-fast", GpaOptions::fast()),
        gpa("gpa-greedy-relaxation", {
            let mut o = GpaOptions::default();
            o.greedy.max_relaxation = 0.07;
            o
        }),
        gpa("gpa-greedy-step", {
            let mut o = GpaOptions::default();
            o.greedy.relaxation_step = 0.02;
            o
        }),
        gpa("gpa-discretize-tolerance", {
            let mut o = GpaOptions::default();
            o.discretize.integer_tolerance *= 10.0;
            o
        }),
        gpa("gpa-discretize-nodes", {
            let mut o = GpaOptions::default();
            o.discretize.max_nodes += 1;
            o
        }),
    ];
    let exact = |mutate: fn(&mut ExactOptions)| {
        let mut o = ExactOptions::default();
        mutate(&mut o);
        SolverSpec::exact(o)
    };
    variants.extend([
        ("exact-default", exact(|_| {})),
        ("exact-mode", exact(|o| o.mode = ExactMode::IiAndSpreading)),
        ("exact-nodes", exact(|o| o.solver.max_nodes += 1)),
        (
            "exact-time-limit",
            exact(|o| o.solver.time_limit_seconds = Some(9.0)),
        ),
        (
            "exact-integer-tolerance",
            exact(|o| o.solver.integer_tolerance *= 10.0),
        ),
        (
            "exact-feasibility-tolerance",
            exact(|o| o.solver.feasibility_tolerance *= 10.0),
        ),
        (
            "exact-absolute-gap",
            exact(|o| o.solver.absolute_gap *= 10.0),
        ),
        (
            "exact-relative-gap",
            exact(|o| o.solver.relative_gap *= 10.0),
        ),
        ("exact-cut-rounds", exact(|o| o.solver.cut_rounds += 1)),
        (
            "exact-symmetry",
            exact(|o| o.symmetry_breaking = !o.symmetry_breaking),
        ),
    ]);
    variants
}

fn one_backend_grid(backend: SolverSpec) -> SweepGrid {
    SweepGrid::builder()
        .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
        .fpga_counts([2])
        .constraints([0.65, 0.75])
        .backend(backend)
        .build()
        .unwrap()
}

#[test]
fn fingerprints_are_sensitive_to_every_solver_config_field() {
    // Labels are stripped from the fingerprint, so two configs collide iff
    // their actual solver options collide — every variant must be distinct.
    let fps: Vec<(&str, _)> = config_variants()
        .into_iter()
        .map(|(label, spec)| {
            let grid = one_backend_grid(spec);
            (
                label,
                point_fingerprint(&grid, 0, 0, true).expect("fingerprints"),
            )
        })
        .collect();
    for (i, (label_a, fp_a)) in fps.iter().enumerate() {
        for (label_b, fp_b) in &fps[i + 1..] {
            assert_ne!(
                fp_a, fp_b,
                "configs {label_a} and {label_b} must not share a fingerprint"
            );
        }
    }
    // And the executor warm-start mode is part of the key too.
    let grid = one_backend_grid(SolverSpec::gpa(GpaOptions::fast()));
    assert_ne!(
        point_fingerprint(&grid, 0, 0, true).unwrap(),
        point_fingerprint(&grid, 0, 0, false).unwrap(),
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    /// Point fingerprints never depend on the chunk decomposition: any
    /// chunk size yields the same (series, budget) → fingerprint mapping,
    /// and planning against an empty store derives the same per-point keys.
    #[test]
    fn fingerprints_are_invariant_under_chunking(chunk_size in 1usize..6) {
        let grid = fig2_grid();
        let dir = temp_store(&format!("chunking-{chunk_size}"));
        let mut store = SweepStore::open(&dir).expect("store opens");
        let units = plan_units(&grid, chunk_size).expect("grid plans");
        let plan = plan_store(&grid, &units, true, &mut store).expect("store plans");
        for (unit, unit_plan) in units.iter().zip(&plan.units) {
            let series_fp = series_fingerprint(&grid, unit.series, true).expect("series fp");
            prop_assert_eq!(series_fp, unit_plan.series_fp);
            for (offset, budget_idx) in (unit.start..unit.end).enumerate() {
                // The planned fingerprint equals the directly derived one —
                // chunking is not an input to either.
                let fp = point_fingerprint(&grid, unit.series, budget_idx, true)
                    .expect("point fp");
                prop_assert_eq!(fp, unit_plan.point_fps[offset]);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
