//! Smoke test mirroring `examples/quickstart.rs`: the GP+A heuristic must
//! beat the single-CU bottleneck on the documented four-kernel pipeline.

use mfa_alloc::solver::{Backend, SolveRequest};
use mfa_alloc::{AllocationProblem, GoalWeights, Kernel};
use mfa_platform::{MultiFpgaPlatform, ResourceBudget, ResourceVec};

/// The quickstart's documented invariant: on `aws_f1_4xlarge` the allocated
/// pipeline's initiation interval drops below the 9.0 ms WCET of its slowest
/// kernel (`detect`), i.e. replication actually buys throughput.
#[test]
fn quickstart_initiation_interval_beats_bottleneck() {
    let kernels = vec![
        Kernel::new("decode", 2.0, ResourceVec::bram_dsp(0.04, 0.06), 0.05).expect("valid kernel"),
        Kernel::new("detect", 9.0, ResourceVec::bram_dsp(0.08, 0.22), 0.03).expect("valid kernel"),
        Kernel::new("track", 5.0, ResourceVec::bram_dsp(0.05, 0.12), 0.02).expect("valid kernel"),
        Kernel::new("encode", 3.0, ResourceVec::bram_dsp(0.06, 0.08), 0.06).expect("valid kernel"),
    ];

    let problem = AllocationProblem::builder()
        .kernels(kernels)
        .platform(MultiFpgaPlatform::aws_f1_4xlarge())
        .budget(ResourceBudget::uniform(0.70))
        .weights(GoalWeights::new(1.0, 0.7))
        .build()
        .expect("quickstart problem builds");

    let outcome = SolveRequest::new(&problem)
        .backend(Backend::gpa())
        .solve()
        .expect("heuristic solves");
    outcome
        .allocation
        .validate(&problem, 1e-9)
        .expect("allocation respects budgets");

    let ii = outcome.allocation.initiation_interval(&problem);
    assert!(
        ii < 9.0,
        "quickstart invariant violated: II = {ii} ms, expected < 9.0 ms"
    );
}
