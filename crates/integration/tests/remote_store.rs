//! Byte-identity of sweeps through the network store: `run_sweep_stored`
//! pointed at `mfa_storenet`'s `RemoteStore` (a live store-server on the
//! other end) must reproduce the committed golden snapshots exactly — both
//! the populating run and the full replay — and the directory the server
//! leaves behind must be a valid *local* `SweepStore` holding the same
//! bytes, because the wire carries the store's canonical line encoding.

use std::path::PathBuf;

use mfa_explore::{
    export, figures, run_sweep_stored, zero_timing, ExecutorOptions, SweepSeries, SweepStore,
};
use mfa_storenet::{RemoteStore, StoreServer};

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mfa-remote-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn golden(name: &str, ext: &str) -> String {
    let path = format!(
        "{}/tests/golden/gp-{name}.{ext}",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).expect("committed golden snapshot exists")
}

/// The quick Fig. 2 grid — the committed `gp-fig2` goldens' input.
fn fig2_grid() -> mfa_explore::SweepGrid {
    figures::paper_figures(true, false)
        .expect("quick grids are well-formed")
        .into_iter()
        .find(|f| f.name == "fig2")
        .expect("fig2 is one of the paper figures")
        .grid
}

fn assert_golden_bytes(mut series: Vec<SweepSeries>, label: &str) {
    zero_timing(&mut series);
    assert_eq!(
        export::series_to_json(&series),
        golden("fig2", "json"),
        "{label}: JSON diverged from the committed golden"
    );
    assert_eq!(
        export::series_to_csv(&series),
        golden("fig2", "csv"),
        "{label}: CSV diverged from the committed golden"
    );
}

#[test]
fn remote_store_sweeps_reproduce_the_golden_bytes() {
    let root = temp_root("golden");
    let server = StoreServer::spawn("127.0.0.1:0", root.clone()).expect("store-server spawns");
    let addr = server.local_addr().to_string();
    let grid = fig2_grid();
    let options = ExecutorOptions::default();

    // Populate through the wire: every unit computes, the merged series are
    // the golden bytes, and every result lands behind the server.
    let mut store = RemoteStore::connect(&addr, "fig2").expect("client connects");
    let (series, report) =
        run_sweep_stored(&grid, &options, &mut store).expect("populating remote run");
    assert_eq!(report.units_replayed, 0);
    assert!(report.units_computed > 0);
    assert_golden_bytes(series, "populating remote run");

    // A second client (another sweep host in the shared-store topology)
    // replays everything without computing a single point.
    let mut store = RemoteStore::connect(&addr, "fig2").expect("second client connects");
    let (series, report) = run_sweep_stored(&grid, &options, &mut store).expect("remote replay");
    assert_eq!(report.points_computed, 0, "full replay computes nothing");
    assert_golden_bytes(series, "remote replay");

    // The server's namespace directory is an ordinary local store: opening
    // it directly replays the same bytes, so local and remote access are
    // interchangeable views of one cache.
    server.stop();
    let mut local = SweepStore::open(root.join("fig2")).expect("server directory opens locally");
    assert_eq!(local.corrupt_entries(), 0);
    assert_eq!(local.version_mismatches(), 0);
    let (series, report) = run_sweep_stored(&grid, &options, &mut local).expect("local replay");
    assert_eq!(report.points_computed, 0, "local replay computes nothing");
    assert_golden_bytes(series, "local replay of the server's directory");

    let _ = std::fs::remove_dir_all(&root);
}
