//! Golden-file regression tests for the figure sweeps.
//!
//! Two snapshot sets live under `tests/golden/`, both produced by the `dse`
//! example with `--zero-timing` (wall-clock is the only legitimate
//! run-to-run difference, so it is normalized out):
//!
//! * `gp-*` — `dse --quick --no-exact`: the GP+A-only figure series.
//!   Cheap enough to re-sweep in debug mode, so this suite byte-compares
//!   serial and threaded runs against them on every `cargo test`.
//! * `quick-*` — `dse --quick` (with the MINLP series): regenerated and
//!   byte-compared by the release-mode CI steps, where the node-capped
//!   exact solves are affordable. Here we only verify the snapshots are
//!   present and well-formed, so a stale or hand-edited golden still fails
//!   fast in debug.
//!
//! Regenerate either set after an intentional output change:
//!
//! ```text
//! cargo run --release --example dse -- --quick --zero-timing \
//!     --out crates/integration/tests/golden/quick
//! cargo run --release --example dse -- --quick --no-exact --zero-timing \
//!     --out crates/integration/tests/golden/gp
//! ```

use mfa_explore::json::Json;
use mfa_explore::{
    export, figures, run_sweep, zero_chunk_diagnostics, zero_timing, ExecutorOptions, FigureSpec,
    SweepSeries,
};

const FIGURE_NAMES: [&str; 5] = ["fig2", "fig3", "fig4", "fig5", "hetero"];

fn golden(prefix: &str, name: &str, ext: &str) -> String {
    let path = format!(
        "{}/tests/golden/{prefix}-{name}.{ext}",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).unwrap_or_else(|err| {
        panic!("missing golden snapshot {path} ({err}); see the header of this file")
    })
}

/// The GP+A-only quick figure set: Figs. 2–5 plus the hetero smoke grid —
/// everything the `gp-*` goldens snapshot.
fn gp_figures() -> Vec<FigureSpec> {
    let mut figures = figures::paper_figures(true, false).expect("quick grids are well-formed");
    figures.push(figures::hetero_smoke().expect("hetero grid is well-formed"));
    figures
}

fn assert_matches_golden(figure: &FigureSpec, mut series: Vec<SweepSeries>, label: &str) {
    zero_timing(&mut series);
    assert_eq!(
        export::series_to_json(&series),
        golden("gp", figure.name, "json"),
        "{label} run of {} diverged from the committed JSON golden",
        figure.name
    );
    assert_eq!(
        export::series_to_csv(&series),
        golden("gp", figure.name, "csv"),
        "{label} run of {} diverged from the committed CSV golden",
        figure.name
    );
}

#[test]
fn serial_runs_match_the_committed_goldens() {
    for figure in gp_figures() {
        let series = run_sweep(&figure.grid, &ExecutorOptions::serial()).unwrap();
        assert_matches_golden(&figure, series, "serial");
    }
}

#[test]
fn threaded_runs_match_the_committed_goldens() {
    // Default chunk size (the goldens' decomposition), adversarial thread
    // count: more threads than units for several of the grids.
    let options = ExecutorOptions {
        num_threads: Some(4),
        ..ExecutorOptions::default()
    };
    for figure in gp_figures() {
        let series = run_sweep(&figure.grid, &options).unwrap();
        assert_matches_golden(&figure, series, "threaded");
    }
}

#[test]
fn small_chunk_threaded_runs_match_the_default_decomposition() {
    // chunk_size 1 disables intra-chunk warm starts entirely, so the
    // decomposition differs from the goldens' — but GP+A warm starts are
    // verified to reach the same II as cold solves, and these grids have no
    // II ties, so every solution column must still match the default-chunk
    // reference. This is the strongest available check that warm-start
    // state never leaks across chunk boundaries. The per-request
    // diagnostics (warm-start provenance, node counts, relaxation-gap
    // ulps) are facts about the decomposition and are normalized out; see
    // `mfa_explore::zero_chunk_diagnostics`.
    let options = ExecutorOptions {
        num_threads: Some(3),
        chunk_size: 1,
        ..ExecutorOptions::default()
    };
    let strip = |mut series: Vec<SweepSeries>| {
        zero_timing(&mut series);
        zero_chunk_diagnostics(&mut series);
        (
            export::series_to_json(&series),
            export::series_to_csv(&series),
        )
    };
    for figure in gp_figures() {
        let chunk1 = run_sweep(&figure.grid, &options).unwrap();
        let reference = run_sweep(&figure.grid, &ExecutorOptions::default()).unwrap();
        assert_eq!(
            strip(chunk1),
            strip(reference),
            "chunk-1 threaded run of {} diverged from the default decomposition",
            figure.name
        );
    }
}

#[test]
fn full_quick_goldens_are_present_and_well_formed() {
    // The MINLP-bearing `quick-*` set is too expensive to re-sweep in debug
    // mode; CI regenerates and diffs it in release. Debug still verifies
    // every snapshot exists, parses as JSON, and covers the expected series.
    for name in FIGURE_NAMES {
        let json = golden("quick", name, "json");
        let doc = Json::parse(&json)
            .unwrap_or_else(|err| panic!("quick-{name}.json is not valid JSON: {err}"));
        let series = doc.as_arr().expect("top level is an array of series");
        assert!(!series.is_empty(), "quick-{name}.json has no series");
        for s in series {
            assert!(s.get("case").is_some());
            assert!(s.get("backend").is_some());
            assert!(s.get("points").is_some());
        }
        let csv = golden("quick", name, "csv");
        assert!(csv.starts_with("case,platform,num_fpgas,backend"));
        // Timing must be normalized, or byte-comparison would be meaningless
        // (solve_seconds is the 14th of the 23 columns).
        for line in csv.lines().skip(1) {
            let solve_seconds = line.split(',').nth(13).unwrap_or("");
            assert_eq!(
                solve_seconds, "0",
                "quick-{name}.csv carries non-zero solve_seconds: {line}"
            );
        }
    }
    // Figs. 3–5 carry the MINLP series in the full set.
    for name in ["fig3", "fig4", "fig5"] {
        let json = golden("quick", name, "json");
        assert!(
            json.contains("\"backend\": \"MINLP\""),
            "quick-{name}.json lost its MINLP series"
        );
    }
}

#[test]
fn gp_and_quick_goldens_agree_on_the_gpa_series() {
    // The GP+A series of fig3–fig5 appear in both sets and must be
    // byte-identical: the presence of MINLP backends on the grid cannot
    // perturb the GP+A results.
    for name in ["fig3", "fig4", "fig5"] {
        let gp = golden("gp", name, "csv");
        let quick = golden("quick", name, "csv");
        let gp_gpa: Vec<&str> = gp.lines().filter(|l| l.contains(",GP+A,")).collect();
        let quick_gpa: Vec<&str> = quick.lines().filter(|l| l.contains(",GP+A,")).collect();
        assert_eq!(gp_gpa, quick_gpa, "{name}: GP+A rows diverged");
        assert!(!gp_gpa.is_empty(), "{name}: no GP+A rows found");
    }
}
