//! Property-based integration tests: the solver stack stays consistent on
//! randomly generated pipelines.

use proptest::prelude::*;

use mfa_alloc::exact::{ExactMode, ExactOptions};
use mfa_alloc::gp_step::{self, RelaxationBackend};
use mfa_alloc::solver::{Backend, SolveRequest};
use mfa_alloc::{AllocationProblem, GoalWeights, Kernel};
use mfa_minlp::SolverOptions;
use mfa_platform::{MultiFpgaPlatform, ResourceBudget, ResourceVec};
use mfa_sim::{simulate, SimConfig};

/// Strategy: a random feasible pipeline of 2–5 kernels on 2–4 FPGAs.
fn random_problem() -> impl Strategy<Value = AllocationProblem> {
    (
        proptest::collection::vec(
            (1.0..20.0f64, 0.03..0.15f64, 0.01..0.06f64, 0.005..0.04f64),
            2..6,
        ),
        2usize..5,
        0.6..0.95f64,
    )
        .prop_map(|(specs, num_fpgas, budget)| {
            let kernels: Vec<Kernel> = specs
                .iter()
                .enumerate()
                .map(|(i, &(wcet, dsp, bram, bw))| {
                    Kernel::new(format!("k{i}"), wcet, ResourceVec::bram_dsp(bram, dsp), bw)
                        .expect("generated kernels are valid")
                })
                .collect();
            AllocationProblem::builder()
                .kernels(kernels)
                .platform(MultiFpgaPlatform::aws_f1_16xlarge().with_num_fpgas(num_fpgas))
                .budget(ResourceBudget::uniform(budget))
                .weights(GoalWeights::new(1.0, 1.0))
                .build()
                .expect("generated problems are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// GP+A always returns a feasible allocation whose II is bracketed by the
    /// continuous relaxation and the single-CU bottleneck, and the simulator
    /// confirms the predicted II.
    #[test]
    fn heuristic_allocations_are_feasible_and_simulate_correctly(problem in random_problem()) {
        let request = SolveRequest::new(&problem).backend(Backend::gpa_fast());
        let outcome = match request.solve() {
            Ok(outcome) => outcome,
            Err(mfa_alloc::AllocError::Infeasible(_)) => return Ok(()),
            Err(other) => panic!("unexpected error: {other}"),
        };
        prop_assert!(outcome.allocation.validate(&problem, 1e-9).is_ok());
        let ii = outcome.allocation.initiation_interval(&problem);
        let relaxation = gp_step::solve(&problem, RelaxationBackend::Bisection)
            .expect("relaxation solves when the heuristic did");
        let bottleneck = problem.kernels().iter().map(Kernel::wcet_ms).fold(0.0_f64, f64::max);
        prop_assert!(ii >= relaxation.initiation_interval_ms - 1e-9);
        prop_assert!(ii <= bottleneck + 1e-9);

        let result = simulate(&problem, &outcome.allocation, &SimConfig {
            num_items: 200,
            ..SimConfig::default()
        });
        prop_assert!(result.ii_error_vs(ii) < 0.10,
            "simulated {} vs predicted {}", result.initiation_interval_ms, ii);
    }

    /// The budgeted exact solver never returns anything infeasible, never
    /// beats the continuous relaxation, and its proven bound is below the
    /// heuristic's value.
    #[test]
    fn exact_solver_is_sound_on_random_problems(problem in random_problem()) {
        let heuristic = match SolveRequest::new(&problem).backend(Backend::gpa_fast()).solve() {
            Ok(outcome) => outcome,
            Err(_) => return Ok(()),
        };
        let exact_request = SolveRequest::new(&problem).backend(Backend::exact_with(ExactOptions {
            mode: ExactMode::IiOnly,
            solver: SolverOptions::with_budget(150, 5.0),
            symmetry_breaking: true,
        }));
        let exact_outcome = match exact_request.solve() {
            Ok(outcome) => outcome,
            Err(_) => return Ok(()),
        };
        prop_assert!(exact_outcome.allocation.validate(&problem, 1e-6).is_ok());
        let relaxation = gp_step::solve(&problem, RelaxationBackend::Bisection)
            .expect("relaxation solves");
        let ii_exact = exact_outcome.allocation.initiation_interval(&problem);
        prop_assert!(ii_exact >= relaxation.initiation_interval_ms - 1e-6);
        let ii_heuristic = heuristic.allocation.initiation_interval(&problem);
        prop_assert!(ii_heuristic >= exact_outcome.diagnostics.relaxed_ii_ms.unwrap() - 1e-6);
    }
}
