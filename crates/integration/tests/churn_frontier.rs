//! Golden regression test of the reallocation frontier on the committed
//! churn trace (`tests/golden/churn.trace`).
//!
//! Pins the tentpole contract of online reallocation end to end, for every
//! solver backend:
//!
//! * migration-penalized re-solves move **strictly fewer** CUs than cold
//!   (weight-0) re-solves across the trace, at ≤ 2 % steady-state II cost;
//! * the frontier is deterministic and byte-matches the committed snapshot
//!   (`tests/golden/churn-frontier.csv` / `.json`) — the exact backend runs
//!   under a node-only budget, so the rows are machine-independent;
//! * a weight-0 reallocation spec is inert: the solve is byte-identical to
//!   the static solve of the same problem.
//!
//! As with the `quick-*` figure goldens, the MINLP series is affordable only
//! in release builds: debug runs cover the Greedy and GP+A rows of the same
//! snapshot, and the release-mode CI step re-checks the full table.
//!
//! Regenerate the snapshot after an intentional output change:
//!
//! ```text
//! UPDATE_CHURN_GOLDEN=1 cargo test --release -p mfa_integration \
//!     --test churn_frontier
//! ```

use mfa_alloc::cases::PaperCase;
use mfa_alloc::exact::{ExactMode, ExactOptions};
use mfa_alloc::realloc::{Incumbent, MigrationCost, ReallocationSpec};
use mfa_alloc::solver::{Backend, SolveRequest};
use mfa_alloc::AllocationProblem;
use mfa_explore::{frontier_to_csv, frontier_to_json, run_frontier, FrontierPoint, FrontierSpec};
use mfa_minlp::SolverOptions;
use mfa_platform::{DeviceGroup, FpgaDevice, HeterogeneousPlatform};
use mfa_sim::{parse_trace, ChurnEvent, SimConfig};

/// Small enough to only break ties: penalized re-solves shed gratuitous
/// movement without trading real II (the ≤ 2 % contract below).
const TIE_BREAK_WEIGHT: f64 = 0.01;

fn base_problem() -> AllocationProblem {
    PaperCase::Alex16OnTwoFpgas
        .problem(0.70)
        .unwrap()
        .with_platform(HeterogeneousPlatform::new(
            "2×VU9P + 1×KU115",
            vec![
                DeviceGroup::new(FpgaDevice::vu9p(), 2),
                DeviceGroup::new(FpgaDevice::ku115(), 1),
            ],
        ))
}

fn committed_trace() -> Vec<ChurnEvent> {
    parse_trace(include_str!("golden/churn.trace")).expect("committed trace parses")
}

/// Node-only budget keeps the exact series machine-independent (a wall-clock
/// limit would cut the search at a host-dependent point and change the
/// snapshot); 400 nodes is enough for the cold solves to find near-optimal
/// designs, so the tie-break weight only sheds movement.
fn capped_exact() -> Backend {
    Backend::exact_with(ExactOptions {
        mode: ExactMode::IiOnly,
        solver: SolverOptions {
            max_nodes: 400,
            time_limit_seconds: None,
            ..SolverOptions::default()
        },
        symmetry_breaking: true,
    })
}

/// Fast backends only (debug-affordable); release adds the capped MINLP.
fn backends(with_exact: bool) -> Vec<Backend> {
    let mut backends = vec![Backend::greedy(), Backend::gpa_fast()];
    if with_exact {
        backends.push(capped_exact());
    }
    backends
}

fn frontier_spec(with_exact: bool) -> FrontierSpec {
    FrontierSpec {
        backends: backends(with_exact),
        sim: SimConfig {
            num_items: 200,
            ..SimConfig::default()
        },
        ..FrontierSpec::new(
            base_problem(),
            committed_trace(),
            vec![0.0, TIE_BREAK_WEIGHT],
        )
    }
}

fn golden_path(ext: &str) -> String {
    format!(
        "{}/tests/golden/churn-frontier.{ext}",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn read_golden(ext: &str) -> String {
    std::fs::read_to_string(golden_path(ext)).unwrap_or_else(|err| {
        panic!(
            "missing golden snapshot churn-frontier.{ext} ({err}); \
             regenerate with UPDATE_CHURN_GOLDEN=1 in release mode"
        )
    })
}

/// Asserts the reallocation contract on one backend's rows: strictly fewer
/// moved CUs at ≤ 2 % steady-state II degradation, event by event.
fn assert_contract(points: &[FrontierPoint], backend: &str) {
    let series = |weight: f64| -> Vec<&FrontierPoint> {
        points
            .iter()
            .filter(|p| p.backend == backend && p.weight == weight)
            .collect()
    };
    let cold = series(0.0);
    let penalized = series(TIE_BREAK_WEIGHT);
    assert_eq!(cold.len(), 4, "{backend}: base row + 3 trace events");
    assert_eq!(penalized.len(), 4);
    let moved = |rows: &[&FrontierPoint]| rows.iter().map(|p| p.moved_cus).sum::<u32>();
    assert!(
        moved(&penalized) < moved(&cold),
        "{backend}: penalized re-solves moved {} CUs, cold moved {}",
        moved(&penalized),
        moved(&cold)
    );
    for (p, c) in penalized.iter().zip(&cold) {
        assert!(
            p.steady_ii_ms <= c.steady_ii_ms * 1.02,
            "{backend} at {}: penalized II {} vs cold II {} exceeds 2 %",
            p.event,
            p.steady_ii_ms,
            c.steady_ii_ms
        );
    }
}

#[test]
fn fast_backends_beat_cold_and_match_their_golden_rows() {
    let spec = frontier_spec(false);
    let points = run_frontier(&spec).unwrap();

    // Determinism: a second sweep reproduces the table exactly.
    assert_eq!(
        run_frontier(&spec).unwrap(),
        points,
        "frontier sweep is not deterministic"
    );
    for backend in spec.backends.iter().map(Backend::label) {
        assert_contract(&points, backend);
    }

    // The fast-backend rows must byte-match their slice of the committed
    // snapshot (series are independent, so the 2-backend sweep reproduces
    // exactly the golden rows whose backend column is Greedy or GP+A).
    let csv = frontier_to_csv(&points);
    let golden = read_golden("csv");
    let golden_fast: Vec<&str> = golden
        .lines()
        .filter(|l| l.starts_with("backend,") || l.starts_with("Greedy,") || l.starts_with("GP+A,"))
        .collect();
    assert_eq!(
        csv.lines().collect::<Vec<_>>(),
        golden_fast,
        "fast-backend frontier rows diverged from the committed golden; \
         regenerate with UPDATE_CHURN_GOLDEN=1 in release mode if intentional"
    );
}

#[test]
fn full_frontier_with_minlp_matches_the_committed_golden() {
    if cfg!(debug_assertions) {
        // The node-capped MINLP re-solves cost minutes per solve without
        // optimizations; the release-mode CI step runs this test for real.
        eprintln!("skipping MINLP frontier rows in debug build");
        return;
    }
    let spec = frontier_spec(true);
    let points = run_frontier(&spec).unwrap();
    assert_eq!(
        run_frontier(&spec).unwrap(),
        points,
        "frontier sweep is not deterministic"
    );
    for backend in spec.backends.iter().map(Backend::label) {
        assert_contract(&points, backend);
    }

    let csv = frontier_to_csv(&points);
    let json = frontier_to_json(&points);
    if std::env::var_os("UPDATE_CHURN_GOLDEN").is_some() {
        std::fs::write(golden_path("csv"), &csv).unwrap();
        std::fs::write(golden_path("json"), &json).unwrap();
        return;
    }
    assert_eq!(
        csv,
        read_golden("csv"),
        "frontier CSV diverged from the committed golden; \
         regenerate with UPDATE_CHURN_GOLDEN=1 if intentional"
    );
    assert_eq!(
        json,
        read_golden("json"),
        "frontier JSON diverged from the committed golden; \
         regenerate with UPDATE_CHURN_GOLDEN=1 if intentional"
    );
}

#[test]
fn goldens_are_present_and_well_formed() {
    // Debug builds skip the MINLP sweep above; still fail fast if the
    // snapshot is missing, truncated, or lost its MINLP series.
    let csv = read_golden("csv");
    assert!(csv.starts_with("backend,migration_weight,event_index,event"));
    // 3 backends × 2 weights × (base + 3 events) data rows.
    assert_eq!(csv.lines().count(), 1 + 3 * 2 * 4);
    assert!(csv.lines().any(|l| l.starts_with("MINLP,")));
    let json = read_golden("json");
    assert_eq!(json.matches("\"backend\"").count(), 3 * 2 * 4);
}

#[test]
fn weight_zero_reallocation_is_byte_identical_to_the_static_solve() {
    let problem = base_problem();
    // The MINLP leg costs minutes in debug; release covers it.
    for backend in backends(!cfg!(debug_assertions)) {
        let static_report = SolveRequest::new(&problem)
            .backend(backend.clone())
            .solve()
            .unwrap();
        let incumbent = Incumbent::from_allocation(&problem, &static_report.allocation).unwrap();
        // Weight 0, no moved-CU bound: the spec is inert and every solver
        // stage must take the static path.
        let spec = ReallocationSpec::new(incumbent, MigrationCost::new(0.0).unwrap());
        assert!(!spec.is_active());
        let realloc_problem = problem.clone().with_reallocation(Some(spec));
        let realloc_report = SolveRequest::new(&realloc_problem)
            .backend(backend.clone())
            .solve()
            .unwrap();
        assert_eq!(
            realloc_report.allocation,
            static_report.allocation,
            "{}: weight-0 reallocation changed the solution",
            backend.label()
        );
        assert_eq!(realloc_report.diagnostics.moved_cus, 0);
        assert_eq!(realloc_report.diagnostics.migration_cost, 0.0);
    }
}
