//! Acceptance tests of the parallel exploration engine (`mfa_explore`)
//! against the single-threaded sweeps in `mfa_alloc::explore`:
//!
//! * engine output (serial and parallel, warm-started or not) must match the
//!   core sweeps on the paper's Alex-16 and VGG cases, ordering included;
//! * the parallel executor must return byte-identical series to the serial
//!   path;
//! * on a multi-core host, sweeping a Fig. 3-sized grid in parallel must not
//!   be slower than sweeping it serially.

use std::num::NonZeroUsize;
use std::time::Instant;

use mfa_alloc::cases::PaperCase;
use mfa_alloc::exact::ExactOptions;
use mfa_alloc::explore as core_explore;
use mfa_alloc::gpa::GpaOptions;
use mfa_explore::{
    constraint_grid, run_sweep, CaseSpec, ExecutorOptions, SolverSpec, SweepGrid, SweepSeries,
};

/// Wall-clock timing is the only field allowed to differ between runs.
fn zero_timing(mut series: Vec<SweepSeries>) -> Vec<SweepSeries> {
    for s in &mut series {
        for p in &mut s.points {
            p.solve_seconds = 0.0;
        }
    }
    series
}

fn assert_points_match(
    engine: &[mfa_explore::SweepPoint],
    core: &[mfa_explore::SweepPoint],
    label: &str,
) {
    assert_eq!(engine.len(), core.len(), "{label}: series lengths differ");
    for (e, c) in engine.iter().zip(core) {
        assert_eq!(e.resource_constraint, c.resource_constraint, "{label}");
        assert_eq!(
            e.initiation_interval_ms, c.initiation_interval_ms,
            "{label}"
        );
        assert_eq!(e.average_utilization, c.average_utilization, "{label}");
        assert_eq!(e.spreading, c.spreading, "{label}");
    }
}

#[test]
fn engine_matches_core_sweep_gpa_on_alex16() {
    let constraints = constraint_grid(0.55, 0.85, 5).unwrap();
    let options = GpaOptions::fast();
    let grid = SweepGrid::builder()
        .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
        .fpga_counts([2])
        .constraints(constraints.iter().copied())
        .backend(SolverSpec::gpa(options.clone()))
        .build()
        .unwrap();
    // Warm starts off: the engine then follows exactly the same solve path
    // as the core sweep, so every metric field must be bit-identical.
    let engine = run_sweep(
        &grid,
        &ExecutorOptions {
            warm_start: false,
            ..ExecutorOptions::default()
        },
    )
    .unwrap();
    let problem = PaperCase::Alex16OnTwoFpgas.problem(0.70).unwrap();
    let core = core_explore::sweep_gpa(&problem, &constraints, &options).unwrap();
    assert_points_match(&engine[0].points, &core, "Alex-16 GP+A");
}

#[test]
fn engine_matches_core_sweep_gpa_on_vgg() {
    let constraints = [0.61, 0.70, 0.80];
    let options = GpaOptions::fast();
    let grid = SweepGrid::builder()
        .case(CaseSpec::from_paper(PaperCase::VggOnEightFpgas))
        .fpga_counts([8])
        .constraints(constraints)
        .backend(SolverSpec::gpa(options.clone()))
        .build()
        .unwrap();
    let engine = run_sweep(
        &grid,
        &ExecutorOptions {
            warm_start: false,
            ..ExecutorOptions::default()
        },
    )
    .unwrap();
    let problem = PaperCase::VggOnEightFpgas.problem(0.61).unwrap();
    let core = core_explore::sweep_gpa(&problem, &constraints, &options).unwrap();
    assert_points_match(&engine[0].points, &core, "VGG GP+A");
}

#[test]
fn engine_matches_core_sweep_exact_on_alex16() {
    let constraints = [0.70, 0.80];
    let options = ExactOptions::ii_only_with_budget(500, 5.0);
    let grid = SweepGrid::builder()
        .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
        .fpga_counts([2])
        .constraints(constraints)
        .backend(SolverSpec::exact(options.clone()))
        .build()
        .unwrap();
    let engine = run_sweep(&grid, &ExecutorOptions::default()).unwrap();
    let problem = PaperCase::Alex16OnTwoFpgas.problem(0.70).unwrap();
    let core = core_explore::sweep_exact(&problem, &constraints, &options).unwrap();
    assert_points_match(&engine[0].points, &core, "Alex-16 MINLP");
}

#[test]
fn parallel_series_are_byte_identical_to_serial() {
    let grid = SweepGrid::builder()
        .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
        .case(CaseSpec::from_paper(PaperCase::VggOnEightFpgas))
        .fpga_counts([2, 8])
        .constraints(constraint_grid(0.58, 0.80, 4).unwrap())
        .backend(SolverSpec::gpa(GpaOptions::fast()))
        .build()
        .unwrap();
    let serial = run_sweep(
        &grid,
        &ExecutorOptions {
            chunk_size: 2,
            ..ExecutorOptions::serial()
        },
    )
    .unwrap();
    let parallel = run_sweep(
        &grid,
        &ExecutorOptions {
            num_threads: Some(4),
            chunk_size: 2,
            warm_start: true,
            ..ExecutorOptions::default()
        },
    )
    .unwrap();
    assert_eq!(zero_timing(serial), zero_timing(parallel));
}

#[test]
fn parallel_sweep_is_not_slower_on_multicore() {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    if cores < 2 {
        eprintln!("skipping: single-core host cannot demonstrate a speedup");
        return;
    }
    // A Fig. 3-shaped workload: the Alex cases at the paper's FPGA counts
    // over the Fig. 3 constraint axis, GP+A backends only so the point cost
    // is stable enough for a timing comparison.
    let grid = SweepGrid::builder()
        .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
        .case(CaseSpec::from_paper(PaperCase::Alex32OnFourFpgas))
        .fpga_counts([2, 4])
        .constraints(constraint_grid(0.55, 0.85, 7).unwrap())
        .backend(SolverSpec::gpa(GpaOptions::fast()))
        .backend(SolverSpec::gpa_labeled(
            "GP+A/gp",
            GpaOptions::paper_defaults(),
        ))
        .build()
        .unwrap();
    // Warm both paths up once so lazy initialization costs are excluded.
    let _ = run_sweep(&grid, &ExecutorOptions::serial()).unwrap();
    let t0 = Instant::now();
    let serial = run_sweep(&grid, &ExecutorOptions::serial()).unwrap();
    let serial_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let parallel = run_sweep(&grid, &ExecutorOptions::default()).unwrap();
    let parallel_s = t1.elapsed().as_secs_f64();
    assert_eq!(zero_timing(serial), zero_timing(parallel));
    assert!(
        parallel_s <= serial_s * 1.10,
        "parallel sweep ({parallel_s:.3} s) slower than serial ({serial_s:.3} s) on {cores} cores"
    );
}
