//! Public-API surface snapshot: a grep-shaped listing of every `pub`
//! declaration line across the workspace's library crates, committed as
//! `tests/public_api.txt` and diffed here, so changes to the public surface
//! show up as an explicit diff in review instead of drifting silently.
//!
//! Regenerate after an intentional API change:
//!
//! ```text
//! UPDATE_PUBLIC_API=1 cargo test -p mfa_integration --test public_api
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Library source roots covered by the snapshot, relative to `crates/`.
const CRATES: [&str; 13] = [
    "bench", "cnn", "core", "dispatch", "explore", "gp", "linalg", "linprog", "minlp", "platform",
    "serve", "sim", "storenet",
];

/// The declaration keywords worth snapshotting. `pub use` re-exports are
/// included: they are how the facade surfaces types.
const KEYWORDS: [&str; 9] = [
    "pub fn ",
    "pub struct ",
    "pub enum ",
    "pub trait ",
    "pub type ",
    "pub const ",
    "pub static ",
    "pub mod ",
    "pub use ",
];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = fs::read_dir(dir).unwrap_or_else(|err| panic!("read {}: {err}", dir.display()));
    for entry in entries {
        let path = entry.expect("directory entry").path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
}

/// One normalized snapshot line per `pub` declaration: the crate-relative
/// file, then the declaration's first line with whitespace collapsed and any
/// trailing body/brace cut at the first `{`. `pub(crate)` and test modules'
/// items are not public API and are excluded (the latter by the convention —
/// holding across this workspace — that `#[cfg(test)]` modules declare no
/// `pub` items reachable from outside).
fn surface_lines() -> Vec<String> {
    let workspace = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut lines = Vec::new();
    for krate in CRATES {
        let src = workspace.join("crates").join(krate).join("src");
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files);
        files.sort();
        for file in files {
            let rel = file
                .strip_prefix(&workspace)
                .expect("file under workspace")
                .to_string_lossy()
                .replace('\\', "/");
            let text = fs::read_to_string(&file)
                .unwrap_or_else(|err| panic!("read {}: {err}", file.display()));
            for raw in text.lines() {
                let trimmed = raw.trim_start();
                if !KEYWORDS.iter().any(|k| trimmed.starts_with(k)) {
                    continue;
                }
                let cut = trimmed.split('{').next().unwrap_or(trimmed).trim_end();
                let normalized = cut.split_whitespace().collect::<Vec<_>>().join(" ");
                lines.push(format!("{rel}: {normalized}"));
            }
        }
    }
    lines.sort();
    lines
}

#[test]
fn public_api_matches_the_committed_snapshot() {
    let snapshot_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/public_api.txt");
    let mut current = String::new();
    for line in surface_lines() {
        writeln!(current, "{line}").expect("writing to a String cannot fail");
    }
    if std::env::var_os("UPDATE_PUBLIC_API").is_some() {
        fs::write(&snapshot_path, &current).expect("write the public-API snapshot");
        return;
    }
    let committed = fs::read_to_string(&snapshot_path).unwrap_or_else(|err| {
        panic!(
            "missing public-API snapshot {} ({err}); generate it with \
             UPDATE_PUBLIC_API=1 cargo test -p mfa_integration --test public_api",
            snapshot_path.display()
        )
    });
    if committed != current {
        let committed_set: std::collections::BTreeSet<&str> = committed.lines().collect();
        let current_set: std::collections::BTreeSet<&str> = current.lines().collect();
        let mut diff = String::new();
        for gone in committed_set.difference(&current_set) {
            writeln!(diff, "- {gone}").unwrap();
        }
        for added in current_set.difference(&committed_set) {
            writeln!(diff, "+ {added}").unwrap();
        }
        panic!(
            "the public API surface changed; review the diff below and, if \
             intentional, regenerate tests/public_api.txt with \
             UPDATE_PUBLIC_API=1 cargo test -p mfa_integration --test public_api\n{diff}"
        );
    }
}

#[test]
fn deleted_solver_variants_stay_deleted() {
    // The API-redesign invariant: no `_with_hint`/`_seeded`/`_warm_start`
    // free-function variants may reappear in the public surface — warm
    // starts are a `SolveRequest` field now.
    for line in surface_lines() {
        let is_fn = line.contains("pub fn ");
        assert!(
            !(is_fn
                && (line.contains("_with_hint")
                    || line.contains("_seeded(")
                    || line.contains("_with_warm_start")
                    || line.contains("_warm_start("))),
            "a warm-start function variant leaked back into the public API: {line}"
        );
    }
}
