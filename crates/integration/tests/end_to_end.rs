//! Whole-flow integration tests spanning the characterization, optimization,
//! allocation and simulation crates.

use mfa_alloc::cases::PaperCase;
use mfa_alloc::exact::{ExactMode, ExactOptions};
use mfa_alloc::explore::{constraint_grid, sweep_gpa};
use mfa_alloc::gp_step::{self, RelaxationBackend};
use mfa_alloc::gpa::GpaOptions;
use mfa_alloc::report::utilization_breakdown;
use mfa_alloc::solver::{Backend, SolveRequest};
use mfa_alloc::{AllocationProblem, GoalWeights};
use mfa_cnn::characterize::{characterize_network, CuConfig};
use mfa_cnn::{CnnNetwork, Precision};
use mfa_minlp::SolverOptions;
use mfa_platform::FpgaDevice;
use mfa_sim::{simulate, SimConfig};

/// Every paper case runs through the full GP+A heuristic and produces a
/// feasible allocation whose II sits between the continuous relaxation and
/// the single-CU bottleneck.
#[test]
fn paper_cases_run_end_to_end() {
    for case in PaperCase::all() {
        let (lo, hi) = case.constraint_range();
        for constraint in [lo, 0.5 * (lo + hi), hi] {
            let problem = case.problem(constraint).expect("paper cases build");
            let request = SolveRequest::new(&problem).backend(Backend::gpa());
            let outcome = match request.solve() {
                Ok(outcome) => outcome,
                // The very tightest points can be infeasible for some cases;
                // the paper's figures simply omit such points.
                Err(mfa_alloc::AllocError::Infeasible(_)) => continue,
                Err(other) => panic!("{}: {other}", case.label()),
            };
            outcome
                .allocation
                .validate(&problem, 1e-9)
                .expect("allocation respects budgets");
            let ii = outcome.allocation.initiation_interval(&problem);
            let bottleneck = problem
                .kernels()
                .iter()
                .map(|k| k.wcet_ms())
                .fold(0.0_f64, f64::max);
            assert!(
                ii <= bottleneck + 1e-9,
                "{}: II above bottleneck",
                case.label()
            );
            assert!(
                ii >= outcome.diagnostics.relaxed_ii_ms.unwrap() - 1e-9,
                "{}: II below the relaxation bound",
                case.label()
            );
        }
    }
}

/// The exact MINLP (with a generous budget on the small case) agrees with the
/// heuristic within the band the paper reports, and its proven lower bound is
/// respected by both.
#[test]
fn exact_and_heuristic_are_consistent_on_alex16() {
    let problem = PaperCase::Alex16OnTwoFpgas.problem(0.75).expect("builds");
    let heuristic = SolveRequest::new(&problem)
        .backend(Backend::gpa())
        .solve()
        .expect("heuristic solves");
    let exact_outcome = SolveRequest::new(&problem)
        .backend(Backend::exact_with(ExactOptions {
            mode: ExactMode::IiOnly,
            solver: SolverOptions::with_budget(2_000, 20.0),
            symmetry_breaking: true,
        }))
        .solve()
        .expect("exact solves");
    let ii_h = heuristic.allocation.initiation_interval(&problem);
    let ii_e = exact_outcome.allocation.initiation_interval(&problem);
    let best_bound = exact_outcome.diagnostics.relaxed_ii_ms.unwrap();
    assert!(ii_h >= best_bound - 1e-6);
    assert!(ii_e >= best_bound - 1e-6);
    if exact_outcome.diagnostics.proven_optimal == Some(true) {
        assert!(ii_e <= ii_h + 1e-6);
        assert!(
            ii_h <= 1.3 * ii_e + 1e-9,
            "heuristic {ii_h} vs exact {ii_e}"
        );
    }
}

/// The characterization flow (network → analytic estimator → allocation)
/// composes with the optimizer even though the experiments use the measured
/// tables.
#[test]
fn estimated_characterization_feeds_the_allocator() {
    let device = FpgaDevice::vu9p();
    let network = CnnNetwork::alexnet();
    let kernels = characterize_network(&network, Precision::Fixed16, &CuConfig::default(), &device);
    let app = mfa_cnn::Application::new("AlexNet fx16 (estimated)", kernels);
    let problem = AllocationProblem::from_application(&app, 2, 0.80, GoalWeights::new(1.0, 0.7))
        .expect("problem builds");
    let outcome = SolveRequest::new(&problem)
        .backend(Backend::gpa_fast())
        .solve()
        .expect("heuristic solves");
    outcome
        .allocation
        .validate(&problem, 1e-9)
        .expect("feasible");
    assert!(outcome.allocation.initiation_interval(&problem) > 0.0);
}

/// The simulator reproduces the analytic II for the allocations produced by
/// the heuristic on the paper cases.
#[test]
fn simulation_confirms_predicted_initiation_interval() {
    for case in [PaperCase::Alex16OnTwoFpgas, PaperCase::Alex32OnFourFpgas] {
        let problem = case.problem(0.75).expect("builds");
        let outcome = SolveRequest::new(&problem)
            .backend(Backend::gpa_fast())
            .solve()
            .expect("solves");
        let predicted = outcome.allocation.initiation_interval(&problem);
        let result = simulate(&problem, &outcome.allocation, &SimConfig::default());
        assert!(
            result.ii_error_vs(predicted) < 0.05,
            "{}: simulated {} vs predicted {}",
            case.label(),
            result.initiation_interval_ms,
            predicted
        );
    }
}

/// The GP relaxation is a true lower bound along a whole constraint sweep and
/// the sweep is (weakly) monotone, which is the qualitative shape of the
/// paper's Figs. 3–5.
#[test]
fn sweep_is_bounded_by_the_relaxation() {
    let problem = PaperCase::VggOnEightFpgas.problem(0.61).expect("builds");
    let constraints = constraint_grid(0.55, 0.80, 6);
    let points = sweep_gpa(&problem, &constraints, &GpaOptions::fast()).expect("sweep runs");
    assert!(points.len() >= 4);
    for point in &points {
        let instance = problem.with_resource_constraint(point.resource_constraint);
        let relaxation =
            gp_step::solve(&instance, RelaxationBackend::Bisection).expect("relaxation solves");
        assert!(point.initiation_interval_ms >= relaxation.initiation_interval_ms - 1e-9);
    }
    let first = points.first().unwrap().initiation_interval_ms;
    let last = points.last().unwrap().initiation_interval_ms;
    assert!(last <= first + 1e-9);
}

/// Fig. 6-style breakdown: every FPGA stays within the 61 % constraint and
/// the stacked shares plus slack account for the whole device.
#[test]
fn vgg_distribution_respects_the_constraint() {
    let problem = PaperCase::VggOnEightFpgas.problem(0.61).expect("builds");
    let outcome = SolveRequest::new(&problem)
        .backend(Backend::gpa())
        .solve()
        .expect("solves");
    let breakdown = utilization_breakdown(&problem, &outcome.allocation);
    assert_eq!(breakdown.len(), 8);
    for fpga in &breakdown {
        let used: f64 = fpga.kernels.iter().map(|&(_, _, share)| share).sum();
        assert!(used <= 0.61 + 1e-9, "FPGA {} uses {used}", fpga.fpga);
        assert!(fpga.slack >= 0.39 - 1e-9);
    }
}
