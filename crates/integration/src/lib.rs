//! Integration-test crate: the library target is intentionally empty; all
//! content lives in `tests/`.
#![forbid(unsafe_code)]
