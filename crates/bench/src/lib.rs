//! Shared plumbing for the benchmark harness.
//!
//! Every bench target under `benches/` regenerates one table or figure of the
//! paper (printing the rows/series in a paper-shaped layout) and then runs a
//! small Criterion group timing the underlying solver calls. This crate holds
//! the helpers they share: standard solver budgets, sweep runners and plain
//! text table formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mfa_alloc::exact::{ExactMode, ExactOptions};
use mfa_alloc::explore::SweepPoint;
use mfa_alloc::gpa::GpaOptions;
use mfa_alloc::AllocationProblem;
use mfa_explore::{run_sweep, CaseSpec, ExecutorOptions, SolverSpec, SweepGrid, SweepSeries};

/// Node/time budget applied to MINLP solves inside benchmark sweeps.
///
/// The paper reports MINLP runtimes from minutes to hours; the benches cap
/// each solve so that the full harness finishes in minutes. The incumbent the
/// solver returns within the budget is reported together with its proven
/// lower bound (see `EXPERIMENTS.md`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinlpBudget {
    /// Maximum branch-and-bound nodes.
    pub max_nodes: usize,
    /// Wall-clock cap in seconds.
    pub time_limit_seconds: f64,
}

impl MinlpBudget {
    /// Budget for the small AlexNet cases (16–32 integer variables).
    pub fn alexnet() -> Self {
        MinlpBudget {
            max_nodes: 2_000,
            time_limit_seconds: 12.0,
        }
    }

    /// Budget for the VGG case (136 integer variables); deliberately small, as
    /// the paper itself reports hours for exact solves at this size.
    pub fn vgg() -> Self {
        MinlpBudget {
            max_nodes: 200,
            time_limit_seconds: 15.0,
        }
    }

    /// Converts the budget into exact-solver options for the given mode.
    pub fn options(self, mode: ExactMode) -> ExactOptions {
        ExactOptions {
            mode,
            solver: mfa_minlp::SolverOptions::with_budget(self.max_nodes, self.time_limit_seconds),
            symmetry_breaking: true,
        }
    }
}

/// One row of a figure data series: the three methods side by side.
#[derive(Debug, Clone, Copy)]
pub struct MethodComparison {
    /// Per-FPGA resource constraint (fraction).
    pub constraint: f64,
    /// GP+A heuristic result.
    pub gpa: Option<SweepPoint>,
    /// MINLP (β = 0) result.
    pub minlp: Option<SweepPoint>,
    /// MINLP+G result.
    pub minlp_g: Option<SweepPoint>,
}

/// Runs GP+A, MINLP and MINLP+G at each constraint and returns the combined
/// series (the data behind Figs. 3–5).
///
/// The three method series run through the [`mfa_explore`] parallel engine —
/// one grid with three solver backends — so on a multi-core host the exact
/// solves overlap with the heuristic sweep. Points a method cannot realize
/// (infeasible constraints, budget-exhausted MINLP solves) are `None`.
///
/// # Panics
///
/// Panics if the sweep aborts on a non-skippable solver failure; a benchmark
/// harness has no better recovery than reporting it loudly.
pub fn compare_methods(
    problem: &AllocationProblem,
    constraints: &[f64],
    budget: MinlpBudget,
) -> Vec<MethodComparison> {
    let grid = SweepGrid::builder()
        .case(CaseSpec::new("bench", problem.clone()))
        .fpga_counts([problem.num_fpgas()])
        .constraints(constraints.iter().copied())
        .backend(SolverSpec::gpa(GpaOptions::paper_defaults()))
        .backend(SolverSpec::exact(budget.options(ExactMode::IiOnly)))
        .backend(SolverSpec::exact(budget.options(ExactMode::IiAndSpreading)))
        .build()
        .expect("the comparison grid is well-formed");
    let series = run_sweep(&grid, &ExecutorOptions::default()).expect("comparison sweep failed");
    let find = |s: &SweepSeries, constraint: f64| -> Option<SweepPoint> {
        s.points
            .iter()
            .find(|p| (p.resource_constraint - constraint).abs() < 1e-9)
            .copied()
    };
    constraints
        .iter()
        .map(|&constraint| MethodComparison {
            constraint,
            gpa: find(&series[0], constraint),
            minlp: find(&series[1], constraint),
            minlp_g: find(&series[2], constraint),
        })
        .collect()
}

/// Prints a figure-style series table: `II (ms)` and `average resource`
/// columns for each method, one row per constraint.
pub fn print_comparison(title: &str, rows: &[MethodComparison]) {
    println!();
    println!("=== {title}");
    println!(
        "{:>12} | {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10}",
        "constraint", "GP+A II", "avg res", "MINLP II", "avg res", "MINLP+G II", "avg res"
    );
    for row in rows {
        let fmt = |p: &Option<SweepPoint>, ii: bool| -> String {
            match p {
                Some(point) => {
                    if ii {
                        format!("{:.3}", point.initiation_interval_ms)
                    } else {
                        format!("{:.1}%", 100.0 * point.average_utilization)
                    }
                }
                None => "-".to_owned(),
            }
        };
        println!(
            "{:>11.0}% | {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10}",
            row.constraint * 100.0,
            fmt(&row.gpa, true),
            fmt(&row.gpa, false),
            fmt(&row.minlp, true),
            fmt(&row.minlp, false),
            fmt(&row.minlp_g, true),
            fmt(&row.minlp_g, false),
        );
    }
}

/// Prints a paper-style kernel characterization table.
pub fn print_characterization(title: &str, app: &mfa_cnn::Application) {
    println!();
    println!("=== {title}");
    println!(
        "{:<10} {:>9} {:>9} {:>7} {:>10}",
        "kernel", "BRAM (%)", "DSP (%)", "BW (%)", "WCET (ms)"
    );
    for k in app.kernels() {
        println!(
            "{:<10} {:>9.2} {:>9.2} {:>7.1} {:>10.3}",
            k.name(),
            100.0 * k.resources().bram,
            100.0 * k.resources().dsp,
            100.0 * k.bandwidth(),
            k.wcet_ms()
        );
    }
    let totals = app.total_resources();
    println!(
        "{:<10} {:>9.2} {:>9.2} {:>7.1} {:>10.2}",
        "SUM",
        100.0 * totals.bram,
        100.0 * totals.dsp,
        100.0 * app.total_bandwidth(),
        app.total_wcet_ms()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfa_alloc::cases::PaperCase;

    #[test]
    fn budgets_convert_to_options() {
        let options = MinlpBudget::alexnet().options(ExactMode::IiOnly);
        assert_eq!(options.solver.max_nodes, 2_000);
        assert!(options.symmetry_breaking);
        let vgg = MinlpBudget::vgg();
        assert!(vgg.max_nodes < MinlpBudget::alexnet().max_nodes);
    }

    #[test]
    fn compare_methods_produces_one_row_per_constraint() {
        let problem = PaperCase::Alex16OnTwoFpgas.problem(0.70).unwrap();
        let rows = compare_methods(
            &problem,
            &[0.70, 0.80],
            MinlpBudget {
                max_nodes: 50,
                time_limit_seconds: 5.0,
            },
        );
        assert_eq!(rows.len(), 2);
        assert!(rows[0].gpa.is_some());
        print_comparison("smoke test", &rows);
        print_characterization("Alex-16", &PaperCase::Alex16OnTwoFpgas.application());
    }
}
