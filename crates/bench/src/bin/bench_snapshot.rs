//! Benchmark-snapshot harness for the quick figure presets.
//!
//! Sweeps the same grids CI smokes (`dse --quick` plus the hetero grid) and
//! records, per figure, the *machine-independent* effort counters the solver
//! stack reports — interior-point barrier iterations, KKT factorizations,
//! simplex pivots, branch-and-bound nodes — next to informational wall-clock
//! timing. The counters are deterministic for a fixed grid and chunk size,
//! so the committed snapshot (`BENCH_0006.json` at the repository root)
//! byte-diffs across machines; wall-clock is recorded for humans and always
//! excluded from comparison.
//!
//! Each figure is measured twice: once with the executor's warm starts (the
//! default sweep configuration) and once cold (`--no-warm-start` executor
//! options), so the snapshot pins both the warm-started effort and the
//! baseline it saves against. Both blocks are compared by `--check`.
//!
//! ```text
//! bench-snapshot --quick --out BENCH_0006.json   # (re)write the snapshot
//! bench-snapshot --quick --check BENCH_0006.json # CI: fail on counter drift
//! ```

use std::process::ExitCode;
use std::time::Instant;

use mfa_explore::json::Json;
use mfa_explore::{figures, run_sweep, ExecutorOptions, FigureSpec, SweepSeries};

/// Snapshot format version; bump when the schema changes shape.
/// Version 2 added the cold (`--no-warm-start`) counter block per figure.
const SNAPSHOT_VERSION: usize = 2;

/// Effort counters of one figure sweep, summed over every solved point of
/// every series, plus the (excluded-from-diff) wall-clock.
struct FigureEffort {
    name: &'static str,
    /// Solved points across all series.
    points: usize,
    /// Planned-but-skipped points (infeasible budgets, exhausted node or
    /// pivot budgets) across all series.
    skipped: usize,
    barrier_iterations: usize,
    factorizations: usize,
    simplex_pivots: usize,
    bb_nodes: usize,
    wall_seconds: f64,
}

/// The deterministic counter keys a snapshot is compared on, in report
/// order. `points`/`skipped` guard against a sweep silently shrinking;
/// the rest are the solver-effort counters themselves.
const COUNTER_KEYS: [&str; 6] = [
    "points",
    "skipped",
    "barrier_iterations",
    "factorizations",
    "simplex_pivots",
    "bb_nodes",
];

impl FigureEffort {
    fn counter(&self, key: &str) -> usize {
        match key {
            "points" => self.points,
            "skipped" => self.skipped,
            "barrier_iterations" => self.barrier_iterations,
            "factorizations" => self.factorizations,
            "simplex_pivots" => self.simplex_pivots,
            "bb_nodes" => self.bb_nodes,
            _ => unreachable!("unknown counter key {key}"),
        }
    }
}

/// The benchmarked figure set: the quick paper figures (with the MINLP
/// series) plus the heterogeneous smoke grid — exactly the grids the golden
/// snapshots cover.
fn bench_figures() -> Vec<FigureSpec> {
    let mut figs = figures::paper_figures(true, true).expect("quick figure grids are well-formed");
    figs.push(figures::hetero_smoke().expect("hetero grid is well-formed"));
    figs
}

fn measure(figure: &FigureSpec, warm_start: bool) -> FigureEffort {
    let options = ExecutorOptions {
        warm_start,
        ..ExecutorOptions::default()
    };
    let start = Instant::now();
    let series: Vec<SweepSeries> = run_sweep(&figure.grid, &options)
        .unwrap_or_else(|err| panic!("sweep of {} failed: {err}", figure.name));
    let wall_seconds = start.elapsed().as_secs_f64();
    let planned = figure.grid.num_points();
    let mut effort = FigureEffort {
        name: figure.name,
        points: 0,
        skipped: 0,
        barrier_iterations: 0,
        factorizations: 0,
        simplex_pivots: 0,
        bb_nodes: 0,
        wall_seconds,
    };
    for s in &series {
        for p in &s.points {
            effort.points += 1;
            effort.barrier_iterations += p.barrier_iterations;
            effort.factorizations += p.factorizations;
            effort.simplex_pivots += p.simplex_pivots;
            effort.bb_nodes += p.bb_nodes;
        }
    }
    effort.skipped = planned - effort.points;
    effort
}

/// A figure measured twice: with the executor's warm starts (the default
/// sweep configuration) and cold (`--no-warm-start` executor options).
struct MeasuredFigure {
    warm: FigureEffort,
    cold: FigureEffort,
}

fn counters_json(e: &FigureEffort) -> Vec<(&'static str, Json)> {
    vec![
        ("points", Json::Num(e.points as f64)),
        ("skipped", Json::Num(e.skipped as f64)),
        ("barrier_iterations", Json::Num(e.barrier_iterations as f64)),
        ("factorizations", Json::Num(e.factorizations as f64)),
        ("simplex_pivots", Json::Num(e.simplex_pivots as f64)),
        ("bb_nodes", Json::Num(e.bb_nodes as f64)),
        // Informational only: never part of the --check diff.
        (
            "wall_seconds",
            Json::Num((e.wall_seconds * 1e3).round() / 1e3),
        ),
    ]
}

fn snapshot_json(measured: &[MeasuredFigure]) -> String {
    let figures = measured
        .iter()
        .map(|m| {
            let mut fields = vec![("name", Json::str(m.warm.name))];
            fields.extend(counters_json(&m.warm));
            fields.push(("cold", Json::obj(counters_json(&m.cold))));
            Json::obj(fields)
        })
        .collect();
    let doc = Json::obj(vec![
        ("version", Json::Num(SNAPSHOT_VERSION as f64)),
        ("preset", Json::str("quick")),
        ("figures", Json::Arr(figures)),
    ]);
    let mut out = String::new();
    doc.write(&mut out);
    out.push('\n');
    out
}

/// Compares one counter block (warm or cold) against its snapshot entry,
/// appending human-readable differences. Wall-clock and unknown extra
/// fields are ignored by construction: only `COUNTER_KEYS` are compared.
fn diff_block(entry: &Json, effort: &FigureEffort, block: &str, diffs: &mut Vec<String>) {
    for key in COUNTER_KEYS {
        let Some(recorded) = entry.get(key).and_then(Json::as_usize) else {
            diffs.push(format!(
                "{}: snapshot lacks {block} counter {key}",
                effort.name
            ));
            continue;
        };
        let measured = effort.counter(key);
        if measured != recorded {
            let direction = if measured > recorded {
                "regressed"
            } else {
                "improved"
            };
            diffs.push(format!(
                "{}: {block} {key} {direction}: snapshot {recorded}, measured {measured}",
                effort.name
            ));
        }
    }
}

/// Compares measured warm and cold counters against a committed snapshot.
/// Returns the human-readable differences (empty when counters match).
fn diff_against(committed: &Json, measured: &[MeasuredFigure]) -> Vec<String> {
    let mut diffs = Vec::new();
    let Some(figures) = committed.get("figures").and_then(Json::as_arr) else {
        return vec!["snapshot has no `figures` array".into()];
    };
    for m in measured {
        let Some(entry) = figures
            .iter()
            .find(|f| f.get("name").and_then(Json::as_str) == Some(m.warm.name))
        else {
            diffs.push(format!("snapshot has no entry for figure {}", m.warm.name));
            continue;
        };
        diff_block(entry, &m.warm, "warm", &mut diffs);
        match entry.get("cold") {
            Some(cold_entry) => diff_block(cold_entry, &m.cold, "cold", &mut diffs),
            None => diffs.push(format!(
                "{}: snapshot has no cold counter block",
                m.warm.name
            )),
        }
    }
    diffs
}

fn usage() -> ! {
    eprintln!(
        "usage: bench-snapshot [--quick] [--out PATH | --check PATH]\n\
         \n\
         --quick       run the quick (CI) figure presets [default; the only preset]\n\
         --out PATH    write the snapshot to PATH (default BENCH_0006.json)\n\
         --check PATH  re-measure and fail when any deterministic counter\n\
                       differs from the committed snapshot at PATH\n\
                       (wall_seconds is informational and never compared)"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // The quick preset is the default (and only) preset; the flag is
            // accepted so invocations document what they run.
            "--quick" => {}
            "--out" => out_path = Some(args.next().unwrap_or_else(|| usage())),
            "--check" => check_path = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    if out_path.is_some() && check_path.is_some() {
        usage();
    }

    let measured: Vec<MeasuredFigure> = bench_figures()
        .iter()
        .map(|figure| MeasuredFigure {
            warm: measure(figure, true),
            cold: measure(figure, false),
        })
        .collect();
    for m in &measured {
        for (block, e) in [("warm", &m.warm), ("cold", &m.cold)] {
            println!(
                "{:>7} ({block}): {} points ({} skipped), {} barrier iterations, \
                 {} factorizations, {} simplex pivots, {} bb nodes, {:.3}s",
                e.name,
                e.points,
                e.skipped,
                e.barrier_iterations,
                e.factorizations,
                e.simplex_pivots,
                e.bb_nodes,
                e.wall_seconds
            );
        }
    }

    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("cannot read snapshot {path}: {err}");
                return ExitCode::FAILURE;
            }
        };
        let committed = match Json::parse(&text) {
            Ok(doc) => doc,
            Err(err) => {
                eprintln!("snapshot {path} is not valid JSON: {err}");
                return ExitCode::FAILURE;
            }
        };
        let diffs = diff_against(&committed, &measured);
        if diffs.is_empty() {
            println!("counters match {path}");
            return ExitCode::SUCCESS;
        }
        eprintln!("effort counters diverged from {path}:");
        for diff in &diffs {
            eprintln!("  {diff}");
        }
        eprintln!("regenerate with: cargo run --release -p mfa_bench --bin bench-snapshot -- --quick --out {path}");
        return ExitCode::FAILURE;
    }

    let path = out_path.unwrap_or_else(|| "BENCH_0006.json".to_owned());
    if let Err(err) = std::fs::write(&path, snapshot_json(&measured)) {
        eprintln!("cannot write {path}: {err}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");
    ExitCode::SUCCESS
}
