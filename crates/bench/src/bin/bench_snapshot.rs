//! Benchmark-snapshot harness for the quick figure presets.
//!
//! Sweeps the same grids CI smokes (`dse --quick` plus the hetero grid) and
//! records, per figure, the *machine-independent* effort counters the solver
//! stack reports — interior-point barrier iterations, KKT factorizations,
//! simplex pivots, branch-and-bound nodes — next to informational wall-clock
//! timing. The counters are deterministic for a fixed grid and chunk size,
//! so the committed snapshot (`BENCH_0007.json` at the repository root)
//! byte-diffs across machines; wall-clock is recorded for humans and always
//! excluded from comparison.
//!
//! Each figure is measured twice: once with the executor's warm starts (the
//! default sweep configuration) and once cold (`--no-warm-start` executor
//! options), so the snapshot pins both the warm-started effort and the
//! baseline it saves against. Both blocks are compared by `--check`.
//!
//! Version 3 adds a `store` block exercising the persistent sweep store in a
//! temporary directory: an identical re-run must replay every point
//! (`replay_points_computed` is pinned at 0), and a *shifted* constraint
//! grid seeded from the stored neighbours must spend strictly fewer
//! branch-and-bound nodes than the same grid solved cold while producing
//! identical solution columns. Those invariants are enforced at measurement
//! time — the binary fails even in `--out` mode if they break — and the
//! counters are pinned by `--check` like every other block.
//!
//! ```text
//! bench-snapshot --quick --out BENCH_0007.json   # (re)write the snapshot
//! bench-snapshot --quick --check BENCH_0007.json # CI: fail on counter drift
//! ```

use std::process::ExitCode;
use std::time::Instant;

use mfa_alloc::exact::{ExactMode, ExactOptions};
use mfa_alloc::gpa::GpaOptions;
use mfa_alloc::{AllocationProblem, GoalWeights, Kernel};
use mfa_explore::json::Json;
use mfa_explore::{
    figures, run_sweep, run_sweep_stored, zero_chunk_diagnostics, zero_timing, CaseSpec,
    ExecutorOptions, FigureSpec, SolverSpec, SweepGrid, SweepSeries, SweepStore,
};
use mfa_minlp::SolverOptions;
use mfa_platform::{MultiFpgaPlatform, ResourceBudget, ResourceVec};

/// Snapshot format version; bump when the schema changes shape.
/// Version 2 added the cold (`--no-warm-start`) counter block per figure.
/// Version 3 added the persistent-store replay/neighbour-warming block.
const SNAPSHOT_VERSION: usize = 3;

/// Effort counters of one figure sweep, summed over every solved point of
/// every series, plus the (excluded-from-diff) wall-clock.
struct FigureEffort {
    name: &'static str,
    /// Solved points across all series.
    points: usize,
    /// Planned-but-skipped points (infeasible budgets, exhausted node or
    /// pivot budgets) across all series.
    skipped: usize,
    barrier_iterations: usize,
    factorizations: usize,
    simplex_pivots: usize,
    bb_nodes: usize,
    wall_seconds: f64,
}

/// The deterministic counter keys a snapshot is compared on, in report
/// order. `points`/`skipped` guard against a sweep silently shrinking;
/// the rest are the solver-effort counters themselves.
const COUNTER_KEYS: [&str; 6] = [
    "points",
    "skipped",
    "barrier_iterations",
    "factorizations",
    "simplex_pivots",
    "bb_nodes",
];

impl FigureEffort {
    fn counter(&self, key: &str) -> usize {
        match key {
            "points" => self.points,
            "skipped" => self.skipped,
            "barrier_iterations" => self.barrier_iterations,
            "factorizations" => self.factorizations,
            "simplex_pivots" => self.simplex_pivots,
            "bb_nodes" => self.bb_nodes,
            _ => unreachable!("unknown counter key {key}"),
        }
    }
}

/// The benchmarked figure set: the quick paper figures (with the MINLP
/// series) plus the heterogeneous smoke grid — exactly the grids the golden
/// snapshots cover.
fn bench_figures() -> Vec<FigureSpec> {
    let mut figs = figures::paper_figures(true, true).expect("quick figure grids are well-formed");
    figs.push(figures::hetero_smoke().expect("hetero grid is well-formed"));
    figs
}

fn measure(figure: &FigureSpec, warm_start: bool) -> FigureEffort {
    let options = ExecutorOptions {
        warm_start,
        ..ExecutorOptions::default()
    };
    let start = Instant::now();
    let series: Vec<SweepSeries> = run_sweep(&figure.grid, &options)
        .unwrap_or_else(|err| panic!("sweep of {} failed: {err}", figure.name));
    let wall_seconds = start.elapsed().as_secs_f64();
    let planned = figure.grid.num_points();
    let mut effort = FigureEffort {
        name: figure.name,
        points: 0,
        skipped: 0,
        barrier_iterations: 0,
        factorizations: 0,
        simplex_pivots: 0,
        bb_nodes: 0,
        wall_seconds,
    };
    for s in &series {
        for p in &s.points {
            effort.points += 1;
            effort.barrier_iterations += p.barrier_iterations;
            effort.factorizations += p.factorizations;
            effort.simplex_pivots += p.simplex_pivots;
            effort.bb_nodes += p.bb_nodes;
        }
    }
    effort.skipped = planned - effort.points;
    effort
}

/// A figure measured twice: with the executor's warm starts (the default
/// sweep configuration) and cold (`--no-warm-start` executor options).
struct MeasuredFigure {
    warm: FigureEffort,
    cold: FigureEffort,
}

/// Counters of the persistent-store scenario (see [`measure_store`]).
struct StoreEffort {
    /// Points computed by an identical re-run against a populated store.
    /// Pinned at 0: the second run must replay everything.
    replay_points_computed: usize,
    /// Points replayed by that re-run (the whole populate grid).
    replay_points_replayed: usize,
    /// Points of the shifted grid whose solve accepted a store-neighbour
    /// hint.
    warm_from_store: usize,
    /// Branch-and-bound nodes of the shifted grid solved cold.
    bb_nodes_cold: usize,
    /// Branch-and-bound nodes of the shifted grid seeded from the store;
    /// must be strictly below `bb_nodes_cold`.
    bb_nodes_store: usize,
    /// Shifted-grid points whose solution columns differ between the cold
    /// and the store-seeded run. Pinned at 0: hints change effort, never
    /// solutions.
    solution_mismatches: usize,
}

/// The deterministic counter keys of the store block, in report order.
const STORE_KEYS: [&str; 6] = [
    "replay_points_computed",
    "replay_points_replayed",
    "warm_from_store",
    "bb_nodes_cold",
    "bb_nodes_store",
    "solution_mismatches",
];

impl StoreEffort {
    fn counter(&self, key: &str) -> usize {
        match key {
            "replay_points_computed" => self.replay_points_computed,
            "replay_points_replayed" => self.replay_points_replayed,
            "warm_from_store" => self.warm_from_store,
            "bb_nodes_cold" => self.bb_nodes_cold,
            "bb_nodes_store" => self.bb_nodes_store,
            "solution_mismatches" => self.solution_mismatches,
            _ => unreachable!("unknown store counter key {key}"),
        }
    }
}

/// The store scenario's grid: a small synthetic pipeline on two FPGAs, one
/// GP+A and one MINLP backend, over the given constraint axis. The case is
/// sized so the MINLP branch-and-bound *completes* on every point — a
/// truncated search would let an incumbent seed change the achieved II,
/// while a completed one proves the same optimum with or without seeds, so
/// seeds can only shrink the node count. (The paper cases' MINLP searches
/// exhaust any affordable node budget, which is exactly why the figure
/// presets cap them.)
fn store_grid(constraints: &[f64]) -> SweepGrid {
    let base = AllocationProblem::builder()
        .kernels(vec![
            Kernel::new("load", 3.0, ResourceVec::bram_dsp(0.05, 0.16), 0.02)
                .expect("kernel is well-formed"),
            Kernel::new("conv", 7.0, ResourceVec::bram_dsp(0.09, 0.30), 0.03)
                .expect("kernel is well-formed"),
            Kernel::new("pool", 4.0, ResourceVec::bram_dsp(0.04, 0.12), 0.02)
                .expect("kernel is well-formed"),
            Kernel::new("fc", 6.0, ResourceVec::bram_dsp(0.07, 0.22), 0.01)
                .expect("kernel is well-formed"),
        ])
        .platform(MultiFpgaPlatform::aws_f1_4xlarge())
        .budget(ResourceBudget::uniform(1.0))
        .weights(GoalWeights::new(1.0, 0.7))
        .build()
        .expect("store scenario case is well-formed");
    SweepGrid::builder()
        .case(CaseSpec::new("store-bench", base))
        .fpga_counts([2])
        .constraints(constraints.iter().copied())
        .backend(SolverSpec::gpa(GpaOptions::fast()))
        .backend(SolverSpec::exact(ExactOptions {
            mode: ExactMode::IiOnly,
            solver: SolverOptions {
                max_nodes: 20_000,
                time_limit_seconds: None,
                ..SolverOptions::default()
            },
            symmetry_breaking: true,
        }))
        .build()
        .expect("store scenario grid is well-formed")
}

fn total_bb_nodes(series: &[SweepSeries]) -> usize {
    series
        .iter()
        .flat_map(|s| &s.points)
        .map(|p| p.bb_nodes)
        .sum()
}

/// Exercises the persistent sweep store in a temporary directory and
/// asserts its two contracts: an identical re-run computes nothing, and
/// store-neighbour seeds on a shifted grid strictly reduce branch-and-bound
/// effort without changing any solution column.
fn measure_store() -> StoreEffort {
    let dir = std::env::temp_dir().join(format!("mfa-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let options = ExecutorOptions::default();
    let populate_grid = store_grid(&[0.55, 0.65, 0.75, 0.85]);
    let shifted_grid = store_grid(&[0.60, 0.70, 0.80]);

    // Populate, then replay the identical grid from a fresh store handle.
    let mut store = SweepStore::open(&dir).expect("store directory opens");
    run_sweep_stored(&populate_grid, &options, &mut store).expect("populate run succeeds");
    let mut store = SweepStore::open(&dir).expect("store directory reopens");
    let (_, replay) =
        run_sweep_stored(&populate_grid, &options, &mut store).expect("replay run succeeds");
    assert_eq!(
        replay.points_computed, 0,
        "an identical re-run must replay every stored point"
    );

    // The shifted grid, cold and store-seeded.
    let mut cold_series = run_sweep(&shifted_grid, &options).expect("cold shifted run succeeds");
    let bb_nodes_cold = total_bb_nodes(&cold_series);
    let mut store = SweepStore::open(&dir).expect("store directory reopens");
    let (mut warm_series, warmed) =
        run_sweep_stored(&shifted_grid, &options, &mut store).expect("seeded shifted run succeeds");
    let bb_nodes_store = total_bb_nodes(&warm_series);
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        bb_nodes_store < bb_nodes_cold,
        "store-fed incumbents must strictly reduce B&B nodes          (cold {bb_nodes_cold}, store {bb_nodes_store})"
    );
    assert!(
        warmed.warm_from_store > 0,
        "the shifted grid must accept at least one store-neighbour hint"
    );

    // The achieved initiation intervals must be untouched by the hints.
    // This is the warm-start contract the in-unit cache already documents:
    // a seeded search proves the same optimum (only the effort changes),
    // though among II-tied integer designs it may return the neighbour's.
    let _ = (zero_timing(&mut cold_series), zero_timing(&mut warm_series));
    zero_chunk_diagnostics(&mut cold_series);
    zero_chunk_diagnostics(&mut warm_series);
    let solution_mismatches = cold_series
        .iter()
        .zip(&warm_series)
        .map(|(c, w)| {
            c.points.len().abs_diff(w.points.len())
                + c.points
                    .iter()
                    .zip(&w.points)
                    .filter(|(cp, wp)| {
                        cp.budget != wp.budget
                            || cp.initiation_interval_ms != wp.initiation_interval_ms
                    })
                    .count()
        })
        .sum::<usize>()
        + cold_series.len().abs_diff(warm_series.len());
    assert_eq!(
        solution_mismatches, 0,
        "store hints must never change an achieved initiation interval"
    );

    StoreEffort {
        replay_points_computed: replay.points_computed,
        replay_points_replayed: replay.points_replayed,
        warm_from_store: warmed.warm_from_store,
        bb_nodes_cold,
        bb_nodes_store,
        solution_mismatches,
    }
}

fn counters_json(e: &FigureEffort) -> Vec<(&'static str, Json)> {
    vec![
        ("points", Json::Num(e.points as f64)),
        ("skipped", Json::Num(e.skipped as f64)),
        ("barrier_iterations", Json::Num(e.barrier_iterations as f64)),
        ("factorizations", Json::Num(e.factorizations as f64)),
        ("simplex_pivots", Json::Num(e.simplex_pivots as f64)),
        ("bb_nodes", Json::Num(e.bb_nodes as f64)),
        // Informational only: never part of the --check diff.
        (
            "wall_seconds",
            Json::Num((e.wall_seconds * 1e3).round() / 1e3),
        ),
    ]
}

fn snapshot_json(measured: &[MeasuredFigure], store: &StoreEffort) -> String {
    let figures = measured
        .iter()
        .map(|m| {
            let mut fields = vec![("name", Json::str(m.warm.name))];
            fields.extend(counters_json(&m.warm));
            fields.push(("cold", Json::obj(counters_json(&m.cold))));
            Json::obj(fields)
        })
        .collect();
    let store_fields = STORE_KEYS
        .iter()
        .map(|&key| (key, Json::Num(store.counter(key) as f64)))
        .collect();
    let doc = Json::obj(vec![
        ("version", Json::Num(SNAPSHOT_VERSION as f64)),
        ("preset", Json::str("quick")),
        ("figures", Json::Arr(figures)),
        ("store", Json::obj(store_fields)),
    ]);
    let mut out = String::new();
    doc.write(&mut out);
    out.push('\n');
    out
}

/// Compares one counter block (warm or cold) against its snapshot entry,
/// appending human-readable differences. Wall-clock and unknown extra
/// fields are ignored by construction: only `COUNTER_KEYS` are compared.
fn diff_block(entry: &Json, effort: &FigureEffort, block: &str, diffs: &mut Vec<String>) {
    for key in COUNTER_KEYS {
        let Some(recorded) = entry.get(key).and_then(Json::as_usize) else {
            diffs.push(format!(
                "{}: snapshot lacks {block} counter {key}",
                effort.name
            ));
            continue;
        };
        let measured = effort.counter(key);
        if measured != recorded {
            let direction = if measured > recorded {
                "regressed"
            } else {
                "improved"
            };
            diffs.push(format!(
                "{}: {block} {key} {direction}: snapshot {recorded}, measured {measured}",
                effort.name
            ));
        }
    }
}

/// Compares the store block against its snapshot entry.
fn diff_store(committed: &Json, store: &StoreEffort, diffs: &mut Vec<String>) {
    let Some(entry) = committed.get("store") else {
        diffs.push("snapshot has no `store` block".into());
        return;
    };
    for key in STORE_KEYS {
        let Some(recorded) = entry.get(key).and_then(Json::as_usize) else {
            diffs.push(format!("snapshot lacks store counter {key}"));
            continue;
        };
        let measured = store.counter(key);
        if measured != recorded {
            diffs.push(format!(
                "store: {key} changed: snapshot {recorded}, measured {measured}"
            ));
        }
    }
}

/// Compares measured warm and cold counters against a committed snapshot.
/// Returns the human-readable differences (empty when counters match).
fn diff_against(committed: &Json, measured: &[MeasuredFigure]) -> Vec<String> {
    let mut diffs = Vec::new();
    let Some(figures) = committed.get("figures").and_then(Json::as_arr) else {
        return vec!["snapshot has no `figures` array".into()];
    };
    for m in measured {
        let Some(entry) = figures
            .iter()
            .find(|f| f.get("name").and_then(Json::as_str) == Some(m.warm.name))
        else {
            diffs.push(format!("snapshot has no entry for figure {}", m.warm.name));
            continue;
        };
        diff_block(entry, &m.warm, "warm", &mut diffs);
        match entry.get("cold") {
            Some(cold_entry) => diff_block(cold_entry, &m.cold, "cold", &mut diffs),
            None => diffs.push(format!(
                "{}: snapshot has no cold counter block",
                m.warm.name
            )),
        }
    }
    diffs
}

fn usage() -> ! {
    eprintln!(
        "usage: bench-snapshot [--quick] [--out PATH | --check PATH]\n\
         \n\
         --quick       run the quick (CI) figure presets [default; the only preset]\n\
         --out PATH    write the snapshot to PATH (default BENCH_0007.json)\n\
         --check PATH  re-measure and fail when any deterministic counter\n\
                       differs from the committed snapshot at PATH\n\
                       (wall_seconds is informational and never compared)"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // The quick preset is the default (and only) preset; the flag is
            // accepted so invocations document what they run.
            "--quick" => {}
            "--out" => out_path = Some(args.next().unwrap_or_else(|| usage())),
            "--check" => check_path = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    if out_path.is_some() && check_path.is_some() {
        usage();
    }

    let measured: Vec<MeasuredFigure> = bench_figures()
        .iter()
        .map(|figure| MeasuredFigure {
            warm: measure(figure, true),
            cold: measure(figure, false),
        })
        .collect();
    for m in &measured {
        for (block, e) in [("warm", &m.warm), ("cold", &m.cold)] {
            println!(
                "{:>7} ({block}): {} points ({} skipped), {} barrier iterations, \
                 {} factorizations, {} simplex pivots, {} bb nodes, {:.3}s",
                e.name,
                e.points,
                e.skipped,
                e.barrier_iterations,
                e.factorizations,
                e.simplex_pivots,
                e.bb_nodes,
                e.wall_seconds
            );
        }
    }

    let store = measure_store();
    println!(
        "  store: replay computed {} / replayed {}, warm-from-store {}, \
         bb nodes cold {} vs store {}, solution mismatches {}",
        store.replay_points_computed,
        store.replay_points_replayed,
        store.warm_from_store,
        store.bb_nodes_cold,
        store.bb_nodes_store,
        store.solution_mismatches
    );

    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("cannot read snapshot {path}: {err}");
                return ExitCode::FAILURE;
            }
        };
        let committed = match Json::parse(&text) {
            Ok(doc) => doc,
            Err(err) => {
                eprintln!("snapshot {path} is not valid JSON: {err}");
                return ExitCode::FAILURE;
            }
        };
        let mut diffs = diff_against(&committed, &measured);
        diff_store(&committed, &store, &mut diffs);
        if diffs.is_empty() {
            println!("counters match {path}");
            return ExitCode::SUCCESS;
        }
        eprintln!("effort counters diverged from {path}:");
        for diff in &diffs {
            eprintln!("  {diff}");
        }
        eprintln!("regenerate with: cargo run --release -p mfa_bench --bin bench-snapshot -- --quick --out {path}");
        return ExitCode::FAILURE;
    }

    let path = out_path.unwrap_or_else(|| "BENCH_0007.json".to_owned());
    if let Err(err) = std::fs::write(&path, snapshot_json(&measured, &store)) {
        eprintln!("cannot write {path}: {err}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");
    ExitCode::SUCCESS
}
