//! Table 2 — per-kernel characterization of Alex-32 and Alex-16.
//!
//! Prints the embedded measured table (the optimization inputs) next to the
//! analytic estimator's output for the same kernels, then times the
//! characterization flow.

use criterion::{criterion_group, criterion_main, Criterion};

use mfa_bench::print_characterization;
use mfa_cnn::characterize::{characterize_network, CuConfig};
use mfa_cnn::{paper_data, CnnNetwork, Precision};
use mfa_platform::FpgaDevice;

fn print_table2() {
    print_characterization(
        "Table 2 (paper, measured): Alex-32",
        &paper_data::alexnet_32bit(),
    );
    print_characterization(
        "Table 2 (paper, measured): Alex-16",
        &paper_data::alexnet_16bit(),
    );

    let device = FpgaDevice::vu9p();
    let network = CnnNetwork::alexnet();
    for (label, precision) in [("fp32", Precision::Float32), ("fx16", Precision::Fixed16)] {
        let kernels = characterize_network(&network, precision, &CuConfig::default(), &device);
        let app = mfa_cnn::Application::new(format!("AlexNet {label} (estimated)"), kernels);
        print_characterization(
            &format!("Table 2 (this repo, analytic estimator): AlexNet {label}"),
            &app,
        );
    }
}

fn bench(c: &mut Criterion) {
    print_table2();
    let device = FpgaDevice::vu9p();
    let network = CnnNetwork::alexnet();
    let mut group = c.benchmark_group("table2_characterization");
    group.sample_size(20);
    group.bench_function("characterize_alexnet_fx16", |b| {
        b.iter(|| characterize_network(&network, Precision::Fixed16, &CuConfig::default(), &device))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
