//! Table 3 — per-kernel characterization of VGG (16-bit fixed point).

use criterion::{criterion_group, criterion_main, Criterion};

use mfa_bench::print_characterization;
use mfa_cnn::characterize::{characterize_network, CuConfig};
use mfa_cnn::{paper_data, CnnNetwork, Precision};
use mfa_platform::FpgaDevice;

fn print_table3() {
    print_characterization(
        "Table 3 (paper, measured): VGG fx16",
        &paper_data::vgg_16bit(),
    );
    let device = FpgaDevice::vu9p();
    let network = CnnNetwork::vgg16();
    let kernels = characterize_network(&network, Precision::Fixed16, &CuConfig::default(), &device);
    let app = mfa_cnn::Application::new("VGG16 fx16 (estimated)", kernels);
    print_characterization("Table 3 (this repo, analytic estimator): VGG16 fx16", &app);
}

fn bench(c: &mut Criterion) {
    print_table3();
    let device = FpgaDevice::vu9p();
    let network = CnnNetwork::vgg16();
    let mut group = c.benchmark_group("table3_characterization");
    group.sample_size(20);
    group.bench_function("characterize_vgg16_fx16", |b| {
        b.iter(|| characterize_network(&network, Precision::Fixed16, &CuConfig::default(), &device))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
