//! Fig. 4 — AlexNet 32-bit floating point on 4 FPGAs: II vs resource
//! constraint (a) and vs average FPGA utilization (b).
//!
//! The method series run through the `mfa_explore` parallel engine via
//! `compare_methods`, overlapping the budgeted MINLP solves with the GP+A
//! sweep on multi-core hosts.

use criterion::{criterion_group, criterion_main, Criterion};

use mfa_alloc::cases::PaperCase;
use mfa_alloc::explore::constraint_grid;
use mfa_alloc::solver::{Backend, SolveRequest};
use mfa_bench::{compare_methods, print_comparison, MinlpBudget};

fn print_fig4() {
    let case = PaperCase::Alex32OnFourFpgas;
    let problem = case.problem(0.70).expect("feasible");
    let constraints = constraint_grid(0.65, 0.75, 3);
    let rows = compare_methods(&problem, &constraints, MinlpBudget::alexnet());
    print_comparison(
        "Fig. 4: Alex-32 on 4 FPGAs — II vs resource constraint / average resource",
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    print_fig4();
    let problem = PaperCase::Alex32OnFourFpgas
        .problem(0.70)
        .expect("feasible");
    let mut group = c.benchmark_group("fig4_alex32");
    group.sample_size(10);
    group.bench_function("gpa", |b| {
        b.iter(|| {
            SolveRequest::new(&problem)
                .backend(Backend::gpa())
                .solve()
                .expect("solves")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
