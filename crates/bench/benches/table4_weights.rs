//! Table 4 — the α/β weights of the spreading objective for the three
//! representative cases, and the goal values they produce.

use criterion::{criterion_group, criterion_main, Criterion};

use mfa_alloc::cases::PaperCase;
use mfa_alloc::solver::{Backend, SolveRequest};

fn print_table4() {
    println!();
    println!("=== Table 4: parameters for the spreading function");
    println!("{:<22} {:>6} {:>6}", "application", "alpha", "beta");
    for case in PaperCase::all() {
        let w = case.weights();
        println!("{:<22} {:>6.1} {:>6.1}", case.label(), w.alpha, w.beta);
    }
    println!();
    println!(
        "goal values g = alpha*II + beta*phi at the middle of each case's constraint range (GP+A):"
    );
    for case in PaperCase::all() {
        let (lo, hi) = case.constraint_range();
        let problem = case
            .problem(0.5 * (lo + hi))
            .expect("paper cases are feasible");
        match SolveRequest::new(&problem).backend(Backend::gpa()).solve() {
            Ok(outcome) => {
                let metrics = outcome.allocation.metrics(&problem);
                println!(
                    "  {:<22} II = {:>7.3} ms   phi = {:>6.3}   g = {:>8.3}",
                    case.label(),
                    metrics.initiation_interval_ms,
                    metrics.spreading,
                    metrics.goal
                );
            }
            Err(err) => println!("  {:<22} failed: {err}", case.label()),
        }
    }
}

fn bench(c: &mut Criterion) {
    print_table4();
    let mut group = c.benchmark_group("table4_problem_construction");
    group.sample_size(20);
    group.bench_function("build_all_three_cases", |b| {
        b.iter(|| {
            PaperCase::all()
                .iter()
                .map(|case| case.problem(0.70).expect("feasible"))
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
