//! CPU-time comparison (Sec. 4, last paragraph): GP+A against the exact MINLP
//! on the three representative cases.
//!
//! The paper reports GP+A between 0.78 s (Alex-16 / 2 FPGAs) and 4.4 s
//! (VGG / 8 FPGAs) against minutes-to-hours for MINLP — a 100×–1000× speedup.
//! Here the exact solver runs with a node/time budget, so the printed MINLP
//! times are lower bounds on a full exact solve (it did not finish), which is
//! exactly the paper's point.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use mfa_alloc::cases::PaperCase;
use mfa_alloc::exact::ExactMode;
use mfa_alloc::solver::{Backend, SolveRequest};
use mfa_bench::MinlpBudget;

fn print_runtime_table() {
    println!();
    println!("=== CPU-time comparison (GP+A vs budgeted MINLP)");
    println!(
        "{:<22} {:>12} {:>16} {:>14} {:>10}",
        "case", "GP+A (s)", "MINLP budget (s)", "MINLP proved?", "speedup ≥"
    );
    for case in PaperCase::all() {
        let (lo, hi) = case.constraint_range();
        let constraint = 0.5 * (lo + hi);
        let problem = case.problem(constraint).expect("feasible");
        let budget = match case {
            PaperCase::VggOnEightFpgas => MinlpBudget::vgg(),
            _ => MinlpBudget::alexnet(),
        };

        let start = Instant::now();
        let gpa_result = SolveRequest::new(&problem).backend(Backend::gpa()).solve();
        let gpa_seconds = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let exact_result = SolveRequest::new(&problem)
            .backend(Backend::exact_with(
                budget.options(ExactMode::IiAndSpreading),
            ))
            .solve();
        let exact_seconds = start.elapsed().as_secs_f64();

        let proved = exact_result
            .as_ref()
            .map(|o| o.diagnostics.proven_optimal == Some(true))
            .unwrap_or(false);
        let speedup = if gpa_seconds > 0.0 {
            exact_seconds / gpa_seconds
        } else {
            f64::INFINITY
        };
        println!(
            "{:<22} {:>12.3} {:>16.2} {:>14} {:>9.0}x",
            case.label(),
            gpa_seconds,
            exact_seconds,
            if proved { "yes" } else { "no (capped)" },
            speedup
        );
        if let (Ok(g), Ok(e)) = (&gpa_result, &exact_result) {
            println!(
                "    II: GP+A {:.3} ms, MINLP+G incumbent {:.3} ms (gap {:.3})",
                g.allocation.initiation_interval(&problem),
                e.allocation.initiation_interval(&problem),
                e.diagnostics.relaxation_gap.unwrap_or(0.0)
            );
        }
    }
}

fn bench(c: &mut Criterion) {
    print_runtime_table();
    let problem = PaperCase::Alex16OnTwoFpgas.problem(0.70).expect("feasible");
    let mut group = c.benchmark_group("runtime_comparison");
    group.sample_size(10);
    group.bench_function("gpa_alex16", |b| {
        b.iter(|| {
            SolveRequest::new(&problem)
                .backend(Backend::gpa())
                .solve()
                .expect("solves")
        })
    });
    group.bench_function("minlp_alex16_small_budget", |b| {
        b.iter(|| {
            SolveRequest::new(&problem)
                .backend(Backend::exact_with(
                    MinlpBudget {
                        max_nodes: 100,
                        time_limit_seconds: 3.0,
                    }
                    .options(ExactMode::IiOnly),
                ))
                .solve()
                .expect("solves")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
