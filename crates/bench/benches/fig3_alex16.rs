//! Fig. 3 — AlexNet 16-bit fixed point on 2 FPGAs: II vs resource constraint
//! (a) and II vs average FPGA utilization (b), for GP+A, MINLP and MINLP+G.
//!
//! The three method series run through the `mfa_explore` parallel engine
//! (via `compare_methods`); the Criterion group additionally times the full
//! Fig. 3 GP+A sweep serial vs parallel to track the executor's speedup.

use criterion::{criterion_group, criterion_main, Criterion};

use mfa_alloc::cases::PaperCase;
use mfa_alloc::exact::ExactMode;
use mfa_alloc::explore::constraint_grid;
use mfa_alloc::gpa::GpaOptions;
use mfa_alloc::solver::{Backend, SolveRequest};
use mfa_bench::{compare_methods, print_comparison, MinlpBudget};
use mfa_explore::{run_sweep, CaseSpec, ExecutorOptions, SolverSpec, SweepGrid};

fn print_fig3() {
    let case = PaperCase::Alex16OnTwoFpgas;
    let problem = case.problem(0.70).expect("feasible");
    let constraints = constraint_grid(0.55, 0.85, 7);
    let rows = compare_methods(&problem, &constraints, MinlpBudget::alexnet());
    print_comparison(
        "Fig. 3: Alex-16 on 2 FPGAs — II vs resource constraint / average resource",
        &rows,
    );
}

/// The Fig. 3 constraint grid with a GP+A backend per paper variant — enough
/// independent work to keep several cores busy without MINLP noise.
fn fig3_gpa_grid() -> SweepGrid {
    SweepGrid::builder()
        .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
        .fpga_counts([2])
        .constraints(constraint_grid(0.55, 0.85, 7))
        .backend(SolverSpec::gpa(GpaOptions::fast()))
        .backend(SolverSpec::gpa_labeled(
            "GP+A/gp",
            GpaOptions::paper_defaults(),
        ))
        .build()
        .expect("the Fig. 3 grid is well-formed")
}

fn bench(c: &mut Criterion) {
    print_fig3();
    let problem = PaperCase::Alex16OnTwoFpgas.problem(0.70).expect("feasible");
    let mut group = c.benchmark_group("fig3_alex16");
    group.sample_size(10);
    group.bench_function("gpa", |b| {
        b.iter(|| {
            SolveRequest::new(&problem)
                .backend(Backend::gpa())
                .solve()
                .expect("solves")
        })
    });
    group.bench_function("minlp_budgeted", |b| {
        b.iter(|| {
            SolveRequest::new(&problem)
                .backend(Backend::exact_with(
                    MinlpBudget {
                        max_nodes: 200,
                        time_limit_seconds: 5.0,
                    }
                    .options(ExactMode::IiOnly),
                ))
                .solve()
                .expect("solves")
        })
    });
    let grid = fig3_gpa_grid();
    group.bench_function("gpa_sweep_serial", |b| {
        b.iter(|| run_sweep(&grid, &ExecutorOptions::serial()).expect("sweep succeeds"))
    });
    group.bench_function("gpa_sweep_parallel", |b| {
        b.iter(|| {
            run_sweep(
                &grid,
                &ExecutorOptions {
                    chunk_size: 2,
                    ..ExecutorOptions::default()
                },
            )
            .expect("sweep succeeds")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
