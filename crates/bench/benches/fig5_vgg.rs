//! Fig. 5 — VGG 16-bit fixed point on 8 FPGAs: II vs resource constraint (a)
//! and vs average FPGA utilization (b).
//!
//! The exact MINLP at this size (136 integer variables) took the paper's
//! authors hours with Couenne; here each exact solve gets a small node/time
//! budget and reports its best incumbent (see `EXPERIMENTS.md`). Budgeted
//! solves that exhaust their nodes without an incumbent show up as missing
//! points, and the series run through the `mfa_explore` parallel engine via
//! `compare_methods`.

use criterion::{criterion_group, criterion_main, Criterion};

use mfa_alloc::cases::PaperCase;
use mfa_alloc::explore::constraint_grid;
use mfa_alloc::solver::{Backend, SolveRequest};
use mfa_bench::{compare_methods, print_comparison, MinlpBudget};

fn print_fig5() {
    let case = PaperCase::VggOnEightFpgas;
    let problem = case.problem(0.61).expect("feasible");
    let constraints = constraint_grid(0.55, 0.80, 6);
    let rows = compare_methods(&problem, &constraints, MinlpBudget::vgg());
    print_comparison(
        "Fig. 5: VGG on 8 FPGAs — II vs resource constraint / average resource",
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    print_fig5();
    let problem = PaperCase::VggOnEightFpgas.problem(0.61).expect("feasible");
    let mut group = c.benchmark_group("fig5_vgg");
    group.sample_size(10);
    group.bench_function("gpa", |b| {
        b.iter(|| {
            SolveRequest::new(&problem)
                .backend(Backend::gpa())
                .solve()
                .expect("solves")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
