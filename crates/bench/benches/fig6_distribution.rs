//! Fig. 6 — per-FPGA resource distribution of the VGG kernels at a 61 %
//! resource constraint, for GP+A, MINLP and MINLP+G.

use criterion::{criterion_group, criterion_main, Criterion};

use mfa_alloc::cases::PaperCase;
use mfa_alloc::exact::ExactMode;
use mfa_alloc::report::{critical_class, utilization_breakdown};
use mfa_alloc::solver::{Backend, SolveRequest};
use mfa_alloc::{Allocation, AllocationProblem};
use mfa_bench::MinlpBudget;

fn print_distribution(title: &str, problem: &AllocationProblem, allocation: &Allocation) {
    println!();
    println!("--- {title}");
    println!(
        "{:<10} CUs per FPGA (F1..F8) and share of the FPGA's critical resource",
        "kernel"
    );
    let breakdown = utilization_breakdown(problem, allocation);
    let class = critical_class(problem);
    for (k, kernel) in problem.kernels().iter().enumerate() {
        print!("{:<10}", kernel.name());
        for fpga in &breakdown {
            let cus = allocation.cus(k, fpga.fpga);
            if cus > 0 {
                print!(
                    " F{}:{}({:.0}%)",
                    fpga.fpga + 1,
                    cus,
                    100.0 * class(kernel.resources()) * cus as f64
                );
            }
        }
        println!();
    }
    print!("{:<10}", "SLACK");
    for fpga in &breakdown {
        print!(" F{}:{:.0}%", fpga.fpga + 1, 100.0 * fpga.slack);
    }
    println!();
    println!(
        "II = {:.2} ms, spreading = {:.2}, FPGAs used = {}",
        allocation.initiation_interval(problem),
        allocation.spreading(),
        allocation.fpgas_used()
    );
}

fn print_fig6() {
    let problem = PaperCase::VggOnEightFpgas.problem(0.61).expect("feasible");
    println!();
    println!("=== Fig. 6: VGG resource usage per FPGA for a 61% resource constraint");
    if let Ok(outcome) = SolveRequest::new(&problem).backend(Backend::gpa()).solve() {
        print_distribution("GP+A", &problem, &outcome.allocation);
    }
    let budget = MinlpBudget::vgg();
    if let Ok(outcome) = SolveRequest::new(&problem)
        .backend(Backend::exact_with(budget.options(ExactMode::IiOnly)))
        .solve()
    {
        print_distribution("MINLP (budgeted incumbent)", &problem, &outcome.allocation);
    }
    if let Ok(outcome) = SolveRequest::new(&problem)
        .backend(Backend::exact_with(
            budget.options(ExactMode::IiAndSpreading),
        ))
        .solve()
    {
        print_distribution(
            "MINLP+G (budgeted incumbent)",
            &problem,
            &outcome.allocation,
        );
    }
}

fn bench(c: &mut Criterion) {
    print_fig6();
    let problem = PaperCase::VggOnEightFpgas.problem(0.61).expect("feasible");
    let mut group = c.benchmark_group("fig6_distribution");
    group.sample_size(10);
    group.bench_function("gpa_plus_breakdown", |b| {
        b.iter(|| {
            let outcome = SolveRequest::new(&problem)
                .backend(Backend::gpa_fast())
                .solve()
                .expect("solves");
            utilization_breakdown(&problem, &outcome.allocation)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
