//! Fig. 2 — effect of the allocator's `T` parameter on the achieved II for
//! Alex-16 on 2 FPGAs (Δ = 1 %), across resource constraints from 40 % to
//! 90 %.

use criterion::{criterion_group, criterion_main, Criterion};

use mfa_alloc::cases::PaperCase;
use mfa_alloc::explore::{constraint_grid, sweep_t_parameter};
use mfa_alloc::gpa::{self, GpaOptions};

fn print_fig2() {
    let case = PaperCase::Alex16OnTwoFpgas;
    let problem = case.problem(0.65).expect("feasible");
    let constraints = constraint_grid(0.40, 0.90, 11);
    let t_values = [0.0, 0.025, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30];
    let series =
        sweep_t_parameter(&problem, &constraints, &t_values, 0.01).expect("sweep succeeds");

    println!();
    println!("=== Fig. 2: Alex-16 on 2 FPGAs, II (ms) vs resource constraint for several T");
    print!("{:>12}", "constraint");
    for (t, _) in &series {
        print!(" {:>7}", format!("T{:.1}%", t * 100.0));
    }
    println!();
    for (i, &constraint) in constraints.iter().enumerate() {
        print!("{:>11.0}%", constraint * 100.0);
        for (_, points) in &series {
            match points
                .iter()
                .find(|p| (p.resource_constraint - constraint).abs() < 1e-9)
            {
                Some(p) => print!(" {:>7.3}", p.initiation_interval_ms),
                None => print!(" {:>7}", "-"),
            }
        }
        println!();
        let _ = i;
    }
    println!("(as in the paper, T has little effect on II; the following figures use T = 0)");
}

fn bench(c: &mut Criterion) {
    print_fig2();
    let problem = PaperCase::Alex16OnTwoFpgas.problem(0.65).expect("feasible");
    let mut group = c.benchmark_group("fig2_t_sweep");
    group.sample_size(10);
    group.bench_function("gpa_alex16_single_point", |b| {
        b.iter(|| gpa::solve(&problem, &GpaOptions::fast()).expect("solves"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
