//! Fig. 2 — effect of the allocator's `T` parameter on the achieved II for
//! Alex-16 on 2 FPGAs (Δ = 1 %), across resource constraints from 40 % to
//! 90 %.
//!
//! The eight `T` curves are expressed as eight labeled GP+A backends on one
//! `mfa_explore` grid, so the whole figure is produced by a single parallel
//! sweep.

use criterion::{criterion_group, criterion_main, Criterion};

use mfa_alloc::cases::PaperCase;
use mfa_alloc::gpa::GpaOptions;
use mfa_alloc::greedy::GreedyOptions;
use mfa_alloc::solver::{Backend, SolveRequest};
use mfa_explore::{constraint_grid, run_sweep, CaseSpec, ExecutorOptions, SolverSpec, SweepGrid};

const T_VALUES: [f64; 8] = [0.0, 0.025, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30];

fn fig2_grid(constraints: &[f64]) -> SweepGrid {
    SweepGrid::builder()
        .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
        .fpga_counts([2])
        .constraints(constraints.iter().copied())
        .backends(T_VALUES.iter().map(|&t| {
            SolverSpec::gpa_labeled(
                format!("T{:.1}%", t * 100.0),
                GpaOptions {
                    greedy: GreedyOptions::with_t_delta(t, 0.01),
                    ..GpaOptions::fast()
                },
            )
        }))
        .build()
        .expect("the Fig. 2 grid is well-formed")
}

fn print_fig2() {
    let constraints = constraint_grid(0.40, 0.90, 11).expect("valid grid");
    let series =
        run_sweep(&fig2_grid(&constraints), &ExecutorOptions::default()).expect("sweep succeeds");

    println!();
    println!("=== Fig. 2: Alex-16 on 2 FPGAs, II (ms) vs resource constraint for several T");
    print!("{:>12}", "constraint");
    for s in &series {
        print!(" {:>7}", s.backend);
    }
    println!();
    for &constraint in &constraints {
        print!("{:>11.0}%", constraint * 100.0);
        for s in &series {
            match s
                .points
                .iter()
                .find(|p| (p.resource_constraint - constraint).abs() < 1e-9)
            {
                Some(p) => print!(" {:>7.3}", p.initiation_interval_ms),
                None => print!(" {:>7}", "-"),
            }
        }
        println!();
    }
    println!("(as in the paper, T has little effect on II; the following figures use T = 0)");
}

fn bench(c: &mut Criterion) {
    print_fig2();
    let problem = PaperCase::Alex16OnTwoFpgas.problem(0.65).expect("feasible");
    let mut group = c.benchmark_group("fig2_t_sweep");
    group.sample_size(10);
    group.bench_function("gpa_alex16_single_point", |b| {
        b.iter(|| {
            SolveRequest::new(&problem)
                .backend(Backend::gpa_fast())
                .solve()
                .expect("solves")
        })
    });
    let constraints = constraint_grid(0.40, 0.90, 11).expect("valid grid");
    let grid = fig2_grid(&constraints);
    group.bench_function("full_t_sweep_parallel", |b| {
        b.iter(|| run_sweep(&grid, &ExecutorOptions::default()).expect("sweep succeeds"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
