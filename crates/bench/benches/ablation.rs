//! Ablation benches for the design choices called out in `DESIGN.md`:
//!
//! * GP interior-point backend vs the analytic bisection backend for the
//!   continuous relaxation,
//! * MINLP symmetry breaking on vs off,
//! * the effect of the allocator's `T` relaxation on runtime.

use criterion::{criterion_group, criterion_main, Criterion};

use mfa_alloc::cases::PaperCase;
use mfa_alloc::exact::{ExactMode, ExactOptions};
use mfa_alloc::gp_step::{self, RelaxationBackend};
use mfa_alloc::gpa::GpaOptions;
use mfa_alloc::greedy::GreedyOptions;
use mfa_alloc::solver::{Backend, SolveRequest};
use mfa_minlp::SolverOptions;

fn print_ablation_summary() {
    println!();
    println!("=== Ablation: relaxation backend agreement");
    for case in PaperCase::all() {
        let problem = case.problem(0.70).expect("feasible");
        let gp = gp_step::solve(&problem, RelaxationBackend::GeometricProgram).expect("solves");
        let bis = gp_step::solve(&problem, RelaxationBackend::Bisection).expect("solves");
        println!(
            "{:<22} GP II = {:.4} ms, bisection II = {:.4} ms, relative diff = {:.2e}",
            case.label(),
            gp.initiation_interval_ms,
            bis.initiation_interval_ms,
            (gp.initiation_interval_ms - bis.initiation_interval_ms).abs()
                / bis.initiation_interval_ms
        );
    }

    println!();
    println!("=== Ablation: MINLP symmetry breaking (Alex-16 on 2 FPGAs, 65% constraint)");
    let problem = PaperCase::Alex16OnTwoFpgas.problem(0.65).expect("feasible");
    for symmetry in [true, false] {
        let options = ExactOptions {
            mode: ExactMode::IiOnly,
            solver: SolverOptions::with_budget(800, 15.0),
            symmetry_breaking: symmetry,
        };
        let request = SolveRequest::new(&problem).backend(Backend::exact_with(options));
        match request.solve() {
            Ok(outcome) => println!(
                "symmetry breaking {:>5}: II = {:.3} ms, nodes = {}, proven optimal = {:?}",
                symmetry,
                outcome.allocation.initiation_interval(&problem),
                outcome.diagnostics.bb_nodes,
                outcome.diagnostics.proven_optimal
            ),
            Err(err) => println!("symmetry breaking {symmetry}: failed: {err}"),
        }
    }
}

fn bench(c: &mut Criterion) {
    print_ablation_summary();
    let problem = PaperCase::Alex16OnTwoFpgas.problem(0.70).expect("feasible");

    let mut group = c.benchmark_group("relaxation_backend");
    group.sample_size(20);
    group.bench_function("gp_interior_point", |b| {
        b.iter(|| gp_step::solve(&problem, RelaxationBackend::GeometricProgram).expect("solves"))
    });
    group.bench_function("bisection", |b| {
        b.iter(|| gp_step::solve(&problem, RelaxationBackend::Bisection).expect("solves"))
    });
    group.finish();

    let mut group = c.benchmark_group("allocator_t_parameter");
    group.sample_size(10);
    for t in [0.0, 0.10, 0.30] {
        group.bench_function(format!("gpa_t_{:.0}pct", t * 100.0), |b| {
            let options = GpaOptions {
                greedy: GreedyOptions::with_t_delta(t, 0.01),
                ..GpaOptions::fast()
            };
            let request = SolveRequest::new(&problem).backend(Backend::gpa_with(options));
            b.iter(|| request.solve().expect("solves"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
