//! Mixed-integer nonlinear branch-and-bound solver.
//!
//! This crate is the in-repo substitute for Couenne, the global MINLP solver
//! used by the reproduced paper (Shan et al., DAC 2019) to solve the exact
//! multi-FPGA compute-unit allocation problem. The problem class it targets is
//! *factorable* models whose nonlinearities come from a small term library:
//!
//! * [`Term::Linear`] — `c·x`,
//! * [`Term::Reciprocal`] — `c/x` (convex for `x > 0`), used for the
//!   initiation-interval constraints `II ≥ WCET/N`,
//! * [`Term::Saturation`] — `c·x/(a+x)` (concave for `x ≥ 0`), used for the
//!   CU-spreading penalty `ϕ_k = Σ_f n_{k,f}/(1+n_{k,f})`.
//!
//! Every constraint is a sum of such terms compared to a constant, and the
//! objective is linear. The solver performs best-first branch-and-bound on
//! the integer variables; each node is bounded by an LP relaxation built from
//! Couenne-style convexifications (tangent outer-approximation cuts for convex
//! terms, secant/chord estimators for concave terms) and solved with the
//! [`mfa_linprog`] simplex. Because every nonlinear term is univariate and the
//! estimators are exact once a variable's bounds collapse, integer branching
//! alone closes the relaxation gap and the returned incumbent is a global
//! optimum (within tolerances) whenever the search terminates normally.
//!
//! # Example
//!
//! ```
//! use mfa_minlp::{MinlpProblem, Relation, Term, MinlpStatus};
//!
//! # fn main() -> Result<(), mfa_minlp::MinlpError> {
//! // minimize II  s.t.  II ≥ 6/N, N integer, 1 ≤ N ≤ 4, 0.3·N ≤ 1.
//! let mut problem = MinlpProblem::new();
//! let ii = problem.add_continuous_var("II", 0.0, 100.0, 1.0)?;
//! let n = problem.add_integer_var("N", 1.0, 4.0, 0.0)?;
//! problem.add_constraint(
//!     "latency",
//!     vec![Term::reciprocal(n, 6.0), Term::linear(ii, -1.0)],
//!     Relation::LessEq,
//!     0.0,
//! )?;
//! problem.add_constraint("budget", vec![Term::linear(n, 0.3)], Relation::LessEq, 1.0)?;
//! let solution = problem.solve()?;
//! assert_eq!(solution.status(), MinlpStatus::Optimal);
//! assert!((solution.value(n) - 3.0).abs() < 1e-6);
//! assert!((solution.objective() - 2.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bb;
mod error;
mod model;
mod relax;
mod solution;
mod term;

pub use bb::SolverOptions;
pub use error::MinlpError;
pub use model::{MinlpProblem, MinlpVarId, Relation};
pub use solution::{MinlpSolution, MinlpStatus};
pub use term::Term;
