//! Best-first branch-and-bound over the integer variables.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use mfa_linprog::SolverStatus;

use crate::model::{MinlpProblem, Relation};
use crate::relax::{self, CutPool};
use crate::solution::{MinlpSolution, MinlpStatus};
use crate::MinlpError;

/// Options controlling the branch-and-bound search.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverOptions {
    /// Maximum number of branch-and-bound nodes to explore.
    pub max_nodes: usize,
    /// Wall-clock budget in seconds (`None` for unlimited).
    pub time_limit_seconds: Option<f64>,
    /// Tolerance within which a value counts as integral.
    pub integer_tolerance: f64,
    /// Tolerance used when checking true (nonlinear) feasibility.
    pub feasibility_tolerance: f64,
    /// Absolute optimality gap at which the search stops.
    pub absolute_gap: f64,
    /// Relative optimality gap at which the search stops.
    pub relative_gap: f64,
    /// Maximum outer-approximation cut rounds per node.
    pub cut_rounds: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            max_nodes: 200_000,
            time_limit_seconds: None,
            integer_tolerance: 1e-6,
            feasibility_tolerance: 1e-6,
            absolute_gap: 1e-7,
            relative_gap: 1e-6,
            cut_rounds: 6,
        }
    }
}

impl SolverOptions {
    /// Convenience constructor for a budgeted solve (node and time limit),
    /// used by design-space exploration loops that prefer a good incumbent
    /// quickly over a proof of optimality.
    pub fn with_budget(max_nodes: usize, time_limit_seconds: f64) -> Self {
        SolverOptions {
            max_nodes,
            time_limit_seconds: Some(time_limit_seconds),
            ..SolverOptions::default()
        }
    }
}

/// A branch-and-bound node: variable bounds plus the parent's lower bound.
#[derive(Debug, Clone)]
struct Node {
    bounds: Vec<(f64, f64)>,
    lower_bound: f64,
    depth: usize,
}

/// Heap ordering: smallest lower bound first (best-first search).
struct OrderedNode(Node);

impl PartialEq for OrderedNode {
    fn eq(&self, other: &Self) -> bool {
        self.0.lower_bound == other.0.lower_bound
    }
}
impl Eq for OrderedNode {}
impl PartialOrd for OrderedNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the smallest bound pops first.
        other
            .0
            .lower_bound
            .partial_cmp(&self.0.lower_bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.0.depth.cmp(&self.0.depth))
    }
}

struct SearchState {
    incumbent: Option<Vec<f64>>,
    incumbent_objective: f64,
    nodes_explored: usize,
    lp_solves: usize,
    simplex_pivots: usize,
}

/// Result of processing one node's LP (with cut rounds).
enum NodeLp {
    Infeasible,
    Solved { bound: f64, values: Vec<f64> },
}

/// Solves the problem; entry point used by [`MinlpProblem::solve_with`].
pub(crate) fn solve(
    problem: &MinlpProblem,
    options: &SolverOptions,
) -> Result<MinlpSolution, MinlpError> {
    let start = Instant::now();
    let root_bounds: Vec<(f64, f64)> = problem
        .vars
        .iter()
        .map(|v| {
            if v.integer {
                (v.lower.ceil(), v.upper.floor())
            } else {
                (v.lower, v.upper)
            }
        })
        .collect();
    if root_bounds.iter().any(|&(l, u)| l > u) {
        return Ok(MinlpSolution::new(
            MinlpStatus::Infeasible,
            0.0,
            0.0,
            vec![0.0; problem.num_vars()],
            0,
            0,
            0,
        ));
    }

    let mut state = SearchState {
        incumbent: None,
        incumbent_objective: f64::INFINITY,
        nodes_explored: 0,
        lp_solves: 0,
        simplex_pivots: 0,
    };
    // Warm start: a feasible (after integer rounding) seed becomes the
    // incumbent before the first node, so bound pruning is active from node
    // 0. An infeasible seed is ignored — seeding can only shrink the tree,
    // never change the optimum.
    let mut seeded = false;
    if let Some(seed) = &problem.initial_incumbent {
        let rounded = round_integers(problem, seed);
        if problem.is_feasible(&rounded, options.feasibility_tolerance)? {
            state.incumbent_objective = problem.objective_value(&rounded)?;
            state.incumbent = Some(rounded);
            seeded = true;
        }
    }
    let mut heap = BinaryHeap::new();
    heap.push(OrderedNode(Node {
        bounds: root_bounds,
        lower_bound: f64::NEG_INFINITY,
        depth: 0,
    }));
    // The tightest bound among pruned/open nodes, used for the final gap.
    let mut best_open_bound = f64::NEG_INFINITY;
    let mut hit_limit = false;

    while let Some(OrderedNode(node)) = heap.pop() {
        // Global stopping tests.
        if state.nodes_explored >= options.max_nodes {
            hit_limit = true;
            best_open_bound = best_open_bound.max(node.lower_bound);
            break;
        }
        if let Some(limit) = options.time_limit_seconds {
            if start.elapsed().as_secs_f64() > limit {
                hit_limit = true;
                best_open_bound = best_open_bound.max(node.lower_bound);
                break;
            }
        }
        // Best-first: if the best remaining node cannot improve on the
        // incumbent, the incumbent is optimal.
        if node.lower_bound >= state.incumbent_objective - gap_threshold(&state, options) {
            best_open_bound = state.incumbent_objective;
            break;
        }
        state.nodes_explored += 1;

        let lp_outcome = solve_node_lp(problem, &node.bounds, options, &mut state)?;
        let (bound, values) = match lp_outcome {
            NodeLp::Infeasible => continue,
            NodeLp::Solved { bound, values } => (bound, values),
        };
        if bound >= state.incumbent_objective - gap_threshold(&state, options) {
            continue; // pruned by bound
        }

        // Branching variable: most fractional integer variable.
        let fractional = most_fractional(problem, &values, options.integer_tolerance);

        // Rounding heuristic: periodically try to turn the (possibly
        // fractional) LP point into a feasible incumbent so that budgeted
        // solves always have something to report.
        if fractional.is_some() && (state.incumbent.is_none() || node.depth % 8 == 0) {
            let rounded = round_integers(problem, &values);
            if let Some((candidate_values, candidate_objective)) =
                repair_candidate(problem, &rounded, options, &mut state)?
            {
                if candidate_objective < state.incumbent_objective - 1e-12 {
                    state.incumbent_objective = candidate_objective;
                    state.incumbent = Some(candidate_values);
                }
            }
        }

        if let Some((var_idx, value)) = fractional {
            let (lo, hi) = node.bounds[var_idx];
            let mut left = node.bounds.clone();
            left[var_idx] = (lo, value.floor());
            let mut right = node.bounds.clone();
            right[var_idx] = (value.floor() + 1.0, hi);
            for child in [left, right] {
                if child[var_idx].0 <= child[var_idx].1 {
                    heap.push(OrderedNode(Node {
                        bounds: child,
                        lower_bound: bound,
                        depth: node.depth + 1,
                    }));
                }
            }
            continue;
        }

        // All integer variables integral: try to turn the point into a true
        // incumbent by re-solving with the integers fixed (which makes every
        // estimator of an integer-argument term exact).
        let rounded = round_integers(problem, &values);
        let candidate = repair_candidate(problem, &rounded, options, &mut state)?;
        if let Some((candidate_values, candidate_objective)) = candidate {
            if candidate_objective < state.incumbent_objective - 1e-12 {
                state.incumbent_objective = candidate_objective;
                state.incumbent = Some(candidate_values);
            }
        }
        // Even after an incumbent update the node's relaxation may still be
        // below the true value of any integer point in the node (concave
        // estimator gap); branch spatially on a variable of a violated
        // nonlinear constraint to shrink that gap unless the node is closed.
        if bound >= state.incumbent_objective - gap_threshold(&state, options) {
            continue;
        }
        if let Some(var_idx) = spatial_branch_variable(problem, &node.bounds, &rounded) {
            let (lo, hi) = node.bounds[var_idx];
            let mid = ((lo + hi) / 2.0).floor();
            let mut left = node.bounds.clone();
            left[var_idx] = (lo, mid);
            let mut right = node.bounds.clone();
            right[var_idx] = (mid + 1.0, hi);
            for child in [left, right] {
                if child[var_idx].0 <= child[var_idx].1 {
                    heap.push(OrderedNode(Node {
                        bounds: child,
                        lower_bound: bound,
                        depth: node.depth + 1,
                    }));
                }
            }
        }
        // If no spatial branching variable exists the relaxation gap cannot be
        // reduced further in this node; accept the incumbent candidate as the
        // node's resolution (the bound stays as a valid global lower bound).
    }

    // Collect the tightest open bound that remains for gap reporting.
    for OrderedNode(node) in heap.iter() {
        // Open nodes: their parent bound is a valid lower bound for them.
        if node.lower_bound < best_open_bound || best_open_bound == f64::NEG_INFINITY {
            // track the *minimum* open bound (worst case for the gap)
        }
        best_open_bound = if best_open_bound == f64::NEG_INFINITY {
            node.lower_bound
        } else {
            best_open_bound.min(node.lower_bound)
        };
    }
    if heap.is_empty() && !hit_limit {
        best_open_bound = state.incumbent_objective;
    }

    match state.incumbent {
        Some(values) => {
            let status = if hit_limit && !heap.is_empty() {
                MinlpStatus::Feasible
            } else {
                MinlpStatus::Optimal
            };
            let best_bound = if status == MinlpStatus::Optimal {
                state.incumbent_objective
            } else {
                best_open_bound.min(state.incumbent_objective)
            };
            let solution = MinlpSolution::new(
                status,
                state.incumbent_objective,
                best_bound,
                values,
                state.nodes_explored,
                state.lp_solves,
                state.simplex_pivots,
            );
            Ok(if seeded {
                solution.mark_warm_started()
            } else {
                solution
            })
        }
        None if hit_limit => Err(MinlpError::NodeLimitWithoutSolution {
            nodes: state.nodes_explored,
        }),
        None => Ok(MinlpSolution::new(
            MinlpStatus::Infeasible,
            0.0,
            0.0,
            vec![0.0; problem.num_vars()],
            state.nodes_explored,
            state.lp_solves,
            state.simplex_pivots,
        )),
    }
}

fn gap_threshold(state: &SearchState, options: &SolverOptions) -> f64 {
    options
        .absolute_gap
        .max(options.relative_gap * state.incumbent_objective.abs().min(f64::MAX))
}

/// Solves the node LP with up to `cut_rounds` outer-approximation rounds.
fn solve_node_lp(
    problem: &MinlpProblem,
    bounds: &[(f64, f64)],
    options: &SolverOptions,
    state: &mut SearchState,
) -> Result<NodeLp, MinlpError> {
    let mut cuts = CutPool::default();
    let mut last: Option<(f64, Vec<f64>)> = None;
    for round in 0..options.cut_rounds.max(1) {
        let relaxation = relax::build(problem, bounds, &cuts)?;
        let lp_solution = relaxation.lp.solve()?;
        state.lp_solves += 1;
        state.simplex_pivots += lp_solution.pivots();
        match lp_solution.status() {
            SolverStatus::Infeasible => return Ok(NodeLp::Infeasible),
            SolverStatus::Unbounded => {
                // A relaxation of a bounded MINLP can only be unbounded if the
                // user model itself is; propagate a conservative -inf bound.
                return Ok(NodeLp::Solved {
                    bound: f64::NEG_INFINITY,
                    values: bounds.iter().map(|&(l, _)| l).collect(),
                });
            }
            SolverStatus::Optimal => {}
        }
        let values: Vec<f64> = relaxation
            .var_ids
            .iter()
            .map(|&id| lp_solution.value(id))
            .collect();
        let bound = lp_solution.objective();
        // Outer approximation: add tangent cuts where the aux variable
        // underestimates a convex term (or overestimates a concave one in a
        // `≥` row) at the current point.
        let mut added = false;
        if round + 1 < options.cut_rounds {
            for &(term_ref, aux_id, term) in &relaxation.aux {
                let constraint = &problem.constraints[term_ref.constraint];
                let x = values[term.var().index()];
                let aux_value = lp_solution.value(aux_id);
                let true_value = term.eval(x);
                let needs_cut = match constraint.relation {
                    Relation::LessEq => term.is_convex() && aux_value < true_value - 1e-7,
                    Relation::GreaterEq => term.is_concave() && aux_value > true_value + 1e-7,
                    Relation::Equal => {
                        (term.is_convex() && aux_value < true_value - 1e-7)
                            || (term.is_concave() && aux_value > true_value + 1e-7)
                    }
                };
                if needs_cut {
                    cuts.add(term_ref, x);
                    added = true;
                }
            }
        }
        last = Some((bound, values));
        if !added {
            break;
        }
    }
    let (bound, values) = last.expect("at least one LP round is always executed");
    Ok(NodeLp::Solved { bound, values })
}

/// Most fractional integer variable, if any.
fn most_fractional(problem: &MinlpProblem, values: &[f64], tol: f64) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64, f64)> = None;
    for (idx, data) in problem.vars.iter().enumerate() {
        if !data.integer {
            continue;
        }
        let value = values[idx];
        let frac = (value - value.round()).abs();
        if frac > tol {
            let distance_to_half = (value - value.floor() - 0.5).abs();
            match best {
                None => best = Some((idx, value, distance_to_half)),
                Some((_, _, d)) if distance_to_half < d => {
                    best = Some((idx, value, distance_to_half))
                }
                _ => {}
            }
        }
    }
    best.map(|(idx, value, _)| (idx, value))
}

fn round_integers(problem: &MinlpProblem, values: &[f64]) -> Vec<f64> {
    problem
        .vars
        .iter()
        .zip(values)
        .map(|(v, &x)| if v.integer { x.round() } else { x })
        .collect()
}

/// Re-solves the relaxation with every integer variable fixed to its rounded
/// value. Because all estimators are exact on collapsed intervals, the result
/// (if feasible) is a true feasible point of the MINLP.
fn repair_candidate(
    problem: &MinlpProblem,
    rounded: &[f64],
    options: &SolverOptions,
    state: &mut SearchState,
) -> Result<Option<(Vec<f64>, f64)>, MinlpError> {
    let fixed_bounds: Vec<(f64, f64)> = problem
        .vars
        .iter()
        .zip(rounded)
        .map(|(v, &x)| {
            if v.integer {
                (x, x)
            } else {
                (v.lower, v.upper)
            }
        })
        .collect();
    // A couple of OA rounds so convex terms of *continuous* arguments are
    // represented accurately too.
    let mut cuts = CutPool::default();
    let mut best: Option<(Vec<f64>, f64)> = None;
    for _ in 0..options.cut_rounds.max(1) {
        let relaxation = relax::build(problem, &fixed_bounds, &cuts)?;
        let lp_solution = relaxation.lp.solve()?;
        state.lp_solves += 1;
        state.simplex_pivots += lp_solution.pivots();
        if lp_solution.status() != SolverStatus::Optimal {
            return Ok(None);
        }
        let values: Vec<f64> = relaxation
            .var_ids
            .iter()
            .map(|&id| lp_solution.value(id))
            .collect();
        let mut added = false;
        for &(term_ref, aux_id, term) in &relaxation.aux {
            let constraint = &problem.constraints[term_ref.constraint];
            let x = values[term.var().index()];
            let aux_value = lp_solution.value(aux_id);
            let true_value = term.eval(x);
            let needs_cut = match constraint.relation {
                Relation::LessEq => term.is_convex() && aux_value < true_value - 1e-9,
                Relation::GreaterEq => term.is_concave() && aux_value > true_value + 1e-9,
                Relation::Equal => (aux_value - true_value).abs() > 1e-9,
            };
            if needs_cut {
                cuts.add(term_ref, x);
                added = true;
            }
        }
        if problem.is_feasible(&values, options.feasibility_tolerance)? {
            let objective = problem.objective_value(&values)?;
            best = Some((values, objective));
            break;
        }
        if !added {
            break;
        }
    }
    Ok(best)
}

/// Picks an integer variable to branch on spatially when the LP point is
/// integral but the relaxation is still loose: a variable with non-collapsed
/// bounds appearing in a nonlinear term of a constraint that is violated at
/// the (rounded) point. Returns `None` if no such variable exists.
fn spatial_branch_variable(
    problem: &MinlpProblem,
    bounds: &[(f64, f64)],
    rounded: &[f64],
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for constraint in &problem.constraints {
        let violation = constraint.violation(rounded);
        for term in &constraint.terms {
            if term.is_linear() {
                continue;
            }
            let idx = term.var().index();
            if !problem.vars[idx].integer {
                continue;
            }
            let (lo, hi) = bounds[idx];
            let width = hi - lo;
            if width < 0.5 {
                continue;
            }
            // Prefer variables in violated rows; fall back to the widest box.
            let score = violation.max(0.0) * 1e6 + width;
            match best {
                None => best = Some((idx, score)),
                Some((_, s)) if score > s => best = Some((idx, score)),
                _ => {}
            }
        }
    }
    best.map(|(idx, _)| idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{MinlpProblem, Relation};
    use crate::term::Term;
    use crate::MinlpStatus;

    /// Two-kernel allocation toy: minimize II with II ≥ WCET_k / N_k and a
    /// shared budget. Integer optimum differs from the continuous one.
    #[test]
    fn solves_two_kernel_toy_problem() {
        let mut p = MinlpProblem::new();
        let ii = p.add_continuous_var("II", 0.0, 1000.0, 1.0).unwrap();
        let n1 = p.add_integer_var("N1", 1.0, 10.0, 0.0).unwrap();
        let n2 = p.add_integer_var("N2", 1.0, 10.0, 0.0).unwrap();
        p.add_constraint(
            "k1",
            vec![Term::reciprocal(n1, 3.0), Term::linear(ii, -1.0)],
            Relation::LessEq,
            0.0,
        )
        .unwrap();
        p.add_constraint(
            "k2",
            vec![Term::reciprocal(n2, 5.0), Term::linear(ii, -1.0)],
            Relation::LessEq,
            0.0,
        )
        .unwrap();
        // 0.2·N1 + 0.3·N2 ≤ 1 → feasible integer combos: (1,1), (1,2), (2,1), (2,2), (3,1).
        p.add_constraint(
            "budget",
            vec![Term::linear(n1, 0.2), Term::linear(n2, 0.3)],
            Relation::LessEq,
            1.0,
        )
        .unwrap();
        let sol = p.solve().unwrap();
        assert_eq!(sol.status(), MinlpStatus::Optimal);
        // Best integer point: (2, 2) → II = max(1.5, 2.5) = 2.5.
        assert!(
            (sol.objective() - 2.5).abs() < 1e-5,
            "II = {}",
            sol.objective()
        );
        assert!((sol.value(n2) - 2.0).abs() < 1e-6);
        assert!(sol.nodes_explored() >= 1);
        assert!(sol.gap() < 1e-5);
    }

    #[test]
    fn detects_infeasible_problem() {
        let mut p = MinlpProblem::new();
        let n = p.add_integer_var("n", 1.0, 3.0, 1.0).unwrap();
        p.add_constraint(
            "impossible",
            vec![Term::linear(n, 1.0)],
            Relation::GreaterEq,
            10.0,
        )
        .unwrap();
        let sol = p.solve().unwrap();
        assert_eq!(sol.status(), MinlpStatus::Infeasible);
        assert!(!sol.has_incumbent());
    }

    #[test]
    fn empty_integer_domain_is_infeasible() {
        let mut p = MinlpProblem::new();
        let n = p.add_integer_var("n", 1.2, 1.8, 1.0).unwrap();
        p.add_constraint("noop", vec![Term::linear(n, 1.0)], Relation::GreaterEq, 0.0)
            .unwrap();
        let sol = p.solve().unwrap();
        assert_eq!(sol.status(), MinlpStatus::Infeasible);
    }

    /// Spreading-style objective: the concave saturation term must be handled
    /// by spatial branching, and minimizing spreading should consolidate.
    #[test]
    fn concave_spreading_terms_are_minimized_correctly() {
        // Two "FPGAs", one kernel needing exactly 4 CUs, each FPGA holds at
        // most 3. Minimize φ ≥ sat(n1) + sat(n2) subject to n1 + n2 = 4.
        // Options: (1,3): 0.5+0.75=1.25; (2,2): 2/3+2/3≈1.333; (3,1) same as (1,3).
        let mut p = MinlpProblem::new();
        let phi = p.add_continuous_var("phi", 0.0, 2.0, 1.0).unwrap();
        let n1 = p.add_integer_var("n1", 0.0, 3.0, 0.0).unwrap();
        let n2 = p.add_integer_var("n2", 0.0, 3.0, 0.0).unwrap();
        p.add_constraint(
            "total",
            vec![Term::linear(n1, 1.0), Term::linear(n2, 1.0)],
            Relation::Equal,
            4.0,
        )
        .unwrap();
        p.add_constraint(
            "spread",
            vec![
                Term::saturation(n1, 1.0),
                Term::saturation(n2, 1.0),
                Term::linear(phi, -1.0),
            ],
            Relation::LessEq,
            0.0,
        )
        .unwrap();
        let sol = p.solve().unwrap();
        assert_eq!(sol.status(), MinlpStatus::Optimal);
        assert!(
            (sol.objective() - 1.25).abs() < 1e-5,
            "phi = {}",
            sol.objective()
        );
        let ns = [sol.value(n1), sol.value(n2)];
        let max = ns.iter().cloned().fold(0.0, f64::max);
        let min = ns.iter().cloned().fold(10.0, f64::min);
        assert!((max - 3.0).abs() < 1e-6 && (min - 1.0).abs() < 1e-6);
    }

    /// A pure integer linear problem is solved exactly (degenerates to MILP).
    #[test]
    fn handles_pure_milp() {
        // Knapsack-ish: maximize 5a + 4b  ⇔ minimize −5a − 4b, 6a + 5b ≤ 28.
        let mut p = MinlpProblem::new();
        let a = p.add_integer_var("a", 0.0, 10.0, -5.0).unwrap();
        let b = p.add_integer_var("b", 0.0, 10.0, -4.0).unwrap();
        p.add_constraint(
            "cap",
            vec![Term::linear(a, 6.0), Term::linear(b, 5.0)],
            Relation::LessEq,
            28.0,
        )
        .unwrap();
        let sol = p.solve().unwrap();
        assert_eq!(sol.status(), MinlpStatus::Optimal);
        // Optimum: a=3, b=2 → 23 (check a few alternatives: a=4,b=0→20; a=2,b=3→22).
        assert!(
            (sol.objective() + 23.0).abs() < 1e-6,
            "obj = {}",
            sol.objective()
        );
    }

    #[test]
    fn node_limit_reports_feasible_with_gap() {
        let mut p = MinlpProblem::new();
        let ii = p.add_continuous_var("II", 0.0, 1000.0, 1.0).unwrap();
        let mut ns = Vec::new();
        for k in 0..6 {
            let n = p.add_integer_var(format!("N{k}"), 1.0, 20.0, 0.0).unwrap();
            p.add_constraint(
                format!("lat{k}"),
                vec![Term::reciprocal(n, 10.0 + k as f64), Term::linear(ii, -1.0)],
                Relation::LessEq,
                0.0,
            )
            .unwrap();
            ns.push(n);
        }
        let budget_terms: Vec<Term> = ns.iter().map(|&n| Term::linear(n, 0.11)).collect();
        p.add_constraint("budget", budget_terms, Relation::LessEq, 1.0)
            .unwrap();
        let options = SolverOptions {
            max_nodes: 3,
            ..SolverOptions::default()
        };
        let sol = p.solve_with(&options).unwrap();
        assert!(sol.has_incumbent());
        assert!(sol.nodes_explored() <= 3);
        assert!(sol.best_bound() <= sol.objective() + 1e-9);
    }

    /// A six-kernel allocation toy whose uneven WCETs make the LP rounding
    /// heuristic miss for a while, so the cold search explores a real tree
    /// before it can prune.
    fn six_kernel_problem() -> (MinlpProblem, Vec<crate::MinlpVarId>) {
        let wcets = [7.0, 9.5, 11.0, 13.5, 14.0, 17.0];
        let mut p = MinlpProblem::new();
        let ii = p.add_continuous_var("II", 0.0, 1000.0, 1.0).unwrap();
        let mut ns = Vec::new();
        for (k, wcet) in wcets.iter().enumerate() {
            let n = p.add_integer_var(format!("N{k}"), 1.0, 20.0, 0.0).unwrap();
            p.add_constraint(
                format!("lat{k}"),
                vec![Term::reciprocal(n, *wcet), Term::linear(ii, -1.0)],
                Relation::LessEq,
                0.0,
            )
            .unwrap();
            ns.push(n);
        }
        let budget_terms: Vec<Term> = ns.iter().map(|&n| Term::linear(n, 0.09)).collect();
        p.add_constraint("budget", budget_terms, Relation::LessEq, 1.0)
            .unwrap();
        let mut vars = vec![ii];
        vars.extend(ns);
        (p, vars)
    }

    #[test]
    fn incumbent_seed_prunes_from_node_zero() {
        let (cold_problem, vars) = six_kernel_problem();
        let cold = cold_problem.solve().unwrap();
        assert_eq!(cold.status(), MinlpStatus::Optimal);
        assert!(!cold.warm_started());
        // Seed the same model with the cold optimum: the search must prove
        // optimality in strictly fewer nodes, at the same objective.
        let mut seeded_problem = cold_problem.clone();
        seeded_problem
            .set_initial_incumbent(vars.iter().map(|&v| cold.value(v)).collect())
            .unwrap();
        let seeded = seeded_problem.solve().unwrap();
        assert_eq!(seeded.status(), MinlpStatus::Optimal);
        assert!(seeded.warm_started());
        assert!((seeded.objective() - cold.objective()).abs() < 1e-9);
        assert!(
            seeded.nodes_explored() < cold.nodes_explored(),
            "seeded {} vs cold {} nodes",
            seeded.nodes_explored(),
            cold.nodes_explored()
        );
    }

    #[test]
    fn infeasible_seed_is_ignored() {
        let (mut p, _) = six_kernel_problem();
        // Counts that blow the budget: 6 × 20 × 0.11 ≫ 1.
        p.set_initial_incumbent(vec![1.0, 20.0, 20.0, 20.0, 20.0, 20.0, 20.0])
            .unwrap();
        let sol = p.solve().unwrap();
        assert!(!sol.warm_started());
        assert_eq!(sol.status(), MinlpStatus::Optimal);
        p.clear_initial_incumbent();
        let cold = p.solve().unwrap();
        assert!((sol.objective() - cold.objective()).abs() < 1e-9);
    }

    #[test]
    fn malformed_seeds_are_rejected_up_front() {
        let (mut p, _) = six_kernel_problem();
        assert!(p.set_initial_incumbent(vec![1.0]).is_err());
        assert!(p
            .set_initial_incumbent(vec![f64::NAN, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0])
            .is_err());
    }

    #[test]
    fn options_with_budget_sets_limits() {
        let options = SolverOptions::with_budget(500, 1.5);
        assert_eq!(options.max_nodes, 500);
        assert_eq!(options.time_limit_seconds, Some(1.5));
    }
}
