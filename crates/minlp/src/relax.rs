//! LP relaxation of a MINLP node.
//!
//! Every nonlinear term is replaced by an auxiliary LP variable linked to its
//! argument through linear estimator rows (tangents for the convex side,
//! secants for the concave side), yielding a polyhedral outer approximation of
//! the node's feasible set whose optimum is a valid lower bound.

use mfa_linprog::{LpProblem, Relation as LpRelation, Sense, VarId};

use crate::model::{MinlpProblem, Relation};
use crate::term::Term;
use crate::MinlpError;

/// Identifies one nonlinear term occurrence inside the problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct TermRef {
    pub(crate) constraint: usize,
    pub(crate) term: usize,
}

/// Extra tangent reference points accumulated by the outer-approximation loop.
#[derive(Debug, Clone, Default)]
pub(crate) struct CutPool {
    points: Vec<(TermRef, f64)>,
}

impl CutPool {
    pub(crate) fn add(&mut self, term: TermRef, point: f64) {
        self.points.push((term, point));
    }

    /// Number of accumulated cut points (used by tests and diagnostics).
    #[allow(dead_code)]
    pub(crate) fn len(&self) -> usize {
        self.points.len()
    }

    fn points_for(&self, term: TermRef) -> Vec<f64> {
        self.points
            .iter()
            .filter(|(t, _)| *t == term)
            .map(|&(_, p)| p)
            .collect()
    }
}

/// The LP relaxation of one node together with the bookkeeping needed to map
/// LP results back to MINLP variables and to generate cuts.
#[derive(Debug)]
pub(crate) struct NodeRelaxation {
    pub(crate) lp: LpProblem,
    /// LP variable for each MINLP variable (same order).
    pub(crate) var_ids: Vec<VarId>,
    /// For every nonlinear term occurrence: its reference, the LP auxiliary
    /// variable carrying the term value, and the term itself.
    pub(crate) aux: Vec<(TermRef, VarId, Term)>,
}

/// Builds the LP relaxation for the node described by `bounds` (one
/// `(lower, upper)` pair per MINLP variable), using extra tangent points from
/// `cuts`.
pub(crate) fn build(
    problem: &MinlpProblem,
    bounds: &[(f64, f64)],
    cuts: &CutPool,
) -> Result<NodeRelaxation, MinlpError> {
    let mut lp = LpProblem::new(Sense::Minimize);
    let mut var_ids = Vec::with_capacity(problem.vars.len());
    for (data, &(lower, upper)) in problem.vars.iter().zip(bounds) {
        let id = lp.add_var(data.name.clone(), lower, upper)?;
        lp.set_objective_coefficient(id, data.objective)?;
        var_ids.push(id);
    }

    let mut aux = Vec::new();
    for (ci, constraint) in problem.constraints.iter().enumerate() {
        let mut row: Vec<(VarId, f64)> = Vec::new();
        for (ti, term) in constraint.terms.iter().enumerate() {
            match *term {
                Term::Linear { var, coeff } => row.push((var_ids[var.index()], coeff)),
                _ => {
                    let term_ref = TermRef {
                        constraint: ci,
                        term: ti,
                    };
                    let var = term.var();
                    let (lo, hi) = bounds[var.index()];
                    let aux_name = format!("aux_{}_{}", ci, ti);
                    let aux_id = lp.add_var(aux_name, f64::NEG_INFINITY, f64::INFINITY)?;
                    row.push((aux_id, 1.0));
                    let reference_points = cuts.points_for(term_ref);
                    let x_id = var_ids[var.index()];
                    // Link the auxiliary variable to the argument through the
                    // estimator rows appropriate for the constraint direction.
                    let need_under =
                        matches!(constraint.relation, Relation::LessEq | Relation::Equal);
                    let need_over =
                        matches!(constraint.relation, Relation::GreaterEq | Relation::Equal);
                    if need_under {
                        for (k, line) in term
                            .under_estimators(lo, hi, &reference_points)
                            .into_iter()
                            .enumerate()
                        {
                            // aux ≥ intercept + slope·x.
                            lp.add_constraint(
                                format!("under_{}_{}_{}", ci, ti, k),
                                &[(aux_id, 1.0), (x_id, -line.slope)],
                                LpRelation::GreaterEq,
                                line.intercept,
                            )?;
                        }
                    }
                    if need_over {
                        for (k, line) in term
                            .over_estimators(lo, hi, &reference_points)
                            .into_iter()
                            .enumerate()
                        {
                            // aux ≤ intercept + slope·x.
                            lp.add_constraint(
                                format!("over_{}_{}_{}", ci, ti, k),
                                &[(aux_id, 1.0), (x_id, -line.slope)],
                                LpRelation::LessEq,
                                line.intercept,
                            )?;
                        }
                    }
                    aux.push((term_ref, aux_id, *term));
                }
            }
        }
        let relation = match constraint.relation {
            Relation::LessEq => LpRelation::LessEq,
            Relation::GreaterEq => LpRelation::GreaterEq,
            Relation::Equal => LpRelation::Equal,
        };
        lp.add_constraint(constraint.name.clone(), &row, relation, constraint.rhs)?;
    }

    Ok(NodeRelaxation { lp, var_ids, aux })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{MinlpProblem, Relation};
    use crate::term::Term;
    use mfa_linprog::SolverStatus;

    /// min II s.t. II ≥ 6/N over N ∈ [1, 4]: the LP relaxation must be a
    /// valid lower bound on the true optimum (II = 1.5 at N = 4).
    #[test]
    fn relaxation_is_a_lower_bound() {
        let mut p = MinlpProblem::new();
        let ii = p.add_continuous_var("II", 0.0, 100.0, 1.0).unwrap();
        let n = p.add_integer_var("N", 1.0, 4.0, 0.0).unwrap();
        p.add_constraint(
            "lat",
            vec![Term::reciprocal(n, 6.0), Term::linear(ii, -1.0)],
            Relation::LessEq,
            0.0,
        )
        .unwrap();
        let bounds = vec![(0.0, 100.0), (1.0, 4.0)];
        let relaxation = build(&p, &bounds, &CutPool::default()).unwrap();
        let sol = relaxation.lp.solve().unwrap();
        assert_eq!(sol.status(), SolverStatus::Optimal);
        assert!(sol.objective() <= 1.5 + 1e-9);
        assert!(sol.objective() >= 0.0);
        assert_eq!(relaxation.aux.len(), 1);
    }

    /// Adding a tangent cut at the relaxation solution tightens the bound.
    #[test]
    fn outer_approximation_cut_tightens_bound() {
        let mut p = MinlpProblem::new();
        let ii = p.add_continuous_var("II", 0.0, 100.0, 1.0).unwrap();
        let n = p.add_integer_var("N", 1.0, 4.0, 0.0).unwrap();
        p.add_constraint(
            "lat",
            vec![Term::reciprocal(n, 6.0), Term::linear(ii, -1.0)],
            Relation::LessEq,
            0.0,
        )
        .unwrap();
        // Force N ≤ 2 so the true optimum is II = 3.
        let bounds = vec![(0.0, 100.0), (1.0, 2.0)];
        let mut cuts = CutPool::default();
        let first = build(&p, &bounds, &cuts).unwrap();
        let sol1 = first.lp.solve().unwrap();
        let n_val = sol1.value(first.var_ids[n.index()]);
        cuts.add(
            TermRef {
                constraint: 0,
                term: 0,
            },
            n_val,
        );
        assert_eq!(cuts.len(), 1);
        let second = build(&p, &bounds, &cuts).unwrap();
        let sol2 = second.lp.solve().unwrap();
        assert!(sol2.objective() >= sol1.objective() - 1e-9);
        assert!(sol2.objective() <= 3.0 + 1e-9);
    }

    /// With collapsed integer bounds the relaxation is exact.
    #[test]
    fn collapsed_bounds_make_relaxation_exact() {
        let mut p = MinlpProblem::new();
        let phi = p.add_continuous_var("phi", 0.0, 10.0, 1.0).unwrap();
        let n = p.add_integer_var("n", 0.0, 8.0, 0.0).unwrap();
        // phi ≥ n/(1+n).
        p.add_constraint(
            "spread",
            vec![Term::saturation(n, 1.0), Term::linear(phi, -1.0)],
            Relation::LessEq,
            0.0,
        )
        .unwrap();
        let bounds = vec![(0.0, 10.0), (3.0, 3.0)];
        let relaxation = build(&p, &bounds, &CutPool::default()).unwrap();
        let sol = relaxation.lp.solve().unwrap();
        assert!((sol.objective() - 0.75).abs() < 1e-9);
    }
}
