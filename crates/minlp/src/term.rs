//! The factorable term library and its linear under-/over-estimators.

use crate::model::MinlpVarId;

/// A line `intercept + slope·x` used as a linear estimator of a nonlinear
/// term over an interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct EstimatorLine {
    pub(crate) slope: f64,
    pub(crate) intercept: f64,
}

impl EstimatorLine {
    /// Evaluates the line (used by the estimator property tests).
    #[allow(dead_code)]
    pub(crate) fn eval(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// One term of a factorable constraint: a univariate function of a single
/// decision variable.
///
/// All nonlinear terms used by the multi-FPGA allocation model are covered:
/// linear terms, convex reciprocals (`II ≥ WCET/N` rows) and concave
/// saturations (the spreading penalty `n/(1+n)`).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Term {
    /// `coeff · x`.
    Linear {
        /// Variable the term depends on.
        var: MinlpVarId,
        /// Multiplier.
        coeff: f64,
    },
    /// `coeff / x`, convex on `x > 0`. Requires the variable's lower bound to
    /// be strictly positive and `coeff > 0`.
    Reciprocal {
        /// Variable the term depends on.
        var: MinlpVarId,
        /// Numerator; must be strictly positive.
        coeff: f64,
    },
    /// `coeff · x / (offset + x)`, concave on `x ≥ 0`. Requires `coeff > 0`,
    /// `offset > 0` and a nonnegative variable lower bound.
    Saturation {
        /// Variable the term depends on.
        var: MinlpVarId,
        /// Multiplier; must be strictly positive.
        coeff: f64,
        /// Additive offset in the denominator; must be strictly positive.
        offset: f64,
    },
}

impl Term {
    /// Convenience constructor for [`Term::Linear`].
    pub fn linear(var: MinlpVarId, coeff: f64) -> Self {
        Term::Linear { var, coeff }
    }

    /// Convenience constructor for [`Term::Reciprocal`] (`coeff / x`).
    pub fn reciprocal(var: MinlpVarId, coeff: f64) -> Self {
        Term::Reciprocal { var, coeff }
    }

    /// Convenience constructor for [`Term::Saturation`] with unit offset
    /// (`coeff · x / (1 + x)`), the shape used by the CU-spreading penalty.
    pub fn saturation(var: MinlpVarId, coeff: f64) -> Self {
        Term::Saturation {
            var,
            coeff,
            offset: 1.0,
        }
    }

    /// The variable this term depends on.
    pub fn var(&self) -> MinlpVarId {
        match *self {
            Term::Linear { var, .. }
            | Term::Reciprocal { var, .. }
            | Term::Saturation { var, .. } => var,
        }
    }

    /// Returns `true` for [`Term::Linear`].
    pub fn is_linear(&self) -> bool {
        matches!(self, Term::Linear { .. })
    }

    /// Returns `true` for terms that are convex functions of their variable.
    pub fn is_convex(&self) -> bool {
        matches!(self, Term::Linear { .. } | Term::Reciprocal { .. })
    }

    /// Returns `true` for terms that are concave functions of their variable.
    /// Linear terms are both convex and concave.
    pub fn is_concave(&self) -> bool {
        matches!(self, Term::Linear { .. } | Term::Saturation { .. })
    }

    /// Evaluates the term at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        match *self {
            Term::Linear { coeff, .. } => coeff * x,
            Term::Reciprocal { coeff, .. } => coeff / x,
            Term::Saturation { coeff, offset, .. } => coeff * x / (offset + x),
        }
    }

    /// Derivative of the term at `x`.
    pub fn derivative(&self, x: f64) -> f64 {
        match *self {
            Term::Linear { coeff, .. } => coeff,
            Term::Reciprocal { coeff, .. } => -coeff / (x * x),
            Term::Saturation { coeff, offset, .. } => {
                coeff * offset / ((offset + x) * (offset + x))
            }
        }
    }

    /// Tangent line to the term at `point` (supports the graph from below for
    /// convex terms and from above for concave terms).
    pub(crate) fn tangent_at(&self, point: f64) -> EstimatorLine {
        let value = self.eval(point);
        let slope = self.derivative(point);
        EstimatorLine {
            slope,
            intercept: value - slope * point,
        }
    }

    /// Secant line through the term's graph at the interval endpoints
    /// (`lower`, `upper`). When the interval is degenerate the line is the
    /// horizontal line through the single point.
    pub(crate) fn secant_over(&self, lower: f64, upper: f64) -> EstimatorLine {
        let f_lower = self.eval(lower);
        if (upper - lower).abs() < 1e-12 {
            return EstimatorLine {
                slope: 0.0,
                intercept: f_lower,
            };
        }
        let f_upper = self.eval(upper);
        let slope = (f_upper - f_lower) / (upper - lower);
        EstimatorLine {
            slope,
            intercept: f_lower - slope * lower,
        }
    }

    /// Linear lines `ℓ(x)` with `ℓ(x) ≤ term(x)` for all `x ∈ [lower, upper]`
    /// (under-estimators). `reference_points` are extra tangent points used
    /// for convex terms (outer approximation).
    pub(crate) fn under_estimators(
        &self,
        lower: f64,
        upper: f64,
        reference_points: &[f64],
    ) -> Vec<EstimatorLine> {
        match self {
            Term::Linear { coeff, .. } => vec![EstimatorLine {
                slope: *coeff,
                intercept: 0.0,
            }],
            Term::Reciprocal { .. } => {
                // Convex: every tangent is an under-estimator.
                let mut points = vec![lower, upper, 0.5 * (lower + upper)];
                points.extend_from_slice(reference_points);
                points
                    .into_iter()
                    .filter(|p| p.is_finite() && *p >= lower - 1e-9 && *p <= upper + 1e-9)
                    .map(|p| self.tangent_at(p.clamp(lower.max(1e-12), upper.max(1e-12))))
                    .collect()
            }
            Term::Saturation { .. } => {
                // Concave: the chord is the convex envelope (tight at bounds).
                vec![self.secant_over(lower, upper)]
            }
        }
    }

    /// Linear lines `ℓ(x)` with `ℓ(x) ≥ term(x)` for all `x ∈ [lower, upper]`
    /// (over-estimators).
    pub(crate) fn over_estimators(
        &self,
        lower: f64,
        upper: f64,
        reference_points: &[f64],
    ) -> Vec<EstimatorLine> {
        match self {
            Term::Linear { coeff, .. } => vec![EstimatorLine {
                slope: *coeff,
                intercept: 0.0,
            }],
            Term::Reciprocal { .. } => {
                // Convex: the chord over-estimates.
                vec![self.secant_over(lower, upper)]
            }
            Term::Saturation { .. } => {
                // Concave: every tangent over-estimates.
                let mut points = vec![lower, upper, 0.5 * (lower + upper)];
                points.extend_from_slice(reference_points);
                points
                    .into_iter()
                    .filter(|p| p.is_finite() && *p >= lower - 1e-9 && *p <= upper + 1e-9)
                    .map(|p| self.tangent_at(p.clamp(lower, upper)))
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MinlpVarId;
    use proptest::prelude::*;

    fn var() -> MinlpVarId {
        MinlpVarId::from_index(0)
    }

    #[test]
    fn eval_and_derivative() {
        let lin = Term::linear(var(), 2.5);
        assert_eq!(lin.eval(4.0), 10.0);
        assert_eq!(lin.derivative(4.0), 2.5);

        let rec = Term::reciprocal(var(), 6.0);
        assert_eq!(rec.eval(2.0), 3.0);
        assert_eq!(rec.derivative(2.0), -1.5);

        let sat = Term::saturation(var(), 1.0);
        assert_eq!(sat.eval(1.0), 0.5);
        assert!((sat.derivative(1.0) - 0.25).abs() < 1e-12);
        assert_eq!(sat.eval(0.0), 0.0);
    }

    #[test]
    fn convexity_flags() {
        assert!(Term::linear(var(), 1.0).is_convex());
        assert!(Term::linear(var(), 1.0).is_concave());
        assert!(Term::reciprocal(var(), 1.0).is_convex());
        assert!(!Term::reciprocal(var(), 1.0).is_concave());
        assert!(Term::saturation(var(), 1.0).is_concave());
        assert!(!Term::saturation(var(), 1.0).is_convex());
    }

    #[test]
    fn tangent_touches_and_secant_interpolates() {
        let rec = Term::reciprocal(var(), 4.0);
        let tangent = rec.tangent_at(2.0);
        assert!((tangent.eval(2.0) - rec.eval(2.0)).abs() < 1e-12);
        let secant = rec.secant_over(1.0, 4.0);
        assert!((secant.eval(1.0) - rec.eval(1.0)).abs() < 1e-12);
        assert!((secant.eval(4.0) - rec.eval(4.0)).abs() < 1e-12);
    }

    #[test]
    fn degenerate_secant_is_constant() {
        let sat = Term::saturation(var(), 2.0);
        let line = sat.secant_over(3.0, 3.0);
        assert_eq!(line.slope, 0.0);
        assert!((line.eval(10.0) - sat.eval(3.0)).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn reciprocal_under_estimators_stay_below(
            lower in 0.5..4.0f64,
            width in 0.1..10.0f64,
            sample in 0.0..1.0f64,
            reference in 0.0..1.0f64
        ) {
            let upper = lower + width;
            let rec = Term::reciprocal(var(), 3.0);
            let x = lower + sample * width;
            let reference_point = lower + reference * width;
            for line in rec.under_estimators(lower, upper, &[reference_point]) {
                prop_assert!(line.eval(x) <= rec.eval(x) + 1e-7,
                    "line {} above f {} at {}", line.eval(x), rec.eval(x), x);
            }
        }

        #[test]
        fn reciprocal_over_estimator_stays_above(
            lower in 0.5..4.0f64,
            width in 0.1..10.0f64,
            sample in 0.0..1.0f64
        ) {
            let upper = lower + width;
            let rec = Term::reciprocal(var(), 3.0);
            let x = lower + sample * width;
            for line in rec.over_estimators(lower, upper, &[]) {
                prop_assert!(line.eval(x) >= rec.eval(x) - 1e-7);
            }
        }

        #[test]
        fn saturation_estimators_bracket_function(
            lower in 0.0..5.0f64,
            width in 0.1..10.0f64,
            sample in 0.0..1.0f64,
            reference in 0.0..1.0f64
        ) {
            let upper = lower + width;
            let sat = Term::saturation(var(), 2.0);
            let x = lower + sample * width;
            let reference_point = lower + reference * width;
            for line in sat.under_estimators(lower, upper, &[]) {
                prop_assert!(line.eval(x) <= sat.eval(x) + 1e-7);
            }
            for line in sat.over_estimators(lower, upper, &[reference_point]) {
                prop_assert!(line.eval(x) >= sat.eval(x) - 1e-7);
            }
        }

        #[test]
        fn estimators_are_exact_on_collapsed_intervals(point in 0.5..6.0f64) {
            let rec = Term::reciprocal(var(), 2.0);
            let sat = Term::saturation(var(), 1.5);
            for term in [rec, sat] {
                let unders = term.under_estimators(point, point, &[]);
                let overs = term.over_estimators(point, point, &[]);
                for line in unders.iter().chain(overs.iter()) {
                    prop_assert!((line.eval(point) - term.eval(point)).abs() < 1e-9);
                }
            }
        }
    }
}
