//! MINLP problem builder.

use crate::bb::{self, SolverOptions};
use crate::solution::MinlpSolution;
use crate::term::Term;
use crate::MinlpError;

/// Handle to a decision variable of a [`MinlpProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MinlpVarId(usize);

impl MinlpVarId {
    /// Index of the variable in creation order.
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds a handle from a raw index (primarily for tests/serialization).
    pub fn from_index(index: usize) -> Self {
        MinlpVarId(index)
    }
}

/// Relation of a constraint to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// Sum of terms `≤` right-hand side.
    LessEq,
    /// Sum of terms `≥` right-hand side.
    GreaterEq,
    /// Sum of terms `=` right-hand side.
    Equal,
}

#[derive(Debug, Clone)]
pub(crate) struct VarData {
    pub(crate) name: String,
    pub(crate) lower: f64,
    pub(crate) upper: f64,
    pub(crate) integer: bool,
    pub(crate) objective: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct ConstraintData {
    pub(crate) name: String,
    pub(crate) terms: Vec<Term>,
    pub(crate) relation: Relation,
    pub(crate) rhs: f64,
}

impl ConstraintData {
    /// Evaluates the left-hand side at an assignment.
    pub(crate) fn lhs(&self, values: &[f64]) -> f64 {
        self.terms
            .iter()
            .map(|t| t.eval(values[t.var().index()]))
            .sum()
    }

    /// Signed violation of the constraint (positive means violated).
    pub(crate) fn violation(&self, values: &[f64]) -> f64 {
        let lhs = self.lhs(values);
        match self.relation {
            Relation::LessEq => lhs - self.rhs,
            Relation::GreaterEq => self.rhs - lhs,
            Relation::Equal => (lhs - self.rhs).abs(),
        }
    }
}

/// A factorable mixed-integer nonlinear program with a linear objective.
///
/// Constraints are sums of [`Term`]s compared to a constant. The objective is
/// `minimize Σ c_j x_j` where `c_j` is each variable's objective coefficient.
/// See the [crate-level example](crate).
#[derive(Debug, Clone, Default)]
pub struct MinlpProblem {
    pub(crate) vars: Vec<VarData>,
    pub(crate) constraints: Vec<ConstraintData>,
    pub(crate) initial_incumbent: Option<Vec<f64>>,
}

impl MinlpProblem {
    /// Creates an empty problem (minimization).
    pub fn new() -> Self {
        MinlpProblem::default()
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of integer variables.
    pub fn num_integer_vars(&self) -> usize {
        self.vars.iter().filter(|v| v.integer).count()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Adds a continuous variable with the given bounds and objective
    /// coefficient.
    ///
    /// # Errors
    ///
    /// Returns [`MinlpError::InvalidArgument`] for NaN or inverted bounds or a
    /// non-finite objective coefficient.
    pub fn add_continuous_var(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
        objective: f64,
    ) -> Result<MinlpVarId, MinlpError> {
        self.add_var(name, lower, upper, objective, false)
    }

    /// Adds an integer variable with the given (inclusive) bounds and
    /// objective coefficient.
    ///
    /// Bounds must be finite so that branch-and-bound terminates.
    ///
    /// # Errors
    ///
    /// Returns [`MinlpError::InvalidArgument`] for NaN, inverted or infinite
    /// bounds or a non-finite objective coefficient.
    pub fn add_integer_var(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
        objective: f64,
    ) -> Result<MinlpVarId, MinlpError> {
        if !lower.is_finite() || !upper.is_finite() {
            return Err(MinlpError::InvalidArgument(
                "integer variables require finite bounds".into(),
            ));
        }
        self.add_var(name, lower, upper, objective, true)
    }

    fn add_var(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
        objective: f64,
        integer: bool,
    ) -> Result<MinlpVarId, MinlpError> {
        let name = name.into();
        if lower.is_nan() || upper.is_nan() || lower > upper {
            return Err(MinlpError::InvalidArgument(format!(
                "invalid bounds [{lower}, {upper}] for variable {name}"
            )));
        }
        if !objective.is_finite() {
            return Err(MinlpError::InvalidArgument(format!(
                "objective coefficient of {name} must be finite"
            )));
        }
        self.vars.push(VarData {
            name,
            lower,
            upper,
            integer,
            objective,
        });
        Ok(MinlpVarId(self.vars.len() - 1))
    }

    /// Adds the constraint `Σ terms  rel  rhs`.
    ///
    /// # Errors
    ///
    /// * [`MinlpError::UnknownVariable`] if a term references a variable that
    ///   was not added to this problem.
    /// * [`MinlpError::InvalidArgument`] for non-finite coefficients or rhs.
    /// * [`MinlpError::DomainViolation`] if a nonlinear term's variable bounds
    ///   leave the term's domain (e.g. reciprocal of a variable that can be 0).
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        terms: Vec<Term>,
        relation: Relation,
        rhs: f64,
    ) -> Result<(), MinlpError> {
        let name = name.into();
        if !rhs.is_finite() {
            return Err(MinlpError::InvalidArgument(format!(
                "right-hand side of {name} must be finite"
            )));
        }
        for term in &terms {
            let var = term.var();
            let data = self
                .vars
                .get(var.index())
                .ok_or(MinlpError::UnknownVariable(var.index()))?;
            match *term {
                Term::Linear { coeff, .. } => {
                    if !coeff.is_finite() {
                        return Err(MinlpError::InvalidArgument(format!(
                            "linear coefficient in {name} must be finite"
                        )));
                    }
                }
                Term::Reciprocal { coeff, .. } => {
                    if !(coeff.is_finite() && coeff > 0.0) {
                        return Err(MinlpError::InvalidArgument(format!(
                            "reciprocal coefficient in {name} must be positive and finite"
                        )));
                    }
                    if data.lower <= 0.0 {
                        return Err(MinlpError::DomainViolation(format!(
                            "reciprocal term in {name} requires variable {} to have a strictly positive lower bound",
                            data.name
                        )));
                    }
                }
                Term::Saturation { coeff, offset, .. } => {
                    if !(coeff.is_finite() && coeff > 0.0 && offset.is_finite() && offset > 0.0) {
                        return Err(MinlpError::InvalidArgument(format!(
                            "saturation term in {name} requires positive finite coefficient and offset"
                        )));
                    }
                    if data.lower < 0.0 {
                        return Err(MinlpError::DomainViolation(format!(
                            "saturation term in {name} requires variable {} to be nonnegative",
                            data.name
                        )));
                    }
                }
            }
        }
        self.constraints.push(ConstraintData {
            name,
            terms,
            relation,
            rhs,
        });
        Ok(())
    }

    /// Name of a variable.
    ///
    /// # Errors
    ///
    /// Returns [`MinlpError::UnknownVariable`] for a foreign handle.
    pub fn var_name(&self, var: MinlpVarId) -> Result<&str, MinlpError> {
        self.vars
            .get(var.index())
            .map(|v| v.name.as_str())
            .ok_or(MinlpError::UnknownVariable(var.index()))
    }

    /// Bounds of a variable.
    ///
    /// # Errors
    ///
    /// Returns [`MinlpError::UnknownVariable`] for a foreign handle.
    pub fn bounds(&self, var: MinlpVarId) -> Result<(f64, f64), MinlpError> {
        self.vars
            .get(var.index())
            .map(|v| (v.lower, v.upper))
            .ok_or(MinlpError::UnknownVariable(var.index()))
    }

    /// Evaluates the (linear) objective at an assignment.
    ///
    /// # Errors
    ///
    /// Returns [`MinlpError::InvalidArgument`] if `values` has the wrong length.
    pub fn objective_value(&self, values: &[f64]) -> Result<f64, MinlpError> {
        if values.len() != self.vars.len() {
            return Err(MinlpError::InvalidArgument(format!(
                "expected {} values, got {}",
                self.vars.len(),
                values.len()
            )));
        }
        Ok(self
            .vars
            .iter()
            .zip(values)
            .map(|(v, x)| v.objective * x)
            .sum())
    }

    /// Checks whether an assignment satisfies every bound, integrality
    /// requirement and (nonlinear) constraint within tolerance `tol`.
    ///
    /// # Errors
    ///
    /// Returns [`MinlpError::InvalidArgument`] if `values` has the wrong length.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> Result<bool, MinlpError> {
        if values.len() != self.vars.len() {
            return Err(MinlpError::InvalidArgument(format!(
                "expected {} values, got {}",
                self.vars.len(),
                values.len()
            )));
        }
        for (v, &x) in self.vars.iter().zip(values) {
            if x < v.lower - tol || x > v.upper + tol {
                return Ok(false);
            }
            if v.integer && (x - x.round()).abs() > tol {
                return Ok(false);
            }
        }
        Ok(self.constraints.iter().all(|c| c.violation(values) <= tol))
    }

    /// Seeds the branch-and-bound with a warm-start incumbent: one value per
    /// variable in creation order. Integer entries are rounded; if the
    /// rounded point is feasible it becomes the initial incumbent and prunes
    /// the search from node 0, otherwise it is silently ignored. Seeding
    /// never changes the optimal value — only how much of the tree is
    /// explored to prove it (ties between equally-good incumbents go to the
    /// seed, since incumbents are replaced only on strict improvement).
    /// [`MinlpSolution::warm_started`](crate::MinlpSolution::warm_started)
    /// reports whether the seed was accepted.
    ///
    /// # Errors
    ///
    /// Returns [`MinlpError::InvalidArgument`] for a wrong-length or
    /// non-finite seed.
    pub fn set_initial_incumbent(&mut self, values: Vec<f64>) -> Result<(), MinlpError> {
        if values.len() != self.vars.len() {
            return Err(MinlpError::InvalidArgument(format!(
                "incumbent seed needs {} values, got {}",
                self.vars.len(),
                values.len()
            )));
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(MinlpError::InvalidArgument(
                "incumbent seed values must be finite".into(),
            ));
        }
        self.initial_incumbent = Some(values);
        Ok(())
    }

    /// Removes a previously set warm-start incumbent.
    pub fn clear_initial_incumbent(&mut self) {
        self.initial_incumbent = None;
    }

    /// Solves the problem with default [`SolverOptions`].
    ///
    /// # Errors
    ///
    /// See [`MinlpProblem::solve_with`].
    pub fn solve(&self) -> Result<MinlpSolution, MinlpError> {
        self.solve_with(&SolverOptions::default())
    }

    /// Solves the problem by branch-and-bound with the given options.
    ///
    /// Infeasibility is reported through
    /// [`MinlpStatus::Infeasible`](crate::MinlpStatus::Infeasible) rather than
    /// an error.
    ///
    /// # Errors
    ///
    /// Returns [`MinlpError::Lp`] if the underlying LP solver fails and
    /// [`MinlpError::NodeLimitWithoutSolution`] if the node budget is exhausted
    /// before any feasible point is found.
    pub fn solve_with(&self, options: &SolverOptions) -> Result<MinlpSolution, MinlpError> {
        bb::solve(self, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_validation() {
        let mut p = MinlpProblem::new();
        assert!(p.add_continuous_var("x", 1.0, 0.0, 0.0).is_err());
        assert!(p.add_integer_var("n", 0.0, f64::INFINITY, 0.0).is_err());
        assert!(p.add_continuous_var("x", 0.0, 1.0, f64::NAN).is_err());
        let x = p.add_continuous_var("x", 0.0, 1.0, 1.0).unwrap();
        assert_eq!(p.var_name(x).unwrap(), "x");
        assert_eq!(p.bounds(x).unwrap(), (0.0, 1.0));
        assert_eq!(p.num_vars(), 1);
        assert_eq!(p.num_integer_vars(), 0);
    }

    #[test]
    fn constraint_validation_covers_domains() {
        let mut p = MinlpProblem::new();
        let n0 = p.add_integer_var("n0", 0.0, 5.0, 0.0).unwrap();
        let n1 = p.add_integer_var("n1", 1.0, 5.0, 0.0).unwrap();
        // Reciprocal over a variable that may be zero is rejected.
        assert!(matches!(
            p.add_constraint(
                "bad",
                vec![Term::reciprocal(n0, 1.0)],
                Relation::LessEq,
                1.0
            ),
            Err(MinlpError::DomainViolation(_))
        ));
        // Reciprocal over a strictly positive variable is fine.
        assert!(p
            .add_constraint("ok", vec![Term::reciprocal(n1, 1.0)], Relation::LessEq, 1.0)
            .is_ok());
        // Saturation over a nonnegative variable is fine.
        assert!(p
            .add_constraint(
                "sat",
                vec![Term::saturation(n0, 1.0)],
                Relation::LessEq,
                1.0
            )
            .is_ok());
        // Unknown variable is rejected.
        assert!(matches!(
            p.add_constraint(
                "ghost",
                vec![Term::linear(MinlpVarId::from_index(9), 1.0)],
                Relation::LessEq,
                1.0
            ),
            Err(MinlpError::UnknownVariable(9))
        ));
    }

    #[test]
    fn feasibility_and_objective_evaluation() {
        let mut p = MinlpProblem::new();
        let n = p.add_integer_var("n", 1.0, 10.0, 0.0).unwrap();
        let ii = p.add_continuous_var("ii", 0.0, 100.0, 1.0).unwrap();
        p.add_constraint(
            "lat",
            vec![Term::reciprocal(n, 8.0), Term::linear(ii, -1.0)],
            Relation::LessEq,
            0.0,
        )
        .unwrap();
        // n = 4, ii = 2 satisfies 8/4 - 2 ≤ 0.
        assert!(p.is_feasible(&[4.0, 2.0], 1e-9).unwrap());
        // ii too small violates the constraint.
        assert!(!p.is_feasible(&[4.0, 1.0], 1e-9).unwrap());
        // non-integer n is rejected.
        assert!(!p.is_feasible(&[3.5, 3.0], 1e-9).unwrap());
        assert_eq!(p.objective_value(&[4.0, 2.0]).unwrap(), 2.0);
        assert_eq!(ii.index(), 1);
    }
}
