//! Error type for MINLP modeling and solving.

use std::error::Error;
use std::fmt;

use mfa_linprog::LpError;

/// Error returned by MINLP model construction or the branch-and-bound solver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MinlpError {
    /// An argument (bound, coefficient, offset) was invalid.
    InvalidArgument(String),
    /// A term referenced a variable that does not belong to the problem.
    UnknownVariable(usize),
    /// A nonlinear term's variable has bounds outside the term's domain
    /// (for example a [`Reciprocal`](crate::Term::Reciprocal) over a variable
    /// whose lower bound is not strictly positive).
    DomainViolation(String),
    /// The node limit was reached before any feasible solution was found.
    NodeLimitWithoutSolution {
        /// Number of nodes explored.
        nodes: usize,
    },
    /// The underlying LP solver failed.
    Lp(LpError),
}

impl fmt::Display for MinlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinlpError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            MinlpError::UnknownVariable(idx) => write!(f, "unknown variable #{idx}"),
            MinlpError::DomainViolation(msg) => write!(f, "domain violation: {msg}"),
            MinlpError::NodeLimitWithoutSolution { nodes } => write!(
                f,
                "node limit reached after {nodes} nodes without a feasible solution"
            ),
            MinlpError::Lp(err) => write!(f, "lp solver failure: {err}"),
        }
    }
}

impl Error for MinlpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MinlpError::Lp(err) => Some(err),
            _ => None,
        }
    }
}

impl From<LpError> for MinlpError {
    fn from(err: LpError) -> Self {
        MinlpError::Lp(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = MinlpError::from(LpError::IterationLimit { iterations: 3 });
        assert!(err.to_string().contains("lp solver failure"));
        assert!(Error::source(&err).is_some());
        assert!(Error::source(&MinlpError::UnknownVariable(1)).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MinlpError>();
    }
}
