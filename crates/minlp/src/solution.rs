//! Solution container returned by the branch-and-bound solver.

use crate::model::MinlpVarId;

/// Outcome status of a MINLP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MinlpStatus {
    /// The incumbent is optimal within the configured gap tolerances.
    Optimal,
    /// A feasible incumbent was found but the search stopped early (node or
    /// time limit); the reported [`gap`](crate::MinlpSolution::gap) bounds its
    /// distance from the optimum.
    Feasible,
    /// The problem has no feasible point.
    Infeasible,
}

impl std::fmt::Display for MinlpStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MinlpStatus::Optimal => write!(f, "optimal"),
            MinlpStatus::Feasible => write!(f, "feasible (limit reached)"),
            MinlpStatus::Infeasible => write!(f, "infeasible"),
        }
    }
}

/// Result of a branch-and-bound solve of a
/// [`MinlpProblem`](crate::MinlpProblem).
#[derive(Debug, Clone, PartialEq)]
pub struct MinlpSolution {
    status: MinlpStatus,
    objective: f64,
    best_bound: f64,
    values: Vec<f64>,
    nodes_explored: usize,
    lp_solves: usize,
    simplex_pivots: usize,
    warm_started: bool,
}

impl MinlpSolution {
    pub(crate) fn new(
        status: MinlpStatus,
        objective: f64,
        best_bound: f64,
        values: Vec<f64>,
        nodes_explored: usize,
        lp_solves: usize,
        simplex_pivots: usize,
    ) -> Self {
        MinlpSolution {
            status,
            objective,
            best_bound,
            values,
            nodes_explored,
            lp_solves,
            simplex_pivots,
            warm_started: false,
        }
    }

    /// Records that the search was seeded with an accepted warm-start
    /// incumbent (see
    /// [`MinlpProblem::set_initial_incumbent`](crate::MinlpProblem::set_initial_incumbent)).
    pub(crate) fn mark_warm_started(mut self) -> Self {
        self.warm_started = true;
        self
    }

    /// Solver status.
    pub fn status(&self) -> MinlpStatus {
        self.status
    }

    /// Returns `true` when a feasible incumbent is available
    /// ([`Optimal`](MinlpStatus::Optimal) or [`Feasible`](MinlpStatus::Feasible)).
    pub fn has_incumbent(&self) -> bool {
        matches!(self.status, MinlpStatus::Optimal | MinlpStatus::Feasible)
    }

    /// Objective value of the incumbent (minimization).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Best proven lower bound on the optimal objective.
    pub fn best_bound(&self) -> f64 {
        self.best_bound
    }

    /// Relative optimality gap `(objective − best_bound) / max(1, |objective|)`.
    ///
    /// Zero (up to rounding) for [`MinlpStatus::Optimal`].
    pub fn gap(&self) -> f64 {
        if !self.has_incumbent() {
            return f64::INFINITY;
        }
        (self.objective - self.best_bound).max(0.0) / self.objective.abs().max(1.0)
    }

    /// Value of a variable in the incumbent.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved problem.
    pub fn value(&self, var: MinlpVarId) -> f64 {
        self.values[var.index()]
    }

    /// All incumbent values, in variable creation order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of branch-and-bound nodes explored.
    pub fn nodes_explored(&self) -> usize {
        self.nodes_explored
    }

    /// Number of LP relaxations solved (including outer-approximation rounds).
    pub fn lp_solves(&self) -> usize {
        self.lp_solves
    }

    /// Total simplex pivots across every LP relaxation of the search — a
    /// machine-independent effort counter finer-grained than
    /// [`lp_solves`](Self::lp_solves).
    pub fn simplex_pivots(&self) -> usize {
        self.simplex_pivots
    }

    /// `true` when the search accepted a warm-start incumbent seed and could
    /// prune with it from node 0.
    pub fn warm_started(&self) -> bool {
        self.warm_started
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_display_and_gap() {
        assert_eq!(MinlpStatus::Optimal.to_string(), "optimal");
        let s = MinlpSolution::new(MinlpStatus::Feasible, 10.0, 9.0, vec![1.0], 5, 12, 40);
        assert!(s.has_incumbent());
        assert!((s.gap() - 0.1).abs() < 1e-12);
        assert_eq!(s.nodes_explored(), 5);
        assert_eq!(s.lp_solves(), 12);
        assert_eq!(s.simplex_pivots(), 40);
        let inf = MinlpSolution::new(MinlpStatus::Infeasible, 0.0, 0.0, vec![], 1, 1, 2);
        assert!(!inf.has_incumbent());
        assert!(inf.gap().is_infinite());
    }
}
