//! Trace-driven churn: time-varying workloads replayed as a sequence of
//! migration-aware re-solves.
//!
//! A churn trace is a list of [`ChurnEvent`]s — kernels arriving and leaving,
//! WCET drift as input mixes shift, a device group dropping out of the fleet.
//! [`replay_churn`] applies the events one at a time: after each event the
//! previous placement becomes the [`Incumbent`] of a reallocation-aware
//! re-solve, and the step reports both the **steady-state II** (the simulated
//! initiation interval once the new placement is fully configured) and the
//! **transition II** (the analytic II of the CUs common to the old and new
//! placements — the capacity that keeps serving items while the moved CUs
//! are being reconfigured).
//!
//! The text trace format is line-oriented; `#` starts a comment:
//!
//! ```text
//! # event        arguments
//! add            <name> <wcet_ms> <bram> <dsp> <bandwidth>
//! remove         <name>
//! drift          <name> <factor>
//! lose-group     <group index>
//! ```

use std::fmt;

use mfa_alloc::realloc::{Incumbent, MigrationCost, ReallocationSpec};
use mfa_alloc::solver::{Backend, SolveRequest};
use mfa_alloc::{AllocError, AllocationProblem, Kernel};
use mfa_platform::{HeterogeneousPlatform, ResourceVec};

use crate::engine::{simulate, SimConfig};

/// One workload change in a churn trace.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnEvent {
    /// A new kernel joins the pipeline (appended at the tail).
    AddKernel(Kernel),
    /// The named kernel leaves the pipeline.
    RemoveKernel(String),
    /// The named kernel's WCET is multiplied by `factor` (input-mix drift).
    DriftWcet {
        /// Name of the drifting kernel.
        kernel: String,
        /// Multiplicative WCET factor (finite, positive).
        factor: f64,
    },
    /// Device group `g` leaves the fleet; its CUs are gone with the
    /// hardware and the incumbent loses the corresponding column.
    LoseGroup(usize),
}

impl fmt::Display for ChurnEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChurnEvent::AddKernel(kernel) => write!(f, "add {}", kernel.name()),
            ChurnEvent::RemoveKernel(name) => write!(f, "remove {name}"),
            ChurnEvent::DriftWcet { kernel, factor } => {
                write!(f, "drift {kernel} ×{factor}")
            }
            ChurnEvent::LoseGroup(g) => write!(f, "lose-group {g}"),
        }
    }
}

/// Error raised while parsing or replaying a churn trace.
#[derive(Debug)]
pub enum ChurnError {
    /// A trace line did not parse (line number, message).
    Parse(usize, String),
    /// An event could not be applied to the current problem.
    Apply(String),
    /// A re-solve failed.
    Solve(AllocError),
}

impl fmt::Display for ChurnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChurnError::Parse(line, msg) => write!(f, "trace line {line}: {msg}"),
            ChurnError::Apply(msg) => write!(f, "cannot apply churn event: {msg}"),
            ChurnError::Solve(err) => write!(f, "re-solve failed: {err}"),
        }
    }
}

impl std::error::Error for ChurnError {}

impl From<AllocError> for ChurnError {
    fn from(err: AllocError) -> Self {
        ChurnError::Solve(err)
    }
}

/// Parses the line-oriented churn trace format.
///
/// # Errors
///
/// Returns [`ChurnError::Parse`] with the 1-based line number on the first
/// malformed line.
pub fn parse_trace(input: &str) -> Result<Vec<ChurnEvent>, ChurnError> {
    let mut events = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| ChurnError::Parse(i + 1, msg);
        let mut parts = line.split_whitespace();
        let verb = parts.next().expect("non-empty line has a first token");
        let fields: Vec<&str> = parts.collect();
        let number = |field: &str, what: &str| -> Result<f64, ChurnError> {
            field
                .parse::<f64>()
                .map_err(|_| err(format!("{what} must be a number, got {field:?}")))
        };
        let event = match verb {
            "add" => {
                if fields.len() != 5 {
                    return Err(err(format!(
                        "add takes <name> <wcet_ms> <bram> <dsp> <bandwidth>, got {} fields",
                        fields.len()
                    )));
                }
                let kernel = Kernel::new(
                    fields[0],
                    number(fields[1], "wcet_ms")?,
                    ResourceVec::bram_dsp(
                        number(fields[2], "bram fraction")?,
                        number(fields[3], "dsp fraction")?,
                    ),
                    number(fields[4], "bandwidth fraction")?,
                )
                .map_err(|e| err(e.to_string()))?;
                ChurnEvent::AddKernel(kernel)
            }
            "remove" => {
                let [name] = fields.as_slice() else {
                    return Err(err("remove takes exactly <name>".into()));
                };
                ChurnEvent::RemoveKernel((*name).to_owned())
            }
            "drift" => {
                let [name, factor] = fields.as_slice() else {
                    return Err(err("drift takes <name> <factor>".into()));
                };
                let factor = number(factor, "drift factor")?;
                if !(factor.is_finite() && factor > 0.0) {
                    return Err(err(format!(
                        "drift factor must be finite and positive, got {factor}"
                    )));
                }
                ChurnEvent::DriftWcet {
                    kernel: (*name).to_owned(),
                    factor,
                }
            }
            "lose-group" => {
                let [group] = fields.as_slice() else {
                    return Err(err("lose-group takes exactly <group index>".into()));
                };
                let g = group
                    .parse::<usize>()
                    .map_err(|_| err(format!("group index must be an integer, got {group:?}")))?;
                ChurnEvent::LoseGroup(g)
            }
            other => return Err(err(format!("unknown event {other:?}"))),
        };
        events.push(event);
    }
    Ok(events)
}

/// Applies one churn event, returning the post-event problem and the
/// incumbent remapped to it (kernels key by name, so add/remove/drift leave
/// the incumbent rows untouched; a lost group drops its column).
///
/// The returned problem carries **no** reallocation spec — the caller
/// decides the migration pricing of the re-solve.
///
/// # Errors
///
/// Returns [`ChurnError::Apply`] when the event references an unknown
/// kernel or group, removes the last kernel, or drops the last group.
pub fn apply_event(
    problem: &AllocationProblem,
    incumbent: &Incumbent,
    event: &ChurnEvent,
) -> Result<(AllocationProblem, Incumbent), ChurnError> {
    let rebuild = |kernels: Vec<Kernel>| -> Result<AllocationProblem, ChurnError> {
        AllocationProblem::builder()
            .kernels(kernels)
            .platform(problem.platform().clone())
            .budget(*problem.budget())
            .weights(*problem.weights())
            .build()
            .map_err(|e| ChurnError::Apply(e.to_string()))
    };
    let find = |name: &str| -> Result<usize, ChurnError> {
        problem
            .kernels()
            .iter()
            .position(|k| k.name() == name)
            .ok_or_else(|| ChurnError::Apply(format!("no kernel named {name:?}")))
    };
    match event {
        ChurnEvent::AddKernel(kernel) => {
            if find(kernel.name()).is_ok() {
                return Err(ChurnError::Apply(format!(
                    "kernel {:?} already exists",
                    kernel.name()
                )));
            }
            let mut kernels = problem.kernels().to_vec();
            kernels.push(kernel.clone());
            Ok((rebuild(kernels)?, incumbent.clone()))
        }
        ChurnEvent::RemoveKernel(name) => {
            let idx = find(name)?;
            if problem.num_kernels() == 1 {
                return Err(ChurnError::Apply(
                    "cannot remove the last kernel of the pipeline".into(),
                ));
            }
            let mut kernels = problem.kernels().to_vec();
            kernels.remove(idx);
            Ok((rebuild(kernels)?, incumbent.clone()))
        }
        ChurnEvent::DriftWcet { kernel, factor } => {
            let idx = find(kernel)?;
            let mut kernels = problem.kernels().to_vec();
            let old = &kernels[idx];
            kernels[idx] = Kernel::new(
                old.name(),
                old.wcet_ms() * factor,
                *old.resources(),
                old.bandwidth(),
            )
            .map_err(|e| ChurnError::Apply(e.to_string()))?;
            Ok((rebuild(kernels)?, incumbent.clone()))
        }
        ChurnEvent::LoseGroup(g) => {
            if *g >= problem.num_groups() {
                return Err(ChurnError::Apply(format!(
                    "group {g} is out of range: the platform has {} groups",
                    problem.num_groups()
                )));
            }
            if problem.num_groups() == 1 {
                return Err(ChurnError::Apply(
                    "cannot lose the last device group of the fleet".into(),
                ));
            }
            let groups: Vec<_> = problem
                .platform()
                .groups()
                .iter()
                .enumerate()
                .filter(|(i, _)| i != g)
                .map(|(_, group)| group.clone())
                .collect();
            let platform = HeterogeneousPlatform::new(problem.platform().name(), groups);
            let remapped = incumbent
                .drop_group(*g)
                .map_err(|e| ChurnError::Apply(e.to_string()))?;
            Ok((problem.with_platform(platform), remapped))
        }
    }
}

/// Configuration of a churn replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnConfig {
    /// Migration pricing of every re-solve along the trace.
    pub migration: MigrationCost,
    /// Optional hard cap on moved CUs per re-solve.
    pub moved_bound: Option<u32>,
    /// Simulation parameters for the steady-state II measurements.
    pub sim: SimConfig,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            migration: MigrationCost::free(),
            moved_bound: None,
            sim: SimConfig::default(),
        }
    }
}

/// The measured outcome of one churn step.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnStepReport {
    /// Human-readable label of the event (`Display` of the [`ChurnEvent`]).
    pub event: String,
    /// Simulated initiation interval of the new placement once fully
    /// configured, in milliseconds.
    pub steady_ii_ms: f64,
    /// Analytic initiation interval sustained during reconfiguration by the
    /// CUs common to the old and new placements; infinite when some kernel
    /// keeps no CU through the transition (the pipeline stalls).
    pub transition_ii_ms: f64,
    /// CUs newly configured by the re-solve (group-granular movement).
    pub moved_cus: u32,
    /// Unweighted priced movement `Σ_g c_g · moved_g` of the re-solve.
    pub migration_cost: f64,
    /// Kernels in the pipeline after the event.
    pub num_kernels: usize,
}

/// A replayed churn trace: the base solve plus one report per event.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnReplay {
    /// Simulated steady-state II of the base (pre-churn) placement.
    pub base_ii_ms: f64,
    /// One report per trace event, in trace order.
    pub steps: Vec<ChurnStepReport>,
}

/// Analytic II sustained by the CUs present in both the old and new
/// placements, accounting for per-group WCET scaling: the overlap of each
/// kernel's per-group counts, converted to effective parallelism.
fn transition_ii(problem: &AllocationProblem, old: &Incumbent, new: &Incumbent) -> f64 {
    let mut worst: f64 = 0.0;
    for (k, kernel) in problem.kernels().iter().enumerate() {
        let fresh = new
            .row(kernel.name())
            .expect("new incumbent covers problem");
        let stale = old.row(kernel.name()).unwrap_or(&[]);
        let mut effective = 0.0;
        for (g, &n) in fresh.iter().enumerate() {
            let surviving = n.min(stale.get(g).copied().unwrap_or(0));
            effective += f64::from(surviving) / problem.platform().group(g).wcet_scale();
        }
        if effective <= 0.0 {
            return f64::INFINITY;
        }
        worst = worst.max(problem.kernels()[k].wcet_ms() / effective);
    }
    worst
}

/// Replays a churn trace: solves the base problem cold, then re-solves after
/// each event with the previous placement as the incumbent and `config`'s
/// migration pricing, reporting steady-state and transition II per step.
///
/// Fully deterministic for fixed inputs (the simulator is seeded by
/// `config.sim`).
///
/// # Errors
///
/// Returns [`ChurnError::Apply`] for events that do not fit the evolving
/// problem and [`ChurnError::Solve`] when a re-solve fails.
pub fn replay_churn(
    base: &AllocationProblem,
    trace: &[ChurnEvent],
    backend: &Backend,
    config: &ChurnConfig,
) -> Result<ChurnReplay, ChurnError> {
    let base_report = SolveRequest::new(base).backend(backend.clone()).solve()?;
    let base_ii_ms = simulate(base, &base_report.allocation, &config.sim).initiation_interval_ms;

    let mut problem = base.clone();
    let mut incumbent = Incumbent::from_allocation(&problem, &base_report.allocation)?;
    let mut steps = Vec::with_capacity(trace.len());
    for event in trace {
        let (next, remapped) = apply_event(&problem, &incumbent, event)?;
        let mut spec = ReallocationSpec::new(remapped.clone(), config.migration.clone());
        if let Some(bound) = config.moved_bound {
            spec = spec.with_moved_bound(bound);
        }
        let instance = next.with_reallocation(Some(spec));
        let report = SolveRequest::new(&instance)
            .backend(backend.clone())
            .solve()?;
        let steady_ii_ms =
            simulate(&instance, &report.allocation, &config.sim).initiation_interval_ms;
        let fresh = Incumbent::from_allocation(&instance, &report.allocation)?;
        steps.push(ChurnStepReport {
            event: event.to_string(),
            steady_ii_ms,
            transition_ii_ms: transition_ii(&instance, &remapped, &fresh),
            moved_cus: report.diagnostics.moved_cus,
            migration_cost: report.diagnostics.migration_cost,
            num_kernels: instance.num_kernels(),
        });
        problem = next;
        incumbent = fresh;
    }
    Ok(ChurnReplay { base_ii_ms, steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfa_alloc::GoalWeights;
    use mfa_platform::{DeviceGroup, FpgaDevice, ResourceBudget};

    fn base_problem() -> AllocationProblem {
        AllocationProblem::builder()
            .kernels(vec![
                Kernel::new("front", 4.0, ResourceVec::bram_dsp(0.02, 0.08), 0.01).unwrap(),
                Kernel::new("back", 8.0, ResourceVec::bram_dsp(0.02, 0.08), 0.01).unwrap(),
            ])
            .platform(HeterogeneousPlatform::new(
                "2×VU9P + 1×KU115",
                vec![
                    DeviceGroup::new(FpgaDevice::vu9p(), 2),
                    DeviceGroup::new(FpgaDevice::ku115(), 1),
                ],
            ))
            .budget(ResourceBudget::uniform(0.7))
            .weights(GoalWeights::ii_only())
            .build()
            .unwrap()
    }

    #[test]
    fn traces_parse_comments_blanks_and_all_verbs() {
        let trace = parse_trace(
            "# a comment\n\
             \n\
             add probe 2.5 0.05 0.1 0.02   # trailing comment\n\
             drift front 1.5\n\
             remove probe\n\
             lose-group 1\n",
        )
        .unwrap();
        assert_eq!(trace.len(), 4);
        assert!(matches!(&trace[0], ChurnEvent::AddKernel(k) if k.name() == "probe"));
        assert!(matches!(&trace[1], ChurnEvent::DriftWcet { kernel, factor }
                if kernel == "front" && (*factor - 1.5).abs() < 1e-12));
        assert_eq!(trace[2], ChurnEvent::RemoveKernel("probe".into()));
        assert_eq!(trace[3], ChurnEvent::LoseGroup(1));
    }

    #[test]
    fn malformed_trace_lines_report_their_line_number() {
        for (input, line) in [
            ("add broken 2.5 0.05", 1),
            ("\ndrift front zero", 2),
            ("remove\n", 1),
            ("warp front 2.0", 1),
            ("drift front -1", 1),
            ("lose-group one", 1),
        ] {
            match parse_trace(input) {
                Err(ChurnError::Parse(at, _)) => assert_eq!(at, line, "input {input:?}"),
                other => panic!("expected parse error for {input:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn events_apply_and_remap_the_incumbent() {
        let problem = base_problem();
        let incumbent = Incumbent::new(vec![
            ("front".into(), vec![1, 1]),
            ("back".into(), vec![2, 0]),
        ])
        .unwrap();

        let (after_add, inc) = apply_event(
            &problem,
            &incumbent,
            &ChurnEvent::AddKernel(
                Kernel::new("probe", 2.0, ResourceVec::bram_dsp(0.02, 0.05), 0.01).unwrap(),
            ),
        )
        .unwrap();
        assert_eq!(after_add.num_kernels(), 3);
        // The incumbent has no row for the newcomer: everything it gets is
        // a move.
        assert_eq!(inc.row("probe"), None);

        let (after_loss, inc) =
            apply_event(&problem, &incumbent, &ChurnEvent::LoseGroup(1)).unwrap();
        assert_eq!(after_loss.num_groups(), 1);
        assert_eq!(after_loss.num_fpgas(), 2);
        assert_eq!(inc.row("front"), Some(&[1u32][..]));

        let (after_drift, _) = apply_event(
            &problem,
            &incumbent,
            &ChurnEvent::DriftWcet {
                kernel: "back".into(),
                factor: 0.5,
            },
        )
        .unwrap();
        assert_eq!(after_drift.kernels()[1].wcet_ms(), 4.0);

        assert!(matches!(
            apply_event(
                &problem,
                &incumbent,
                &ChurnEvent::RemoveKernel("ghost".into())
            ),
            Err(ChurnError::Apply(_))
        ));
        assert!(matches!(
            apply_event(&problem, &incumbent, &ChurnEvent::LoseGroup(7)),
            Err(ChurnError::Apply(_))
        ));
    }

    #[test]
    fn transition_ii_counts_only_surviving_cus() {
        let problem = base_problem();
        let old = Incumbent::new(vec![
            ("front".into(), vec![2, 0]),
            ("back".into(), vec![2, 2]),
        ])
        .unwrap();
        let new = Incumbent::new(vec![
            ("front".into(), vec![1, 1]),
            ("back".into(), vec![2, 1]),
        ])
        .unwrap();
        // front overlap: 1 CU → 4.0 ms; back overlap: 3 CUs → 8/3 ms.
        let ii = transition_ii(&problem, &old, &new);
        assert!((ii - 4.0).abs() < 1e-12, "transition II {ii}");
        // A kernel with no overlap stalls the pipeline.
        let disjoint = Incumbent::new(vec![
            ("front".into(), vec![0, 2]),
            ("back".into(), vec![2, 1]),
        ])
        .unwrap();
        assert!(transition_ii(&problem, &old, &disjoint).is_infinite());
    }

    #[test]
    fn replay_is_deterministic_and_penalty_reduces_movement() {
        let problem = base_problem();
        let trace = parse_trace("drift back 0.5\nadd probe 3.0 0.03 0.06 0.01\n").unwrap();
        let backend = Backend::greedy();
        let penalized = ChurnConfig {
            migration: MigrationCost::new(0.5).unwrap(),
            ..ChurnConfig::default()
        };
        let a = replay_churn(&problem, &trace, &backend, &penalized).unwrap();
        let b = replay_churn(&problem, &trace, &backend, &penalized).unwrap();
        assert_eq!(a, b, "replays must be deterministic");
        assert_eq!(a.steps.len(), 2);
        assert!(a.base_ii_ms > 0.0);
        for step in &a.steps {
            assert!(step.steady_ii_ms > 0.0);
            assert!(step.transition_ii_ms >= step.steady_ii_ms * 0.99);
        }

        let cold = replay_churn(&problem, &trace, &backend, &ChurnConfig::default()).unwrap();
        let moved_cold: u32 = cold.steps.iter().map(|s| s.moved_cus).sum();
        let moved_penalized: u32 = a.steps.iter().map(|s| s.moved_cus).sum();
        assert!(
            moved_penalized <= moved_cold,
            "penalized replay moved {moved_penalized} CUs vs cold {moved_cold}"
        );
    }
}
