//! The event-driven simulation engine.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mfa_alloc::{Allocation, AllocationProblem};

use crate::stats::{FpgaStats, SimResult};

/// Configuration of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of items (e.g. images) pushed through the pipeline.
    pub num_items: usize,
    /// Relative service-time jitter: each service time is multiplied by a
    /// factor drawn uniformly from `[1 − jitter, 1 + jitter]`. Zero gives a
    /// fully deterministic run.
    pub service_jitter: f64,
    /// Seed for the jitter generator (runs are reproducible for a fixed seed).
    pub seed: u64,
    /// Model DRAM bandwidth contention (service times stretch when the busy
    /// CUs on an FPGA demand more than the available bandwidth).
    pub model_bandwidth_contention: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            num_items: 400,
            service_jitter: 0.0,
            seed: 0x5eed,
            model_bandwidth_contention: true,
        }
    }
}

/// A pending CU completion event.
#[derive(Debug, Clone, Copy)]
struct Completion {
    time: f64,
    kernel: usize,
    cu: usize,
    item: usize,
}

impl PartialEq for Completion {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Completion {}
impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Completion {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on time (BinaryHeap is a max-heap). `total_cmp` keeps the
        // ordering total even if a NaN time ever reaches the heap — the old
        // `partial_cmp(..).unwrap_or(Equal)` made NaN compare equal to
        // everything, which violates `Ord`'s transitivity contract and can
        // silently corrupt the heap invariants. The (item, kernel, cu)
        // tie-breaks make the pop order of simultaneous completions fully
        // deterministic and independent of heap internals.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.item.cmp(&self.item))
            .then_with(|| other.kernel.cmp(&self.kernel))
            .then_with(|| other.cu.cmp(&self.cu))
    }
}

/// One compute unit instance.
#[derive(Debug, Clone, Copy)]
struct ComputeUnit {
    kernel: usize,
    fpga: usize,
    busy_until: f64,
    busy: bool,
}

/// Simulates the execution of `allocation` on `problem`'s platform.
///
/// # Panics
///
/// Panics if the allocation shape does not match the problem or if a kernel
/// has no CUs (validate the allocation first).
pub fn simulate(
    problem: &AllocationProblem,
    allocation: &Allocation,
    config: &SimConfig,
) -> SimResult {
    assert_eq!(
        allocation.num_kernels(),
        problem.num_kernels(),
        "allocation does not match the problem"
    );
    assert_eq!(
        allocation.num_fpgas(),
        problem.num_fpgas(),
        "allocation does not match the platform"
    );
    let num_kernels = problem.num_kernels();
    let num_fpgas = problem.num_fpgas();
    let num_items = config.num_items.max(2);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Instantiate the CUs.
    let mut cus: Vec<ComputeUnit> = Vec::new();
    let mut cus_of_kernel: Vec<Vec<usize>> = vec![Vec::new(); num_kernels];
    for (k, kernel_cus) in cus_of_kernel.iter_mut().enumerate() {
        assert!(
            allocation.total_cus(k) > 0,
            "kernel {} has no CUs",
            problem.kernels()[k].name()
        );
        for f in 0..num_fpgas {
            for _ in 0..allocation.cus(k, f) {
                kernel_cus.push(cus.len());
                cus.push(ComputeUnit {
                    kernel: k,
                    fpga: f,
                    busy_until: 0.0,
                    busy: false,
                });
            }
        }
    }

    // Per-kernel FIFO of items ready to be processed.
    let mut ready: Vec<VecDeque<usize>> = vec![VecDeque::new(); num_kernels];
    for item in 0..num_items {
        ready[0].push_back(item);
    }

    let mut events: BinaryHeap<Completion> = BinaryHeap::new();
    let mut now = 0.0_f64;
    let mut completions: Vec<f64> = Vec::with_capacity(num_items);
    let mut first_item_done: Option<f64> = None;

    // Statistics accumulators.
    let mut kernel_busy_time = vec![0.0_f64; num_kernels];
    let mut fpga_busy_time = vec![0.0_f64; num_fpgas];
    let mut fpga_bw_time = vec![0.0_f64; num_fpgas];
    let mut fpga_bw_peak = vec![0.0_f64; num_fpgas];
    let mut last_time = 0.0_f64;

    // Per-CU bandwidth demand rescaled to each FPGA's own device group (a CU
    // uses a larger share of a smaller device's DRAM bandwidth).
    let group_of: Vec<usize> = (0..num_fpgas).map(|f| problem.group_of_fpga(f)).collect();
    let bw_of =
        |kernel: usize, fpga: usize| -> f64 { problem.kernel_bandwidth_on(kernel, group_of[fpga]) };
    // Bandwidth stretch felt by a CU of `kernel` starting on `fpga`: its own
    // demand plus that of the CUs already busy there, relative to capacity.
    let bandwidth_factor =
        |cus: &[ComputeUnit], fpga: usize, kernel: usize, _problem: &AllocationProblem| -> f64 {
            let demand: f64 = bw_of(kernel, fpga)
                + cus
                    .iter()
                    .filter(|cu| cu.busy && cu.fpga == fpga)
                    .map(|cu| bw_of(cu.kernel, cu.fpga))
                    .sum::<f64>();
            let capacity = problem.budget().bandwidth_fraction();
            if demand > capacity {
                demand / capacity
            } else {
                1.0
            }
        };

    // Dispatch loop: start any idle CU whose kernel has ready items, then
    // advance to the next completion.
    loop {
        // Start work greedily.
        for k in 0..num_kernels {
            while !ready[k].is_empty() {
                let Some(&cu_idx) = cus_of_kernel[k].iter().find(|&&idx| !cus[idx].busy) else {
                    break;
                };
                let item = ready[k].pop_front().expect("queue checked non-empty");
                let jitter = if config.service_jitter > 0.0 {
                    1.0 + config.service_jitter * (rng.gen::<f64>() * 2.0 - 1.0)
                } else {
                    1.0
                };
                let stretch = if config.model_bandwidth_contention {
                    bandwidth_factor(&cus, cus[cu_idx].fpga, k, problem)
                } else {
                    1.0
                };
                let service = problem.kernels()[k].wcet_ms() * jitter * stretch;
                cus[cu_idx].busy = true;
                cus[cu_idx].busy_until = now + service;
                kernel_busy_time[k] += service;
                events.push(Completion {
                    time: now + service,
                    kernel: k,
                    cu: cu_idx,
                    item,
                });
            }
        }

        let Some(event) = events.pop() else {
            break;
        };
        // Integrate per-FPGA statistics over [now, event.time].
        let dt = event.time - last_time;
        if dt > 0.0 {
            for f in 0..num_fpgas {
                let demand: f64 = cus
                    .iter()
                    .filter(|cu| cu.busy && cu.fpga == f)
                    .map(|cu| bw_of(cu.kernel, f))
                    .sum();
                if cus.iter().any(|cu| cu.busy && cu.fpga == f) {
                    fpga_busy_time[f] += dt;
                }
                fpga_bw_time[f] += demand * dt;
                fpga_bw_peak[f] = fpga_bw_peak[f].max(demand);
            }
            last_time = event.time;
        }
        now = event.time;
        cus[event.cu].busy = false;
        if event.kernel + 1 < num_kernels {
            ready[event.kernel + 1].push_back(event.item);
        } else {
            completions.push(now);
            if event.item == 0 {
                first_item_done = Some(now);
            }
        }
    }

    let makespan = now;
    // Steady-state II: average spacing of the completions in the second half
    // of the run (the warm-up is excluded).
    let half = completions.len() / 2;
    let initiation_interval_ms = if completions.len() >= 2 && half + 1 < completions.len() {
        (completions[completions.len() - 1] - completions[half])
            / (completions.len() - 1 - half) as f64
    } else if completions.len() >= 2 {
        (completions[completions.len() - 1] - completions[0]) / (completions.len() - 1) as f64
    } else {
        makespan
    };

    let kernel_utilization: Vec<f64> = (0..num_kernels)
        .map(|k| {
            let capacity = cus_of_kernel[k].len() as f64 * makespan;
            if capacity > 0.0 {
                (kernel_busy_time[k] / capacity).min(1.0)
            } else {
                0.0
            }
        })
        .collect();
    let fpga_stats: Vec<FpgaStats> = (0..num_fpgas)
        .map(|f| FpgaStats {
            fpga: f,
            busy_fraction: if makespan > 0.0 {
                fpga_busy_time[f] / makespan
            } else {
                0.0
            },
            average_bandwidth_demand: if makespan > 0.0 {
                fpga_bw_time[f] / makespan
            } else {
                0.0
            },
            peak_bandwidth_demand: fpga_bw_peak[f],
        })
        .collect();

    SimResult {
        initiation_interval_ms,
        throughput_per_second: if initiation_interval_ms > 0.0 {
            1_000.0 / initiation_interval_ms
        } else {
            f64::INFINITY
        },
        pipeline_latency_ms: first_item_done.unwrap_or(makespan),
        makespan_ms: makespan,
        completed_items: completions.len(),
        kernel_utilization,
        fpga_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfa_alloc::cases::PaperCase;
    use mfa_alloc::{AllocationProblem, GoalWeights, Kernel};
    use mfa_platform::{MultiFpgaPlatform, ResourceBudget, ResourceVec};

    fn two_kernel_problem() -> AllocationProblem {
        AllocationProblem::builder()
            .kernels(vec![
                Kernel::new("front", 4.0, ResourceVec::bram_dsp(0.02, 0.1), 0.01).unwrap(),
                Kernel::new("back", 8.0, ResourceVec::bram_dsp(0.02, 0.1), 0.01).unwrap(),
            ])
            .platform(MultiFpgaPlatform::aws_f1_4xlarge())
            .budget(ResourceBudget::uniform(0.8))
            .weights(GoalWeights::ii_only())
            .build()
            .unwrap()
    }

    #[test]
    fn simulated_ii_matches_analytic_prediction() {
        let p = two_kernel_problem();
        // front: 1 CU (ET 4), back: 2 CUs (ET 4) → II = 4 ms.
        let mut allocation = mfa_alloc::Allocation::zeros(&p);
        allocation.set_cus(0, 0, 1);
        allocation.set_cus(1, 0, 2);
        let result = simulate(&p, &allocation, &SimConfig::default());
        assert!(
            result.ii_error_vs(4.0) < 0.02,
            "II = {}",
            result.initiation_interval_ms
        );
        assert_eq!(result.completed_items, 400);
        // The bottleneck kernel (front, 1 CU) is saturated.
        assert!(result.kernel_utilization[0] > 0.95);
        assert!((result.throughput_per_second - 250.0).abs() / 250.0 < 0.05);
    }

    #[test]
    fn adding_cus_to_the_bottleneck_improves_throughput() {
        let p = two_kernel_problem();
        let mut one = mfa_alloc::Allocation::zeros(&p);
        one.set_cus(0, 0, 1);
        one.set_cus(1, 0, 1);
        let mut two = one.clone();
        two.set_cus(1, 1, 1);
        let slow = simulate(&p, &one, &SimConfig::default());
        let fast = simulate(&p, &two, &SimConfig::default());
        assert!(fast.initiation_interval_ms < slow.initiation_interval_ms - 1.0);
    }

    #[test]
    fn bandwidth_oversubscription_stretches_service_times() {
        // Two CUs of a bandwidth-hungry kernel on one FPGA exceed the
        // bandwidth budget, so the simulated II degrades relative to the
        // analytic (contention-free) prediction.
        let p = AllocationProblem::builder()
            .kernels(vec![Kernel::new(
                "hungry",
                4.0,
                ResourceVec::bram_dsp(0.02, 0.1),
                0.60,
            )
            .unwrap()])
            .platform(MultiFpgaPlatform::aws_f1_2xlarge())
            .budget(ResourceBudget::uniform(0.9))
            .build()
            .unwrap();
        let mut allocation = mfa_alloc::Allocation::zeros(&p);
        allocation.set_cus(0, 0, 2);
        let with = simulate(&p, &allocation, &SimConfig::default());
        let without = simulate(
            &p,
            &allocation,
            &SimConfig {
                model_bandwidth_contention: false,
                ..SimConfig::default()
            },
        );
        assert!(with.initiation_interval_ms > without.initiation_interval_ms * 1.05);
        assert!(with.fpga_stats[0].peak_bandwidth_demand > 1.0);
    }

    #[test]
    fn bandwidth_contention_scales_with_the_device_group() {
        use mfa_platform::{DeviceGroup, FpgaDevice, HeterogeneousPlatform};
        // A kernel demanding 0.4 of the VU9P's bandwidth per CU costs
        // 0.4·64/38.4 ≈ 0.67 of the KU115's. Two CUs fit the VU9P's budget
        // (0.8 ≤ 1.0) but oversubscribe the KU115 (1.33 > 1.0), so the same
        // two-CU design simulates slower on the smaller device.
        let p = AllocationProblem::builder()
            .kernels(vec![Kernel::new(
                "hungry",
                4.0,
                ResourceVec::bram_dsp(0.02, 0.1),
                0.40,
            )
            .unwrap()])
            .platform(HeterogeneousPlatform::new(
                "1×VU9P + 1×KU115",
                vec![
                    DeviceGroup::new(FpgaDevice::vu9p(), 1),
                    DeviceGroup::new(FpgaDevice::ku115(), 1),
                ],
            ))
            .budget(ResourceBudget::uniform(0.9))
            .build()
            .unwrap();
        let mut on_vu9p = mfa_alloc::Allocation::zeros(&p);
        on_vu9p.set_cus(0, 0, 2);
        let mut on_ku115 = mfa_alloc::Allocation::zeros(&p);
        on_ku115.set_cus(0, 1, 2);
        let fast = simulate(&p, &on_vu9p, &SimConfig::default());
        let slow = simulate(&p, &on_ku115, &SimConfig::default());
        assert!(
            slow.initiation_interval_ms > fast.initiation_interval_ms * 1.05,
            "KU115 {} vs VU9P {}",
            slow.initiation_interval_ms,
            fast.initiation_interval_ms
        );
        assert!(slow.fpga_stats[1].peak_bandwidth_demand > 1.0);
    }

    #[test]
    fn jitter_is_reproducible_for_a_fixed_seed() {
        let p = two_kernel_problem();
        let mut allocation = mfa_alloc::Allocation::zeros(&p);
        allocation.set_cus(0, 0, 1);
        allocation.set_cus(1, 1, 2);
        let config = SimConfig {
            service_jitter: 0.2,
            ..SimConfig::default()
        };
        let a = simulate(&p, &allocation, &config);
        let b = simulate(&p, &allocation, &config);
        assert_eq!(a.initiation_interval_ms, b.initiation_interval_ms);
        let other_seed = simulate(
            &p,
            &allocation,
            &SimConfig {
                seed: 7,
                ..config.clone()
            },
        );
        assert!(
            (a.initiation_interval_ms - other_seed.initiation_interval_ms).abs() > 0.0
                || a.makespan_ms != other_seed.makespan_ms
        );
    }

    #[test]
    fn gpa_allocation_for_alex16_simulates_close_to_prediction() {
        let problem = PaperCase::Alex16OnTwoFpgas.problem(0.70).unwrap();
        let outcome = mfa_alloc::SolveRequest::new(&problem)
            .backend(mfa_alloc::Backend::gpa_fast())
            .solve()
            .unwrap();
        let predicted = outcome.allocation.initiation_interval(&problem);
        let result = simulate(&problem, &outcome.allocation, &SimConfig::default());
        assert!(
            result.ii_error_vs(predicted) < 0.05,
            "simulated {} vs predicted {predicted}",
            result.initiation_interval_ms
        );
        assert!(
            result.pipeline_latency_ms
                >= problem.kernels().iter().map(|k| k.wcet_ms()).sum::<f64>() * 0.99
        );
    }

    #[test]
    fn completion_ordering_is_total_and_breaks_ties_fully() {
        let at = |time: f64, kernel: usize, cu: usize, item: usize| Completion {
            time,
            kernel,
            cu,
            item,
        };
        // Earlier times pop first (the Ord is reversed for the max-heap).
        assert_eq!(at(1.0, 0, 0, 0).cmp(&at(2.0, 0, 0, 0)), Ordering::Greater);
        // Equal times: lower item, then kernel, then CU wins.
        assert_eq!(at(1.0, 0, 0, 1).cmp(&at(1.0, 1, 1, 0)), Ordering::Less);
        assert_eq!(at(1.0, 0, 1, 0).cmp(&at(1.0, 1, 0, 0)), Ordering::Greater);
        assert_eq!(at(1.0, 0, 0, 0).cmp(&at(1.0, 0, 1, 0)), Ordering::Greater);
        // Only fully identical events compare equal — `eq` is derived from
        // `cmp`, keeping `PartialEq` consistent with `Ord`.
        assert_eq!(at(1.0, 2, 3, 4), at(1.0, 2, 3, 4));
        assert_ne!(at(1.0, 2, 3, 4), at(1.0, 2, 9, 4));
        // NaN times order totally (popped last) instead of comparing equal to
        // everything, so a stray NaN can no longer corrupt the heap.
        let nan = at(f64::NAN, 0, 0, 0);
        assert_eq!(nan.cmp(&at(1e300, 0, 0, 0)), Ordering::Less);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        let mut heap = BinaryHeap::from(vec![nan, at(2.0, 0, 0, 0), at(1.0, 0, 0, 0)]);
        assert_eq!(heap.pop().unwrap().time, 1.0);
        assert_eq!(heap.pop().unwrap().time, 2.0);
        assert!(heap.pop().unwrap().time.is_nan());
    }

    #[test]
    fn simultaneous_completions_are_deterministic() {
        // Four identical CUs of one kernel start items 0–3 at t = 0 and all
        // finish at exactly the same time; the tie-broken event order must
        // give byte-identical results run over run.
        let p = AllocationProblem::builder()
            .kernels(vec![
                Kernel::new("par", 4.0, ResourceVec::bram_dsp(0.02, 0.1), 0.0).unwrap(),
                Kernel::new("tail", 1.0, ResourceVec::bram_dsp(0.02, 0.1), 0.0).unwrap(),
            ])
            .platform(MultiFpgaPlatform::aws_f1_4xlarge())
            .budget(ResourceBudget::uniform(0.8))
            .weights(GoalWeights::ii_only())
            .build()
            .unwrap();
        let mut allocation = mfa_alloc::Allocation::zeros(&p);
        allocation.set_cus(0, 0, 4);
        allocation.set_cus(1, 1, 1);
        let config = SimConfig {
            num_items: 64,
            ..SimConfig::default()
        };
        let a = simulate(&p, &allocation, &config);
        let b = simulate(&p, &allocation, &config);
        assert_eq!(a.initiation_interval_ms, b.initiation_interval_ms);
        assert_eq!(a.makespan_ms, b.makespan_ms);
        assert_eq!(a.pipeline_latency_ms, b.pipeline_latency_ms);
        assert_eq!(a.completed_items, b.completed_items);
        assert_eq!(a.kernel_utilization, b.kernel_utilization);
        // All items complete and the downstream kernel serializes them.
        assert_eq!(a.completed_items, 64);
    }

    #[test]
    #[should_panic(expected = "no CUs")]
    fn unallocated_kernel_panics() {
        let p = two_kernel_problem();
        let allocation = mfa_alloc::Allocation::zeros(&p);
        let _ = simulate(&p, &allocation, &SimConfig::default());
    }
}
