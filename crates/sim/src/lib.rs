//! Discrete-event simulation of pipelined multi-kernel execution on a
//! multi-FPGA platform.
//!
//! The allocation model of the reproduced paper predicts the pipeline
//! initiation interval analytically (`II = max_k WCET_k / N_k`, resource and
//! bandwidth budgets permitting). The authors validate their kernels on real
//! AWS F1 hardware; since that hardware is not available here, this crate
//! provides the substitute: an event-driven simulator of the host-orchestrated
//! execution model (kernels communicating through per-FPGA DRAM, each kernel
//! replicated into compute units placed by an [`mfa_alloc::Allocation`]) that measures
//! the *achieved* initiation interval, throughput and per-FPGA utilization for
//! a given allocation.
//!
//! The simulator models:
//!
//! * one queue per kernel, fed by the previous kernel's completions (the host
//!   dispatches work with negligible cost, as the paper assumes),
//! * each compute unit as a server whose nominal service time is its kernel's
//!   `WCET`,
//! * DRAM bandwidth contention per FPGA: when the CUs busy on an FPGA demand
//!   more bandwidth than the device provides, their service times stretch by
//!   the oversubscription factor,
//! * optional log-normal-ish service-time jitter (seeded, reproducible).
//!
//! # Example
//!
//! ```
//! use mfa_alloc::cases::PaperCase;
//! use mfa_alloc::solver::{Backend, SolveRequest};
//! use mfa_sim::{SimConfig, simulate};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let problem = PaperCase::Alex16OnTwoFpgas.problem(0.70)?;
//! let outcome = SolveRequest::new(&problem).backend(Backend::gpa_fast()).solve()?;
//! let result = simulate(&problem, &outcome.allocation, &SimConfig::default());
//! let predicted = outcome.allocation.initiation_interval(&problem);
//! assert!((result.initiation_interval_ms - predicted).abs() / predicted < 0.05);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod churn;
mod engine;
mod stats;

pub use churn::{
    apply_event, parse_trace, replay_churn, ChurnConfig, ChurnError, ChurnEvent, ChurnReplay,
    ChurnStepReport,
};
pub use engine::{simulate, SimConfig};
pub use stats::{FpgaStats, SimResult};
