//! Simulation result containers.

/// Per-FPGA statistics collected during a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaStats {
    /// FPGA index.
    pub fpga: usize,
    /// Fraction of simulated time during which at least one CU on this FPGA
    /// was busy.
    pub busy_fraction: f64,
    /// Time-averaged DRAM bandwidth demand, as a fraction of the device's
    /// bandwidth (can exceed 1.0 when oversubscribed; service times stretch
    /// accordingly).
    pub average_bandwidth_demand: f64,
    /// Peak instantaneous bandwidth demand observed.
    pub peak_bandwidth_demand: f64,
}

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Steady-state initiation interval in milliseconds (average inter-
    /// completion time at the last pipeline stage over the second half of the
    /// measured images).
    pub initiation_interval_ms: f64,
    /// Steady-state throughput in items per second.
    pub throughput_per_second: f64,
    /// End-to-end latency of a single item through the unloaded pipeline,
    /// in milliseconds.
    pub pipeline_latency_ms: f64,
    /// Total simulated time in milliseconds.
    pub makespan_ms: f64,
    /// Number of items that completed the full pipeline.
    pub completed_items: usize,
    /// Per-kernel busy fraction of its CUs (kernel utilization).
    pub kernel_utilization: Vec<f64>,
    /// Per-FPGA statistics.
    pub fpga_stats: Vec<FpgaStats>,
}

impl SimResult {
    /// Relative difference between the simulated and a predicted initiation
    /// interval: `|sim − predicted| / predicted`.
    pub fn ii_error_vs(&self, predicted_ms: f64) -> f64 {
        (self.initiation_interval_ms - predicted_ms).abs() / predicted_ms.max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ii_error_is_relative() {
        let result = SimResult {
            initiation_interval_ms: 2.2,
            throughput_per_second: 454.5,
            pipeline_latency_ms: 10.0,
            makespan_ms: 500.0,
            completed_items: 200,
            kernel_utilization: vec![1.0, 0.5],
            fpga_stats: vec![],
        };
        assert!((result.ii_error_vs(2.0) - 0.1).abs() < 1e-12);
        assert_eq!(result.ii_error_vs(2.2), 0.0);
    }
}
