//! The exact path: the full MINLP of Eqs. 5–10, solved with the
//! [`mfa_minlp`] branch-and-bound solver (the paper used Couenne).
//!
//! Two configurations are exposed, matching the paper's figure keys:
//!
//! * [`ExactMode::IiOnly`] ("MINLP") — optimize only the initiation interval,
//!   `β = 0`. This gives the best achievable II for a resource constraint but
//!   freely spreads CUs over FPGAs.
//! * [`ExactMode::IiAndSpreading`] ("MINLP+G") — optimize `α·II + β·ϕ` with
//!   the problem's weights, which consolidates kernels like GP+A does.
//!
//! Because the FPGAs *within a device group* are identical, the model admits
//! `Π_g F_g!` symmetric copies of every solution; an optional set of
//! symmetry-breaking rows (ordering the FPGAs of each group by their DSP
//! load) removes them and speeds the search up considerably without
//! affecting the optimal value. The rows never relate FPGAs of different
//! groups — those are genuinely distinguishable devices, and ordering across
//! them would cut off real solutions. Symmetry breaking is on by default and
//! can be disabled for ablation.

use std::time::{Duration, Instant};

use mfa_minlp::{MinlpProblem, MinlpStatus, Relation, SolverOptions, Term};

use crate::greedy::GreedyOptions;
use crate::problem::AllocationProblem;
use crate::realloc::ReallocContext;
use crate::solution::Allocation;
use crate::solver::{
    check_deadline, Deadline, SolveDiagnostics, SolveReport, StageTiming, WarmStart,
    WarmStartReport,
};
use crate::AllocError;

/// Which objective the exact solver optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExactMode {
    /// Minimize the initiation interval only (`β = 0`); the paper's "MINLP".
    #[default]
    IiOnly,
    /// Minimize `α·II + β·ϕ` with the problem's weights; the paper's
    /// "MINLP+G".
    IiAndSpreading,
}

impl ExactMode {
    /// The paper's figure key for the mode — the single source of the
    /// `MINLP`/`MINLP+G` labels used by backend names, series labels and
    /// reports.
    pub fn label(&self) -> &'static str {
        match self {
            ExactMode::IiOnly => "MINLP",
            ExactMode::IiAndSpreading => "MINLP+G",
        }
    }
}

/// Options of the exact solver.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactOptions {
    /// Objective configuration.
    pub mode: ExactMode,
    /// Branch-and-bound options (node/time budget, tolerances).
    pub solver: SolverOptions,
    /// Add symmetry-breaking rows over the identical FPGAs.
    pub symmetry_breaking: bool,
}

impl Default for ExactOptions {
    fn default() -> Self {
        ExactOptions {
            mode: ExactMode::IiOnly,
            solver: SolverOptions::default(),
            symmetry_breaking: true,
        }
    }
}

impl ExactOptions {
    /// Exact solve of the paper's "MINLP" configuration with a node/time
    /// budget (useful for the larger sweeps).
    pub fn ii_only_with_budget(max_nodes: usize, time_limit_seconds: f64) -> Self {
        ExactOptions {
            mode: ExactMode::IiOnly,
            solver: SolverOptions::with_budget(max_nodes, time_limit_seconds),
            symmetry_breaking: true,
        }
    }

    /// Exact solve of the paper's "MINLP+G" configuration with a node/time
    /// budget.
    pub fn with_spreading_and_budget(max_nodes: usize, time_limit_seconds: f64) -> Self {
        ExactOptions {
            mode: ExactMode::IiAndSpreading,
            solver: SolverOptions::with_budget(max_nodes, time_limit_seconds),
            symmetry_breaking: true,
        }
    }
}

/// Solves the exact MINLP formulation for [`crate::solver::Backend::Exact`].
///
/// A [`WarmStart`] counts hint is placed with the greedy allocator and — when
/// the placement is feasible for the model — seeds the branch-and-bound
/// incumbent, pruning from node 0. A [`Deadline`] caps the search's
/// wall-clock budget; an expired deadline surfaces as
/// [`AllocError::DeadlineExceeded`]. A node budget combines with the
/// options' own limit by minimum.
///
/// # Errors
///
/// Returns [`AllocError::Infeasible`] when the model has no feasible point,
/// [`AllocError::DeadlineExceeded`] when the deadline is exhausted before a
/// feasible incumbent exists, and propagates MINLP solver failures.
// `n_vars` is indexed `[kernel][fpga]`; clippy's enumerate-based rewrite of the
// `f` loops would iterate the wrong dimension, so the range loops stay.
#[allow(clippy::needless_range_loop)]
pub(crate) fn run(
    problem: &AllocationProblem,
    options: &ExactOptions,
    warm: &WarmStart,
    deadline: Option<&Deadline>,
    node_budget: Option<usize>,
) -> Result<SolveReport, AllocError> {
    let start = Instant::now();
    problem.validate_feasibility()?;
    check_deadline(deadline, "exact model build")?;
    let num_kernels = problem.num_kernels();
    let num_fpgas = problem.num_fpgas();
    let weights = problem.weights();
    let use_spreading = matches!(options.mode, ExactMode::IiAndSpreading) && weights.beta > 0.0;
    let realloc = ReallocContext::from_problem(problem)?;

    let mut model = MinlpProblem::new();

    // II and ϕ variables. The objective is linear in them.
    let ii_upper = problem
        .kernels()
        .iter()
        .map(|k| k.wcet_ms())
        .fold(0.0_f64, f64::max);
    let alpha = if use_spreading { weights.alpha } else { 1.0 };
    let ii = model
        .add_continuous_var("II", 0.0, ii_upper, alpha)
        .map_err(AllocError::from)?;
    let phi = if use_spreading {
        Some(
            model
                .add_continuous_var("phi", 0.0, num_fpgas as f64, weights.beta)
                .map_err(AllocError::from)?,
        )
    } else {
        None
    };

    // n_{k,f} integer variables and N_k totals. Each FPGA's upper bound
    // comes from its own device group: a CU costs a larger share of a
    // smaller device, and a group that cannot host the kernel pins its
    // variables at zero.
    let group_of: Vec<usize> = (0..num_fpgas).map(|f| problem.group_of_fpga(f)).collect();
    // On a platform with per-group WCET scaling the totals become *effective*
    // parallelism `N_k = Σ_f n_{k,f} / s_{g(f)}` — a CU on a group slowed by
    // `s > 1` contributes only `1/s` of a reference CU. Without scaling every
    // `s` is exactly 1 and all coefficients below are bit-identical to the
    // unscaled model.
    let scaled = problem.has_wcet_scaling();
    let min_effective_cu: f64 = 1.0
        / (0..problem.num_groups())
            .map(|g| problem.platform().group(g).wcet_scale())
            .fold(1.0, f64::max);
    let mut n_vars = vec![Vec::with_capacity(num_fpgas); num_kernels];
    let mut total_vars = Vec::with_capacity(num_kernels);
    for (k, kernel) in problem.kernels().iter().enumerate() {
        for f in 0..num_fpgas {
            let per_fpga_max = problem.max_cus_per_fpga_in_group(k, group_of[f]) as f64;
            let var = model
                .add_integer_var(format!("n_{}_{}", kernel.name(), f), 0.0, per_fpga_max, 0.0)
                .map_err(AllocError::from)?;
            n_vars[k].push(var);
        }
        let total = model
            .add_continuous_var(
                format!("N_{}", kernel.name()),
                min_effective_cu,
                problem.max_total_cus(k).max(1) as f64,
                0.0,
            )
            .map_err(AllocError::from)?;
        total_vars.push(total);
        // N_k = Σ_f n_{k,f} / s_{g(f)}.
        let mut terms: Vec<Term> = n_vars[k]
            .iter()
            .enumerate()
            .map(|(f, &v)| {
                Term::linear(v, 1.0 / problem.platform().group(group_of[f]).wcet_scale())
            })
            .collect();
        terms.push(Term::linear(total, -1.0));
        model
            .add_constraint(
                format!("total_{}", kernel.name()),
                terms,
                Relation::Equal,
                0.0,
            )
            .map_err(AllocError::from)?;
        // With scaling, `N_k ≥ 1/s_max` no longer implies one physical CU;
        // pin the count sum explicitly.
        if scaled {
            let cu_terms: Vec<Term> = n_vars[k].iter().map(|&v| Term::linear(v, 1.0)).collect();
            model
                .add_constraint(
                    format!("cus_{}", kernel.name()),
                    cu_terms,
                    Relation::GreaterEq,
                    1.0,
                )
                .map_err(AllocError::from)?;
        }
        // II ≥ WCET_k / N_k.
        model
            .add_constraint(
                format!("latency_{}", kernel.name()),
                vec![
                    Term::reciprocal(total, kernel.wcet_ms()),
                    Term::linear(ii, -1.0),
                ],
                Relation::LessEq,
                0.0,
            )
            .map_err(AllocError::from)?;
        // ϕ ≥ Σ_f n_{k,f} / (1 + n_{k,f}).
        if let Some(phi) = phi {
            let mut spread_terms: Vec<Term> = n_vars[k]
                .iter()
                .map(|&v| Term::saturation(v, 1.0))
                .collect();
            spread_terms.push(Term::linear(phi, -1.0));
            model
                .add_constraint(
                    format!("spreading_{}", kernel.name()),
                    spread_terms,
                    Relation::LessEq,
                    0.0,
                )
                .map_err(AllocError::from)?;
        }
    }

    // Per-FPGA resource and bandwidth rows (Eqs. 9–10), one per class in
    // use, with per-CU demands rescaled to each FPGA's device group. A
    // non-finite coefficient means the group cannot host the kernel at all;
    // its variable is already pinned at zero by the per-group upper bound,
    // so the term is simply omitted.
    for f in 0..num_fpgas {
        let g = group_of[f];
        let limit = problem.group_resource_limit(g);
        let class_rows: [(&str, crate::report::ResourceAccessor, f64); 4] = [
            ("lut", |r| r.lut, limit.lut),
            ("ff", |r| r.ff, limit.ff),
            ("bram", |r| r.bram, limit.bram),
            ("dsp", |r| r.dsp, limit.dsp),
        ];
        for (class, accessor, limit) in class_rows {
            let terms: Vec<Term> = (0..num_kernels)
                .filter_map(|k| {
                    let coeff = accessor(&problem.kernel_resources_on(k, g));
                    (coeff > 0.0 && coeff.is_finite()).then(|| Term::linear(n_vars[k][f], coeff))
                })
                .collect();
            if !terms.is_empty() {
                model
                    .add_constraint(format!("{class}_{f}"), terms, Relation::LessEq, limit)
                    .map_err(AllocError::from)?;
            }
        }
        let bw_terms: Vec<Term> = (0..num_kernels)
            .filter_map(|k| {
                let coeff = problem.kernel_bandwidth_on(k, g);
                (coeff > 0.0 && coeff.is_finite()).then(|| Term::linear(n_vars[k][f], coeff))
            })
            .collect();
        if !bw_terms.is_empty() {
            model
                .add_constraint(
                    format!("bandwidth_{f}"),
                    bw_terms,
                    Relation::LessEq,
                    problem.group_bandwidth_limit(g),
                )
                .map_err(AllocError::from)?;
        }
    }

    // Symmetry breaking: order the identical FPGAs of each device group by
    // non-increasing DSP load. Only within-group permutations are symmetric,
    // so consecutive FPGAs of different groups get no row.
    if options.symmetry_breaking && num_fpgas > 1 {
        for f in 0..num_fpgas - 1 {
            if group_of[f] != group_of[f + 1] {
                continue;
            }
            let g = group_of[f];
            let mut terms = Vec::with_capacity(2 * num_kernels);
            for k in 0..num_kernels {
                let scaled = problem.kernel_resources_on(k, g).dsp;
                let weight = if scaled.is_finite() {
                    scaled.max(1e-6)
                } else {
                    1e-6
                };
                terms.push(Term::linear(n_vars[k][f], weight));
                terms.push(Term::linear(n_vars[k][f + 1], -weight));
            }
            model
                .add_constraint(format!("symmetry_{f}"), terms, Relation::GreaterEq, 0.0)
                .map_err(AllocError::from)?;
        }
    }

    // Migration rows, absent entirely without an active reallocation spec:
    // a continuous `m_{k,g} ≥ Σ_{f∈g} n_{k,f} − incumbent_{k,g}` per kernel
    // and group, priced into the objective at `w·c_g` — the movement term
    // condenses into linear rows exactly like the latency rows — plus the
    // optional hard cap on total movement.
    let mut moved_vars: Vec<Vec<mfa_minlp::MinlpVarId>> = Vec::new();
    if let Some(ctx) = &realloc {
        for (k, kernel) in problem.kernels().iter().enumerate() {
            let mut row_vars = Vec::with_capacity(problem.num_groups());
            for g in 0..problem.num_groups() {
                let m = model
                    .add_continuous_var(
                        format!("m_{}_{}", kernel.name(), g),
                        0.0,
                        problem.max_total_cus(k).max(1) as f64,
                        ctx.weight * ctx.costs[g],
                    )
                    .map_err(AllocError::from)?;
                let mut terms: Vec<Term> = (0..num_fpgas)
                    .filter(|&f| group_of[f] == g)
                    .map(|f| Term::linear(n_vars[k][f], 1.0))
                    .collect();
                terms.push(Term::linear(m, -1.0));
                model
                    .add_constraint(
                        format!("moved_{}_{}", kernel.name(), g),
                        terms,
                        Relation::LessEq,
                        f64::from(ctx.inc_groups[k][g]),
                    )
                    .map_err(AllocError::from)?;
                row_vars.push(m);
            }
            moved_vars.push(row_vars);
        }
        if let Some(bound) = ctx.moved_bound {
            let terms: Vec<Term> = moved_vars
                .iter()
                .flatten()
                .map(|&m| Term::linear(m, 1.0))
                .collect();
            model
                .add_constraint("moved_total", terms, Relation::LessEq, f64::from(bound))
                .map_err(AllocError::from)?;
        }
    }

    // Warm start: place the hinted counts with the greedy allocator and seed
    // the branch-and-bound incumbent with the resulting assignment. Within
    // each device group the FPGA columns are ordered by the same weighted
    // DSP load the symmetry-breaking rows use, so an otherwise feasible seed
    // is never rejected just for naming the identical FPGAs in a different
    // order. An unplaceable or model-infeasible seed is silently dropped.
    // Under an active reallocation spec with no explicit hint, the
    // incumbent's own totals seed the search instead.
    let seed_counts: Option<Vec<u32>> = warm
        .cu_counts
        .clone()
        .or_else(|| realloc.as_ref().map(|ctx| ctx.inc_totals.clone()));
    if let Some(seed_allocation) = seed_counts
        .as_deref()
        .and_then(|counts| crate::solver::place_hint(problem, counts, &GreedyOptions::default()))
    {
        let columns = symmetry_sorted_columns(problem, &seed_allocation);
        let mut seed = vec![0.0; model.num_vars()];
        let seed_ii = seed_allocation.initiation_interval(problem);
        seed[ii.index()] = seed_ii;
        if let Some(phi) = phi {
            seed[phi.index()] = seed_allocation.spreading();
        }
        for k in 0..num_kernels {
            let mut total = 0.0;
            for (f, &column) in columns.iter().enumerate() {
                let n = f64::from(seed_allocation.cus(k, column));
                seed[n_vars[k][f].index()] = n;
                total += n / problem.platform().group(group_of[f]).wcet_scale();
            }
            seed[total_vars[k].index()] = total;
        }
        // The movement the seed actually incurs, so the seed satisfies the
        // migration rows with equality.
        if let Some(ctx) = &realloc {
            for k in 0..num_kernels {
                for g in 0..problem.num_groups() {
                    let placed: u32 = (0..num_fpgas)
                        .filter(|&f| group_of[f] == g)
                        .map(|f| seed_allocation.cus(k, columns[f]))
                        .sum();
                    let moved = placed.saturating_sub(ctx.inc_groups[k][g]);
                    seed[moved_vars[k][g].index()] = f64::from(moved);
                }
            }
        }
        // A malformed seed cannot occur (the vector is built to length), so
        // the only set failure is a non-finite II from a degenerate hint.
        let _ = model.set_initial_incumbent(seed);
    }

    check_deadline(deadline, "exact search")?;
    let mut solver_options = options.solver.clone();
    if let Some(cap) = node_budget {
        solver_options.max_nodes = solver_options.max_nodes.min(cap);
    }
    if let Some(deadline) = deadline {
        let remaining = deadline.remaining().as_secs_f64();
        solver_options.time_limit_seconds = Some(
            solver_options
                .time_limit_seconds
                .map_or(remaining, |limit| limit.min(remaining)),
        );
    }
    let solution = model.solve_with(&solver_options).map_err(|err| {
        // When the deadline was the binding budget, surface the structured
        // deadline error instead of the generic node/time-limit one.
        if matches!(err, mfa_minlp::MinlpError::NodeLimitWithoutSolution { .. })
            && deadline.is_some_and(Deadline::is_expired)
        {
            AllocError::DeadlineExceeded {
                stage: "exact search".to_owned(),
            }
        } else {
            AllocError::from(err)
        }
    })?;
    if solution.status() == MinlpStatus::Infeasible {
        return Err(AllocError::Infeasible(
            "the MINLP model has no feasible point".into(),
        ));
    }

    let mut allocation = Allocation::zeros(problem);
    for k in 0..num_kernels {
        for f in 0..num_fpgas {
            allocation.set_cus(k, f, solution.value(n_vars[k][f]).round().max(0.0) as u32);
        }
    }
    allocation.validate(problem, 1e-6)?;
    let objective = solution.objective();
    let best_bound = solution.best_bound();
    let cu_counts = crate::solver::counts_of(problem, &allocation);
    let elapsed = start.elapsed();
    Ok(SolveReport {
        backend: options.mode.label().to_owned(),
        diagnostics: SolveDiagnostics {
            // For the pure-II objective the proven bound is itself a relaxed
            // II in milliseconds; the weighted objectives — spreading or a
            // positive migration weight — have no such reading.
            relaxed_ii_ms: match options.mode {
                ExactMode::IiOnly if !realloc.as_ref().is_some_and(|ctx| ctx.weight > 0.0) => {
                    Some(best_bound)
                }
                _ => None,
            },
            relaxation_gap: Some((objective - best_bound).max(0.0) / objective.abs().max(1.0)),
            proven_optimal: Some(solution.status() == MinlpStatus::Optimal),
            dropped_cus: vec![0; num_kernels],
            cu_counts,
            bb_nodes: solution.nodes_explored(),
            moved_cus: 0,
            migration_cost: 0.0,
            relaxation_iterations: solution.lp_solves(),
            barrier_iterations: 0,
            factorizations: 0,
            simplex_pivots: solution.simplex_pivots(),
            gp_dual: None,
            warm_start: WarmStartReport {
                ii_hint_used: false,
                dual_hint_used: false,
                incumbent_used: solution.warm_started(),
            },
            degraded_from: None,
            timing: StageTiming {
                total: elapsed,
                relaxation: Duration::ZERO,
                discretization: elapsed,
                allocation: Duration::ZERO,
            },
        },
        allocation,
    })
}

/// FPGA columns reordered so that, within each device group, the columns
/// appear in non-increasing weighted DSP load — the exact order the
/// symmetry-breaking rows demand. Returns `columns` where model column `f`
/// takes its counts from allocation column `columns[f]`. Ties keep the
/// original column order (stable sort), so the mapping is deterministic.
fn symmetry_sorted_columns(problem: &AllocationProblem, allocation: &Allocation) -> Vec<usize> {
    let num_fpgas = problem.num_fpgas();
    let load = |f: usize| -> f64 {
        let g = problem.group_of_fpga(f);
        (0..problem.num_kernels())
            .map(|k| {
                let scaled = problem.kernel_resources_on(k, g).dsp;
                let weight = if scaled.is_finite() {
                    scaled.max(1e-6)
                } else {
                    1e-6
                };
                weight * f64::from(allocation.cus(k, f))
            })
            .sum()
    };
    let mut columns: Vec<usize> = (0..num_fpgas).collect();
    columns.sort_by(|&a, &b| {
        problem
            .group_of_fpga(a)
            .cmp(&problem.group_of_fpga(b))
            .then_with(|| load(b).total_cmp(&load(a)))
    });
    columns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpa::GpaOptions;
    use crate::problem::{GoalWeights, Kernel};
    use crate::solver::{Backend, SolveRequest};
    use mfa_cnn::paper_data;
    use mfa_platform::{MultiFpgaPlatform, ResourceBudget, ResourceVec};

    fn solve(
        problem: &AllocationProblem,
        options: &ExactOptions,
    ) -> Result<SolveReport, AllocError> {
        SolveRequest::new(problem)
            .backend(Backend::exact_with(options.clone()))
            .solve()
    }

    fn toy_problem() -> AllocationProblem {
        AllocationProblem::builder()
            .kernels(vec![
                Kernel::new("a", 3.0, ResourceVec::bram_dsp(0.02, 0.2), 0.01).unwrap(),
                Kernel::new("b", 5.0, ResourceVec::bram_dsp(0.02, 0.3), 0.01).unwrap(),
            ])
            .platform(MultiFpgaPlatform::aws_f1_4xlarge())
            .budget(ResourceBudget::uniform(1.0))
            .weights(GoalWeights::new(1.0, 0.5))
            .build()
            .unwrap()
    }

    #[test]
    fn minlp_matches_enumerated_optimum_on_toy_problem() {
        // Two FPGAs, budget 1.0 each: optimum (see discretize tests) is
        // II = 1.25 with counts (3, 4) or (4, 4).
        let problem = toy_problem();
        let report = solve(&problem, &ExactOptions::default()).unwrap();
        assert_eq!(report.diagnostics.proven_optimal, Some(true));
        let ii = report.initiation_interval_ms(&problem);
        assert!((ii - 1.25).abs() < 1e-5, "II = {ii}");
        // The proven bound is reported as the relaxed II for the pure-II mode.
        assert!(report.diagnostics.relaxed_ii_ms.unwrap() <= ii + 1e-6);
        assert!(report.diagnostics.relaxation_gap.unwrap() < 1e-5);
        report.allocation.validate(&problem, 1e-9).unwrap();
    }

    #[test]
    fn minlp_with_spreading_consolidates() {
        let p = toy_problem();
        let ii_only = solve(&p, &ExactOptions::default()).unwrap();
        let with_spreading = solve(
            &p,
            &ExactOptions {
                mode: ExactMode::IiAndSpreading,
                ..ExactOptions::default()
            },
        )
        .unwrap();
        assert_eq!(with_spreading.backend, "MINLP+G");
        assert_eq!(with_spreading.diagnostics.relaxed_ii_ms, None);
        with_spreading.allocation.validate(&p, 1e-9).unwrap();
        // MINLP+G never spreads more than plain MINLP (the paper's qualitative
        // observation), and its goal value is at least as good.
        assert!(with_spreading.allocation.spreading() <= ii_only.allocation.spreading() + 1e-9);
        assert!(with_spreading.allocation.goal(&p) <= ii_only.allocation.goal(&p) + 1e-9);
    }

    #[test]
    fn exact_and_heuristic_agree_on_alex16() {
        let app = paper_data::alexnet_16bit();
        let p = AllocationProblem::from_application(&app, 2, 0.70, GoalWeights::ii_only()).unwrap();
        let heuristic = SolveRequest::new(&p)
            .backend(Backend::gpa_with(GpaOptions::fast()))
            .solve()
            .unwrap();
        let exact = solve(&p, &ExactOptions::ii_only_with_budget(2_000, 10.0)).unwrap();
        let ii_heuristic = heuristic.initiation_interval_ms(&p);
        let ii_exact = exact.allocation.initiation_interval(&p);
        let best_bound = exact.diagnostics.relaxed_ii_ms.unwrap();
        // The MINLP's proven lower bound is valid for every allocation,
        // including the heuristic one.
        assert!(ii_heuristic >= best_bound - 1e-6);
        assert!(ii_exact >= best_bound - 1e-6);
        if exact.diagnostics.proven_optimal == Some(true) {
            // With a proof of optimality the exact II can only be better, and
            // the paper reports the heuristic tracking it closely away from
            // the tightest constraints.
            assert!(ii_exact <= ii_heuristic + 1e-6);
            assert!(
                ii_heuristic <= ii_exact * 1.30 + 1e-9,
                "heuristic {ii_heuristic} vs exact {ii_exact}"
            );
        } else {
            // Budgeted solve: the incumbent and the heuristic must both sit
            // within the proven optimality gap of each other.
            assert!(ii_heuristic <= best_bound * 1.5 + 1e-9);
        }
    }

    #[test]
    fn symmetry_breaking_does_not_change_the_optimum() {
        let p = toy_problem().with_num_fpgas(2);
        let with = solve(&p, &ExactOptions::default()).unwrap();
        let without = solve(
            &p,
            &ExactOptions {
                symmetry_breaking: false,
                ..ExactOptions::default()
            },
        )
        .unwrap();
        assert!(
            (with.initiation_interval_ms(&p) - without.initiation_interval_ms(&p)).abs() < 1e-6
        );
    }

    fn mixed_pair_problem() -> AllocationProblem {
        use mfa_platform::{DeviceGroup, FpgaDevice, HeterogeneousPlatform};
        AllocationProblem::builder()
            .kernels(vec![
                Kernel::new("a", 3.0, ResourceVec::bram_dsp(0.02, 0.2), 0.01).unwrap(),
                Kernel::new("b", 5.0, ResourceVec::bram_dsp(0.02, 0.3), 0.01).unwrap(),
            ])
            .platform(HeterogeneousPlatform::new(
                "1×VU9P + 1×KU115",
                vec![
                    DeviceGroup::new(FpgaDevice::vu9p(), 1),
                    DeviceGroup::new(FpgaDevice::ku115(), 1),
                ],
            ))
            .budget(ResourceBudget::uniform(0.8))
            .weights(GoalWeights::ii_only())
            .build()
            .unwrap()
    }

    #[test]
    fn heterogeneous_minlp_uses_both_devices_and_validates() {
        let p = mixed_pair_problem();
        let outcome = solve(&p, &ExactOptions::default()).unwrap();
        assert_eq!(outcome.diagnostics.proven_optimal, Some(true));
        outcome.allocation.validate(&p, 1e-6).unwrap();
        // The mixed pair can only reach this II by using the KU115 too:
        // a single VU9P at 0.8 tops out at II = 2.5 (counts (2, 2)).
        let single = AllocationProblem::builder()
            .kernels(p.kernels().to_vec())
            .platform(MultiFpgaPlatform::aws_f1_2xlarge())
            .budget(ResourceBudget::uniform(0.8))
            .weights(GoalWeights::ii_only())
            .build()
            .unwrap();
        let single_outcome = solve(&single, &ExactOptions::default()).unwrap();
        assert!(
            outcome.initiation_interval_ms(&p)
                < single_outcome.initiation_interval_ms(&single) - 1e-6
        );
        assert!(outcome.allocation.fpgas_used() == 2);
        // The exact optimum can never beat the continuous relaxation.
        let relaxed =
            crate::gp_step::solve(&p, crate::gp_step::RelaxationBackend::Bisection).unwrap();
        assert!(outcome.initiation_interval_ms(&p) >= relaxed.initiation_interval_ms - 1e-6);
    }

    #[test]
    fn within_group_symmetry_breaking_preserves_the_heterogeneous_optimum() {
        use mfa_platform::{DeviceGroup, FpgaDevice, HeterogeneousPlatform};
        let p = AllocationProblem::builder()
            .kernels(vec![
                Kernel::new("a", 3.0, ResourceVec::bram_dsp(0.02, 0.2), 0.01).unwrap(),
                Kernel::new("b", 5.0, ResourceVec::bram_dsp(0.02, 0.3), 0.01).unwrap(),
            ])
            .platform(HeterogeneousPlatform::new(
                "2×VU9P + 2×KU115",
                vec![
                    DeviceGroup::new(FpgaDevice::vu9p(), 2),
                    DeviceGroup::new(FpgaDevice::ku115(), 2),
                ],
            ))
            .budget(ResourceBudget::uniform(0.7))
            .weights(GoalWeights::ii_only())
            .build()
            .unwrap();
        let with = solve(&p, &ExactOptions::default()).unwrap();
        let without = solve(
            &p,
            &ExactOptions {
                symmetry_breaking: false,
                ..ExactOptions::default()
            },
        )
        .unwrap();
        let ii_with = with.initiation_interval_ms(&p);
        let ii_without = without.initiation_interval_ms(&p);
        assert!(
            (ii_with - ii_without).abs() < 1e-6,
            "with {ii_with} vs without {ii_without}"
        );
        with.allocation.validate(&p, 1e-6).unwrap();
    }

    #[test]
    fn budgeted_solve_reports_gap() {
        let app = paper_data::alexnet_16bit();
        let p = AllocationProblem::from_application(&app, 2, 0.65, GoalWeights::ii_only()).unwrap();
        let outcome = solve(&p, &ExactOptions::ii_only_with_budget(50, 5.0)).unwrap();
        assert!(outcome.diagnostics.relaxation_gap.unwrap() >= 0.0);
        assert!(outcome.diagnostics.bb_nodes <= 50);
        outcome.allocation.validate(&p, 1e-6).unwrap();
    }
}
