//! Second step of the heuristic, part two: the greedy FPGA allocator
//! (Algorithm 1 of the paper).
//!
//! Given the integer CU counts `N_k`, the allocator places CUs on FPGAs while
//! consolidating each kernel onto as few FPGAs as possible:
//!
//! 1. Kernels are sorted by *criticality* — the increase of the initiation
//!    interval caused by removing one CU, `WCET_k / (N_k (N_k − 1))`
//!    (infinite when `N_k = 1`), ties broken by larger resource demand — so
//!    that the kernels whose CUs matter most are placed first.
//! 2. Kernels whose full CU set cannot fit on one FPGA are pre-split across
//!    previously untouched FPGAs (lines 11–21 of the pseudocode).
//! 3. Every kernel then tries to place all of its remaining CUs on the most
//!    occupied FPGA that can still take them (FPGAs sorted by increasing
//!    slack); if none can, as many CUs as possible go to the least occupied
//!    FPGA (lines 23–37).
//! 4. If CUs remain unplaced, the per-FPGA capacity is relaxed by `Δ` and the
//!    placement restarts, up to a maximum relaxation of `T` (the while loop of
//!    line 9). The paper finds `T` has little effect and uses `T = 0`.
//!
//! On a heterogeneous platform every fit check rescales the kernel's per-CU
//! demand to the candidate FPGA's own device group, so the same CU costs a
//! larger share of a smaller device; the budget fractions themselves apply
//! uniformly to each FPGA's own capacity.

use mfa_platform::ResourceVec;

use crate::problem::AllocationProblem;
use crate::solution::Allocation;
use crate::AllocError;

/// Options of the greedy allocator (the paper's `T` and `Δ` parameters).
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyOptions {
    /// Maximum relaxation of the per-FPGA resource constraint, as an absolute
    /// fraction added to the budget (the paper's `T`, e.g. `0.05` for 5 %).
    pub max_relaxation: f64,
    /// Relaxation step (the paper's `Δ`, default 1 %).
    pub relaxation_step: f64,
}

impl Default for GreedyOptions {
    fn default() -> Self {
        GreedyOptions {
            max_relaxation: 0.0,
            relaxation_step: 0.01,
        }
    }
}

impl GreedyOptions {
    /// Convenience constructor mirroring the paper's notation (`T`, `Δ`).
    pub fn with_t_delta(max_relaxation: f64, relaxation_step: f64) -> Self {
        GreedyOptions {
            max_relaxation,
            relaxation_step,
        }
    }
}

/// Per-FPGA free capacity during placement. `group` is the FPGA's device
/// group: per-CU demands are rescaled to it before any fit check, so a CU
/// costs a larger share of a smaller device.
#[derive(Debug, Clone, Copy)]
struct Slack {
    fpga: usize,
    group: usize,
    resources: ResourceVec,
    bandwidth: f64,
    untouched: bool,
}

impl Slack {
    /// Scalar used to order FPGAs by "how full they already are": the sum of
    /// remaining fractions over the tracked classes plus bandwidth. Any
    /// monotone aggregate works for the consolidation heuristic; this one
    /// treats all classes equally.
    fn total(&self) -> f64 {
        self.resources.lut
            + self.resources.ff
            + self.resources.bram
            + self.resources.dsp
            + self.bandwidth
    }

    fn can_take(&self, per_cu: &ResourceVec, bandwidth: f64, copies: u32) -> bool {
        let needed = *per_cu * copies as f64;
        needed.fits_within(&self.resources, 1e-9)
            && bandwidth * copies as f64 <= self.bandwidth + 1e-9
    }

    fn take(&mut self, per_cu: &ResourceVec, bandwidth: f64, copies: u32) {
        self.resources = self.resources - *per_cu * copies as f64;
        self.bandwidth -= bandwidth * copies as f64;
        if copies > 0 {
            self.untouched = false;
        }
    }

    /// Largest number of copies that still fit.
    fn max_copies(&self, per_cu: &ResourceVec, bandwidth: f64) -> u32 {
        let by_resources = per_cu.max_copies_within(&self.resources);
        let by_bandwidth = if bandwidth > 0.0 {
            Some(((self.bandwidth + 1e-12) / bandwidth).floor() as u32)
        } else {
            None
        };
        match (by_resources, by_bandwidth) {
            (Some(r), Some(b)) => r.min(b),
            (Some(r), None) => r,
            (None, Some(b)) => b,
            (None, None) => u32::MAX / 2,
        }
    }
}

/// Criticality of a kernel: the II increase caused by removing one CU.
fn criticality(problem: &AllocationProblem, k: usize, cu_count: u32) -> f64 {
    let wcet = problem.kernels()[k].wcet_ms();
    if cu_count <= 1 {
        f64::INFINITY
    } else {
        let n = cu_count as f64;
        wcet / (n * (n - 1.0))
    }
}

/// Places `cu_counts[k]` CUs of each kernel onto the problem's FPGAs.
///
/// # Errors
///
/// Returns [`AllocError::InvalidArgument`] if `cu_counts` has the wrong length
/// or contains a zero, and [`AllocError::AllocationFailed`] if CUs remain
/// unplaced even at the maximum relaxation `R + T`.
pub fn allocate(
    problem: &AllocationProblem,
    cu_counts: &[u32],
    options: &GreedyOptions,
) -> Result<Allocation, AllocError> {
    if cu_counts.len() != problem.num_kernels() {
        return Err(AllocError::InvalidArgument(format!(
            "expected {} CU counts, got {}",
            problem.num_kernels(),
            cu_counts.len()
        )));
    }
    if let Some(k) = cu_counts.iter().position(|&n| n == 0) {
        return Err(AllocError::InvalidArgument(format!(
            "kernel {} must have at least one CU",
            problem.kernels()[k].name()
        )));
    }
    // NaN steps must be rejected too, hence the negated comparison.
    let step_is_positive = options.relaxation_step > 0.0;
    if !step_is_positive || options.max_relaxation < 0.0 {
        return Err(AllocError::InvalidArgument(
            "relaxation step must be positive and the maximum relaxation nonnegative".into(),
        ));
    }

    let mut relaxation = 0.0;
    loop {
        match try_allocate(problem, cu_counts, relaxation) {
            Ok(allocation) => return Ok(allocation),
            Err(unplaced) => {
                if relaxation + 1e-12 >= options.max_relaxation {
                    return Err(AllocError::AllocationFailed { unplaced });
                }
                relaxation = (relaxation + options.relaxation_step).min(options.max_relaxation);
            }
        }
    }
}

/// One placement pass at a fixed relaxation; on failure returns the unplaced
/// CUs per kernel.
fn try_allocate(
    problem: &AllocationProblem,
    cu_counts: &[u32],
    relaxation: f64,
) -> Result<Allocation, Vec<(String, u32)>> {
    let num_kernels = problem.num_kernels();
    let num_fpgas = problem.num_fpgas();
    let num_groups = problem.num_groups();
    // Per-group placement limits: each FPGA offers its device group's scaled
    // share of the budget (plus the current relaxation, capped at the full
    // device). With all budget scales at 1 these are exactly the old uniform
    // limits.
    let capacity_on: Vec<ResourceVec> = (0..num_groups)
        .map(|g| {
            let limit = problem.group_resource_limit(g);
            ResourceVec {
                lut: (limit.lut + relaxation).min(1.0),
                ff: (limit.ff + relaxation).min(1.0),
                bram: (limit.bram + relaxation).min(1.0),
                dsp: (limit.dsp + relaxation).min(1.0),
            }
        })
        .collect();
    let bw_limit_on: Vec<f64> = (0..num_groups)
        .map(|g| problem.group_bandwidth_limit(g))
        .collect();
    // Per-CU demand of each kernel rescaled to every device group.
    let res_on: Vec<Vec<ResourceVec>> = (0..num_kernels)
        .map(|k| {
            (0..num_groups)
                .map(|g| problem.kernel_resources_on(k, g))
                .collect()
        })
        .collect();
    let bw_on: Vec<Vec<f64>> = (0..num_kernels)
        .map(|k| {
            (0..num_groups)
                .map(|g| problem.kernel_bandwidth_on(k, g))
                .collect()
        })
        .collect();
    // Does the full CU set of kernel `k` fit on one FPGA of *some* group?
    let fits_one_fpga = |k: usize, cus: u32| -> bool {
        (0..num_groups).any(|g| {
            (res_on[k][g] * cus as f64).fits_within(&capacity_on[g], 1e-9)
                && bw_on[k][g] * cus as f64 <= bw_limit_on[g] + 1e-9
        })
    };

    let mut allocation = Allocation::zeros(problem);
    let mut remaining: Vec<u32> = cu_counts.to_vec();
    let mut slacks: Vec<Slack> = (0..num_fpgas)
        .map(|f| {
            let g = problem.group_of_fpga(f);
            Slack {
                fpga: f,
                group: g,
                resources: capacity_on[g],
                bandwidth: bw_limit_on[g],
                untouched: true,
            }
        })
        .collect();

    // Kernel order: descending criticality, ties broken by larger demand.
    let mut order: Vec<usize> = (0..num_kernels).collect();
    order.sort_by(|&a, &b| {
        criticality(problem, b, cu_counts[b])
            .total_cmp(&criticality(problem, a, cu_counts[a]))
            .then_with(|| {
                problem.kernels()[b]
                    .resources()
                    .max_component()
                    .total_cmp(&problem.kernels()[a].resources().max_component())
            })
    });

    // Lines 11–21: pre-split kernels whose full CU set cannot fit on one FPGA
    // of any device group, filling previously untouched FPGAs.
    for &k in &order {
        let mut f = 0;
        while f < num_fpgas && !fits_one_fpga(k, remaining[k]) {
            if slacks[f].untouched {
                let g = slacks[f].group;
                let copies = slacks[f]
                    .max_copies(&res_on[k][g], bw_on[k][g])
                    .min(remaining[k]);
                if copies == 0 {
                    // This FPGA's device group cannot host the kernel; on a
                    // heterogeneous fleet a later FPGA may belong to a group
                    // that can, so keep scanning instead of aborting the
                    // pre-split (on identical FPGAs the scan just ends a few
                    // steps later with the same outcome).
                    f += 1;
                    continue;
                }
                slacks[f].take(&res_on[k][g], bw_on[k][g], copies);
                allocation.set_cus(
                    k,
                    slacks[f].fpga,
                    allocation.cus(k, slacks[f].fpga) + copies,
                );
                remaining[k] -= copies;
            } else {
                f += 1;
            }
        }
    }

    // Lines 22–37: consolidate the rest.
    slacks.sort_by(|a, b| a.total().total_cmp(&b.total()));
    for &k in &order {
        if remaining[k] == 0 {
            continue;
        }
        // Try to fit all remaining CUs on the most occupied FPGA that can
        // take them (slacks are sorted by increasing free capacity).
        let mut placed_all = false;
        for slack in slacks.iter_mut() {
            let g = slack.group;
            if slack.can_take(&res_on[k][g], bw_on[k][g], remaining[k]) {
                slack.take(&res_on[k][g], bw_on[k][g], remaining[k]);
                allocation.set_cus(k, slack.fpga, allocation.cus(k, slack.fpga) + remaining[k]);
                remaining[k] = 0;
                placed_all = true;
                break;
            }
        }
        if !placed_all {
            // Put as many as possible on the least occupied FPGA (line 33 of
            // the pseudocode), then keep filling the remaining FPGAs from the
            // emptiest down instead of leaving CUs unplaced — a strictly
            // stronger fallback than the paper's single attempt, which only
            // matters when the aggregate budget is almost exactly saturated.
            for slack in slacks.iter_mut().rev() {
                if remaining[k] == 0 {
                    break;
                }
                let g = slack.group;
                let copies = slack
                    .max_copies(&res_on[k][g], bw_on[k][g])
                    .min(remaining[k]);
                if copies > 0 {
                    slack.take(&res_on[k][g], bw_on[k][g], copies);
                    allocation.set_cus(k, slack.fpga, allocation.cus(k, slack.fpga) + copies);
                    remaining[k] -= copies;
                }
            }
        }
        slacks.sort_by(|a, b| a.total().total_cmp(&b.total()));
    }

    if remaining.iter().all(|&r| r == 0) {
        Ok(allocation)
    } else {
        Err(remaining
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r > 0)
            .map(|(k, &r)| (problem.kernels()[k].name().to_owned(), r))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{GoalWeights, Kernel};
    use mfa_cnn::paper_data;
    use mfa_platform::{MultiFpgaPlatform, ResourceBudget};
    use proptest::prelude::*;

    fn problem(num_fpgas: usize, budget: f64, kernels: Vec<Kernel>) -> AllocationProblem {
        AllocationProblem::builder()
            .kernels(kernels)
            .platform(MultiFpgaPlatform::aws_f1_16xlarge().with_num_fpgas(num_fpgas))
            .budget(ResourceBudget::uniform(budget))
            .weights(GoalWeights::ii_only())
            .build()
            .unwrap()
    }

    fn kernel(name: &str, wcet: f64, dsp: f64, bw: f64) -> Kernel {
        Kernel::new(name, wcet, ResourceVec::bram_dsp(dsp / 2.0, dsp), bw).unwrap()
    }

    #[test]
    fn consolidates_small_pipeline_on_one_fpga() {
        let p = problem(
            4,
            0.8,
            vec![
                kernel("a", 4.0, 0.2, 0.02),
                kernel("b", 2.0, 0.1, 0.02),
                kernel("c", 1.0, 0.1, 0.02),
            ],
        );
        let allocation = allocate(&p, &[2, 1, 1], &GreedyOptions::default()).unwrap();
        allocation.validate(&p, 1e-9).unwrap();
        // Everything fits on one FPGA (2·0.2 + 0.1 + 0.1 = 0.6 ≤ 0.8).
        assert_eq!(allocation.fpgas_used(), 1);
        assert_eq!(allocation.total_cus(0), 2);
    }

    #[test]
    fn splits_kernels_that_exceed_one_fpga() {
        let p = problem(
            2,
            0.6,
            vec![
                kernel("big", 10.0, 0.25, 0.01),
                kernel("small", 1.0, 0.1, 0.01),
            ],
        );
        // 4 CUs of "big" need 1.0 DSP > 0.6 → must span both FPGAs.
        let allocation = allocate(&p, &[4, 1], &GreedyOptions::default()).unwrap();
        allocation.validate(&p, 1e-9).unwrap();
        assert_eq!(allocation.total_cus(0), 4);
        assert!(allocation.cus(0, 0) > 0 && allocation.cus(0, 1) > 0);
    }

    #[test]
    fn fails_cleanly_when_capacity_is_insufficient() {
        let p = problem(1, 0.5, vec![kernel("a", 4.0, 0.2, 0.02)]);
        let result = allocate(&p, &[4], &GreedyOptions::default());
        assert!(matches!(result, Err(AllocError::AllocationFailed { .. })));
        // With a relaxed constraint (T = 30 %) the same counts fit
        // (4 × 0.2 = 0.8 ≤ 0.5 + 0.3).
        let relaxed = allocate(&p, &[4], &GreedyOptions::with_t_delta(0.30, 0.01));
        assert!(relaxed.is_ok());
    }

    #[test]
    fn rejects_malformed_inputs() {
        let p = problem(2, 0.6, vec![kernel("a", 4.0, 0.2, 0.02)]);
        assert!(allocate(&p, &[1, 2], &GreedyOptions::default()).is_err());
        assert!(allocate(&p, &[0], &GreedyOptions::default()).is_err());
        assert!(allocate(
            &p,
            &[1],
            &GreedyOptions {
                relaxation_step: 0.0,
                max_relaxation: 0.0
            }
        )
        .is_err());
    }

    #[test]
    fn alex16_counts_place_within_budget_on_two_fpgas() {
        let app = paper_data::alexnet_16bit();
        let p =
            AllocationProblem::from_application(&app, 2, 0.65, GoalWeights::new(1.0, 0.7)).unwrap();
        // Representative integer counts from the discretization step.
        let counts = vec![3, 1, 1, 2, 1, 4, 3, 2];
        let allocation = allocate(&p, &counts, &GreedyOptions::default()).unwrap();
        allocation.validate(&p, 1e-9).unwrap();
        for (k, &n) in counts.iter().enumerate() {
            assert_eq!(allocation.total_cus(k), n);
        }
        // The heuristic consolidates: no kernel is spread over more FPGAs than
        // strictly necessary (here every kernel fits on one FPGA by itself,
        // so per-kernel spreading must stay ≤ the single-FPGA value).
        for k in 0..p.num_kernels() {
            let n = allocation.total_cus(k) as f64;
            let single_fpga_spread = n / (1.0 + n);
            assert!(allocation.spreading_of(k) <= single_fpga_spread + 0.51);
        }
    }

    #[test]
    fn heterogeneous_placement_respects_each_devices_budget() {
        use mfa_platform::{DeviceGroup, FpgaDevice, HeterogeneousPlatform};
        // One VU9P and one KU115 at 60 %. Kernel "big" costs 0.25 DSP per CU
        // on the VU9P but 0.25·6840/5520 ≈ 0.31 on the KU115, so the only
        // split of three CUs is 2 on the VU9P + 1 on the KU115.
        let p = AllocationProblem::builder()
            .kernels(vec![
                Kernel::new("big", 10.0, ResourceVec::bram_dsp(0.05, 0.25), 0.01).unwrap(),
                Kernel::new("small", 1.0, ResourceVec::bram_dsp(0.02, 0.05), 0.01).unwrap(),
            ])
            .platform(HeterogeneousPlatform::new(
                "1×VU9P + 1×KU115",
                vec![
                    DeviceGroup::new(FpgaDevice::vu9p(), 1),
                    DeviceGroup::new(FpgaDevice::ku115(), 1),
                ],
            ))
            .budget(ResourceBudget::uniform(0.6))
            .weights(GoalWeights::ii_only())
            .build()
            .unwrap();
        let allocation = allocate(&p, &[3, 1], &GreedyOptions::default()).unwrap();
        allocation.validate(&p, 1e-9).unwrap();
        assert_eq!(allocation.total_cus(0), 3);
        // The KU115 (FPGA 1) can host at most one CU of "big": its rescaled
        // per-CU DSP share is 0.25·6840/5520 ≈ 0.31, and 2×0.31 > 0.6.
        assert!(allocation.cus(0, 1) <= 1);
        // Per-FPGA utilization stays within each device's own budget.
        for f in 0..2 {
            let used = allocation.fpga_resources(&p, f);
            assert!(
                used.fits_within(&ResourceVec::uniform(0.6), 1e-9),
                "FPGA {f}: {used}"
            );
        }
    }

    // Regression: the pre-split loop used to `break` on the first untouched
    // FPGA that could take zero copies — correct only when all FPGAs are
    // identical. On a fleet whose leading group cannot host the kernel, the
    // scan must advance to a hostable group's FPGAs instead of aborting the
    // whole pre-split phase.
    #[test]
    fn pre_split_skips_groups_that_cannot_host_the_kernel() {
        use mfa_platform::{DeviceGroup, FpgaDevice, HeterogeneousPlatform};
        // FPGA 0: the reference VU9P, where kernel "wide" costs 0.9 DSP per
        // CU — over the 80 % budget, so the VU9P can never host it. FPGAs
        // 1–2: a double-capacity device where the same CU costs 0.45.
        let big = FpgaDevice::new(
            "double",
            ResourceVec::new(2_364_480.0, 4_728_960.0, 4_320.0, 13_680.0),
            128.0,
        );
        let p = AllocationProblem::builder()
            .kernels(vec![
                Kernel::new("wide", 10.0, ResourceVec::bram_dsp(0.01, 0.9), 0.01).unwrap(),
                Kernel::new("tiny", 1.0, ResourceVec::bram_dsp(0.01, 0.05), 0.01).unwrap(),
            ])
            .platform(HeterogeneousPlatform::new(
                "1×VU9P + 2×double",
                vec![
                    DeviceGroup::new(FpgaDevice::vu9p(), 1),
                    DeviceGroup::new(big, 2),
                ],
            ))
            .budget(ResourceBudget::uniform(0.8))
            .weights(GoalWeights::ii_only())
            .build()
            .unwrap();
        // Two CUs of "wide" fit no single FPGA (0.9 on the big devices), so
        // the pre-split must spread them 1+1 over the big FPGAs — skipping
        // the VU9P instead of aborting there.
        let allocation = allocate(&p, &[2, 1], &GreedyOptions::default()).unwrap();
        allocation.validate(&p, 1e-9).unwrap();
        assert_eq!(allocation.cus(0, 0), 0);
        assert_eq!(allocation.cus(0, 1), 1);
        assert_eq!(allocation.cus(0, 2), 1);
        // With the pre-split done, "tiny" consolidates onto an already-used
        // big FPGA; the aborted pre-split used to leave every FPGA untouched
        // and park it on the VU9P instead.
        assert_eq!(allocation.cus(1, 0), 0);
    }

    #[test]
    fn criticality_orders_single_cu_kernels_first() {
        let p = problem(
            2,
            0.9,
            vec![kernel("one", 5.0, 0.2, 0.0), kernel("many", 50.0, 0.2, 0.0)],
        );
        assert!(criticality(&p, 0, 1).is_infinite());
        assert!(criticality(&p, 1, 10) < criticality(&p, 1, 2));
    }

    proptest! {
        /// Whatever the greedy allocator returns is feasible and places the
        /// exact requested CU counts.
        #[test]
        fn allocations_are_always_feasible(
            wcets in proptest::collection::vec(1.0..20.0f64, 2..6),
            dsp in 0.05..0.2f64,
            budget in 0.5..0.9f64,
            num_fpgas in 2usize..6
        ) {
            let kernels: Vec<Kernel> = wcets
                .iter()
                .enumerate()
                .map(|(i, &w)| kernel(&format!("k{i}"), w, dsp, 0.01))
                .collect();
            let p = problem(num_fpgas, budget, kernels);
            // Ask for a CU count that certainly fits: one per kernel plus one
            // extra for the slowest kernel.
            let mut counts = vec![1u32; p.num_kernels()];
            counts[0] += 1;
            if let Ok(allocation) = allocate(&p, &counts, &GreedyOptions::default()) {
                prop_assert!(allocation.validate(&p, 1e-9).is_ok());
                for (k, &n) in counts.iter().enumerate() {
                    prop_assert_eq!(allocation.total_cus(k), n);
                }
            }
        }
    }
}
