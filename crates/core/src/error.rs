//! Error type of the allocation crate.

use std::error::Error;
use std::fmt;

use mfa_gp::GpError;
use mfa_linprog::LpError;
use mfa_minlp::MinlpError;

/// Error returned by problem construction and the allocation algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AllocError {
    /// A kernel, weight, budget or other argument was invalid.
    InvalidArgument(String),
    /// The problem is infeasible: even the cheapest legal configuration
    /// (one CU per kernel) cannot be placed within the per-FPGA budgets.
    Infeasible(String),
    /// The greedy allocator could not place every CU within `R + T`.
    AllocationFailed {
        /// CUs left unplaced per kernel (kernel name, remaining CUs).
        unplaced: Vec<(String, u32)>,
    },
    /// The request's [`crate::solver::Deadline`] expired before the solve
    /// finished. Checked at every stage boundary and inside every
    /// branch-and-bound node loop, so an exhausted deadline is always a
    /// structured error — never a hang.
    DeadlineExceeded {
        /// Pipeline stage that observed the exhausted deadline.
        stage: String,
    },
    /// The geometric-programming relaxation failed.
    Gp(GpError),
    /// The MINLP solver failed.
    Minlp(MinlpError),
    /// The linear-programming substrate failed — in particular the
    /// water-filling feasibility probes report
    /// [`LpError::PivotBudgetExceeded`] here when the simplex pivot budget
    /// runs out. Like [`AllocError::DeadlineExceeded`], a structured stop
    /// rather than a hang: sweeps running under a lenient
    /// [`crate::solver::SkipPolicy`] skip the point and move on.
    Linprog(LpError),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            AllocError::Infeasible(msg) => write!(f, "infeasible problem: {msg}"),
            AllocError::AllocationFailed { unplaced } => {
                write!(f, "greedy allocation failed; unplaced CUs:")?;
                for (name, cus) in unplaced {
                    write!(f, " {name}×{cus}")?;
                }
                Ok(())
            }
            AllocError::DeadlineExceeded { stage } => {
                write!(f, "deadline exceeded during {stage}")
            }
            AllocError::Gp(err) => write!(f, "geometric-programming step failed: {err}"),
            AllocError::Minlp(err) => write!(f, "minlp step failed: {err}"),
            AllocError::Linprog(err) => write!(f, "linear-programming step failed: {err}"),
        }
    }
}

impl Error for AllocError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AllocError::Gp(err) => Some(err),
            AllocError::Minlp(err) => Some(err),
            AllocError::Linprog(err) => Some(err),
            _ => None,
        }
    }
}

impl From<GpError> for AllocError {
    fn from(err: GpError) -> Self {
        AllocError::Gp(err)
    }
}

impl From<MinlpError> for AllocError {
    fn from(err: MinlpError) -> Self {
        AllocError::Minlp(err)
    }
}

impl From<LpError> for AllocError {
    fn from(err: LpError) -> Self {
        AllocError::Linprog(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let err = AllocError::AllocationFailed {
            unplaced: vec![("CONV1".into(), 2)],
        };
        assert!(err.to_string().contains("CONV1"));
        assert!(AllocError::Infeasible("too big".into())
            .to_string()
            .contains("too big"));
        let gp = AllocError::from(GpError::Infeasible);
        assert!(Error::source(&gp).is_some());
        let deadline = AllocError::DeadlineExceeded {
            stage: "relaxation".into(),
        };
        assert!(deadline.to_string().contains("relaxation"));
        assert!(Error::source(&deadline).is_none());
        let minlp = AllocError::from(MinlpError::UnknownVariable(1));
        assert!(minlp.to_string().contains("minlp"));
        let lp = AllocError::from(LpError::PivotBudgetExceeded { pivots: 64 });
        assert!(lp.to_string().contains("64"));
        assert!(Error::source(&lp).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AllocError>();
    }
}
