//! The unified request-shaped solver API.
//!
//! Every allocation backend in this crate — the GP+A heuristic pipeline, the
//! greedy fallback, and the exact MINLP — is driven through one entry point:
//! build a [`SolveRequest`], attach [`WarmStart`] hints, a [`Deadline`] or
//! node budget, and a [`SkipPolicy`], then call [`SolveRequest::solve`] (or
//! [`SolveRequest::solve_point`] inside sweeps). The result is a
//! [`SolveReport`] carrying the placement plus structured
//! [`SolveDiagnostics`]: relaxation gap, dropped CUs, branch-and-bound nodes,
//! per-stage timing, and the [`WarmStartReport`] provenance of the hints.
//!
//! The per-backend free functions this replaces
//! (`gpa::solve_with_warm_start`, `gp_step::solve_with_hint`,
//! `discretize::solve_seeded`, `exact::solve`, …) are gone; the README's
//! migration table maps each one to its request-builder equivalent. Custom
//! engines implement [`SolverBackend`] (object safe) and run through
//! [`SolveRequest::solve_with`].
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use mfa_alloc::solver::{Backend, Deadline, SolveRequest};
//! use mfa_alloc::{AllocationProblem, GoalWeights, Kernel};
//! use mfa_platform::{MultiFpgaPlatform, ResourceBudget, ResourceVec};
//!
//! # fn main() -> Result<(), mfa_alloc::AllocError> {
//! let problem = AllocationProblem::builder()
//!     .kernels(vec![
//!         Kernel::new("produce", 4.0, ResourceVec::bram_dsp(0.05, 0.20), 0.03)?,
//!         Kernel::new("consume", 9.0, ResourceVec::bram_dsp(0.08, 0.25), 0.02)?,
//!     ])
//!     .platform(MultiFpgaPlatform::aws_f1_4xlarge())
//!     .budget(ResourceBudget::uniform(0.70))
//!     .weights(GoalWeights::new(1.0, 0.7))
//!     .build()?;
//! let report = SolveRequest::new(&problem)
//!     .backend(Backend::gpa())
//!     .deadline(Deadline::within(Duration::from_secs(30)))
//!     .solve()?;
//! assert!(report.initiation_interval_ms(&problem) < 9.0);
//! assert!(report.diagnostics.bb_nodes >= 1);
//! # Ok(())
//! # }
//! ```

use std::time::{Duration, Instant};

use mfa_linprog::LpError;
use serde::{Deserialize, Serialize};

use crate::exact::{self, ExactOptions};
use crate::gp_step::RelaxationBackend;
use crate::gpa::{self, GpaOptions};
use crate::greedy::{self, GreedyOptions};
use crate::problem::AllocationProblem;
use crate::solution::Allocation;
use crate::AllocError;

// ---------------------------------------------------------------------------
// Deadlines.

/// An absolute point in time after which a solve must give up with
/// [`AllocError::DeadlineExceeded`] instead of continuing to run.
///
/// Deadlines are checked at every stage boundary and inside every
/// branch-and-bound node loop, so an exhausted deadline surfaces as a
/// structured error — never a hang, never a panic — from every backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    instant: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn within(budget: Duration) -> Self {
        Deadline {
            instant: Instant::now() + budget,
        }
    }

    /// A deadline `seconds` from now, validating the float first.
    ///
    /// Prefer this over `Deadline::within(Duration::from_secs_f64(s))` for
    /// budgets that arrive as floats over a wire or CLI: `from_secs_f64`
    /// panics on NaN/negative input, whereas this surfaces a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::InvalidArgument`] when `seconds` is non-finite,
    /// negative, or too large to represent as a [`Duration`] — such a budget
    /// would otherwise silently become an always-expired (or panicking)
    /// deadline.
    pub fn within_seconds(seconds: f64) -> Result<Self, AllocError> {
        if !(seconds.is_finite() && seconds >= 0.0) {
            return Err(AllocError::InvalidArgument(format!(
                "a deadline budget must be a finite, non-negative number of seconds, got {seconds}"
            )));
        }
        // A finite float can still overflow `Duration` (u64 whole seconds),
        // and a representable `Duration` can still overflow `Instant + budget`
        // (e.g. 1e19 s): `Duration::from_secs_f64` and `Instant::add` both
        // panic there, which a wire- or CLI-supplied budget must never be
        // able to trigger.
        let overflow = || {
            AllocError::InvalidArgument(format!(
                "a deadline budget of {seconds} seconds overflows a Duration"
            ))
        };
        let budget = Duration::try_from_secs_f64(seconds).map_err(|_| overflow())?;
        let instant = Instant::now().checked_add(budget).ok_or_else(overflow)?;
        Ok(Deadline { instant })
    }

    /// A deadline at an absolute instant.
    pub fn at(instant: Instant) -> Self {
        Deadline { instant }
    }

    /// A deadline that is already exhausted (useful in tests and for
    /// cancelling queued requests).
    pub fn expired() -> Self {
        Deadline {
            instant: Instant::now(),
        }
    }

    /// Time left before the deadline (zero when exhausted).
    pub fn remaining(&self) -> Duration {
        self.instant.saturating_duration_since(Instant::now())
    }

    /// `true` once the deadline has passed.
    pub fn is_expired(&self) -> bool {
        Instant::now() >= self.instant
    }

    /// Errors with [`AllocError::DeadlineExceeded`] naming `stage` when the
    /// deadline has passed.
    pub(crate) fn check(&self, stage: &str) -> Result<(), AllocError> {
        if self.is_expired() {
            Err(AllocError::DeadlineExceeded {
                stage: stage.to_owned(),
            })
        } else {
            Ok(())
        }
    }
}

/// `deadline.check(stage)` for an optional deadline.
pub(crate) fn check_deadline(deadline: Option<&Deadline>, stage: &str) -> Result<(), AllocError> {
    match deadline {
        Some(d) => d.check(stage),
        None => Ok(()),
    }
}

// ---------------------------------------------------------------------------
// Warm starts.

/// Hints carried from a neighbouring solve (an adjacent budget point of a
/// sweep, the previous request for the same tenant, …). One uniform shape
/// for every backend; each backend consumes the hints it has a use for and
/// ignores the rest:
///
/// * `relaxed_ii_ms` narrows the bisection bracket of the continuous
///   relaxation and seeds the GP interior-point solver's start point
///   (consumed by [`Backend::Gpa`] and [`Backend::Greedy`]);
/// * `gp_dual` carries the neighbouring GP relaxation's final barrier
///   parameter and constraint multipliers, letting the interior-point solve
///   re-enter the barrier path near its end instead of re-running the early
///   centering sweeps (consumed by [`Backend::Gpa`] with the GP relaxation
///   backend, and only when the `relaxed_ii_ms` seed is accepted);
/// * `cu_counts` seeds the discretization branch-and-bound and — placed by
///   the greedy allocator — the exact MINLP's incumbent, both pruning from
///   node 0 (consumed by [`Backend::Gpa`] and [`Backend::Exact`]).
///
/// Hints are verified before use: a stale or wrong hint degrades to a cold
/// start and can never change feasibility or solution quality, only how much
/// work the search does (ties between equally-optimal designs go to the
/// hint). [`SolveDiagnostics::warm_start`] reports which hints were taken.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WarmStart {
    /// Relaxed initiation interval of the neighbouring solve, in ms.
    pub relaxed_ii_ms: Option<f64>,
    /// Final (post-drop) integer CU counts of the neighbouring solve.
    pub cu_counts: Option<Vec<u32>>,
    /// Dual state of the neighbouring solve's GP relaxation, if it ran one.
    pub gp_dual: Option<DualWarmStart>,
}

impl WarmStart {
    /// An empty warm start (a cold solve).
    pub fn none() -> Self {
        WarmStart::default()
    }

    /// Sets the relaxed-II hint.
    #[must_use]
    pub fn with_relaxed_ii(mut self, ii_ms: f64) -> Self {
        self.relaxed_ii_ms = Some(ii_ms);
        self
    }

    /// Sets the integer-counts hint.
    #[must_use]
    pub fn with_cu_counts(mut self, counts: Vec<u32>) -> Self {
        self.cu_counts = Some(counts);
        self
    }

    /// Sets the GP dual-state hint.
    #[must_use]
    pub fn with_gp_dual(mut self, dual: DualWarmStart) -> Self {
        self.gp_dual = Some(dual);
        self
    }

    /// `true` when no hint is present.
    pub fn is_empty(&self) -> bool {
        self.relaxed_ii_ms.is_none() && self.cu_counts.is_none() && self.gp_dual.is_none()
    }
}

impl From<&SolveReport> for WarmStart {
    /// The warm-start state a solved report provides to its neighbours.
    fn from(report: &SolveReport) -> Self {
        WarmStart {
            relaxed_ii_ms: report.diagnostics.relaxed_ii_ms,
            cu_counts: Some(report.diagnostics.cu_counts.clone()),
            gp_dual: report.diagnostics.gp_dual.clone(),
        }
    }
}

/// Dual warm-start state of a GP relaxation: the final barrier parameter `t`
/// and the constraint multiplier estimates `λ_i = 1/(t·s_i)` of the
/// producing solve, in that solve's explicit-constraint order.
///
/// Carried between neighbouring sweep points by [`WarmStart::gp_dual`] and
/// the explore layer's warm-start cache. Consumed only together with an
/// accepted `relaxed_ii_ms` primal seed; the GP solver validates the state
/// (length, sign, finiteness, positive slack at the seed) and silently falls
/// back to the primal-only warm start when anything is off, so a stale dual
/// can cost barrier iterations but never changes the optimum.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DualWarmStart {
    /// Final barrier parameter `t` of the producing solve.
    pub barrier_t: f64,
    /// Multiplier estimates for the explicit constraints, in model order.
    pub duals: Vec<f64>,
}

impl From<&mfa_gp::GpDualState> for DualWarmStart {
    fn from(state: &mfa_gp::GpDualState) -> Self {
        DualWarmStart {
            barrier_t: state.barrier_t,
            duals: state.duals.clone(),
        }
    }
}

impl From<&DualWarmStart> for mfa_gp::GpDualState {
    fn from(state: &DualWarmStart) -> Self {
        mfa_gp::GpDualState {
            barrier_t: state.barrier_t,
            duals: state.duals.clone(),
        }
    }
}

/// Which warm-start hints a solve actually used (the *provenance* of the
/// result): distinct from which hints were merely present in the request,
/// since invalid hints are verified and dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarmStartReport {
    /// The relaxed-II hint narrowed the bisection bracket or seeded the GP
    /// interior point.
    pub ii_hint_used: bool,
    /// The GP dual-state hint re-entered the barrier path near its end (only
    /// possible when the relaxed-II seed was also accepted).
    pub dual_hint_used: bool,
    /// The integer-counts hint was accepted as a branch-and-bound incumbent
    /// (discretization or exact MINLP).
    pub incumbent_used: bool,
}

impl WarmStartReport {
    /// Compact label used in exports: `cold` or a `+`-joined subset of
    /// `ii`, `dual`, `incumbent` (e.g. `ii+dual+incumbent`).
    pub fn provenance(&self) -> &'static str {
        match (self.ii_hint_used, self.dual_hint_used, self.incumbent_used) {
            (false, false, false) => "cold",
            (true, false, false) => "ii",
            (false, true, false) => "dual",
            (false, false, true) => "incumbent",
            (true, true, false) => "ii+dual",
            (true, false, true) => "ii+incumbent",
            (false, true, true) => "dual+incumbent",
            (true, true, true) => "ii+dual+incumbent",
        }
    }

    /// Parses a [`provenance`](Self::provenance) label.
    pub fn from_provenance(label: &str) -> Option<Self> {
        let mut report = WarmStartReport::default();
        if label == "cold" {
            return Some(report);
        }
        for part in label.split('+') {
            match part {
                "ii" if !report.ii_hint_used => report.ii_hint_used = true,
                "dual" if !report.dual_hint_used => report.dual_hint_used = true,
                "incumbent" if !report.incumbent_used => report.incumbent_used = true,
                _ => return None,
            }
        }
        // Only accept the canonical ordering `provenance` emits.
        (Self::provenance(&report) == label).then_some(report)
    }
}

// ---------------------------------------------------------------------------
// Skip policy.

/// Whether a per-point solver error means "this point has no solution — skip
/// it" rather than "the request itself is broken — error".
///
/// Sweeps over constraint grids routinely cross infeasible territory; the
/// paper's figures simply omit such points. [`SolveRequest::solve_point`]
/// applies the request's policy; [`SolveRequest::solve`] always errors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SkipPolicy {
    /// A constraint too tight for the application
    /// ([`AllocError::Infeasible`]), a discretized configuration the
    /// allocator cannot bin-pack ([`AllocError::AllocationFailed`]), a
    /// budgeted MINLP solve that exhausts its node budget without an
    /// incumbent, an exhausted water-filling simplex pivot budget
    /// ([`LpError::PivotBudgetExceeded`]), and an exhausted [`Deadline`] all
    /// mean "no data for this point". Anything else (invalid arguments,
    /// numerical solver failures) is an error.
    #[default]
    Lenient,
    /// Only genuine infeasibility ([`AllocError::Infeasible`]) is skipped;
    /// an unplaceable discretization, an exhausted node or pivot budget and
    /// a missed deadline are hard errors. Exact sweeps that must account for
    /// every point opt into this.
    Strict,
}

impl SkipPolicy {
    /// Applies the policy to an error.
    pub fn is_skippable(&self, err: &AllocError) -> bool {
        match self {
            SkipPolicy::Lenient => matches!(
                err,
                AllocError::Infeasible(_)
                    | AllocError::AllocationFailed { .. }
                    | AllocError::DeadlineExceeded { .. }
                    | AllocError::Minlp(mfa_minlp::MinlpError::NodeLimitWithoutSolution { .. })
                    | AllocError::Linprog(LpError::PivotBudgetExceeded { .. })
            ),
            SkipPolicy::Strict => matches!(err, AllocError::Infeasible(_)),
        }
    }

    /// Label used by exports and the wire codec.
    pub fn label(&self) -> &'static str {
        match self {
            SkipPolicy::Lenient => "lenient",
            SkipPolicy::Strict => "strict",
        }
    }

    /// Parses a [`label`](Self::label).
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "lenient" => Some(SkipPolicy::Lenient),
            "strict" => Some(SkipPolicy::Strict),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Backends.

/// Conventional label of the greedy fallback, shared by the registry and the
/// trait impl so the two cannot drift (see `gpa::GPA_LABEL`).
pub(crate) const GREEDY_LABEL: &str = "Greedy";

/// The built-in backend registry. Each variant names one solution path and
/// carries its options; [`Backend::instantiate`] turns it into the matching
/// [`SolverBackend`] implementation.
#[derive(Debug, Clone, PartialEq)]
pub enum Backend {
    /// The paper's GP+A heuristic: continuous relaxation (GP interior point
    /// or analytic bisection, per [`GpaOptions::relaxation_backend`]),
    /// branch-and-bound discretization, greedy placement.
    Gpa {
        /// Pipeline options (relaxation engine, discretization, greedy `T`/`Δ`).
        options: GpaOptions,
    },
    /// The cheap serving fallback: bisection relaxation, floor rounding (no
    /// discretization search), greedy placement. Roughly the cost of one
    /// relaxation; the discretization optimality gap is reported in the
    /// diagnostics.
    Greedy {
        /// Greedy-allocator options (`T`, `Δ`).
        options: GreedyOptions,
    },
    /// The exact MINLP of Eqs. 5–10 solved by branch-and-bound.
    Exact {
        /// Exact-solver options (objective mode, node/time budget, symmetry
        /// breaking).
        options: ExactOptions,
    },
}

impl Backend {
    /// GP+A with the paper's configuration (GP relaxation, `T = 0`).
    pub fn gpa() -> Self {
        Backend::Gpa {
            options: GpaOptions::paper_defaults(),
        }
    }

    /// GP+A with the fast bisection relaxation.
    pub fn gpa_fast() -> Self {
        Backend::Gpa {
            options: GpaOptions::fast(),
        }
    }

    /// GP+A with explicit options.
    pub fn gpa_with(options: GpaOptions) -> Self {
        Backend::Gpa { options }
    }

    /// The greedy fallback with default options.
    pub fn greedy() -> Self {
        Backend::Greedy {
            options: GreedyOptions::default(),
        }
    }

    /// The greedy fallback with explicit options.
    pub fn greedy_with(options: GreedyOptions) -> Self {
        Backend::Greedy { options }
    }

    /// The exact MINLP with default options (`β = 0`, unbounded search).
    pub fn exact() -> Self {
        Backend::Exact {
            options: ExactOptions::default(),
        }
    }

    /// The exact MINLP with explicit options.
    pub fn exact_with(options: ExactOptions) -> Self {
        Backend::Exact { options }
    }

    /// Conventional label of the backend, matching the paper's figure keys
    /// where one exists (`GP+A`, `Greedy`, `MINLP`, `MINLP+G`).
    pub fn label(&self) -> &'static str {
        match self {
            Backend::Gpa { .. } => gpa::GPA_LABEL,
            Backend::Greedy { .. } => GREEDY_LABEL,
            Backend::Exact { options } => options.mode.label(),
        }
    }

    /// Resolves the variant to its [`SolverBackend`] implementation.
    pub fn instantiate(&self) -> Box<dyn SolverBackend> {
        match self {
            Backend::Gpa { options } => Box::new(GpaBackend {
                options: options.clone(),
            }),
            Backend::Greedy { options } => Box::new(GreedyBackend {
                options: options.clone(),
            }),
            Backend::Exact { options } => Box::new(ExactBackend {
                options: options.clone(),
            }),
        }
    }
}

/// An allocation engine that can serve a [`SolveRequest`]. Object safe, so
/// registries of heterogeneous engines (`Vec<Box<dyn SolverBackend>>`) work;
/// the built-in implementations are reached through [`Backend`].
///
/// Implementations must honour the request's [`Deadline`] (returning
/// [`AllocError::DeadlineExceeded`] rather than overrunning), consume the
/// [`WarmStart`] hints they understand, and report what they did in the
/// [`SolveDiagnostics`].
pub trait SolverBackend {
    /// Human-readable engine name (used as [`SolveReport::backend`]).
    fn name(&self) -> &str;

    /// Serves one request.
    ///
    /// # Errors
    ///
    /// Infeasibility, placement failure, deadline exhaustion and solver
    /// failures; see [`AllocError`].
    fn solve(&self, request: &SolveRequest<'_>) -> Result<SolveReport, AllocError>;
}

// ---------------------------------------------------------------------------
// The request.

/// One allocation request: problem + backend selection + hints + limits +
/// skip policy. Build with the fluent methods, then [`solve`](Self::solve).
#[derive(Debug, Clone)]
pub struct SolveRequest<'p> {
    problem: &'p AllocationProblem,
    backend: Backend,
    warm_start: WarmStart,
    deadline: Option<Deadline>,
    node_budget: Option<usize>,
    skip_policy: SkipPolicy,
}

impl<'p> SolveRequest<'p> {
    /// A request for `problem` with the default backend ([`Backend::gpa`]),
    /// no hints, no limits, and the [`SkipPolicy::Lenient`] policy.
    pub fn new(problem: &'p AllocationProblem) -> Self {
        SolveRequest {
            problem,
            backend: Backend::gpa(),
            warm_start: WarmStart::none(),
            deadline: None,
            node_budget: None,
            skip_policy: SkipPolicy::default(),
        }
    }

    /// Selects the backend.
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Attaches warm-start hints.
    #[must_use]
    pub fn warm_start(mut self, warm_start: WarmStart) -> Self {
        self.warm_start = warm_start;
        self
    }

    /// Attaches a deadline.
    #[must_use]
    pub fn deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps the branch-and-bound node count of whichever search the backend
    /// runs (the discretization for GP+A, the MINLP tree for exact). The cap
    /// combines with the backend options' own limit by minimum.
    #[must_use]
    pub fn node_budget(mut self, max_nodes: usize) -> Self {
        self.node_budget = Some(max_nodes);
        self
    }

    /// Sets the skip policy applied by [`solve_point`](Self::solve_point).
    #[must_use]
    pub fn skip_policy(mut self, policy: SkipPolicy) -> Self {
        self.skip_policy = policy;
        self
    }

    /// The problem being solved.
    pub fn problem(&self) -> &'p AllocationProblem {
        self.problem
    }

    /// The selected backend.
    pub fn backend_spec(&self) -> &Backend {
        &self.backend
    }

    /// The warm-start hints.
    pub fn warm_start_hints(&self) -> &WarmStart {
        &self.warm_start
    }

    /// The deadline, if any.
    pub fn deadline_spec(&self) -> Option<&Deadline> {
        self.deadline.as_ref()
    }

    /// The request-level node budget, if any.
    pub fn node_budget_spec(&self) -> Option<usize> {
        self.node_budget
    }

    /// The skip policy.
    pub fn skip_policy_spec(&self) -> SkipPolicy {
        self.skip_policy
    }

    /// Serves the request with the selected [`Backend`].
    ///
    /// # Errors
    ///
    /// Infeasibility, placement failure, [`AllocError::DeadlineExceeded`]
    /// when the deadline is exhausted (checked before any work starts and at
    /// every stage boundary), and solver failures.
    pub fn solve(&self) -> Result<SolveReport, AllocError> {
        check_deadline(self.deadline.as_ref(), "request admission")?;
        self.backend
            .instantiate()
            .solve(self)
            .map(|report| self.fill_migration_diagnostics(report))
    }

    /// Serves the request with a caller-provided engine instead of the
    /// built-in registry.
    ///
    /// # Errors
    ///
    /// Same contract as [`solve`](Self::solve).
    pub fn solve_with(&self, backend: &dyn SolverBackend) -> Result<SolveReport, AllocError> {
        check_deadline(self.deadline.as_ref(), "request admission")?;
        backend
            .solve(self)
            .map(|report| self.fill_migration_diagnostics(report))
    }

    /// Fills [`SolveDiagnostics::moved_cus`]/
    /// [`SolveDiagnostics::migration_cost`] from the problem's reallocation
    /// spec — centrally, so every backend (including custom ones) reports
    /// movement uniformly.
    fn fill_migration_diagnostics(&self, mut report: SolveReport) -> SolveReport {
        if self.problem.reallocation().is_some() {
            let outcome = self.problem.migration_of(&report.allocation);
            report.diagnostics.moved_cus = outcome.moved_cus;
            report.diagnostics.migration_cost = outcome.cost;
        }
        report
    }

    /// [`solve`](Self::solve) with the request's [`SkipPolicy`] applied:
    /// `Ok(None)` for skippable errors ("this point has no solution"),
    /// `Err` only for failures the policy treats as fatal.
    ///
    /// # Errors
    ///
    /// Non-skippable solver failures under the request's policy.
    pub fn solve_point(&self) -> Result<Option<SolveReport>, AllocError> {
        match self.solve() {
            Ok(report) => Ok(Some(report)),
            Err(err) if self.skip_policy.is_skippable(&err) => Ok(None),
            Err(err) => Err(err),
        }
    }
}

// ---------------------------------------------------------------------------
// The report.

/// Wall-clock time spent in each stage of a solve. Informational only: the
/// deterministic effort counters ([`SolveDiagnostics::bb_nodes`],
/// [`SolveDiagnostics::relaxation_iterations`]) are what reproducible
/// pipelines should compare.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTiming {
    /// Whole solve.
    pub total: Duration,
    /// Continuous relaxation (GP or bisection); zero for the exact backend.
    pub relaxation: Duration,
    /// Discretization branch-and-bound (GP+A) or the MINLP search (exact).
    pub discretization: Duration,
    /// Greedy placement; zero for the exact backend.
    pub allocation: Duration,
}

/// Structured diagnostics of one solve, alongside the placement itself.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveDiagnostics {
    /// Relaxed (continuous) initiation interval in ms — the lower bound the
    /// heuristic discretized from, or the MINLP's proven bound. `None` when
    /// the backend has no meaningful relaxation value.
    pub relaxed_ii_ms: Option<f64>,
    /// Relative gap between the achieved initiation interval and the solve's
    /// lower bound: `(II − bound) / bound` for the heuristic backends,
    /// the branch-and-bound optimality gap for the exact backend.
    pub relaxation_gap: Option<f64>,
    /// `true` when the exact backend proved optimality; `None` for the
    /// heuristics.
    pub proven_optimal: Option<bool>,
    /// Final integer CU counts per kernel (post-drop).
    pub cu_counts: Vec<u32>,
    /// CUs removed per kernel by the feasibility fallback (all zeros when
    /// the discretized counts were placed as-is; always zeros for exact).
    pub dropped_cus: Vec<u32>,
    /// Branch-and-bound nodes visited (discretization for GP+A, MINLP tree
    /// for exact, zero for greedy).
    pub bb_nodes: usize,
    /// Deterministic relaxation effort: bisection feasibility steps or GP
    /// Newton iterations of the top-level relaxation.
    pub relaxation_iterations: usize,
    /// Interior-point barrier iterations of the top-level GP relaxation
    /// (zero for bisection-only and exact solves). Machine-independent.
    pub barrier_iterations: usize,
    /// KKT factorizations performed by the GP relaxation, counting full
    /// factorizations and in-place diagonal refreshes alike (zero for
    /// bisection-only and exact solves). Machine-independent.
    pub factorizations: usize,
    /// Simplex pivots spent in the linear-programming substrate: the
    /// water-filling feasibility probes of the heuristic backends, or every
    /// node LP of the exact MINLP search. Machine-independent.
    pub simplex_pivots: usize,
    /// CUs the returned placement newly configures relative to the problem's
    /// incumbent (group-granular; zero when no
    /// [`ReallocationSpec`](crate::realloc::ReallocationSpec) is attached).
    /// Filled centrally by [`SolveRequest::solve`]/
    /// [`solve_with`](SolveRequest::solve_with), so custom backends get it
    /// for free.
    pub moved_cus: u32,
    /// The unweighted migration cost `Σ_g c_g · moved_g` of the returned
    /// placement (zero when no reallocation spec is attached).
    pub migration_cost: f64,
    /// Dual state of the GP relaxation, offered to neighbouring solves via
    /// [`WarmStart::gp_dual`]. `None` when no GP relaxation ran.
    pub gp_dual: Option<DualWarmStart>,
    /// Which warm-start hints the solve actually consumed.
    pub warm_start: WarmStartReport,
    /// Label of the backend the caller originally requested, when a serving
    /// layer downgraded the request to a cheaper backend (deadline-aware
    /// graceful degradation). `None` for every direct solve; backends never
    /// set this themselves — it is provenance written by the layer that made
    /// the substitution, so a degraded result is auditable instead of
    /// silently passing as the requested backend's output.
    pub degraded_from: Option<String>,
    /// Wall-clock stage timing.
    pub timing: StageTiming,
}

impl SolveDiagnostics {
    /// Total CUs dropped by the feasibility fallback.
    pub fn total_dropped_cus(&self) -> u32 {
        self.dropped_cus.iter().sum()
    }
}

/// Outcome of a [`SolveRequest`]: the placement plus structured diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// The placement.
    pub allocation: Allocation,
    /// Name of the backend that served the request.
    pub backend: String,
    /// Structured solve diagnostics.
    pub diagnostics: SolveDiagnostics,
}

impl SolveReport {
    /// Initiation interval of the returned placement in milliseconds.
    pub fn initiation_interval_ms(&self, problem: &AllocationProblem) -> f64 {
        self.allocation.initiation_interval(problem)
    }

    /// The warm-start state this solve provides to a neighbouring request
    /// (shorthand for `WarmStart::from(report)`).
    pub fn warm_start(&self) -> WarmStart {
        WarmStart::from(self)
    }
}

// ---------------------------------------------------------------------------
// Built-in backend implementations.

/// [`Backend::Gpa`]: the full GP+A pipeline.
struct GpaBackend {
    options: GpaOptions,
}

impl SolverBackend for GpaBackend {
    fn name(&self) -> &str {
        gpa::GPA_LABEL
    }

    fn solve(&self, request: &SolveRequest<'_>) -> Result<SolveReport, AllocError> {
        gpa::run_pipeline(
            request.problem(),
            &self.options,
            request.warm_start_hints(),
            request.deadline_spec(),
            request.node_budget_spec(),
        )
    }
}

/// [`Backend::Greedy`]: bisection relaxation, floor rounding, greedy
/// placement — no discretization search.
struct GreedyBackend {
    options: GreedyOptions,
}

impl SolverBackend for GreedyBackend {
    fn name(&self) -> &str {
        GREEDY_LABEL
    }

    fn solve(&self, request: &SolveRequest<'_>) -> Result<SolveReport, AllocError> {
        let problem = request.problem();
        let warm = request.warm_start_hints();
        let deadline = request.deadline_spec();
        let start = Instant::now();
        problem.validate_feasibility()?;

        check_deadline(deadline, "greedy relaxation")?;
        let relaxation_start = Instant::now();
        let (relaxation, stats) = crate::gp_step::relax_hinted(
            problem,
            RelaxationBackend::Bisection,
            warm.relaxed_ii_ms,
            None,
        )?;
        let relaxation_time = relaxation_start.elapsed();

        // Floor the fractional counts (never below one CU). Floors of a
        // budget-feasible fractional point stay budget-feasible, so the drop
        // loop below only ever fires on bin-packing failures.
        check_deadline(deadline, "greedy placement")?;
        let cu_counts: Vec<u32> = relaxation
            .cu_counts
            .iter()
            .map(|&n| (n.floor() as u32).max(1))
            .collect();
        let allocation_start = Instant::now();
        let (allocation, mut cu_counts, dropped_cus) =
            gpa::place_with_drops(problem, cu_counts, &self.options, deadline)?;
        let allocation = gpa::snap_to_incumbent(problem, allocation)?;
        if problem.migration_active() {
            cu_counts = (0..allocation.num_kernels())
                .map(|k| allocation.total_cus(k))
                .collect();
        }
        let allocation_time = allocation_start.elapsed();

        let achieved = allocation.initiation_interval(problem);
        let relaxed = relaxation.initiation_interval_ms;
        Ok(SolveReport {
            allocation,
            backend: self.name().to_owned(),
            diagnostics: SolveDiagnostics {
                relaxed_ii_ms: Some(relaxed),
                relaxation_gap: Some(
                    (achieved - relaxed).max(0.0) / relaxed.max(f64::MIN_POSITIVE),
                ),
                proven_optimal: None,
                cu_counts,
                dropped_cus,
                bb_nodes: 0,
                relaxation_iterations: stats.iterations,
                barrier_iterations: stats.barrier_iterations,
                factorizations: stats.factorizations,
                simplex_pivots: stats.simplex_pivots,
                moved_cus: 0,
                migration_cost: 0.0,
                gp_dual: stats.dual_state.as_ref().map(DualWarmStart::from),
                warm_start: WarmStartReport {
                    ii_hint_used: stats.hint_used,
                    dual_hint_used: stats.dual_hint_used,
                    incumbent_used: false,
                },
                degraded_from: None,
                timing: StageTiming {
                    total: start.elapsed(),
                    relaxation: relaxation_time,
                    discretization: Duration::ZERO,
                    allocation: allocation_time,
                },
            },
        })
    }
}

/// [`Backend::Exact`]: the full MINLP by branch-and-bound.
struct ExactBackend {
    options: ExactOptions,
}

impl SolverBackend for ExactBackend {
    fn name(&self) -> &str {
        self.options.mode.label()
    }

    fn solve(&self, request: &SolveRequest<'_>) -> Result<SolveReport, AllocError> {
        exact::run(
            request.problem(),
            &self.options,
            request.warm_start_hints(),
            request.deadline_spec(),
            request.node_budget_spec(),
        )
    }
}

/// Derives the integer CU counts of an allocation, kernel-major — used to
/// seed MINLP incumbents and to report exact-backend counts.
pub(crate) fn counts_of(problem: &AllocationProblem, allocation: &Allocation) -> Vec<u32> {
    (0..problem.num_kernels())
        .map(|k| allocation.total_cus(k))
        .collect()
}

/// Places warm-start counts with the greedy allocator, returning `None` when
/// the counts are not placeable as-is (warm starts are advisory — an
/// unplaceable hint is dropped, never an error).
pub(crate) fn place_hint(
    problem: &AllocationProblem,
    counts: &[u32],
    options: &GreedyOptions,
) -> Option<Allocation> {
    if counts.len() != problem.num_kernels() || counts.contains(&0) {
        return None;
    }
    greedy::allocate(problem, counts, options).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::PaperCase;
    use mfa_cnn::paper_data;
    use mfa_platform::{MultiFpgaPlatform, ResourceBudget, ResourceVec};

    fn alex16(constraint: f64) -> AllocationProblem {
        PaperCase::Alex16OnTwoFpgas.problem(constraint).unwrap()
    }

    #[test]
    fn request_defaults_and_accessors() {
        let problem = alex16(0.70);
        let request = SolveRequest::new(&problem);
        assert_eq!(request.backend_spec().label(), "GP+A");
        assert!(request.warm_start_hints().is_empty());
        assert!(request.deadline_spec().is_none());
        assert_eq!(request.skip_policy_spec(), SkipPolicy::Lenient);
        let request = request
            .backend(Backend::exact())
            .node_budget(7)
            .skip_policy(SkipPolicy::Strict);
        assert_eq!(request.backend_spec().label(), "MINLP");
        assert_eq!(request.node_budget_spec(), Some(7));
        assert_eq!(request.skip_policy_spec(), SkipPolicy::Strict);
    }

    #[test]
    fn all_backends_solve_alex16_and_agree_on_feasibility() {
        let problem = alex16(0.70);
        for backend in [
            Backend::gpa_fast(),
            Backend::gpa(),
            Backend::greedy(),
            Backend::exact_with(ExactOptions::ii_only_with_budget(2_000, 10.0)),
        ] {
            let label = backend.label();
            let report = SolveRequest::new(&problem)
                .backend(backend)
                .solve()
                .unwrap_or_else(|err| panic!("{label}: {err}"));
            report.allocation.validate(&problem, 1e-6).unwrap();
            assert!(report.initiation_interval_ms(&problem) < 6.7, "{label}");
            assert_eq!(report.diagnostics.cu_counts.len(), problem.num_kernels());
            // The reported counts match the placement.
            for (k, &n) in report.diagnostics.cu_counts.iter().enumerate() {
                assert_eq!(report.allocation.total_cus(k), n, "{label} kernel {k}");
            }
        }
    }

    #[test]
    fn greedy_backend_is_cheap_and_bounded_by_the_relaxation() {
        let problem = alex16(0.70);
        let greedy = SolveRequest::new(&problem)
            .backend(Backend::greedy())
            .solve()
            .unwrap();
        let gpa = SolveRequest::new(&problem)
            .backend(Backend::gpa_fast())
            .solve()
            .unwrap();
        assert_eq!(greedy.diagnostics.bb_nodes, 0);
        let relaxed = greedy.diagnostics.relaxed_ii_ms.unwrap();
        // Floor rounding can only be worse than (or equal to) the searched
        // discretization, and both are bounded below by the relaxation.
        assert!(greedy.initiation_interval_ms(&problem) >= relaxed - 1e-9);
        assert!(
            greedy.initiation_interval_ms(&problem) >= gpa.initiation_interval_ms(&problem) - 1e-9
        );
    }

    #[test]
    fn exhausted_deadline_is_a_structured_error_from_every_backend() {
        let problem = alex16(0.70);
        for backend in [
            Backend::gpa_fast(),
            Backend::gpa(),
            Backend::greedy(),
            Backend::exact(),
        ] {
            let label = backend.label();
            let err = SolveRequest::new(&problem)
                .backend(backend)
                .deadline(Deadline::expired())
                .solve()
                .unwrap_err();
            assert!(
                matches!(err, AllocError::DeadlineExceeded { .. }),
                "{label}: {err}"
            );
        }
    }

    #[test]
    fn solve_point_applies_the_skip_policy() {
        // 20 % cannot host Alex-32's CONV2 → Infeasible is skipped by both
        // policies.
        let infeasible = PaperCase::Alex32OnFourFpgas.problem(0.20).unwrap();
        for policy in [SkipPolicy::Lenient, SkipPolicy::Strict] {
            let point = SolveRequest::new(&infeasible)
                .backend(Backend::gpa_fast())
                .skip_policy(policy)
                .solve_point()
                .unwrap();
            assert!(point.is_none(), "{policy:?}");
        }
        // An exhausted deadline is a skipped point only under Lenient.
        let problem = alex16(0.70);
        let lenient = SolveRequest::new(&problem)
            .deadline(Deadline::expired())
            .solve_point()
            .unwrap();
        assert!(lenient.is_none());
        let strict = SolveRequest::new(&problem)
            .deadline(Deadline::expired())
            .skip_policy(SkipPolicy::Strict)
            .solve_point();
        assert!(matches!(strict, Err(AllocError::DeadlineExceeded { .. })));
    }

    #[test]
    fn skip_policy_classification_matches_the_old_predicate() {
        let lenient = SkipPolicy::Lenient;
        assert!(lenient.is_skippable(&AllocError::Infeasible("too tight".into())));
        assert!(lenient.is_skippable(&AllocError::AllocationFailed {
            unplaced: vec![("CONV1".into(), 2)],
        }));
        assert!(lenient.is_skippable(&AllocError::from(
            mfa_minlp::MinlpError::NodeLimitWithoutSolution { nodes: 34 }
        )));
        assert!(lenient.is_skippable(&AllocError::DeadlineExceeded {
            stage: "relaxation".into()
        }));
        assert!(
            lenient.is_skippable(&AllocError::from(LpError::PivotBudgetExceeded {
                pivots: 50_000
            }))
        );
        assert!(!lenient.is_skippable(&AllocError::InvalidArgument("bad".into())));
        assert!(!lenient.is_skippable(&AllocError::from(mfa_minlp::MinlpError::UnknownVariable(0))));
        assert!(
            !lenient.is_skippable(&AllocError::from(LpError::InvalidArgument(
                "nan coefficient".into()
            )))
        );

        let strict = SkipPolicy::Strict;
        assert!(strict.is_skippable(&AllocError::Infeasible("too tight".into())));
        assert!(!strict.is_skippable(&AllocError::AllocationFailed {
            unplaced: vec![("CONV1".into(), 2)],
        }));
        assert!(!strict.is_skippable(&AllocError::from(
            mfa_minlp::MinlpError::NodeLimitWithoutSolution { nodes: 34 }
        )));
        assert!(!strict.is_skippable(&AllocError::DeadlineExceeded {
            stage: "relaxation".into()
        }));
        assert!(
            !strict.is_skippable(&AllocError::from(LpError::PivotBudgetExceeded {
                pivots: 50_000
            }))
        );
    }

    #[test]
    fn warm_start_round_trips_through_a_report() {
        let problem = alex16(0.70);
        let report = SolveRequest::new(&problem)
            .backend(Backend::gpa_fast())
            .solve()
            .unwrap();
        let warm = report.warm_start();
        assert_eq!(warm.relaxed_ii_ms, report.diagnostics.relaxed_ii_ms);
        assert_eq!(
            warm.cu_counts.as_deref(),
            Some(&report.diagnostics.cu_counts[..])
        );
        assert!(!warm.is_empty());
        assert!(WarmStart::none().is_empty());
    }

    #[test]
    fn bisection_hint_narrows_the_bracket() {
        let problem = alex16(0.70);
        let cold = SolveRequest::new(&problem)
            .backend(Backend::gpa_fast())
            .solve()
            .unwrap();
        assert_eq!(cold.diagnostics.warm_start.provenance(), "cold");
        let warm = SolveRequest::new(&problem)
            .backend(Backend::gpa_fast())
            .warm_start(WarmStart::none().with_relaxed_ii(cold.diagnostics.relaxed_ii_ms.unwrap()))
            .solve()
            .unwrap();
        assert!(warm.diagnostics.warm_start.ii_hint_used);
        assert_eq!(warm.diagnostics.warm_start.provenance(), "ii");
        assert!(
            warm.diagnostics.relaxation_iterations < cold.diagnostics.relaxation_iterations,
            "warm {} vs cold {} bisection steps",
            warm.diagnostics.relaxation_iterations,
            cold.diagnostics.relaxation_iterations
        );
        assert!(
            (warm.initiation_interval_ms(&problem) - cold.initiation_interval_ms(&problem)).abs()
                < 1e-9
        );
    }

    #[test]
    fn gp_hint_seeds_the_interior_point() {
        let problem = alex16(0.70);
        let cold = SolveRequest::new(&problem)
            .backend(Backend::gpa())
            .solve()
            .unwrap();
        let warm = SolveRequest::new(&problem)
            .backend(Backend::gpa())
            .warm_start(WarmStart::none().with_relaxed_ii(cold.diagnostics.relaxed_ii_ms.unwrap()))
            .solve()
            .unwrap();
        assert!(warm.diagnostics.warm_start.ii_hint_used);
        assert!(
            warm.diagnostics.relaxation_iterations < cold.diagnostics.relaxation_iterations,
            "warm {} vs cold {} Newton steps",
            warm.diagnostics.relaxation_iterations,
            cold.diagnostics.relaxation_iterations
        );
        // The relaxed optimum is unchanged beyond solver tolerance.
        let a = warm.diagnostics.relaxed_ii_ms.unwrap();
        let b = cold.diagnostics.relaxed_ii_ms.unwrap();
        assert!((a - b).abs() < 1e-4 * b, "warm {a} vs cold {b}");
    }

    /// Shared body of the two dual warm-start effort tests: solve `problem`
    /// cold, solve `neighbour` cold, then re-solve `problem` seeded with the
    /// neighbour's full warm-start state (primal + dual + incumbent, exactly
    /// what the explore layer's cache hands over) and require the dual hint
    /// to be consumed and to strictly cut both barrier iterations and KKT
    /// factorizations against the cold solve — without moving the optimum.
    fn assert_dual_warm_start_cuts_barrier_effort(
        problem: &AllocationProblem,
        neighbour: &AllocationProblem,
    ) {
        let cold = SolveRequest::new(problem)
            .backend(Backend::gpa())
            .solve()
            .unwrap();
        assert!(
            cold.diagnostics.gp_dual.is_some(),
            "a GP relaxation must publish its dual state"
        );
        assert!(cold.diagnostics.barrier_iterations > 0);
        assert!(cold.diagnostics.factorizations > 0);

        let seed = SolveRequest::new(neighbour)
            .backend(Backend::gpa())
            .solve()
            .unwrap();
        assert!(seed.warm_start().gp_dual.is_some());

        let warm = SolveRequest::new(problem)
            .backend(Backend::gpa())
            .warm_start(seed.warm_start())
            .solve()
            .unwrap();
        assert!(warm.diagnostics.warm_start.ii_hint_used);
        assert!(
            warm.diagnostics.warm_start.dual_hint_used,
            "the neighbouring dual state was not consumed"
        );
        assert!(
            warm.diagnostics.barrier_iterations < cold.diagnostics.barrier_iterations,
            "warm {} vs cold {} barrier iterations",
            warm.diagnostics.barrier_iterations,
            cold.diagnostics.barrier_iterations
        );
        assert!(
            warm.diagnostics.factorizations < cold.diagnostics.factorizations,
            "warm {} vs cold {} factorizations",
            warm.diagnostics.factorizations,
            cold.diagnostics.factorizations
        );
        // The relaxed optimum is unchanged beyond solver tolerance: a dual
        // hint only spends less effort, it never moves the answer.
        let a = warm.diagnostics.relaxed_ii_ms.unwrap();
        let b = cold.diagnostics.relaxed_ii_ms.unwrap();
        assert!((a - b).abs() < 1e-4 * b, "warm {a} vs cold {b}");
    }

    #[test]
    fn alex16_dual_warm_start_cuts_barrier_effort() {
        // Neighbouring sweep points of the Fig. 2 Alex-16 quick preset: the
        // tighter point's solution is feasible at the looser one, so every
        // hint — primal II, dual state, incumbent counts — is accepted.
        assert_dual_warm_start_cuts_barrier_effort(&alex16(0.70), &alex16(0.65));
    }

    #[test]
    fn vgg_dual_warm_start_cuts_barrier_effort() {
        let vgg = |constraint: f64| {
            AllocationProblem::from_application(
                &paper_data::vgg_16bit(),
                8,
                constraint,
                crate::problem::GoalWeights::ii_only(),
            )
            .unwrap()
        };
        // The Fig. 5 VGG quick case and its next-tighter neighbour.
        assert_dual_warm_start_cuts_barrier_effort(&vgg(0.80), &vgg(0.78));
    }

    #[test]
    fn counts_hint_seeds_the_discretization_incumbent() {
        let problem = alex16(0.65);
        let cold = SolveRequest::new(&problem)
            .backend(Backend::gpa_fast())
            .solve()
            .unwrap();
        let warm = SolveRequest::new(&problem)
            .backend(Backend::gpa_fast())
            .warm_start(WarmStart::none().with_cu_counts(cold.diagnostics.cu_counts.clone()))
            .solve()
            .unwrap();
        assert!(warm.diagnostics.warm_start.incumbent_used);
        assert_eq!(warm.diagnostics.warm_start.provenance(), "incumbent");
        assert!(
            warm.diagnostics.bb_nodes <= cold.diagnostics.bb_nodes,
            "warm {} vs cold {} nodes",
            warm.diagnostics.bb_nodes,
            cold.diagnostics.bb_nodes
        );
        assert!(
            (warm.initiation_interval_ms(&problem) - cold.initiation_interval_ms(&problem)).abs()
                < 1e-9
        );
    }

    #[test]
    fn exact_hint_seeds_the_minlp_incumbent() {
        let problem = alex16(0.70);
        let hint = SolveRequest::new(&problem)
            .backend(Backend::gpa_fast())
            .solve()
            .unwrap();
        // Cold, one node is nowhere near enough for an incumbent (the first
        // cold incumbent on this instance needs ~10 nodes, and is worse).
        let cold = SolveRequest::new(&problem)
            .backend(Backend::exact())
            .node_budget(1)
            .solve_point()
            .unwrap();
        assert!(cold.is_none());
        // Seeded with the GP+A counts, the incumbent exists at node 0 and a
        // single node serves the request at the heuristic's (optimal) II.
        let warm = SolveRequest::new(&problem)
            .backend(Backend::exact())
            .node_budget(1)
            .warm_start(hint.warm_start())
            .solve()
            .unwrap();
        assert!(warm.diagnostics.warm_start.incumbent_used);
        assert_eq!(warm.diagnostics.bb_nodes, 1);
        assert!(
            (warm.initiation_interval_ms(&problem) - hint.initiation_interval_ms(&problem)).abs()
                < 1e-6
        );
        warm.allocation.validate(&problem, 1e-6).unwrap();
    }

    #[test]
    fn node_budget_caps_the_search() {
        let problem = alex16(0.65);
        // Cold, five nodes are not enough to even find an incumbent — the
        // lenient skip policy turns that into a skipped point.
        let cold = SolveRequest::new(&problem)
            .backend(Backend::exact())
            .node_budget(5)
            .solve_point()
            .unwrap();
        assert!(cold.is_none());
        // With a GP+A warm start the same budget serves the request.
        let hint = SolveRequest::new(&problem)
            .backend(Backend::gpa_fast())
            .solve()
            .unwrap();
        let report = SolveRequest::new(&problem)
            .backend(Backend::exact())
            .node_budget(5)
            .warm_start(hint.warm_start())
            .solve()
            .unwrap();
        assert!(report.diagnostics.bb_nodes <= 5);
        assert!(report.diagnostics.proven_optimal.is_some());
        assert!(report.diagnostics.relaxation_gap.unwrap() >= 0.0);
    }

    #[test]
    fn custom_backends_run_through_solve_with() {
        /// A toy engine that always places one CU per kernel.
        struct OnePerKernel;
        impl SolverBackend for OnePerKernel {
            fn name(&self) -> &str {
                "one-per-kernel"
            }
            fn solve(&self, request: &SolveRequest<'_>) -> Result<SolveReport, AllocError> {
                let problem = request.problem();
                let counts = vec![1u32; problem.num_kernels()];
                let allocation = greedy::allocate(problem, &counts, &GreedyOptions::default())?;
                Ok(SolveReport {
                    allocation,
                    backend: self.name().to_owned(),
                    diagnostics: SolveDiagnostics {
                        relaxed_ii_ms: None,
                        relaxation_gap: None,
                        proven_optimal: None,
                        cu_counts: counts,
                        dropped_cus: vec![0; problem.num_kernels()],
                        bb_nodes: 0,
                        relaxation_iterations: 0,
                        barrier_iterations: 0,
                        factorizations: 0,
                        simplex_pivots: 0,
                        moved_cus: 0,
                        migration_cost: 0.0,
                        gp_dual: None,
                        warm_start: WarmStartReport::default(),
                        degraded_from: None,
                        timing: StageTiming::default(),
                    },
                })
            }
        }
        let problem = alex16(0.70);
        let report = SolveRequest::new(&problem)
            .solve_with(&OnePerKernel)
            .unwrap();
        assert_eq!(report.backend, "one-per-kernel");
        report.allocation.validate(&problem, 1e-9).unwrap();
    }

    #[test]
    fn provenance_labels_round_trip() {
        for bits in 0u8..8 {
            let report = WarmStartReport {
                ii_hint_used: bits & 1 != 0,
                dual_hint_used: bits & 2 != 0,
                incumbent_used: bits & 4 != 0,
            };
            assert_eq!(
                WarmStartReport::from_provenance(report.provenance()),
                Some(report)
            );
        }
        assert_eq!(WarmStartReport::from_provenance("warmish"), None);
        // Non-canonical orderings and repeats are rejected, keeping the
        // label space closed under round-tripping.
        assert_eq!(WarmStartReport::from_provenance("dual+ii"), None);
        assert_eq!(WarmStartReport::from_provenance("ii+ii"), None);
        assert_eq!(WarmStartReport::from_provenance(""), None);
        assert_eq!(SkipPolicy::from_label("lenient"), Some(SkipPolicy::Lenient));
        assert_eq!(SkipPolicy::from_label("strict"), Some(SkipPolicy::Strict));
        assert_eq!(SkipPolicy::from_label("loose"), None);
    }

    #[test]
    fn deadline_helpers_behave() {
        let expired = Deadline::expired();
        assert!(expired.is_expired());
        assert_eq!(expired.remaining(), Duration::ZERO);
        let far = Deadline::within(Duration::from_secs(3600));
        assert!(!far.is_expired());
        assert!(far.remaining() > Duration::from_secs(3500));
        let at = Deadline::at(Instant::now() + Duration::from_secs(10));
        assert!(!at.is_expired());
        assert!(check_deadline(None, "anything").is_ok());
        let err = check_deadline(Some(&expired), "relaxation").unwrap_err();
        assert!(err.to_string().contains("relaxation"));
    }

    #[test]
    fn float_deadline_budgets_are_validated() {
        // Finite-but-huge budgets overflow `Duration` and used to panic in
        // `Duration::from_secs_f64`; they must be typed errors like the
        // non-finite and negative cases.
        for bad in [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -1.0,
            -1e-12,
            1e19,
            f64::MAX,
        ] {
            assert!(
                matches!(
                    Deadline::within_seconds(bad),
                    Err(AllocError::InvalidArgument(_))
                ),
                "budget {bad} must be rejected"
            );
        }
        let d = Deadline::within_seconds(3600.0).unwrap();
        assert!(!d.is_expired());
        assert!(d.remaining() > Duration::from_secs(3500));
        // A zero budget is a valid, already-exhausted deadline.
        assert!(Deadline::within_seconds(0.0).unwrap().remaining() <= Duration::from_millis(1));
    }

    #[test]
    fn exhausted_deadlines_skip_under_lenient_on_every_backend() {
        // The serving-path contract: an already-expired deadline surfaces as
        // a skipped point from every backend under the lenient policy —
        // never a hang, never a panic, never a hard error.
        let problem = alex16(0.70);
        for backend in [
            Backend::gpa(),
            Backend::gpa_fast(),
            Backend::greedy(),
            Backend::exact(),
        ] {
            let label = backend.label();
            let point = SolveRequest::new(&problem)
                .backend(backend)
                .deadline(Deadline::expired())
                .skip_policy(SkipPolicy::Lenient)
                .solve_point()
                .unwrap_or_else(|err| panic!("{label}: expired deadline must skip, got {err}"));
            assert!(point.is_none(), "{label}: expired deadline must skip");
        }
    }

    #[test]
    fn dropped_cus_surface_in_the_diagnostics() {
        use crate::problem::{GoalWeights, Kernel};
        // See gpa::tests: (2, 1) fits the aggregated budget but cannot be
        // bin-packed, so one CU of "a" is shed.
        let problem = AllocationProblem::builder()
            .kernels(vec![
                Kernel::new("a", 10.0, ResourceVec::bram_dsp(0.01, 0.35), 0.01).unwrap(),
                Kernel::new("b", 4.0, ResourceVec::bram_dsp(0.01, 0.25), 0.01).unwrap(),
            ])
            .platform(MultiFpgaPlatform::aws_f1_4xlarge())
            .budget(ResourceBudget::uniform(0.55))
            .weights(GoalWeights::ii_only())
            .build()
            .unwrap();
        let report = SolveRequest::new(&problem)
            .backend(Backend::gpa_fast())
            .solve()
            .unwrap();
        assert_eq!(report.diagnostics.dropped_cus, vec![1, 0]);
        assert_eq!(report.diagnostics.total_dropped_cus(), 1);
        assert_eq!(report.diagnostics.cu_counts, vec![1, 1]);
    }

    #[test]
    fn vgg_exact_quick_case_visits_fewer_nodes_with_a_hint() {
        // The ROADMAP follow-up satellite: on the VGG quick case the MINLP
        // must prune from node 0 when seeded with the GP+A solution. The
        // node cap matches the quick figure preset for Fig. 5.
        let app = paper_data::vgg_16bit();
        let problem = AllocationProblem::from_application(
            &app,
            8,
            0.80,
            crate::problem::GoalWeights::ii_only(),
        )
        .unwrap();
        let hint = SolveRequest::new(&problem)
            .backend(Backend::gpa_fast())
            .solve()
            .unwrap();
        let options = ExactOptions {
            solver: mfa_minlp::SolverOptions {
                // The quick-figure preset for Fig. 5 (see
                // `mfa_explore::figures`): node-only budget, 4 nodes.
                max_nodes: 4,
                time_limit_seconds: None,
                ..mfa_minlp::SolverOptions::default()
            },
            ..ExactOptions::default()
        };
        // Cold, all four nodes are visited without finding any incumbent:
        // the point is skipped.
        let cold = SolveRequest::new(&problem)
            .backend(Backend::exact_with(options.clone()))
            .skip_policy(SkipPolicy::Lenient)
            .solve_point()
            .unwrap();
        assert!(cold.is_none(), "cold quick VGG solve found an incumbent");
        // Seeded, the incumbent prunes from node 0 and a single node serves
        // the request -- strictly fewer nodes than the cold search burned.
        let warm = SolveRequest::new(&problem)
            .backend(Backend::exact_with(options))
            .warm_start(hint.warm_start())
            .node_budget(1)
            .solve()
            .unwrap();
        assert!(warm.diagnostics.warm_start.incumbent_used);
        assert!(
            warm.diagnostics.bb_nodes < 4,
            "warm {} vs the cold search's 4 nodes",
            warm.diagnostics.bb_nodes
        );
        warm.allocation.validate(&problem, 1e-6).unwrap();
    }
}
