//! The reallocation model: incumbents, migration costs and moved-CU bounds.
//!
//! A static [`crate::AllocationProblem`] answers "what is the best
//! allocation?". Under churn — kernels arriving and departing, request mixes
//! drifting, device groups failing — the operative question becomes "I
//! already run an allocation; what is the best allocation *from here*?".
//! This module provides the vocabulary:
//!
//! * [`Incumbent`] — the current per-group CU placement, keyed by kernel
//!   name so it survives kernel add/remove events;
//! * [`MigrationCost`] — a penalty of `weight × Σ_g c_g · moved_g` added to
//!   the objective, where `moved_g` counts the CUs a candidate allocation
//!   adds on group `g` beyond the incumbent (a CU that must be newly
//!   configured there) and `c_g` is the group's per-CU reconfiguration cost;
//! * [`ReallocationSpec`] — incumbent + cost + an optional hard bound on
//!   the total moved CUs, attached to a problem via
//!   [`crate::AllocationProblem::with_reallocation`].
//!
//! Movement is accounted at *device-group* granularity: shuffling CUs among
//! the identical FPGAs of one group is free (the bitstream is the same; the
//! host simply routes items elsewhere), while raising a group's count above
//! the incumbent means configuring new CUs there. With a migration weight of
//! zero and no moved-CU bound the spec is inert and every solver path is
//! byte-identical to the static solve.

use serde::{Deserialize, Serialize};

use crate::problem::AllocationProblem;
use crate::solution::Allocation;
use crate::AllocError;

/// Per-group reconfiguration pricing and the objective weight of migration.
///
/// The penalty added to the solve objective (in the II's milliseconds) is
/// `weight × Σ_g group_cost(g) × moved_g`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationCost {
    weight: f64,
    group_costs: Option<Vec<f64>>,
}

impl MigrationCost {
    /// A migration term with objective weight `weight` (ms of II the solver
    /// will trade per unit of migration cost) and a uniform per-CU group
    /// cost of 1.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::InvalidArgument`] when `weight` is non-finite
    /// or negative — a NaN weight would otherwise poison every objective
    /// comparison and a negative one would *reward* churn.
    pub fn new(weight: f64) -> Result<Self, AllocError> {
        if !(weight.is_finite() && weight >= 0.0) {
            return Err(AllocError::InvalidArgument(format!(
                "migration weight must be finite and non-negative, got {weight}"
            )));
        }
        Ok(MigrationCost {
            weight,
            group_costs: None,
        })
    }

    /// A zero-weight (inert) migration term.
    pub fn free() -> Self {
        MigrationCost {
            weight: 0.0,
            group_costs: None,
        }
    }

    /// Sets per-group per-CU reconfiguration costs `c_g` (one per device
    /// group, in declaration order).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::InvalidArgument`] when any cost is non-finite
    /// or negative.
    pub fn with_group_costs(mut self, costs: Vec<f64>) -> Result<Self, AllocError> {
        for (g, &c) in costs.iter().enumerate() {
            if !(c.is_finite() && c >= 0.0) {
                return Err(AllocError::InvalidArgument(format!(
                    "migration cost for group {g} must be finite and non-negative, got {c}"
                )));
            }
        }
        self.group_costs = Some(costs);
        Ok(self)
    }

    /// The objective weight.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Per-CU reconfiguration cost of group `g` (1.0 unless configured).
    pub fn group_cost(&self, g: usize) -> f64 {
        self.group_costs
            .as_ref()
            .and_then(|c| c.get(g).copied())
            .unwrap_or(1.0)
    }

    /// The explicit per-group costs, if any were set.
    pub fn group_costs(&self) -> Option<&[f64]> {
        self.group_costs.as_deref()
    }
}

/// The current per-group CU placement, keyed by kernel name.
///
/// Rows are `(kernel name, per-group CU counts)`. Keying by name rather than
/// index lets the incumbent survive churn events that add or remove kernels:
/// [`Incumbent::aligned_to`] re-indexes the rows against whatever kernel set
/// the re-solve's problem carries, treating absent kernels as all-zero rows
/// (everything they get is a move).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Incumbent {
    rows: Vec<(String, Vec<u32>)>,
    num_groups: usize,
}

impl Incumbent {
    /// Creates an incumbent from explicit `(kernel name, group counts)` rows.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::InvalidArgument`] when `rows` is empty, rows
    /// have unequal group counts, or a kernel name repeats.
    pub fn new(rows: Vec<(String, Vec<u32>)>) -> Result<Self, AllocError> {
        let Some(first) = rows.first() else {
            return Err(AllocError::InvalidArgument(
                "an incumbent needs at least one kernel row".into(),
            ));
        };
        let num_groups = first.1.len();
        if num_groups == 0 {
            return Err(AllocError::InvalidArgument(
                "an incumbent row needs at least one group column".into(),
            ));
        }
        for (name, counts) in &rows {
            if counts.len() != num_groups {
                return Err(AllocError::InvalidArgument(format!(
                    "incumbent row {name} has {} group columns, expected {num_groups}",
                    counts.len()
                )));
            }
        }
        for (i, (name, _)) in rows.iter().enumerate() {
            if rows[..i].iter().any(|(other, _)| other == name) {
                return Err(AllocError::InvalidArgument(format!(
                    "incumbent names kernel {name} twice"
                )));
            }
        }
        Ok(Incumbent { rows, num_groups })
    }

    /// Captures the incumbent of a solved placement: per-group CU counts of
    /// `allocation`, keyed by `problem`'s kernel names.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::InvalidArgument`] when the allocation's shape
    /// does not match the problem.
    pub fn from_allocation(
        problem: &AllocationProblem,
        allocation: &Allocation,
    ) -> Result<Self, AllocError> {
        if allocation.num_kernels() != problem.num_kernels()
            || allocation.num_fpgas() != problem.num_fpgas()
        {
            return Err(AllocError::InvalidArgument(format!(
                "allocation is {}×{} but the problem is {}×{}",
                allocation.num_kernels(),
                allocation.num_fpgas(),
                problem.num_kernels(),
                problem.num_fpgas()
            )));
        }
        let rows = problem
            .kernels()
            .iter()
            .enumerate()
            .map(|(k, kernel)| {
                let mut per_group = vec![0u32; problem.num_groups()];
                for f in 0..problem.num_fpgas() {
                    per_group[problem.group_of_fpga(f)] += allocation.cus(k, f);
                }
                (kernel.name().to_owned(), per_group)
            })
            .collect();
        Ok(Incumbent {
            rows,
            num_groups: problem.num_groups(),
        })
    }

    /// The `(kernel name, per-group counts)` rows.
    pub fn rows(&self) -> &[(String, Vec<u32>)] {
        &self.rows
    }

    /// Number of group columns.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// The per-group counts recorded for `kernel`, if present.
    pub fn row(&self, kernel: &str) -> Option<&[u32]> {
        self.rows
            .iter()
            .find(|(name, _)| name == kernel)
            .map(|(_, counts)| counts.as_slice())
    }

    /// The incumbent after device group `g` is lost: the column is removed
    /// (its CUs are gone with the hardware). Used by churn traces to remap
    /// the incumbent alongside the platform.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::InvalidArgument`] when `g` is out of range or
    /// it is the last remaining group.
    pub fn drop_group(&self, g: usize) -> Result<Self, AllocError> {
        if g >= self.num_groups {
            return Err(AllocError::InvalidArgument(format!(
                "cannot drop group {g}: the incumbent has {} groups",
                self.num_groups
            )));
        }
        if self.num_groups == 1 {
            return Err(AllocError::InvalidArgument(
                "cannot drop the last device group of an incumbent".into(),
            ));
        }
        let rows = self
            .rows
            .iter()
            .map(|(name, counts)| {
                let mut counts = counts.clone();
                counts.remove(g);
                (name.clone(), counts)
            })
            .collect();
        Ok(Incumbent {
            rows,
            num_groups: self.num_groups - 1,
        })
    }

    /// Re-indexes the incumbent against `problem`'s kernel order: one row of
    /// per-group counts per problem kernel, all-zero for kernels the
    /// incumbent does not know (new arrivals start from nothing).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::InvalidArgument`] when the incumbent's group
    /// count does not match the problem's (the incumbent must be remapped —
    /// see [`drop_group`](Self::drop_group) — before re-solving on a changed
    /// platform).
    pub fn aligned_to(&self, problem: &AllocationProblem) -> Result<Vec<Vec<u32>>, AllocError> {
        if self.num_groups != problem.num_groups() {
            return Err(AllocError::InvalidArgument(format!(
                "incumbent has {} group columns but the platform has {} groups",
                self.num_groups,
                problem.num_groups()
            )));
        }
        Ok(problem
            .kernels()
            .iter()
            .map(|kernel| {
                self.row(kernel.name())
                    .map_or_else(|| vec![0; self.num_groups], <[u32]>::to_vec)
            })
            .collect())
    }
}

/// A full reallocation request rider: the incumbent placement, the migration
/// pricing, and an optional hard cap on moved CUs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReallocationSpec {
    incumbent: Incumbent,
    migration: MigrationCost,
    max_moved_cus: Option<u32>,
}

impl ReallocationSpec {
    /// A spec penalizing movement away from `incumbent` by `migration`.
    pub fn new(incumbent: Incumbent, migration: MigrationCost) -> Self {
        ReallocationSpec {
            incumbent,
            migration,
            max_moved_cus: None,
        }
    }

    /// Adds a hard bound on the total moved CUs.
    #[must_use]
    pub fn with_moved_bound(mut self, max_moved_cus: u32) -> Self {
        self.max_moved_cus = Some(max_moved_cus);
        self
    }

    /// The incumbent placement.
    pub fn incumbent(&self) -> &Incumbent {
        &self.incumbent
    }

    /// The migration pricing.
    pub fn migration(&self) -> &MigrationCost {
        &self.migration
    }

    /// The moved-CU bound, if any.
    pub fn max_moved_cus(&self) -> Option<u32> {
        self.max_moved_cus
    }

    /// `true` when the spec can influence the solution: a positive migration
    /// weight or a moved-CU bound. An inert spec (weight 0, no bound) leaves
    /// every solver path byte-identical to the static solve and only fills
    /// the movement diagnostics.
    pub fn is_active(&self) -> bool {
        self.migration.weight() > 0.0 || self.max_moved_cus.is_some()
    }
}

/// Movement of a candidate against an incumbent: CUs newly configured and
/// their priced cost.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MigrationOutcome {
    /// Total CUs moved: `Σ_k Σ_g max(0, n_{k,g} − incumbent_{k,g})`.
    pub moved_cus: u32,
    /// Priced movement `Σ_g c_g · moved_g` (unweighted).
    pub cost: f64,
}

/// Solver-side view of an active reallocation spec, aligned to one problem:
/// incumbent rows in kernel order, per-group costs, the weight and bound.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ReallocContext {
    /// Incumbent per-group counts, `[kernel][group]`, aligned to the problem.
    pub(crate) inc_groups: Vec<Vec<u32>>,
    /// Incumbent totals per kernel (row sums).
    pub(crate) inc_totals: Vec<u32>,
    /// Objective weight of the migration term.
    pub(crate) weight: f64,
    /// Per-CU reconfiguration cost per group.
    pub(crate) costs: Vec<f64>,
    /// Hard cap on total moved CUs, if any.
    pub(crate) moved_bound: Option<u32>,
}

impl ReallocContext {
    /// Builds the context when the problem carries an *active* reallocation
    /// spec; `Ok(None)` otherwise (including the inert weight-0/no-bound
    /// case, which must leave the solvers untouched).
    ///
    /// # Errors
    ///
    /// Propagates incumbent/platform misalignment as
    /// [`AllocError::InvalidArgument`].
    pub(crate) fn from_problem(problem: &AllocationProblem) -> Result<Option<Self>, AllocError> {
        let Some(spec) = problem.reallocation() else {
            return Ok(None);
        };
        if !spec.is_active() {
            return Ok(None);
        }
        let inc_groups = spec.incumbent().aligned_to(problem)?;
        let inc_totals = inc_groups.iter().map(|row| row.iter().sum()).collect();
        let costs = (0..problem.num_groups())
            .map(|g| spec.migration().group_cost(g))
            .collect();
        Ok(Some(ReallocContext {
            inc_groups,
            inc_totals,
            weight: spec.migration().weight(),
            costs,
            moved_bound: spec.max_moved_cus(),
        }))
    }

    /// Movement of integer per-group counts against the incumbent.
    pub(crate) fn migration_of_groups(&self, groups: &[Vec<u32>]) -> MigrationOutcome {
        migration_against(&self.inc_groups, &self.costs, groups)
    }

    /// The weighted objective penalty of integer per-group counts.
    pub(crate) fn penalty_of_groups(&self, groups: &[Vec<u32>]) -> f64 {
        self.weight * self.migration_of_groups(groups).cost
    }

    /// `true` when `groups` violates the moved-CU bound.
    pub(crate) fn exceeds_bound(&self, groups: &[Vec<u32>]) -> bool {
        self.moved_bound
            .is_some_and(|bound| self.migration_of_groups(groups).moved_cus > bound)
    }
}

/// Movement accounting shared by the solver context and the diagnostics
/// post-fill: `moved_g = Σ_k max(0, n_{k,g} − inc_{k,g})`, cost `Σ c_g·moved_g`.
/// Rows missing on either side count as zero.
pub(crate) fn migration_against(
    incumbent: &[Vec<u32>],
    costs: &[f64],
    groups: &[Vec<u32>],
) -> MigrationOutcome {
    let mut moved_cus = 0u32;
    let mut cost = 0.0f64;
    for (k, row) in groups.iter().enumerate() {
        for (g, &n) in row.iter().enumerate() {
            let inc = incumbent
                .get(k)
                .and_then(|r| r.get(g))
                .copied()
                .unwrap_or(0);
            if n > inc {
                let moved = n - inc;
                moved_cus += moved;
                cost += costs.get(g).copied().unwrap_or(1.0) * f64::from(moved);
            }
        }
    }
    MigrationOutcome { moved_cus, cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Kernel;
    use mfa_platform::{MultiFpgaPlatform, ResourceBudget, ResourceVec};

    fn toy_problem() -> AllocationProblem {
        AllocationProblem::builder()
            .kernels(vec![
                Kernel::new("a", 3.0, ResourceVec::bram_dsp(0.01, 0.2), 0.01).unwrap(),
                Kernel::new("b", 5.0, ResourceVec::bram_dsp(0.01, 0.3), 0.01).unwrap(),
            ])
            .platform(MultiFpgaPlatform::aws_f1_4xlarge())
            .budget(ResourceBudget::uniform(1.0))
            .build()
            .unwrap()
    }

    #[test]
    fn migration_cost_rejects_bad_weights() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.5] {
            assert!(
                matches!(MigrationCost::new(bad), Err(AllocError::InvalidArgument(_))),
                "weight {bad} must be rejected"
            );
        }
        assert_eq!(MigrationCost::new(0.25).unwrap().weight(), 0.25);
        assert_eq!(MigrationCost::free().weight(), 0.0);
    }

    #[test]
    fn migration_cost_rejects_bad_group_costs() {
        let base = MigrationCost::new(1.0).unwrap();
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            assert!(matches!(
                base.clone().with_group_costs(vec![1.0, bad]),
                Err(AllocError::InvalidArgument(_))
            ));
        }
        let priced = base.with_group_costs(vec![2.0, 0.5]).unwrap();
        assert_eq!(priced.group_cost(0), 2.0);
        assert_eq!(priced.group_cost(1), 0.5);
        // Groups beyond the explicit list default to a unit cost.
        assert_eq!(priced.group_cost(7), 1.0);
        assert_eq!(priced.group_costs(), Some(&[2.0, 0.5][..]));
    }

    #[test]
    fn incumbent_validates_its_rows() {
        assert!(Incumbent::new(vec![]).is_err());
        assert!(Incumbent::new(vec![("a".into(), vec![])]).is_err());
        assert!(Incumbent::new(vec![("a".into(), vec![1]), ("a".into(), vec![2])]).is_err());
        assert!(Incumbent::new(vec![("a".into(), vec![1]), ("b".into(), vec![1, 2])]).is_err());
        let inc = Incumbent::new(vec![("a".into(), vec![2, 0]), ("b".into(), vec![1, 1])]).unwrap();
        assert_eq!(inc.num_groups(), 2);
        assert_eq!(inc.row("b"), Some(&[1, 1][..]));
        assert_eq!(inc.row("zz"), None);
    }

    #[test]
    fn incumbent_aligns_by_kernel_name() {
        let p = toy_problem();
        // Known kernel "b", unknown "zombie"; "a" absent → zero row.
        let inc = Incumbent::new(vec![("b".into(), vec![4]), ("zombie".into(), vec![9])]).unwrap();
        let aligned = inc.aligned_to(&p).unwrap();
        assert_eq!(aligned, vec![vec![0], vec![4]]);
        // Group-count mismatch is a typed error.
        let wide = Incumbent::new(vec![("a".into(), vec![1, 1])]).unwrap();
        assert!(matches!(
            wide.aligned_to(&p),
            Err(AllocError::InvalidArgument(_))
        ));
    }

    #[test]
    fn incumbent_from_allocation_sums_groups() {
        let p = toy_problem();
        let mut alloc = Allocation::zeros(&p);
        alloc.set_cus(0, 0, 2);
        alloc.set_cus(0, 1, 1);
        alloc.set_cus(1, 1, 4);
        let inc = Incumbent::from_allocation(&p, &alloc).unwrap();
        // Single-group platform: group counts are the totals.
        assert_eq!(inc.row("a"), Some(&[3][..]));
        assert_eq!(inc.row("b"), Some(&[4][..]));
        let wrong = Allocation::new(vec![vec![1u32; 3]]).unwrap();
        assert!(Incumbent::from_allocation(&p, &wrong).is_err());
    }

    #[test]
    fn drop_group_removes_one_column() {
        let inc = Incumbent::new(vec![("a".into(), vec![2, 5]), ("b".into(), vec![1, 0])]).unwrap();
        let dropped = inc.drop_group(1).unwrap();
        assert_eq!(dropped.num_groups(), 1);
        assert_eq!(dropped.row("a"), Some(&[2][..]));
        assert!(inc.drop_group(2).is_err());
        assert!(dropped.drop_group(0).is_err());
    }

    #[test]
    fn movement_accounting_counts_only_growth() {
        let incumbent = vec![vec![2, 1], vec![0, 3]];
        let costs = vec![1.0, 2.5];
        // Kernel 0 grows by 1 on group 1; kernel 1 shrinks (free).
        let groups = vec![vec![2, 2], vec![0, 1]];
        let m = migration_against(&incumbent, &costs, &groups);
        assert_eq!(m.moved_cus, 1);
        assert!((m.cost - 2.5).abs() < 1e-12);
        // Identical counts move nothing.
        let still = migration_against(&incumbent, &costs, &incumbent);
        assert_eq!(still.moved_cus, 0);
        assert_eq!(still.cost, 0.0);
    }

    #[test]
    fn inert_specs_produce_no_context() {
        let p = toy_problem();
        assert!(ReallocContext::from_problem(&p).unwrap().is_none());
        let inc = Incumbent::new(vec![("a".into(), vec![2]), ("b".into(), vec![3])]).unwrap();
        let inert = ReallocationSpec::new(inc.clone(), MigrationCost::free());
        assert!(!inert.is_active());
        let p_inert = p.with_reallocation(Some(inert));
        assert!(ReallocContext::from_problem(&p_inert).unwrap().is_none());
        // A bound alone activates the spec even at weight 0.
        let bounded = ReallocationSpec::new(inc.clone(), MigrationCost::free()).with_moved_bound(2);
        assert!(bounded.is_active());
        let ctx = ReallocContext::from_problem(&p.with_reallocation(Some(bounded)))
            .unwrap()
            .unwrap();
        assert_eq!(ctx.inc_totals, vec![2, 3]);
        assert_eq!(ctx.moved_bound, Some(2));
        assert!(ctx.exceeds_bound(&[vec![5], vec![3]]));
        assert!(!ctx.exceeds_bound(&[vec![4], vec![3]]));
        // Weighted spec: penalty = weight × cost.
        let weighted = ReallocationSpec::new(inc, MigrationCost::new(0.5).unwrap());
        let ctx = ReallocContext::from_problem(&p.with_reallocation(Some(weighted)))
            .unwrap()
            .unwrap();
        assert!((ctx.penalty_of_groups(&[vec![4], vec![3]]) - 1.0).abs() < 1e-12);
    }
}
