//! The complete GP+A heuristic: geometric-programming relaxation,
//! discretization, greedy allocation.
//!
//! This is the paper's fast path (Sec. 3.2): it reaches essentially the same
//! initiation interval as the exact MINLP while running orders of magnitude
//! faster, which is what makes design-space exploration over resource
//! constraints and FPGA counts practical.
//!
//! The pipeline is driven through [`crate::solver::SolveRequest`] with
//! [`crate::solver::Backend::Gpa`]; this module defines its [`GpaOptions`]
//! and hosts the pipeline implementation. Warm starts (the relaxed-`ÎI`
//! bracket hint and the integer-counts incumbent), deadlines and node
//! budgets all arrive as request fields.

use std::time::Instant;

use crate::discretize::{self, DiscretizeOptions};
use crate::gp_step::{self, RelaxationBackend};
use crate::greedy::{self, GreedyOptions};
use crate::problem::AllocationProblem;
use crate::realloc::{MigrationOutcome, ReallocContext};
use crate::solution::Allocation;
use crate::solver::{
    check_deadline, Deadline, SolveDiagnostics, SolveReport, StageTiming, WarmStart,
    WarmStartReport,
};
use crate::AllocError;

/// Conventional label of the GP+A pipeline, shared by the backend registry,
/// the trait impl and the report so the three cannot drift.
pub(crate) const GPA_LABEL: &str = "GP+A";

/// Options of the GP+A heuristic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GpaOptions {
    /// Backend for the continuous relaxation (default: the GP solver, as in
    /// the paper; the discretization step always uses the fast bisection
    /// engine for its node relaxations).
    pub relaxation_backend: RelaxationBackend,
    /// Discretization options.
    pub discretize: DiscretizeOptions,
    /// Greedy-allocator options (`T`, `Δ`).
    pub greedy: GreedyOptions,
}

impl GpaOptions {
    /// Options matching the paper's final configuration: GP relaxation,
    /// `T = 0`, `Δ = 1 %`.
    pub fn paper_defaults() -> Self {
        GpaOptions::default()
    }

    /// Fast configuration using the bisection backend everywhere (used inside
    /// large design-space sweeps and by the ablation bench).
    pub fn fast() -> Self {
        GpaOptions {
            relaxation_backend: RelaxationBackend::Bisection,
            ..GpaOptions::default()
        }
    }
}

/// Runs the full GP+A pipeline for [`crate::solver::Backend::Gpa`]: the
/// continuous relaxation (hinted by `warm.relaxed_ii_ms`), the discretization
/// branch-and-bound (seeded by `warm.cu_counts`), and the greedy placement
/// with its CU-shedding feasibility fallback.
///
/// # Errors
///
/// Propagates infeasibility and solver failures from the three steps, and
/// [`AllocError::DeadlineExceeded`] when the deadline expires at a stage
/// boundary or inside the discretization search; see [`AllocError`].
pub(crate) fn run_pipeline(
    problem: &AllocationProblem,
    options: &GpaOptions,
    warm: &WarmStart,
    deadline: Option<&Deadline>,
    node_budget: Option<usize>,
) -> Result<SolveReport, AllocError> {
    let start = Instant::now();
    problem.validate_feasibility()?;

    check_deadline(deadline, "relaxation")?;
    let relaxation_start = Instant::now();
    let dual_hint = warm.gp_dual.as_ref().map(mfa_gp::GpDualState::from);
    let (relaxation, relax_stats) = gp_step::relax_hinted(
        problem,
        options.relaxation_backend,
        warm.relaxed_ii_ms,
        dual_hint.as_ref(),
    )?;
    let relaxation_time = relaxation_start.elapsed();

    check_deadline(deadline, "discretization")?;
    let discretization_start = Instant::now();
    let (discrete, incumbent_used) = discretize::solve_seeded_inner(
        problem,
        &options.discretize,
        warm.cu_counts.as_deref(),
        deadline,
        node_budget,
    )?;
    let discretization_time = discretization_start.elapsed();

    check_deadline(deadline, "allocation")?;
    let allocation_start = Instant::now();
    let (allocation, mut cu_counts, dropped_cus) =
        place_with_drops(problem, discrete.cu_counts, &options.greedy, deadline)?;
    let allocation = snap_to_incumbent(problem, allocation)?;
    if problem.migration_active() {
        // The snap may have shed surplus CUs; keep the reported counts in
        // sync with what the allocation actually realizes.
        cu_counts = (0..allocation.num_kernels())
            .map(|k| allocation.total_cus(k))
            .collect();
    }
    let allocation_time = allocation_start.elapsed();

    let achieved = allocation.initiation_interval(problem);
    let relaxed = relaxation.initiation_interval_ms;
    Ok(SolveReport {
        allocation,
        backend: GPA_LABEL.to_owned(),
        diagnostics: SolveDiagnostics {
            relaxed_ii_ms: Some(relaxed),
            relaxation_gap: Some((achieved - relaxed).max(0.0) / relaxed.max(f64::MIN_POSITIVE)),
            proven_optimal: None,
            cu_counts,
            dropped_cus,
            bb_nodes: discrete.nodes_explored,
            moved_cus: 0,
            migration_cost: 0.0,
            relaxation_iterations: relax_stats.iterations,
            barrier_iterations: relax_stats.barrier_iterations,
            factorizations: relax_stats.factorizations,
            simplex_pivots: relax_stats.simplex_pivots,
            gp_dual: relax_stats
                .dual_state
                .as_ref()
                .map(crate::solver::DualWarmStart::from),
            warm_start: WarmStartReport {
                ii_hint_used: relax_stats.hint_used,
                dual_hint_used: relax_stats.dual_hint_used,
                incumbent_used,
            },
            degraded_from: None,
            timing: StageTiming {
                total: start.elapsed(),
                relaxation: relaxation_time,
                discretization: discretization_time,
                allocation: allocation_time,
            },
        },
    })
}

/// Places integer counts with the greedy allocator, shedding CUs one at a
/// time when no bin packing exists. Shared by the GP+A pipeline and the
/// greedy backend.
///
/// The discretized counts saturate the aggregated budget, so at very tight
/// resource constraints a perfect bin packing may not exist and Algorithm 1
/// cannot place every CU even after relaxing by `T`. In that case one CU is
/// dropped and the placement is retried — the heuristic then trades a little
/// II for feasibility, which is exactly the behaviour the paper reports for
/// GP+A at the low end of the constraint range. The victim is the kernel
/// whose drop yields the smallest *resulting pipeline* II
/// (`max_k WCET_k / N_k` after the drop), not merely the smallest own
/// post-drop latency: the pipeline runs at the maximum over kernels, so that
/// maximum is what the choice must minimize. Ties are broken by the victim's
/// own post-drop latency, then by kernel index, keeping the loop
/// deterministic.
///
/// # Errors
///
/// Propagates placement failures once no kernel has a CU left to shed, and
/// [`AllocError::DeadlineExceeded`] when the deadline expires between
/// placement attempts.
pub(crate) fn place_with_drops(
    problem: &AllocationProblem,
    mut cu_counts: Vec<u32>,
    greedy_options: &GreedyOptions,
    deadline: Option<&Deadline>,
) -> Result<(Allocation, Vec<u32>, Vec<u32>), AllocError> {
    let mut dropped_cus = vec![0u32; problem.num_kernels()];
    let allocation = loop {
        check_deadline(deadline, "allocation")?;
        match greedy::allocate(problem, &cu_counts, greedy_options) {
            Ok(allocation) => break allocation,
            Err(err @ AllocError::AllocationFailed { .. }) => {
                let pipeline_ii_after_dropping = |k: usize| -> f64 {
                    (0..problem.num_kernels())
                        .map(|j| {
                            let n = cu_counts[j] - u32::from(j == k);
                            problem.kernels()[j].wcet_ms() / n.max(1) as f64
                        })
                        .fold(0.0, f64::max)
                };
                let own_ii_after =
                    |k: usize| problem.kernels()[k].wcet_ms() / (cu_counts[k] - 1).max(1) as f64;
                let victim = (0..problem.num_kernels())
                    .filter(|&k| cu_counts[k] > 1)
                    .min_by(|&a, &b| {
                        pipeline_ii_after_dropping(a)
                            .total_cmp(&pipeline_ii_after_dropping(b))
                            .then_with(|| own_ii_after(a).total_cmp(&own_ii_after(b)))
                    });
                match victim {
                    Some(k) => {
                        cu_counts[k] -= 1;
                        dropped_cus[k] += 1;
                    }
                    None => return Err(err),
                }
            }
            Err(other) => return Err(other),
        }
    };
    Ok((allocation, cu_counts, dropped_cus))
}

/// Post-placement descent toward the incumbent, shared by the GP+A pipeline
/// and the greedy backend. The discretization accounts for migration on the
/// advisory group split, but the real per-FPGA placement assigns CUs to
/// FPGAs incumbent-blind, so a group can end up holding more CUs of a kernel
/// than the incumbent had there. While some kernel holds such a surplus, two
/// moves are tried from the highest-index FPGA of the surplus group hosting
/// a CU:
///
/// 1. **Relocation** — move the CU to an FPGA of a group still *below* its
///    incumbent count (lowest-index feasible destination). Totals are
///    preserved, so with uniform WCET scaling the II is unchanged and the
///    penalized score strictly improves at any positive weight; this sheds
///    the pure reshuffle the incumbent-blind placer introduces.
/// 2. **Shedding** — remove the CU outright (only while the kernel keeps at
///    least one), trading a little II for stability.
///
/// Either move is accepted whenever it strictly improves the penalized score
/// `II + w·migration`, or whenever the placement exceeds the moved-CU bound
/// and the move reduces movement. A no-op without an active reallocation
/// spec, so the static pipeline is untouched.
///
/// # Errors
///
/// Propagates incumbent/platform misalignment from the reallocation spec.
pub(crate) fn snap_to_incumbent(
    problem: &AllocationProblem,
    mut allocation: Allocation,
) -> Result<Allocation, AllocError> {
    let Some(ctx) = ReallocContext::from_problem(problem)? else {
        return Ok(allocation);
    };
    let score_of = |alloc: &Allocation| -> (f64, MigrationOutcome) {
        let outcome = problem.migration_of(alloc);
        (
            alloc.initiation_interval(problem) + ctx.weight * outcome.cost,
            outcome,
        )
    };
    let num_fpgas = problem.num_fpgas().min(allocation.num_fpgas());
    let num_kernels = problem.num_kernels().min(allocation.num_kernels());
    let (mut score, mut outcome) = score_of(&allocation);
    'descent: loop {
        for k in 0..num_kernels {
            let mut per_group = vec![0u32; problem.num_groups()];
            for f in 0..num_fpgas {
                per_group[problem.group_of_fpga(f)] += allocation.cus(k, f);
            }
            for (g, &placed) in per_group.iter().enumerate() {
                let incumbent = ctx.inc_groups[k][g];
                if placed <= incumbent {
                    continue;
                }
                let Some(src) = (0..num_fpgas)
                    .rev()
                    .find(|&f| problem.group_of_fpga(f) == g && allocation.cus(k, f) > 0)
                else {
                    continue;
                };
                let over_bound = ctx
                    .moved_bound
                    .is_some_and(|bound| outcome.moved_cus > bound);
                let accept = |candidate: &Allocation,
                              score: f64,
                              moved: u32|
                 -> Option<(f64, MigrationOutcome)> {
                    let (cand_score, cand_outcome) = score_of(candidate);
                    (cand_score < score - 1e-12 || (over_bound && cand_outcome.moved_cus < moved))
                        .then_some((cand_score, cand_outcome))
                };
                // Relocation first: it preserves the kernel's total CU count,
                // so it never costs II when groups run at the same speed.
                for (dst_g, &dst_placed) in per_group.iter().enumerate() {
                    if dst_g == g || dst_placed >= ctx.inc_groups[k][dst_g] {
                        continue;
                    }
                    for dst in (0..num_fpgas).filter(|&f| problem.group_of_fpga(f) == dst_g) {
                        let mut candidate = allocation.clone();
                        candidate.set_cus(k, src, candidate.cus(k, src) - 1);
                        candidate.set_cus(k, dst, candidate.cus(k, dst) + 1);
                        if candidate.validate(problem, 1e-9).is_err() {
                            continue;
                        }
                        if let Some((s, o)) = accept(&candidate, score, outcome.moved_cus) {
                            allocation = candidate;
                            score = s;
                            outcome = o;
                            // Every accepted move shrinks this kernel's
                            // surplus over the incumbent by one CU, so the
                            // descent terminates after at most the total
                            // initial movement.
                            continue 'descent;
                        }
                    }
                }
                if allocation.total_cus(k) <= 1 {
                    continue;
                }
                let mut candidate = allocation.clone();
                candidate.set_cus(k, src, candidate.cus(k, src) - 1);
                if let Some((s, o)) = accept(&candidate, score, outcome.moved_cus) {
                    allocation = candidate;
                    score = s;
                    outcome = o;
                    continue 'descent;
                }
            }
        }
        break;
    }
    Ok(allocation)
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use super::*;
    use crate::problem::GoalWeights;
    use crate::solver::{Backend, SolveRequest};
    use mfa_cnn::paper_data;

    fn gpa_report(
        problem: &AllocationProblem,
        options: &GpaOptions,
    ) -> Result<SolveReport, AllocError> {
        SolveRequest::new(problem)
            .backend(Backend::gpa_with(options.clone()))
            .solve()
    }

    #[test]
    fn alex16_on_two_fpgas_end_to_end() {
        let app = paper_data::alexnet_16bit();
        let problem =
            AllocationProblem::from_application(&app, 2, 0.65, GoalWeights::new(1.0, 0.7)).unwrap();
        let report = gpa_report(&problem, &GpaOptions::paper_defaults()).unwrap();
        report.allocation.validate(&problem, 1e-9).unwrap();
        let ii = report.initiation_interval_ms(&problem);
        // The paper's Fig. 3 shows II between roughly 1.0 and 1.7 ms in the
        // 55–85 % constraint range for Alex-16 on 2 FPGAs.
        assert!(ii < 2.0, "II = {ii}");
        assert!(ii >= report.diagnostics.relaxed_ii_ms.unwrap() - 1e-9);
        assert!(report.diagnostics.relaxation_gap.unwrap() >= 0.0);
        // Allocation realizes exactly the discretized CU counts.
        for (k, &n) in report.diagnostics.cu_counts.iter().enumerate() {
            assert_eq!(report.allocation.total_cus(k), n);
        }
    }

    #[test]
    fn vgg_on_eight_fpgas_is_fast_and_feasible() {
        let app = paper_data::vgg_16bit();
        let problem =
            AllocationProblem::from_application(&app, 8, 0.61, GoalWeights::new(1.0, 50.0))
                .unwrap();
        let report = gpa_report(&problem, &GpaOptions::fast()).unwrap();
        report.allocation.validate(&problem, 1e-9).unwrap();
        let ii = report.initiation_interval_ms(&problem);
        // Fig. 5 shows VGG on 8 FPGAs reaching II between ~10 and ~24 ms.
        assert!(ii < 30.0, "II = {ii}");
        assert!(report.diagnostics.timing.total.as_secs_f64() < 30.0);
    }

    #[test]
    fn gp_and_fast_backends_agree_on_final_ii() {
        let app = paper_data::alexnet_32bit();
        let problem =
            AllocationProblem::from_application(&app, 4, 0.70, GoalWeights::new(1.0, 6.0)).unwrap();
        let gp = gpa_report(&problem, &GpaOptions::paper_defaults()).unwrap();
        let fast = gpa_report(&problem, &GpaOptions::fast()).unwrap();
        let ii_gp = gp.initiation_interval_ms(&problem);
        let ii_fast = fast.initiation_interval_ms(&problem);
        assert!(
            (ii_gp - ii_fast).abs() < 1e-6,
            "GP backend {ii_gp} vs bisection {ii_fast}"
        );
    }

    #[test]
    fn cu_drop_fallback_records_drops_and_minimizes_pipeline_ii() {
        use crate::problem::Kernel;
        use mfa_platform::{MultiFpgaPlatform, ResourceBudget, ResourceVec};

        // Two FPGAs at 55 % DSP each. The aggregated budget admits counts
        // (2, 1) — 2·0.35 + 0.25 = 0.95 ≤ 1.1 — but no per-FPGA packing of
        // {0.35, 0.35, 0.25} into two bins of 0.55 exists, so the greedy
        // allocator fails and the fallback must shed one CU of "a".
        let problem = AllocationProblem::builder()
            .kernels(vec![
                Kernel::new("a", 10.0, ResourceVec::bram_dsp(0.01, 0.35), 0.01).unwrap(),
                Kernel::new("b", 4.0, ResourceVec::bram_dsp(0.01, 0.25), 0.01).unwrap(),
            ])
            .platform(MultiFpgaPlatform::aws_f1_4xlarge())
            .budget(ResourceBudget::uniform(0.55))
            .weights(GoalWeights::ii_only())
            .build()
            .unwrap();
        let report = gpa_report(&problem, &GpaOptions::fast()).unwrap();
        report.allocation.validate(&problem, 1e-9).unwrap();
        assert_eq!(report.diagnostics.dropped_cus, vec![1, 0]);
        assert_eq!(report.diagnostics.total_dropped_cus(), 1);
        assert_eq!(report.diagnostics.cu_counts, vec![1, 1]);
        // The drop was forced on the only candidate (b has a single CU), and
        // the resulting pipeline II is exactly the post-drop bottleneck.
        let ii = report.initiation_interval_ms(&problem);
        assert!((ii - 10.0).abs() < 1e-9, "II = {ii}");
    }

    #[test]
    fn undropped_solves_report_zero_dropped_cus() {
        use crate::problem::Kernel;
        use mfa_platform::{MultiFpgaPlatform, ResourceBudget, ResourceVec};

        // Small per-CU footprints and a generous budget: the discretized
        // counts always bin-pack, so the fallback never fires.
        let problem = AllocationProblem::builder()
            .kernels(vec![
                Kernel::new("a", 3.0, ResourceVec::bram_dsp(0.02, 0.1), 0.01).unwrap(),
                Kernel::new("b", 5.0, ResourceVec::bram_dsp(0.02, 0.1), 0.01).unwrap(),
            ])
            .platform(MultiFpgaPlatform::aws_f1_4xlarge())
            .budget(ResourceBudget::uniform(0.9))
            .weights(GoalWeights::ii_only())
            .build()
            .unwrap();
        let report = gpa_report(&problem, &GpaOptions::fast()).unwrap();
        assert_eq!(report.diagnostics.total_dropped_cus(), 0);
        assert!(report.diagnostics.dropped_cus.iter().all(|&d| d == 0));
        assert_eq!(report.diagnostics.dropped_cus.len(), problem.num_kernels());
        // Without drops the allocation realizes the discretized counts.
        for (k, &n) in report.diagnostics.cu_counts.iter().enumerate() {
            assert_eq!(report.allocation.total_cus(k), n);
        }
    }

    #[test]
    fn warm_start_from_a_neighbouring_constraint_matches_cold_solve() {
        let app = paper_data::alexnet_16bit();
        let neighbour_problem =
            AllocationProblem::from_application(&app, 2, 0.65, GoalWeights::new(1.0, 0.7)).unwrap();
        let problem =
            AllocationProblem::from_application(&app, 2, 0.70, GoalWeights::new(1.0, 0.7)).unwrap();
        let neighbour = gpa_report(&neighbour_problem, &GpaOptions::fast()).unwrap();
        let cold = gpa_report(&problem, &GpaOptions::fast()).unwrap();
        let warm = SolveRequest::new(&problem)
            .backend(Backend::gpa_with(GpaOptions::fast()))
            .warm_start(neighbour.warm_start())
            .solve()
            .unwrap();
        warm.allocation.validate(&problem, 1e-9).unwrap();
        let ii_cold = cold.initiation_interval_ms(&problem);
        let ii_warm = warm.initiation_interval_ms(&problem);
        assert!(
            (ii_cold - ii_warm).abs() < 1e-9 * ii_cold.max(1.0),
            "warm {ii_warm} vs cold {ii_cold}"
        );
        assert!(
            (warm.diagnostics.relaxed_ii_ms.unwrap() - cold.diagnostics.relaxed_ii_ms.unwrap())
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn heterogeneous_fleet_end_to_end() {
        use mfa_platform::{DeviceGroup, FpgaDevice, HeterogeneousPlatform};
        let app = paper_data::alexnet_16bit();
        let fleet = HeterogeneousPlatform::new(
            "1×VU9P + 1×KU115",
            vec![
                DeviceGroup::new(FpgaDevice::vu9p(), 1),
                DeviceGroup::new(FpgaDevice::ku115(), 1),
            ],
        );
        let problem = AllocationProblem::builder()
            .kernels(
                app.kernels()
                    .iter()
                    .map(crate::Kernel::from)
                    .collect::<Vec<_>>(),
            )
            .platform(fleet)
            .budget(mfa_platform::ResourceBudget::uniform(0.7))
            .weights(GoalWeights::new(1.0, 0.7))
            .build()
            .unwrap();
        for options in [GpaOptions::fast(), GpaOptions::paper_defaults()] {
            let report = gpa_report(&problem, &options).unwrap();
            report.allocation.validate(&problem, 1e-9).unwrap();
            let ii = report.initiation_interval_ms(&problem);
            // The mixed pair must land between the 2×VU9P platform (strictly
            // more capable) and a lone VU9P (strictly less capable).
            assert!(ii >= report.diagnostics.relaxed_ii_ms.unwrap() - 1e-9);
            assert!(ii < 6.7, "II = {ii}");
        }
        // GP and bisection backends agree on the final heterogeneous II.
        let gp = gpa_report(&problem, &GpaOptions::paper_defaults()).unwrap();
        let fast = gpa_report(&problem, &GpaOptions::fast()).unwrap();
        let ii_gp = gp.initiation_interval_ms(&problem);
        let ii_fast = fast.initiation_interval_ms(&problem);
        assert!(
            (ii_gp - ii_fast).abs() <= 0.02 * ii_fast,
            "GP {ii_gp} vs bisection {ii_fast}"
        );
    }

    #[test]
    fn infeasible_problems_are_rejected_up_front() {
        let app = paper_data::alexnet_32bit();
        // 20 % budget cannot even hold CONV2 (37.6 % DSP per CU).
        let problem =
            AllocationProblem::from_application(&app, 4, 0.20, GoalWeights::ii_only()).unwrap();
        assert!(matches!(
            gpa_report(&problem, &GpaOptions::paper_defaults()),
            Err(AllocError::Infeasible(_))
        ));
    }

    #[test]
    fn timing_breakdown_is_consistent() {
        let app = paper_data::alexnet_16bit();
        let problem =
            AllocationProblem::from_application(&app, 2, 0.75, GoalWeights::new(1.0, 0.7)).unwrap();
        let report = gpa_report(&problem, &GpaOptions::paper_defaults()).unwrap();
        let timing = report.diagnostics.timing;
        let parts = timing.relaxation + timing.discretization + timing.allocation;
        assert!(parts <= timing.total + Duration::from_millis(5));
    }
}
