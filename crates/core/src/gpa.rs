//! The complete GP+A heuristic: geometric-programming relaxation,
//! discretization, greedy allocation.
//!
//! This is the paper's fast path (Sec. 3.2): it reaches essentially the same
//! initiation interval as the exact MINLP while running orders of magnitude
//! faster, which is what makes design-space exploration over resource
//! constraints and FPGA counts practical.

use std::time::{Duration, Instant};

use crate::discretize::{self, DiscretizeOptions};
use crate::gp_step::{self, Relaxation, RelaxationBackend};
use crate::greedy::{self, GreedyOptions};
use crate::problem::AllocationProblem;
use crate::solution::Allocation;
use crate::AllocError;

/// Options of the GP+A heuristic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GpaOptions {
    /// Backend for the continuous relaxation (default: the GP solver, as in
    /// the paper; the discretization step always uses the fast bisection
    /// engine for its node relaxations).
    pub relaxation_backend: RelaxationBackend,
    /// Discretization options.
    pub discretize: DiscretizeOptions,
    /// Greedy-allocator options (`T`, `Δ`).
    pub greedy: GreedyOptions,
}

impl GpaOptions {
    /// Options matching the paper's final configuration: GP relaxation,
    /// `T = 0`, `Δ = 1 %`.
    pub fn paper_defaults() -> Self {
        GpaOptions::default()
    }

    /// Fast configuration using the bisection backend everywhere (used inside
    /// large design-space sweeps and by the ablation bench).
    pub fn fast() -> Self {
        GpaOptions {
            relaxation_backend: RelaxationBackend::Bisection,
            ..GpaOptions::default()
        }
    }
}

/// Outcome of the GP+A heuristic, including the intermediate results of each
/// step (useful for reporting and for the figures).
#[derive(Debug, Clone, PartialEq)]
pub struct GpaOutcome {
    /// Continuous relaxation (step 1).
    pub relaxation: Relaxation,
    /// Integer CU counts after discretization (step 2), reduced by any CUs
    /// dropped to reach a placeable configuration (see [`Self::dropped_cus`]).
    pub cu_counts: Vec<u32>,
    /// CUs removed per kernel by the feasibility fallback: when the greedy
    /// allocator cannot place the discretized counts even at `R + T`, the
    /// heuristic sheds CUs one at a time until placement succeeds. All zeros
    /// when the discretized counts were realized as-is.
    pub dropped_cus: Vec<u32>,
    /// Final placement (step 3).
    pub allocation: Allocation,
    /// Wall-clock time of the whole heuristic.
    pub elapsed: Duration,
    /// Wall-clock time of the GP/bisection relaxation alone.
    pub relaxation_time: Duration,
    /// Wall-clock time of the discretization branch-and-bound.
    pub discretization_time: Duration,
    /// Wall-clock time of the greedy allocator.
    pub allocation_time: Duration,
}

impl GpaOutcome {
    /// Initiation interval of the final allocation in milliseconds.
    pub fn initiation_interval_ms(&self, problem: &AllocationProblem) -> f64 {
        self.allocation.initiation_interval(problem)
    }

    /// Total CUs dropped by the feasibility fallback (zero in the common
    /// case where the discretized counts were placeable).
    pub fn total_dropped_cus(&self) -> u32 {
        self.dropped_cus.iter().sum()
    }
}

/// State a design-space sweep carries from one solved constraint point to a
/// neighbouring one: the relaxed `ÎI` (used to narrow the bisection bracket)
/// and the final integer counts (used to seed the discretization
/// branch-and-bound with an incumbent). Warm starts are verified before use,
/// so a hint from a distant or tighter point can only cost a few extra
/// feasibility checks — never change the result quality.
#[derive(Debug, Clone, PartialEq)]
pub struct GpaWarmStart {
    /// Relaxed initiation interval of the neighbouring solve, in ms.
    pub relaxed_ii_ms: f64,
    /// Final (post-drop) integer CU counts of the neighbouring solve.
    pub cu_counts: Vec<u32>,
}

impl From<&GpaOutcome> for GpaWarmStart {
    fn from(outcome: &GpaOutcome) -> Self {
        GpaWarmStart {
            relaxed_ii_ms: outcome.relaxation.initiation_interval_ms,
            cu_counts: outcome.cu_counts.clone(),
        }
    }
}

/// Runs the full GP+A heuristic.
///
/// # Errors
///
/// Propagates infeasibility and solver failures from the three steps; see
/// [`AllocError`].
pub fn solve(problem: &AllocationProblem, options: &GpaOptions) -> Result<GpaOutcome, AllocError> {
    solve_with_warm_start(problem, options, None)
}

/// Runs the full GP+A heuristic, optionally warm-started from a neighbouring
/// solve (see [`GpaWarmStart`]). Sweep engines use this to reuse the
/// continuous relaxation and the discrete incumbent across adjacent
/// constraint points; the achieved initiation interval is the same as a cold
/// solve, only faster — though when several integer designs tie on II, the
/// warm-started discretization may return the incumbent where a cold search
/// would find another equally-optimal design.
///
/// # Errors
///
/// Same contract as [`solve`].
pub fn solve_with_warm_start(
    problem: &AllocationProblem,
    options: &GpaOptions,
    warm: Option<&GpaWarmStart>,
) -> Result<GpaOutcome, AllocError> {
    let start = Instant::now();
    problem.validate_feasibility()?;

    let relaxation_start = Instant::now();
    let relaxation = gp_step::solve_with_hint(
        problem,
        options.relaxation_backend,
        warm.map(|w| w.relaxed_ii_ms),
    )?;
    let relaxation_time = relaxation_start.elapsed();

    let discretization_start = Instant::now();
    let discrete = discretize::solve_seeded(
        problem,
        &options.discretize,
        warm.map(|w| w.cu_counts.as_slice()),
    )?;
    let discretization_time = discretization_start.elapsed();

    // The discretized counts saturate the aggregated budget, so at very tight
    // resource constraints a perfect bin packing may not exist and Algorithm 1
    // cannot place every CU even after relaxing by `T`. In that case one CU is
    // dropped and the placement is retried — the heuristic then trades a
    // little II for feasibility, which is exactly the behaviour the paper
    // reports for GP+A at the low end of the constraint range. The victim is
    // the kernel whose drop yields the smallest *resulting pipeline* II
    // (`max_k WCET_k / N_k` after the drop), not merely the smallest own
    // post-drop latency: the pipeline runs at the maximum over kernels, so
    // that maximum is what the choice must minimize. Ties are broken by the
    // victim's own post-drop latency, then by kernel index, keeping the loop
    // deterministic.
    let allocation_start = Instant::now();
    let mut cu_counts = discrete.cu_counts;
    let mut dropped_cus = vec![0u32; problem.num_kernels()];
    let allocation = loop {
        match greedy::allocate(problem, &cu_counts, &options.greedy) {
            Ok(allocation) => break allocation,
            Err(err @ AllocError::AllocationFailed { .. }) => {
                let pipeline_ii_after_dropping = |k: usize| -> f64 {
                    (0..problem.num_kernels())
                        .map(|j| {
                            let n = cu_counts[j] - u32::from(j == k);
                            problem.kernels()[j].wcet_ms() / n.max(1) as f64
                        })
                        .fold(0.0, f64::max)
                };
                let own_ii_after =
                    |k: usize| problem.kernels()[k].wcet_ms() / (cu_counts[k] - 1).max(1) as f64;
                let victim = (0..problem.num_kernels())
                    .filter(|&k| cu_counts[k] > 1)
                    .min_by(|&a, &b| {
                        pipeline_ii_after_dropping(a)
                            .total_cmp(&pipeline_ii_after_dropping(b))
                            .then_with(|| own_ii_after(a).total_cmp(&own_ii_after(b)))
                    });
                match victim {
                    Some(k) => {
                        cu_counts[k] -= 1;
                        dropped_cus[k] += 1;
                    }
                    None => return Err(err),
                }
            }
            Err(other) => return Err(other),
        }
    };
    let allocation_time = allocation_start.elapsed();

    Ok(GpaOutcome {
        relaxation,
        cu_counts,
        dropped_cus,
        allocation,
        elapsed: start.elapsed(),
        relaxation_time,
        discretization_time,
        allocation_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::GoalWeights;
    use mfa_cnn::paper_data;

    #[test]
    fn alex16_on_two_fpgas_end_to_end() {
        let app = paper_data::alexnet_16bit();
        let problem =
            AllocationProblem::from_application(&app, 2, 0.65, GoalWeights::new(1.0, 0.7)).unwrap();
        let outcome = solve(&problem, &GpaOptions::paper_defaults()).unwrap();
        outcome.allocation.validate(&problem, 1e-9).unwrap();
        let ii = outcome.initiation_interval_ms(&problem);
        // The paper's Fig. 3 shows II between roughly 1.0 and 1.7 ms in the
        // 55–85 % constraint range for Alex-16 on 2 FPGAs.
        assert!(ii < 2.0, "II = {ii}");
        assert!(ii >= outcome.relaxation.initiation_interval_ms - 1e-9);
        // Allocation realizes exactly the discretized CU counts.
        for (k, &n) in outcome.cu_counts.iter().enumerate() {
            assert_eq!(outcome.allocation.total_cus(k), n);
        }
    }

    #[test]
    fn vgg_on_eight_fpgas_is_fast_and_feasible() {
        let app = paper_data::vgg_16bit();
        let problem =
            AllocationProblem::from_application(&app, 8, 0.61, GoalWeights::new(1.0, 50.0))
                .unwrap();
        let outcome = solve(&problem, &GpaOptions::fast()).unwrap();
        outcome.allocation.validate(&problem, 1e-9).unwrap();
        let ii = outcome.initiation_interval_ms(&problem);
        // Fig. 5 shows VGG on 8 FPGAs reaching II between ~10 and ~24 ms.
        assert!(ii < 30.0, "II = {ii}");
        assert!(outcome.elapsed.as_secs_f64() < 30.0);
    }

    #[test]
    fn gp_and_fast_backends_agree_on_final_ii() {
        let app = paper_data::alexnet_32bit();
        let problem =
            AllocationProblem::from_application(&app, 4, 0.70, GoalWeights::new(1.0, 6.0)).unwrap();
        let gp = solve(&problem, &GpaOptions::paper_defaults()).unwrap();
        let fast = solve(&problem, &GpaOptions::fast()).unwrap();
        let ii_gp = gp.initiation_interval_ms(&problem);
        let ii_fast = fast.initiation_interval_ms(&problem);
        assert!(
            (ii_gp - ii_fast).abs() < 1e-6,
            "GP backend {ii_gp} vs bisection {ii_fast}"
        );
    }

    #[test]
    fn cu_drop_fallback_records_drops_and_minimizes_pipeline_ii() {
        use crate::problem::Kernel;
        use mfa_platform::{MultiFpgaPlatform, ResourceBudget, ResourceVec};

        // Two FPGAs at 55 % DSP each. The aggregated budget admits counts
        // (2, 1) — 2·0.35 + 0.25 = 0.95 ≤ 1.1 — but no per-FPGA packing of
        // {0.35, 0.35, 0.25} into two bins of 0.55 exists, so the greedy
        // allocator fails and the fallback must shed one CU of "a".
        let problem = AllocationProblem::builder()
            .kernels(vec![
                Kernel::new("a", 10.0, ResourceVec::bram_dsp(0.01, 0.35), 0.01).unwrap(),
                Kernel::new("b", 4.0, ResourceVec::bram_dsp(0.01, 0.25), 0.01).unwrap(),
            ])
            .platform(MultiFpgaPlatform::aws_f1_4xlarge())
            .budget(ResourceBudget::uniform(0.55))
            .weights(GoalWeights::ii_only())
            .build()
            .unwrap();
        let outcome = solve(&problem, &GpaOptions::fast()).unwrap();
        outcome.allocation.validate(&problem, 1e-9).unwrap();
        assert_eq!(outcome.dropped_cus, vec![1, 0]);
        assert_eq!(outcome.total_dropped_cus(), 1);
        assert_eq!(outcome.cu_counts, vec![1, 1]);
        // The drop was forced on the only candidate (b has a single CU), and
        // the resulting pipeline II is exactly the post-drop bottleneck.
        let ii = outcome.initiation_interval_ms(&problem);
        assert!((ii - 10.0).abs() < 1e-9, "II = {ii}");
    }

    #[test]
    fn undropped_solves_report_zero_dropped_cus() {
        use crate::problem::Kernel;
        use mfa_platform::{MultiFpgaPlatform, ResourceBudget, ResourceVec};

        // Small per-CU footprints and a generous budget: the discretized
        // counts always bin-pack, so the fallback never fires.
        let problem = AllocationProblem::builder()
            .kernels(vec![
                Kernel::new("a", 3.0, ResourceVec::bram_dsp(0.02, 0.1), 0.01).unwrap(),
                Kernel::new("b", 5.0, ResourceVec::bram_dsp(0.02, 0.1), 0.01).unwrap(),
            ])
            .platform(MultiFpgaPlatform::aws_f1_4xlarge())
            .budget(ResourceBudget::uniform(0.9))
            .weights(GoalWeights::ii_only())
            .build()
            .unwrap();
        let outcome = solve(&problem, &GpaOptions::fast()).unwrap();
        assert_eq!(outcome.total_dropped_cus(), 0);
        assert!(outcome.dropped_cus.iter().all(|&d| d == 0));
        assert_eq!(outcome.dropped_cus.len(), problem.num_kernels());
        // Without drops the allocation realizes the discretized counts.
        for (k, &n) in outcome.cu_counts.iter().enumerate() {
            assert_eq!(outcome.allocation.total_cus(k), n);
        }
    }

    #[test]
    fn warm_start_from_a_neighbouring_constraint_matches_cold_solve() {
        let app = paper_data::alexnet_16bit();
        let neighbour_problem =
            AllocationProblem::from_application(&app, 2, 0.65, GoalWeights::new(1.0, 0.7)).unwrap();
        let problem =
            AllocationProblem::from_application(&app, 2, 0.70, GoalWeights::new(1.0, 0.7)).unwrap();
        let neighbour = solve(&neighbour_problem, &GpaOptions::fast()).unwrap();
        let cold = solve(&problem, &GpaOptions::fast()).unwrap();
        let warm = solve_with_warm_start(
            &problem,
            &GpaOptions::fast(),
            Some(&GpaWarmStart::from(&neighbour)),
        )
        .unwrap();
        warm.allocation.validate(&problem, 1e-9).unwrap();
        let ii_cold = cold.initiation_interval_ms(&problem);
        let ii_warm = warm.initiation_interval_ms(&problem);
        assert!(
            (ii_cold - ii_warm).abs() < 1e-9 * ii_cold.max(1.0),
            "warm {ii_warm} vs cold {ii_cold}"
        );
        assert!(
            (warm.relaxation.initiation_interval_ms - cold.relaxation.initiation_interval_ms).abs()
                < 1e-9
        );
    }

    #[test]
    fn heterogeneous_fleet_end_to_end() {
        use mfa_platform::{DeviceGroup, FpgaDevice, HeterogeneousPlatform};
        let app = paper_data::alexnet_16bit();
        let fleet = HeterogeneousPlatform::new(
            "1×VU9P + 1×KU115",
            vec![
                DeviceGroup::new(FpgaDevice::vu9p(), 1),
                DeviceGroup::new(FpgaDevice::ku115(), 1),
            ],
        );
        let problem = AllocationProblem::builder()
            .kernels(
                app.kernels()
                    .iter()
                    .map(crate::Kernel::from)
                    .collect::<Vec<_>>(),
            )
            .platform(fleet)
            .budget(mfa_platform::ResourceBudget::uniform(0.7))
            .weights(GoalWeights::new(1.0, 0.7))
            .build()
            .unwrap();
        for options in [GpaOptions::fast(), GpaOptions::paper_defaults()] {
            let outcome = solve(&problem, &options).unwrap();
            outcome.allocation.validate(&problem, 1e-9).unwrap();
            let ii = outcome.initiation_interval_ms(&problem);
            // The mixed pair must land between the 2×VU9P platform (strictly
            // more capable) and a lone VU9P (strictly less capable).
            assert!(ii >= outcome.relaxation.initiation_interval_ms - 1e-9);
            assert!(ii < 6.7, "II = {ii}");
        }
        // GP and bisection backends agree on the final heterogeneous II.
        let gp = solve(&problem, &GpaOptions::paper_defaults()).unwrap();
        let fast = solve(&problem, &GpaOptions::fast()).unwrap();
        let ii_gp = gp.initiation_interval_ms(&problem);
        let ii_fast = fast.initiation_interval_ms(&problem);
        assert!(
            (ii_gp - ii_fast).abs() <= 0.02 * ii_fast,
            "GP {ii_gp} vs bisection {ii_fast}"
        );
    }

    #[test]
    fn infeasible_problems_are_rejected_up_front() {
        let app = paper_data::alexnet_32bit();
        // 20 % budget cannot even hold CONV2 (37.6 % DSP per CU).
        let problem =
            AllocationProblem::from_application(&app, 4, 0.20, GoalWeights::ii_only()).unwrap();
        assert!(matches!(
            solve(&problem, &GpaOptions::paper_defaults()),
            Err(AllocError::Infeasible(_))
        ));
    }

    #[test]
    fn timing_breakdown_is_consistent() {
        let app = paper_data::alexnet_16bit();
        let problem =
            AllocationProblem::from_application(&app, 2, 0.75, GoalWeights::new(1.0, 0.7)).unwrap();
        let outcome = solve(&problem, &GpaOptions::paper_defaults()).unwrap();
        let parts = outcome.relaxation_time + outcome.discretization_time + outcome.allocation_time;
        assert!(parts <= outcome.elapsed + Duration::from_millis(5));
    }
}
