//! The complete GP+A heuristic: geometric-programming relaxation,
//! discretization, greedy allocation.
//!
//! This is the paper's fast path (Sec. 3.2): it reaches essentially the same
//! initiation interval as the exact MINLP while running orders of magnitude
//! faster, which is what makes design-space exploration over resource
//! constraints and FPGA counts practical.

use std::time::{Duration, Instant};

use crate::discretize::{self, DiscretizeOptions};
use crate::gp_step::{self, Relaxation, RelaxationBackend};
use crate::greedy::{self, GreedyOptions};
use crate::problem::AllocationProblem;
use crate::solution::Allocation;
use crate::AllocError;

/// Options of the GP+A heuristic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GpaOptions {
    /// Backend for the continuous relaxation (default: the GP solver, as in
    /// the paper; the discretization step always uses the fast bisection
    /// engine for its node relaxations).
    pub relaxation_backend: RelaxationBackend,
    /// Discretization options.
    pub discretize: DiscretizeOptions,
    /// Greedy-allocator options (`T`, `Δ`).
    pub greedy: GreedyOptions,
}

impl GpaOptions {
    /// Options matching the paper's final configuration: GP relaxation,
    /// `T = 0`, `Δ = 1 %`.
    pub fn paper_defaults() -> Self {
        GpaOptions::default()
    }

    /// Fast configuration using the bisection backend everywhere (used inside
    /// large design-space sweeps and by the ablation bench).
    pub fn fast() -> Self {
        GpaOptions {
            relaxation_backend: RelaxationBackend::Bisection,
            ..GpaOptions::default()
        }
    }
}

/// Outcome of the GP+A heuristic, including the intermediate results of each
/// step (useful for reporting and for the figures).
#[derive(Debug, Clone, PartialEq)]
pub struct GpaOutcome {
    /// Continuous relaxation (step 1).
    pub relaxation: Relaxation,
    /// Integer CU counts after discretization (step 2).
    pub cu_counts: Vec<u32>,
    /// Final placement (step 3).
    pub allocation: Allocation,
    /// Wall-clock time of the whole heuristic.
    pub elapsed: Duration,
    /// Wall-clock time of the GP/bisection relaxation alone.
    pub relaxation_time: Duration,
    /// Wall-clock time of the discretization branch-and-bound.
    pub discretization_time: Duration,
    /// Wall-clock time of the greedy allocator.
    pub allocation_time: Duration,
}

impl GpaOutcome {
    /// Initiation interval of the final allocation in milliseconds.
    pub fn initiation_interval_ms(&self, problem: &AllocationProblem) -> f64 {
        self.allocation.initiation_interval(problem)
    }
}

/// Runs the full GP+A heuristic.
///
/// # Errors
///
/// Propagates infeasibility and solver failures from the three steps; see
/// [`AllocError`].
pub fn solve(problem: &AllocationProblem, options: &GpaOptions) -> Result<GpaOutcome, AllocError> {
    let start = Instant::now();
    problem.validate_feasibility()?;

    let relaxation_start = Instant::now();
    let relaxation = gp_step::solve(problem, options.relaxation_backend)?;
    let relaxation_time = relaxation_start.elapsed();

    let discretization_start = Instant::now();
    let discrete = discretize::solve(problem, &options.discretize)?;
    let discretization_time = discretization_start.elapsed();

    // The discretized counts saturate the aggregated budget, so at very tight
    // resource constraints a perfect bin packing may not exist and Algorithm 1
    // cannot place every CU even after relaxing by `T`. In that case the CU of
    // the kernel whose removal hurts the initiation interval least is dropped
    // and the placement is retried — the heuristic then trades a little II for
    // feasibility, which is exactly the behaviour the paper reports for GP+A
    // at the low end of the constraint range.
    let allocation_start = Instant::now();
    let mut cu_counts = discrete.cu_counts;
    let allocation = loop {
        match greedy::allocate(problem, &cu_counts, &options.greedy) {
            Ok(allocation) => break allocation,
            Err(err @ AllocError::AllocationFailed { .. }) => {
                let victim = (0..problem.num_kernels())
                    .filter(|&k| cu_counts[k] > 1)
                    .min_by(|&a, &b| {
                        let ii_after =
                            |k: usize| problem.kernels()[k].wcet_ms() / (cu_counts[k] - 1) as f64;
                        ii_after(a).total_cmp(&ii_after(b))
                    });
                match victim {
                    Some(k) => cu_counts[k] -= 1,
                    None => return Err(err),
                }
            }
            Err(other) => return Err(other),
        }
    };
    let allocation_time = allocation_start.elapsed();

    Ok(GpaOutcome {
        relaxation,
        cu_counts,
        allocation,
        elapsed: start.elapsed(),
        relaxation_time,
        discretization_time,
        allocation_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::GoalWeights;
    use mfa_cnn::paper_data;

    #[test]
    fn alex16_on_two_fpgas_end_to_end() {
        let app = paper_data::alexnet_16bit();
        let problem =
            AllocationProblem::from_application(&app, 2, 0.65, GoalWeights::new(1.0, 0.7)).unwrap();
        let outcome = solve(&problem, &GpaOptions::paper_defaults()).unwrap();
        outcome.allocation.validate(&problem, 1e-9).unwrap();
        let ii = outcome.initiation_interval_ms(&problem);
        // The paper's Fig. 3 shows II between roughly 1.0 and 1.7 ms in the
        // 55–85 % constraint range for Alex-16 on 2 FPGAs.
        assert!(ii < 2.0, "II = {ii}");
        assert!(ii >= outcome.relaxation.initiation_interval_ms - 1e-9);
        // Allocation realizes exactly the discretized CU counts.
        for (k, &n) in outcome.cu_counts.iter().enumerate() {
            assert_eq!(outcome.allocation.total_cus(k), n);
        }
    }

    #[test]
    fn vgg_on_eight_fpgas_is_fast_and_feasible() {
        let app = paper_data::vgg_16bit();
        let problem =
            AllocationProblem::from_application(&app, 8, 0.61, GoalWeights::new(1.0, 50.0))
                .unwrap();
        let outcome = solve(&problem, &GpaOptions::fast()).unwrap();
        outcome.allocation.validate(&problem, 1e-9).unwrap();
        let ii = outcome.initiation_interval_ms(&problem);
        // Fig. 5 shows VGG on 8 FPGAs reaching II between ~10 and ~24 ms.
        assert!(ii < 30.0, "II = {ii}");
        assert!(outcome.elapsed.as_secs_f64() < 30.0);
    }

    #[test]
    fn gp_and_fast_backends_agree_on_final_ii() {
        let app = paper_data::alexnet_32bit();
        let problem =
            AllocationProblem::from_application(&app, 4, 0.70, GoalWeights::new(1.0, 6.0)).unwrap();
        let gp = solve(&problem, &GpaOptions::paper_defaults()).unwrap();
        let fast = solve(&problem, &GpaOptions::fast()).unwrap();
        let ii_gp = gp.initiation_interval_ms(&problem);
        let ii_fast = fast.initiation_interval_ms(&problem);
        assert!(
            (ii_gp - ii_fast).abs() < 1e-6,
            "GP backend {ii_gp} vs bisection {ii_fast}"
        );
    }

    #[test]
    fn infeasible_problems_are_rejected_up_front() {
        let app = paper_data::alexnet_32bit();
        // 20 % budget cannot even hold CONV2 (37.6 % DSP per CU).
        let problem =
            AllocationProblem::from_application(&app, 4, 0.20, GoalWeights::ii_only()).unwrap();
        assert!(matches!(
            solve(&problem, &GpaOptions::paper_defaults()),
            Err(AllocError::Infeasible(_))
        ));
    }

    #[test]
    fn timing_breakdown_is_consistent() {
        let app = paper_data::alexnet_16bit();
        let problem =
            AllocationProblem::from_application(&app, 2, 0.75, GoalWeights::new(1.0, 0.7)).unwrap();
        let outcome = solve(&problem, &GpaOptions::paper_defaults()).unwrap();
        let parts = outcome.relaxation_time + outcome.discretization_time + outcome.allocation_time;
        assert!(parts <= outcome.elapsed + Duration::from_millis(5));
    }
}
