//! Design-space exploration sweeps (the data behind Figs. 2–5).
//!
//! These are the stable single-threaded sweep primitives, built directly on
//! the request API in [`crate::solver`]. The first-class exploration engine —
//! multi-axis grids, a multi-threaded executor with warm-start caching and
//! JSON/CSV export — lives in the `mfa_explore` crate and drives the same
//! [`crate::solver::SolveRequest`] per point, so both paths produce identical
//! series for identical inputs.

use serde::{Deserialize, Serialize};

use crate::exact::ExactOptions;
use crate::gpa::GpaOptions;
use crate::greedy::GreedyOptions;
use crate::problem::AllocationProblem;
use crate::solver::{Backend, SolveReport, SolveRequest, WarmStartReport};
use crate::AllocError;

/// One point of a resource-constraint sweep: the classic metrics plus the
/// additive solve diagnostics carried by every [`SolveReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Scalar key of the budget point: the uniform fraction on the classic
    /// constraint axis, or the largest per-class fraction for a per-resource
    /// budget point.
    pub resource_constraint: f64,
    /// The full per-FPGA budget the point was solved under (independent
    /// LUT/FF/BRAM/DSP fractions plus the bandwidth cap).
    pub budget: mfa_platform::ResourceBudget,
    /// Achieved initiation interval in milliseconds.
    pub initiation_interval_ms: f64,
    /// Average per-FPGA utilization of the critical resource.
    pub average_utilization: f64,
    /// Global spreading of the allocation.
    pub spreading: f64,
    /// Wall-clock solve time in seconds.
    pub solve_seconds: f64,
    /// Relative gap between the achieved II and the solve's lower bound
    /// (continuous relaxation for the heuristics, proven bound for the
    /// exact backend); zero when the backend reported none.
    pub relaxation_gap: f64,
    /// Branch-and-bound nodes visited (discretization for GP+A, MINLP tree
    /// for the exact backend).
    pub bb_nodes: usize,
    /// Interior-point barrier iterations of the GP relaxation (zero for
    /// bisection-only and exact solves).
    pub barrier_iterations: usize,
    /// KKT factorization attempts of the GP relaxation, full refactorizations
    /// and diagonal refreshes alike (zero for bisection-only and exact
    /// solves).
    pub factorizations: usize,
    /// Simplex pivots spent in the LP substrate (water-filling probes for the
    /// heuristics, node LPs for the exact MINLP).
    pub simplex_pivots: usize,
    /// Total CUs shed by the feasibility fallback.
    pub dropped_cus: u32,
    /// CUs newly configured relative to the reallocation incumbent (zero
    /// for static solves without a reallocation spec).
    pub moved_cus: u32,
    /// Unweighted priced movement `Σ_g c_g · moved_g` against the incumbent
    /// (zero for static solves).
    pub migration_cost: f64,
    /// Which warm-start hints the solve actually consumed.
    pub warm_start: WarmStartReport,
}

impl SweepPoint {
    /// Builds a sweep point from a solved report's metrics and diagnostics;
    /// the budget record comes from the problem instance itself.
    pub fn from_report(
        problem: &AllocationProblem,
        resource_constraint: f64,
        report: &SolveReport,
    ) -> Self {
        let metrics = report.allocation.metrics(problem);
        SweepPoint {
            resource_constraint,
            budget: *problem.budget(),
            initiation_interval_ms: metrics.initiation_interval_ms,
            average_utilization: metrics.average_utilization,
            spreading: metrics.spreading,
            solve_seconds: report.diagnostics.timing.total.as_secs_f64(),
            relaxation_gap: report.diagnostics.relaxation_gap.unwrap_or(0.0),
            bb_nodes: report.diagnostics.bb_nodes,
            barrier_iterations: report.diagnostics.barrier_iterations,
            factorizations: report.diagnostics.factorizations,
            simplex_pivots: report.diagnostics.simplex_pivots,
            dropped_cus: report.diagnostics.total_dropped_cus(),
            moved_cus: report.diagnostics.moved_cus,
            migration_cost: report.diagnostics.migration_cost,
            warm_start: report.diagnostics.warm_start,
        }
    }
}

/// The constraint values swept for a case: `count` evenly spaced points
/// between `lo` and `hi` inclusive.
pub fn constraint_grid(lo: f64, hi: f64, count: usize) -> Vec<f64> {
    assert!(count >= 2 && hi > lo, "need at least two sweep points");
    (0..count)
        .map(|i| lo + (hi - lo) * i as f64 / (count - 1) as f64)
        .collect()
}

/// Sweeps one backend over resource constraints: each point constrains the
/// base problem, builds a [`SolveRequest`] with the request's (default
/// lenient) skip policy, and measures the report. Skipped points — budgets
/// too tight for the application, unplaceable discretizations, budget-
/// exhausted exact solves — are simply absent, exactly as the paper's
/// figures omit them.
///
/// # Errors
///
/// Propagates non-skippable solver failures.
pub fn sweep_backend(
    problem: &AllocationProblem,
    constraints: &[f64],
    backend: &Backend,
) -> Result<Vec<SweepPoint>, AllocError> {
    let mut points = Vec::with_capacity(constraints.len());
    for &constraint in constraints {
        let instance = problem.with_resource_constraint(constraint);
        let report = SolveRequest::new(&instance)
            .backend(backend.clone())
            .solve_point()?;
        if let Some(report) = report {
            points.push(SweepPoint::from_report(&instance, constraint, &report));
        }
    }
    Ok(points)
}

/// Sweeps the GP+A heuristic over resource constraints
/// ([`sweep_backend`] with [`Backend::Gpa`]).
///
/// # Errors
///
/// Propagates unexpected solver failures (infeasibility is not an error here).
pub fn sweep_gpa(
    problem: &AllocationProblem,
    constraints: &[f64],
    options: &GpaOptions,
) -> Result<Vec<SweepPoint>, AllocError> {
    sweep_backend(problem, constraints, &Backend::gpa_with(options.clone()))
}

/// Sweeps the exact MINLP solver over resource constraints
/// ([`sweep_backend`] with [`Backend::Exact`]).
///
/// # Errors
///
/// Propagates unexpected solver failures (infeasibility is not an error here).
pub fn sweep_exact(
    problem: &AllocationProblem,
    constraints: &[f64],
    options: &ExactOptions,
) -> Result<Vec<SweepPoint>, AllocError> {
    sweep_backend(problem, constraints, &Backend::exact_with(options.clone()))
}

/// Sweeps the GP+A heuristic over the `T` parameter (the data of Fig. 2).
///
/// # Errors
///
/// Propagates unexpected solver failures.
pub fn sweep_t_parameter(
    problem: &AllocationProblem,
    constraints: &[f64],
    t_values: &[f64],
    delta: f64,
) -> Result<Vec<(f64, Vec<SweepPoint>)>, AllocError> {
    let mut series = Vec::with_capacity(t_values.len());
    for &t in t_values {
        let options = GpaOptions {
            greedy: GreedyOptions::with_t_delta(t, delta),
            ..GpaOptions::fast()
        };
        let points = sweep_gpa(problem, constraints, &options)?;
        series.push((t, points));
    }
    Ok(series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::PaperCase;
    use crate::exact::ExactOptions;

    #[test]
    fn constraint_grid_is_inclusive_and_even() {
        let grid = constraint_grid(0.5, 0.9, 5);
        assert_eq!(grid.len(), 5);
        assert!((grid[0] - 0.5).abs() < 1e-12);
        assert!((grid[4] - 0.9).abs() < 1e-12);
        assert!((grid[2] - 0.7).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "two sweep points")]
    fn degenerate_grid_is_rejected() {
        let _ = constraint_grid(0.5, 0.5, 1);
    }

    #[test]
    fn gpa_sweep_is_monotone_in_the_constraint() {
        let problem = PaperCase::Alex16OnTwoFpgas.problem(0.65).unwrap();
        let grid = constraint_grid(0.55, 0.85, 4);
        let points = sweep_gpa(&problem, &grid, &GpaOptions::fast()).unwrap();
        assert!(points.len() >= 3);
        // Looser constraints can only improve (not worsen) the II, up to the
        // small non-monotonicities the greedy step may introduce.
        let first = points.first().unwrap().initiation_interval_ms;
        let last = points.last().unwrap().initiation_interval_ms;
        assert!(last <= first + 1e-9);
        for p in &points {
            assert!(p.average_utilization > 0.0 && p.average_utilization <= 1.0);
            assert!(p.solve_seconds >= 0.0);
            // Serial sweeps are cold: the diagnostics must say so.
            assert_eq!(p.warm_start.provenance(), "cold");
            assert!(p.relaxation_gap >= 0.0);
            assert!(p.bb_nodes >= 1);
        }
    }

    #[test]
    fn t_sweep_produces_one_series_per_t() {
        let problem = PaperCase::Alex16OnTwoFpgas.problem(0.65).unwrap();
        let grid = constraint_grid(0.60, 0.80, 3);
        let series = sweep_t_parameter(&problem, &grid, &[0.0, 0.10], 0.01).unwrap();
        assert_eq!(series.len(), 2);
        assert!((series[0].0 - 0.0).abs() < 1e-12);
        assert!((series[1].0 - 0.10).abs() < 1e-12);
        // The paper observes little effect of T; check the curves stay close.
        for (a, b) in series[0].1.iter().zip(&series[1].1) {
            assert!((a.initiation_interval_ms - b.initiation_interval_ms).abs() < 0.5);
        }
    }

    #[test]
    fn infeasible_points_are_skipped_not_fatal() {
        let problem = PaperCase::Alex32OnFourFpgas.problem(0.70).unwrap();
        // 30 % cannot host CONV2 (37.6 % DSP); 75 % can.
        let points = sweep_gpa(&problem, &[0.30, 0.75], &GpaOptions::fast()).unwrap();
        assert_eq!(points.len(), 1);
        assert!((points[0].resource_constraint - 0.75).abs() < 1e-12);
    }

    #[test]
    fn exact_sweep_skips_infeasible_points() {
        let problem = PaperCase::Alex16OnTwoFpgas.problem(0.70).unwrap();
        // 8 % cannot host CONV1 (10.6 % BRAM per CU for Alex-16); 80 % can.
        let points = sweep_exact(
            &problem,
            &[0.08, 0.80],
            &ExactOptions::ii_only_with_budget(2_000, 10.0),
        )
        .unwrap();
        assert_eq!(points.len(), 1);
        assert!((points[0].resource_constraint - 0.80).abs() < 1e-12);
        assert!(points[0].bb_nodes >= 1);
        assert_eq!(points[0].dropped_cus, 0);
    }

    #[test]
    fn backend_sweeps_cover_the_greedy_fallback_too() {
        let problem = PaperCase::Alex16OnTwoFpgas.problem(0.70).unwrap();
        let points = sweep_backend(&problem, &[0.65, 0.80], &Backend::greedy()).unwrap();
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.bb_nodes, 0);
            assert!(p.initiation_interval_ms > 0.0);
        }
    }
}
