//! Design-space exploration sweeps (the data behind Figs. 2–5).
//!
//! These are the stable single-threaded sweep primitives. The first-class
//! exploration engine — multi-axis grids, a multi-threaded executor with
//! warm-start caching and JSON/CSV export — lives in the `mfa_explore` crate
//! and is built on the same per-point solvers and skip policy exposed here,
//! so both paths produce identical series for identical inputs.

use serde::{Deserialize, Serialize};

use crate::exact::{self, ExactOptions};
use crate::gpa::{self, GpaOptions, GpaWarmStart};
use crate::greedy::GreedyOptions;
use crate::problem::AllocationProblem;
use crate::solution::Allocation;
use crate::AllocError;

/// One point of a resource-constraint sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Scalar key of the budget point: the uniform fraction on the classic
    /// constraint axis, or the largest per-class fraction for a per-resource
    /// budget point.
    pub resource_constraint: f64,
    /// The full per-FPGA budget the point was solved under (independent
    /// LUT/FF/BRAM/DSP fractions plus the bandwidth cap).
    pub budget: mfa_platform::ResourceBudget,
    /// Achieved initiation interval in milliseconds.
    pub initiation_interval_ms: f64,
    /// Average per-FPGA utilization of the critical resource.
    pub average_utilization: f64,
    /// Global spreading of the allocation.
    pub spreading: f64,
    /// Wall-clock solve time in seconds.
    pub solve_seconds: f64,
}

impl SweepPoint {
    /// Builds a sweep point from a solved allocation's metrics; the budget
    /// record comes from the problem instance itself.
    pub fn measure(
        problem: &AllocationProblem,
        resource_constraint: f64,
        allocation: &Allocation,
        solve_seconds: f64,
    ) -> Self {
        let metrics = allocation.metrics(problem);
        SweepPoint {
            resource_constraint,
            budget: *problem.budget(),
            initiation_interval_ms: metrics.initiation_interval_ms,
            average_utilization: metrics.average_utilization,
            spreading: metrics.spreading,
            solve_seconds,
        }
    }
}

/// Whether a per-point solver error means "this grid point has no solution —
/// skip it" rather than "the sweep itself is broken — abort".
///
/// Both sweep flavours apply the same policy: a constraint too tight for the
/// application ([`AllocError::Infeasible`]), a discretized configuration the
/// allocator cannot bin-pack ([`AllocError::AllocationFailed`]), and a
/// budgeted MINLP solve that exhausts its node budget before producing any
/// incumbent all mean "no data for this point" — the paper's figures simply
/// omit such points. Anything else (invalid arguments, numerical solver
/// failures) aborts the sweep. `sweep_exact` historically aborted on
/// `AllocationFailed`, unlike `sweep_gpa`; routing both through this one
/// predicate keeps them consistent.
pub fn is_skippable_point_error(err: &AllocError) -> bool {
    matches!(
        err,
        AllocError::Infeasible(_)
            | AllocError::AllocationFailed { .. }
            | AllocError::Minlp(mfa_minlp::MinlpError::NodeLimitWithoutSolution { .. })
    )
}

/// The constraint values swept for a case: `count` evenly spaced points
/// between `lo` and `hi` inclusive.
pub fn constraint_grid(lo: f64, hi: f64, count: usize) -> Vec<f64> {
    assert!(count >= 2 && hi > lo, "need at least two sweep points");
    (0..count)
        .map(|i| lo + (hi - lo) * i as f64 / (count - 1) as f64)
        .collect()
}

/// Solves one GP+A point on an already-constrained `instance` (the caller
/// guarantees `instance` reflects `constraint`), optionally warm-started from
/// a neighbouring solve. On success, also returns the warm-start state for
/// the next neighbour; `Ok(None)` when the point is infeasible or
/// unplaceable (skipped, exactly as the paper's figures omit such points).
/// This is the one per-point kernel behind [`sweep_gpa`] and the parallel
/// engine in `mfa_explore`, so the skip/measure policy cannot drift between
/// the two.
///
/// # Errors
///
/// Propagates unexpected solver failures (see [`is_skippable_point_error`]).
pub fn measure_gpa_instance(
    instance: &AllocationProblem,
    constraint: f64,
    options: &GpaOptions,
    warm: Option<&GpaWarmStart>,
) -> Result<Option<(SweepPoint, GpaWarmStart)>, AllocError> {
    match gpa::solve_with_warm_start(instance, options, warm) {
        Ok(outcome) => {
            let point = SweepPoint::measure(
                instance,
                constraint,
                &outcome.allocation,
                outcome.elapsed.as_secs_f64(),
            );
            Ok(Some((point, GpaWarmStart::from(&outcome))))
        }
        Err(err) if is_skippable_point_error(&err) => Ok(None),
        Err(err) => Err(err),
    }
}

/// Solves one exact-MINLP point on an already-constrained `instance`;
/// `Ok(None)` when the point is skipped. See [`measure_gpa_instance`].
///
/// # Errors
///
/// Propagates unexpected solver failures (see [`is_skippable_point_error`]).
pub fn measure_exact_instance(
    instance: &AllocationProblem,
    constraint: f64,
    options: &ExactOptions,
) -> Result<Option<SweepPoint>, AllocError> {
    match exact::solve(instance, options) {
        Ok(outcome) => Ok(Some(SweepPoint::measure(
            instance,
            constraint,
            &outcome.allocation,
            outcome.elapsed.as_secs_f64(),
        ))),
        Err(err) if is_skippable_point_error(&err) => Ok(None),
        Err(err) => Err(err),
    }
}

/// Solves one GP+A sweep point; `Ok(None)` when the point is infeasible or
/// unplaceable (skipped, exactly as the paper's figures omit such points).
///
/// # Errors
///
/// Propagates unexpected solver failures (see [`is_skippable_point_error`]).
pub fn solve_gpa_point(
    problem: &AllocationProblem,
    constraint: f64,
    options: &GpaOptions,
) -> Result<Option<SweepPoint>, AllocError> {
    let instance = problem.with_resource_constraint(constraint);
    Ok(measure_gpa_instance(&instance, constraint, options, None)?.map(|(point, _)| point))
}

/// Solves one exact-MINLP sweep point; `Ok(None)` when the point is skipped.
///
/// # Errors
///
/// Propagates unexpected solver failures (see [`is_skippable_point_error`]).
pub fn solve_exact_point(
    problem: &AllocationProblem,
    constraint: f64,
    options: &ExactOptions,
) -> Result<Option<SweepPoint>, AllocError> {
    let instance = problem.with_resource_constraint(constraint);
    measure_exact_instance(&instance, constraint, options)
}

/// Sweeps the GP+A heuristic over resource constraints.
///
/// Infeasible constraint points (too tight for the application) are skipped,
/// mirroring how the paper's figures simply do not show those points.
///
/// # Errors
///
/// Propagates unexpected solver failures (infeasibility is not an error here).
pub fn sweep_gpa(
    problem: &AllocationProblem,
    constraints: &[f64],
    options: &GpaOptions,
) -> Result<Vec<SweepPoint>, AllocError> {
    let mut points = Vec::with_capacity(constraints.len());
    for &constraint in constraints {
        if let Some(point) = solve_gpa_point(problem, constraint, options)? {
            points.push(point);
        }
    }
    Ok(points)
}

/// Sweeps the exact MINLP solver over resource constraints.
///
/// Points the solver cannot realize (infeasible constraints, or incumbents
/// the allocator cannot validate) are skipped under the same policy as
/// [`sweep_gpa`]; see [`is_skippable_point_error`].
///
/// # Errors
///
/// Propagates unexpected solver failures (infeasibility is not an error here).
pub fn sweep_exact(
    problem: &AllocationProblem,
    constraints: &[f64],
    options: &ExactOptions,
) -> Result<Vec<SweepPoint>, AllocError> {
    let mut points = Vec::with_capacity(constraints.len());
    for &constraint in constraints {
        if let Some(point) = solve_exact_point(problem, constraint, options)? {
            points.push(point);
        }
    }
    Ok(points)
}

/// Sweeps the GP+A heuristic over the `T` parameter (the data of Fig. 2).
///
/// # Errors
///
/// Propagates unexpected solver failures.
pub fn sweep_t_parameter(
    problem: &AllocationProblem,
    constraints: &[f64],
    t_values: &[f64],
    delta: f64,
) -> Result<Vec<(f64, Vec<SweepPoint>)>, AllocError> {
    let mut series = Vec::with_capacity(t_values.len());
    for &t in t_values {
        let options = GpaOptions {
            greedy: GreedyOptions::with_t_delta(t, delta),
            ..GpaOptions::fast()
        };
        let points = sweep_gpa(problem, constraints, &options)?;
        series.push((t, points));
    }
    Ok(series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::PaperCase;

    #[test]
    fn constraint_grid_is_inclusive_and_even() {
        let grid = constraint_grid(0.5, 0.9, 5);
        assert_eq!(grid.len(), 5);
        assert!((grid[0] - 0.5).abs() < 1e-12);
        assert!((grid[4] - 0.9).abs() < 1e-12);
        assert!((grid[2] - 0.7).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "two sweep points")]
    fn degenerate_grid_is_rejected() {
        let _ = constraint_grid(0.5, 0.5, 1);
    }

    #[test]
    fn gpa_sweep_is_monotone_in_the_constraint() {
        let problem = PaperCase::Alex16OnTwoFpgas.problem(0.65).unwrap();
        let grid = constraint_grid(0.55, 0.85, 4);
        let points = sweep_gpa(&problem, &grid, &GpaOptions::fast()).unwrap();
        assert!(points.len() >= 3);
        // Looser constraints can only improve (not worsen) the II, up to the
        // small non-monotonicities the greedy step may introduce.
        let first = points.first().unwrap().initiation_interval_ms;
        let last = points.last().unwrap().initiation_interval_ms;
        assert!(last <= first + 1e-9);
        for p in &points {
            assert!(p.average_utilization > 0.0 && p.average_utilization <= 1.0);
            assert!(p.solve_seconds >= 0.0);
        }
    }

    #[test]
    fn t_sweep_produces_one_series_per_t() {
        let problem = PaperCase::Alex16OnTwoFpgas.problem(0.65).unwrap();
        let grid = constraint_grid(0.60, 0.80, 3);
        let series = sweep_t_parameter(&problem, &grid, &[0.0, 0.10], 0.01).unwrap();
        assert_eq!(series.len(), 2);
        assert!((series[0].0 - 0.0).abs() < 1e-12);
        assert!((series[1].0 - 0.10).abs() < 1e-12);
        // The paper observes little effect of T; check the curves stay close.
        for (a, b) in series[0].1.iter().zip(&series[1].1) {
            assert!((a.initiation_interval_ms - b.initiation_interval_ms).abs() < 0.5);
        }
    }

    #[test]
    fn infeasible_points_are_skipped_not_fatal() {
        let problem = PaperCase::Alex32OnFourFpgas.problem(0.70).unwrap();
        // 30 % cannot host CONV2 (37.6 % DSP); 75 % can.
        let points = sweep_gpa(&problem, &[0.30, 0.75], &GpaOptions::fast()).unwrap();
        assert_eq!(points.len(), 1);
        assert!((points[0].resource_constraint - 0.75).abs() < 1e-12);
    }

    #[test]
    fn skip_policy_is_uniform_across_both_sweeps() {
        // Regression for the asymmetry where `sweep_exact` aborted the whole
        // sweep on `AllocationFailed` while `sweep_gpa` skipped the point:
        // both now consult this single predicate.
        assert!(is_skippable_point_error(&AllocError::Infeasible(
            "too tight".into()
        )));
        assert!(is_skippable_point_error(&AllocError::AllocationFailed {
            unplaced: vec![("CONV1".into(), 2)],
        }));
        assert!(is_skippable_point_error(&AllocError::from(
            mfa_minlp::MinlpError::NodeLimitWithoutSolution { nodes: 34 }
        )));
        assert!(!is_skippable_point_error(&AllocError::InvalidArgument(
            "bad".into()
        )));
        assert!(!is_skippable_point_error(&AllocError::from(
            mfa_minlp::MinlpError::UnknownVariable(0)
        )));
    }

    #[test]
    fn exact_sweep_skips_infeasible_points() {
        let problem = PaperCase::Alex16OnTwoFpgas.problem(0.70).unwrap();
        // 8 % cannot host CONV1 (10.6 % BRAM per CU for Alex-16); 80 % can.
        let points = sweep_exact(
            &problem,
            &[0.08, 0.80],
            &ExactOptions::ii_only_with_budget(2_000, 10.0),
        )
        .unwrap();
        assert_eq!(points.len(), 1);
        assert!((points[0].resource_constraint - 0.80).abs() < 1e-12);
    }

    #[test]
    fn point_solvers_return_none_for_skipped_points() {
        let problem = PaperCase::Alex32OnFourFpgas.problem(0.70).unwrap();
        assert!(solve_gpa_point(&problem, 0.30, &GpaOptions::fast())
            .unwrap()
            .is_none());
        let point = solve_gpa_point(&problem, 0.75, &GpaOptions::fast())
            .unwrap()
            .expect("75 % is feasible");
        assert!((point.resource_constraint - 0.75).abs() < 1e-12);
        assert!(point.initiation_interval_ms > 0.0);
    }
}
