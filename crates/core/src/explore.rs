//! Design-space exploration sweeps (the data behind Figs. 2–5).

use crate::exact::{self, ExactOptions};
use crate::gpa::{self, GpaOptions};
use crate::greedy::GreedyOptions;
use crate::problem::AllocationProblem;
use crate::AllocError;

/// One point of a resource-constraint sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Per-FPGA resource constraint (fraction).
    pub resource_constraint: f64,
    /// Achieved initiation interval in milliseconds.
    pub initiation_interval_ms: f64,
    /// Average per-FPGA utilization of the critical resource.
    pub average_utilization: f64,
    /// Global spreading of the allocation.
    pub spreading: f64,
    /// Wall-clock solve time in seconds.
    pub solve_seconds: f64,
}

/// The constraint values swept for a case: `count` evenly spaced points
/// between `lo` and `hi` inclusive.
pub fn constraint_grid(lo: f64, hi: f64, count: usize) -> Vec<f64> {
    assert!(count >= 2 && hi > lo, "need at least two sweep points");
    (0..count)
        .map(|i| lo + (hi - lo) * i as f64 / (count - 1) as f64)
        .collect()
}

/// Sweeps the GP+A heuristic over resource constraints.
///
/// Infeasible constraint points (too tight for the application) are skipped,
/// mirroring how the paper's figures simply do not show those points.
///
/// # Errors
///
/// Propagates unexpected solver failures (infeasibility is not an error here).
pub fn sweep_gpa(
    problem: &AllocationProblem,
    constraints: &[f64],
    options: &GpaOptions,
) -> Result<Vec<SweepPoint>, AllocError> {
    let mut points = Vec::with_capacity(constraints.len());
    for &constraint in constraints {
        let instance = problem.with_resource_constraint(constraint);
        match gpa::solve(&instance, options) {
            Ok(outcome) => {
                let metrics = outcome.allocation.metrics(&instance);
                points.push(SweepPoint {
                    resource_constraint: constraint,
                    initiation_interval_ms: metrics.initiation_interval_ms,
                    average_utilization: metrics.average_utilization,
                    spreading: metrics.spreading,
                    solve_seconds: outcome.elapsed.as_secs_f64(),
                });
            }
            Err(AllocError::Infeasible(_)) | Err(AllocError::AllocationFailed { .. }) => continue,
            Err(other) => return Err(other),
        }
    }
    Ok(points)
}

/// Sweeps the exact MINLP solver over resource constraints.
///
/// # Errors
///
/// Propagates unexpected solver failures (infeasibility is not an error here).
pub fn sweep_exact(
    problem: &AllocationProblem,
    constraints: &[f64],
    options: &ExactOptions,
) -> Result<Vec<SweepPoint>, AllocError> {
    let mut points = Vec::with_capacity(constraints.len());
    for &constraint in constraints {
        let instance = problem.with_resource_constraint(constraint);
        match exact::solve(&instance, options) {
            Ok(outcome) => {
                let metrics = outcome.allocation.metrics(&instance);
                points.push(SweepPoint {
                    resource_constraint: constraint,
                    initiation_interval_ms: metrics.initiation_interval_ms,
                    average_utilization: metrics.average_utilization,
                    spreading: metrics.spreading,
                    solve_seconds: outcome.elapsed.as_secs_f64(),
                });
            }
            Err(AllocError::Infeasible(_)) => continue,
            Err(other) => return Err(other),
        }
    }
    Ok(points)
}

/// Sweeps the GP+A heuristic over the `T` parameter (the data of Fig. 2).
///
/// # Errors
///
/// Propagates unexpected solver failures.
pub fn sweep_t_parameter(
    problem: &AllocationProblem,
    constraints: &[f64],
    t_values: &[f64],
    delta: f64,
) -> Result<Vec<(f64, Vec<SweepPoint>)>, AllocError> {
    let mut series = Vec::with_capacity(t_values.len());
    for &t in t_values {
        let options = GpaOptions {
            greedy: GreedyOptions::with_t_delta(t, delta),
            ..GpaOptions::fast()
        };
        let points = sweep_gpa(problem, constraints, &options)?;
        series.push((t, points));
    }
    Ok(series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::PaperCase;

    #[test]
    fn constraint_grid_is_inclusive_and_even() {
        let grid = constraint_grid(0.5, 0.9, 5);
        assert_eq!(grid.len(), 5);
        assert!((grid[0] - 0.5).abs() < 1e-12);
        assert!((grid[4] - 0.9).abs() < 1e-12);
        assert!((grid[2] - 0.7).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "two sweep points")]
    fn degenerate_grid_is_rejected() {
        let _ = constraint_grid(0.5, 0.5, 1);
    }

    #[test]
    fn gpa_sweep_is_monotone_in_the_constraint() {
        let problem = PaperCase::Alex16OnTwoFpgas.problem(0.65).unwrap();
        let grid = constraint_grid(0.55, 0.85, 4);
        let points = sweep_gpa(&problem, &grid, &GpaOptions::fast()).unwrap();
        assert!(points.len() >= 3);
        // Looser constraints can only improve (not worsen) the II, up to the
        // small non-monotonicities the greedy step may introduce.
        let first = points.first().unwrap().initiation_interval_ms;
        let last = points.last().unwrap().initiation_interval_ms;
        assert!(last <= first + 1e-9);
        for p in &points {
            assert!(p.average_utilization > 0.0 && p.average_utilization <= 1.0);
            assert!(p.solve_seconds >= 0.0);
        }
    }

    #[test]
    fn t_sweep_produces_one_series_per_t() {
        let problem = PaperCase::Alex16OnTwoFpgas.problem(0.65).unwrap();
        let grid = constraint_grid(0.60, 0.80, 3);
        let series = sweep_t_parameter(&problem, &grid, &[0.0, 0.10], 0.01).unwrap();
        assert_eq!(series.len(), 2);
        assert!((series[0].0 - 0.0).abs() < 1e-12);
        assert!((series[1].0 - 0.10).abs() < 1e-12);
        // The paper observes little effect of T; check the curves stay close.
        for (a, b) in series[0].1.iter().zip(&series[1].1) {
            assert!((a.initiation_interval_ms - b.initiation_interval_ms).abs() < 0.5);
        }
    }

    #[test]
    fn infeasible_points_are_skipped_not_fatal() {
        let problem = PaperCase::Alex32OnFourFpgas.problem(0.70).unwrap();
        // 30 % cannot host CONV2 (37.6 % DSP); 75 % can.
        let points = sweep_gpa(&problem, &[0.30, 0.75], &GpaOptions::fast()).unwrap();
        assert_eq!(points.len(), 1);
        assert!((points[0].resource_constraint - 0.75).abs() < 1e-12);
    }
}
