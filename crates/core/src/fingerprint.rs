//! Content fingerprints for canonical problem/config identities.
//!
//! The exploration layers key persistent artifacts (sweep-store entries,
//! warm-start hints) by a *content fingerprint*: a 128-bit hash over a
//! canonical, platform-independent byte encoding of the inputs that determine
//! a result. Two design rules make the fingerprints stable enough to commit
//! to disk and compare across machines:
//!
//! * **Canonical serialization first.** Callers hash canonical strings (the
//!   hand-rolled wire-JSON encodings with their fixed field order and
//!   shortest-round-trip float formatting), never in-memory layouts. The
//!   hash therefore cannot depend on struct layout, pointer width, or
//!   endianness of the host.
//! * **Length-prefixed framing.** Every variable-length part is framed with
//!   its length before its bytes, so concatenation ambiguities (`"ab" + "c"`
//!   vs `"a" + "bc"`) produce different digests.
//!
//! The hash itself is FNV-1a/128 — not cryptographic, but collision-sparse
//! far beyond the population of any realistic sweep store, dependency-free,
//! and trivially reproducible in other languages.

use std::fmt;
use std::str::FromStr;

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET_BASIS: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime: 2^88 + 2^8 + 0x3b.
const FNV_PRIME: u128 = (1u128 << 88) + (1 << 8) + 0x3b;

/// A 128-bit content fingerprint.
///
/// Displays as (and parses from) 32 lowercase hex digits. The value is a pure
/// function of the bytes fed to the [`FingerprintHasher`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u128);

impl Fingerprint {
    /// Reconstructs a fingerprint from its raw 128-bit value.
    pub const fn from_raw(raw: u128) -> Self {
        Fingerprint(raw)
    }

    /// The raw 128-bit value.
    pub const fn as_raw(self) -> u128 {
        self.0
    }

    /// Renders the fingerprint as 32 lowercase hex digits.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// The first 8 hex digits — the human-scale abbreviation log lines and
    /// progress reports use (collision-sparse enough to scan by eye, never
    /// a substitute for the full digest as a key).
    pub fn short_hex(self) -> String {
        format!("{:08x}", self.0 >> 96)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Error returned when parsing a [`Fingerprint`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFingerprintError;

impl fmt::Display for ParseFingerprintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expected exactly 32 lowercase hex digits")
    }
}

impl std::error::Error for ParseFingerprintError {}

impl FromStr for Fingerprint {
    type Err = ParseFingerprintError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 32 || !s.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
            return Err(ParseFingerprintError);
        }
        let raw = u128::from_str_radix(s, 16).map_err(|_| ParseFingerprintError)?;
        Ok(Fingerprint(raw))
    }
}

/// Incremental FNV-1a/128 hasher producing [`Fingerprint`]s.
///
/// All multi-byte writes use explicit little-endian encodings and
/// length-prefixed framing, so the digest depends only on the logical
/// sequence of values written — never on the host platform.
#[derive(Debug, Clone)]
pub struct FingerprintHasher {
    state: u128,
}

impl Default for FingerprintHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl FingerprintHasher {
    /// Creates a hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        FingerprintHasher {
            state: FNV_OFFSET_BASIS,
        }
    }

    /// Absorbs raw bytes (no framing; frame variable-length data yourself or
    /// use [`FingerprintHasher::write_str`]).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Absorbs an `f64` via its IEEE-754 bit pattern (little-endian).
    ///
    /// `-0.0` and `0.0` hash differently, as do distinct NaN payloads; the
    /// canonical encodings hashed by the exploration layers never produce
    /// either, so this never matters in practice.
    pub fn write_f64(&mut self, value: f64) {
        self.write_bytes(&value.to_bits().to_le_bytes());
    }

    /// Absorbs a string with length-prefixed framing (`len` as u64, then the
    /// UTF-8 bytes).
    pub fn write_str(&mut self, value: &str) {
        self.write_u64(value.len() as u64);
        self.write_bytes(value.as_bytes());
    }

    /// Finalizes the digest.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

impl Fingerprint {
    /// Hashes a version tag plus an ordered sequence of canonical string
    /// parts. This is the standard entry point: `version` brackets the
    /// encoding revision, and every part is length-prefix framed.
    pub fn of_parts(version: u64, parts: &[&str]) -> Fingerprint {
        let mut hasher = FingerprintHasher::new();
        hasher.write_u64(version);
        hasher.write_u64(parts.len() as u64);
        for part in parts {
            hasher.write_str(part);
        }
        hasher.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_input_is_the_offset_basis() {
        let h = FingerprintHasher::new();
        assert_eq!(h.finish().to_hex(), "6c62272e07bb014262b821756295c58d");
    }

    #[test]
    fn known_vector_is_stable() {
        // Pinned digest: any change to the hash function, framing, or
        // endianness convention must show up as a test failure, because
        // committed sweep stores depend on it.
        let fp = Fingerprint::of_parts(1, &["alpha", "beta"]);
        assert_eq!(fp.to_hex(), "9a7be84621861e5523aa1fdb34592dd3");
    }

    #[test]
    fn short_hex_is_the_leading_eight_digits() {
        let fp = Fingerprint::of_parts(1, &["alpha", "beta"]);
        assert_eq!(fp.short_hex(), &fp.to_hex()[..8]);
        assert_eq!(fp.short_hex().len(), 8);
        // Zero-padded: a small raw value still renders 8 digits.
        assert_eq!(Fingerprint::from_raw(0).short_hex(), "00000000");
    }

    #[test]
    fn hex_round_trip() {
        let fp = Fingerprint::of_parts(7, &["x"]);
        let parsed: Fingerprint = fp.to_hex().parse().unwrap();
        assert_eq!(parsed, fp);
    }

    #[test]
    fn parse_rejects_bad_strings() {
        assert!("".parse::<Fingerprint>().is_err());
        assert!("zz".parse::<Fingerprint>().is_err());
        // Uppercase is rejected: the canonical rendering is lowercase.
        assert!("6C62272E07BB014262B821756295C58D"
            .parse::<Fingerprint>()
            .is_err());
        // 31 and 33 digits.
        assert!("6c62272e07bb014262b821756295c58"
            .parse::<Fingerprint>()
            .is_err());
        assert!("6c62272e07bb014262b821756295c58dd"
            .parse::<Fingerprint>()
            .is_err());
    }

    #[test]
    fn framing_disambiguates_concatenation() {
        assert_ne!(
            Fingerprint::of_parts(1, &["ab", "c"]),
            Fingerprint::of_parts(1, &["a", "bc"])
        );
        assert_ne!(
            Fingerprint::of_parts(1, &["ab"]),
            Fingerprint::of_parts(1, &["ab", ""])
        );
    }

    #[test]
    fn version_is_part_of_the_digest() {
        assert_ne!(
            Fingerprint::of_parts(1, &["x"]),
            Fingerprint::of_parts(2, &["x"])
        );
    }

    proptest! {
        /// Hash stability: re-hashing identical logical input always gives
        /// the identical digest, however the bytes are sliced into
        /// `write_bytes` calls.
        #[test]
        fn digest_is_invariant_under_write_chunking(
            data in collection::vec((0usize..256).prop_map(|b| b as u8), 0usize..256),
            split in 0usize..256,
        ) {
            let mut whole = FingerprintHasher::new();
            whole.write_bytes(&data);

            let cut = split.min(data.len());
            let mut parts = FingerprintHasher::new();
            parts.write_bytes(&data[..cut]);
            parts.write_bytes(&data[cut..]);

            prop_assert_eq!(whole.finish(), parts.finish());
        }

        /// Distinct part lists give distinct digests (no accidental
        /// collisions on realistic short inputs).
        #[test]
        fn distinct_strings_give_distinct_digests(a in 0usize..100_000, b in 0usize..100_000) {
            let (sa, sb) = (format!("part-{a}"), format!("part-{b}"));
            prop_assert!(
                a == b || Fingerprint::of_parts(1, &[&sa]) != Fingerprint::of_parts(1, &[&sb]),
                "collision between {sa:?} and {sb:?}"
            );
        }

        /// Hex round-trip holds for arbitrary 128-bit values.
        #[test]
        fn hex_round_trip_holds(hi in 0usize..usize::MAX, lo in 0usize..usize::MAX) {
            let fp = Fingerprint::from_raw(((hi as u128) << 64) | lo as u128);
            prop_assert_eq!(fp.to_hex().parse::<Fingerprint>().unwrap(), fp);
        }
    }
}
