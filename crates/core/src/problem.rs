//! Problem formulation: kernels, platform, budgets and objective weights.

use serde::{Deserialize, Serialize};

use mfa_cnn::{Application, KernelCharacterization};
use mfa_platform::{HeterogeneousPlatform, MultiFpgaPlatform, ResourceBudget, ResourceVec};

use crate::realloc::{migration_against, MigrationOutcome, ReallocationSpec};
use crate::solution::Allocation;
use crate::AllocError;

/// One pipeline kernel: the constants the optimization model needs
/// (`WCET_k`, `R_k`, `B_k` in the paper's notation).
///
/// Resource and bandwidth figures are fractions of one *reference* FPGA (the
/// device the kernel was characterized on — the first device group of a
/// heterogeneous platform). [`AllocationProblem::kernel_resources_on`]
/// rescales them for other device groups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    name: String,
    wcet_ms: f64,
    resources: ResourceVec,
    bandwidth: f64,
}

impl Kernel {
    /// Creates a kernel description.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::InvalidArgument`] if `wcet_ms` is not strictly
    /// positive, a resource fraction is invalid or outside `[0, 1]`, or the
    /// bandwidth fraction is outside `[0, 1]`.
    pub fn new(
        name: impl Into<String>,
        wcet_ms: f64,
        resources: ResourceVec,
        bandwidth: f64,
    ) -> Result<Self, AllocError> {
        let name = name.into();
        if !(wcet_ms.is_finite() && wcet_ms > 0.0) {
            return Err(AllocError::InvalidArgument(format!(
                "kernel {name}: WCET must be positive, got {wcet_ms}"
            )));
        }
        if !resources.is_valid() || resources.max_component() > 1.0 {
            return Err(AllocError::InvalidArgument(format!(
                "kernel {name}: per-CU resources must be fractions in [0, 1]"
            )));
        }
        if !(0.0..=1.0).contains(&bandwidth) || !bandwidth.is_finite() {
            return Err(AllocError::InvalidArgument(format!(
                "kernel {name}: bandwidth must be a fraction in [0, 1], got {bandwidth}"
            )));
        }
        Ok(Kernel {
            name,
            wcet_ms,
            resources,
            bandwidth,
        })
    }

    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Worst-case execution time of a single CU, in milliseconds.
    pub fn wcet_ms(&self) -> f64 {
        self.wcet_ms
    }

    /// Per-CU resources as fractions of one FPGA.
    pub fn resources(&self) -> &ResourceVec {
        &self.resources
    }

    /// Per-CU DRAM bandwidth as a fraction of one FPGA's bandwidth.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }
}

impl From<&KernelCharacterization> for Kernel {
    fn from(k: &KernelCharacterization) -> Self {
        Kernel {
            name: k.name().to_owned(),
            wcet_ms: k.wcet_ms(),
            resources: *k.resources(),
            bandwidth: k.bandwidth(),
        }
    }
}

/// The weights `α` (initiation interval) and `β` (spreading) of the goal
/// function `g = α·II + β·ϕ` (paper Eq. 5 and Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GoalWeights {
    /// Weight of the initiation interval.
    pub alpha: f64,
    /// Weight of the spreading penalty.
    pub beta: f64,
}

impl GoalWeights {
    /// Creates a weight pair.
    ///
    /// # Panics
    ///
    /// Panics if either weight is negative or non-finite.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha >= 0.0 && beta.is_finite() && beta >= 0.0,
            "goal weights must be nonnegative and finite"
        );
        GoalWeights { alpha, beta }
    }

    /// Weights that optimize the initiation interval only (`β = 0`), the
    /// setting the paper calls plain "MINLP".
    pub fn ii_only() -> Self {
        GoalWeights::new(1.0, 0.0)
    }
}

impl Default for GoalWeights {
    fn default() -> Self {
        GoalWeights::ii_only()
    }
}

/// A complete allocation problem instance: the kernel pipeline, the platform
/// (homogeneous or a heterogeneous fleet of device groups), the per-FPGA
/// budget, the objective weights, and — for re-solves under churn — an
/// optional [`ReallocationSpec`] describing the incumbent placement and the
/// migration pricing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocationProblem {
    kernels: Vec<Kernel>,
    platform: HeterogeneousPlatform,
    budget: ResourceBudget,
    weights: GoalWeights,
    reallocation: Option<ReallocationSpec>,
}

impl AllocationProblem {
    /// Starts building a problem.
    pub fn builder() -> AllocationProblemBuilder {
        AllocationProblemBuilder::default()
    }

    /// Convenience constructor for the common case: a characterized
    /// application on `num_fpgas` FPGAs under a uniform resource constraint.
    ///
    /// # Errors
    ///
    /// Propagates the same validation errors as the [builder](Self::builder).
    pub fn from_application(
        application: &Application,
        num_fpgas: usize,
        resource_constraint: f64,
        weights: GoalWeights,
    ) -> Result<Self, AllocError> {
        AllocationProblem::builder()
            .kernels(
                application
                    .kernels()
                    .iter()
                    .map(Kernel::from)
                    .collect::<Vec<_>>(),
            )
            .platform(MultiFpgaPlatform::aws_f1_16xlarge().with_num_fpgas(num_fpgas))
            .budget(ResourceBudget::uniform(resource_constraint))
            .weights(weights)
            .build()
    }

    /// The kernels, in pipeline order.
    pub fn kernels(&self) -> &[Kernel] {
        &self.kernels
    }

    /// Number of kernels `|K|`.
    pub fn num_kernels(&self) -> usize {
        self.kernels.len()
    }

    /// The platform.
    pub fn platform(&self) -> &HeterogeneousPlatform {
        &self.platform
    }

    /// Number of FPGAs `F` (total across device groups).
    pub fn num_fpgas(&self) -> usize {
        self.platform.num_fpgas()
    }

    /// Number of device groups `G` (1 for the paper's identical-FPGA model).
    pub fn num_groups(&self) -> usize {
        self.platform.num_groups()
    }

    /// Number of FPGAs in device group `g` (`F_g`).
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn group_count(&self, g: usize) -> usize {
        self.platform.group(g).count()
    }

    /// Device group of FPGA `f` under group-major enumeration.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    pub fn group_of_fpga(&self, f: usize) -> usize {
        self.platform.group_of_fpga(f)
    }

    /// Per-CU resources of kernel `k` as fractions of group `g`'s device
    /// (the characterized fractions rescaled by the capacity ratio; a class
    /// the device lacks comes back infinite, meaning the kernel cannot be
    /// hosted there).
    ///
    /// # Panics
    ///
    /// Panics if `k` or `g` is out of range.
    pub fn kernel_resources_on(&self, k: usize, g: usize) -> ResourceVec {
        self.platform.scale_to_group(g, self.kernels[k].resources())
    }

    /// Per-CU DRAM bandwidth of kernel `k` as a fraction of group `g`'s
    /// device bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `g` is out of range.
    pub fn kernel_bandwidth_on(&self, k: usize, g: usize) -> f64 {
        self.platform
            .scale_bandwidth_to_group(g, self.kernels[k].bandwidth())
    }

    /// WCET of one CU of kernel `k` when hosted on device group `g`, in
    /// milliseconds: the characterized (reference-device) WCET inflated by
    /// the group's slowdown factor
    /// [`wcet_scale`](mfa_platform::DeviceGroup::wcet_scale).
    ///
    /// # Panics
    ///
    /// Panics if `k` or `g` is out of range.
    pub fn kernel_wcet_on(&self, k: usize, g: usize) -> f64 {
        self.kernels[k].wcet_ms() * self.platform.group(g).wcet_scale()
    }

    /// `true` when any device group carries a non-unit WCET slowdown, i.e.
    /// the scaled initiation-interval metrics differ from the
    /// reference-speed surrogate the relaxation optimizes.
    pub fn has_wcet_scaling(&self) -> bool {
        (0..self.num_groups()).any(|g| self.platform.group(g).wcet_scale() != 1.0)
    }

    /// Per-FPGA resource limit on device group `g`: the budget's resource
    /// fraction scaled by the group's
    /// [`budget_scale`](mfa_platform::DeviceGroup::budget_scale).
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn group_resource_limit(&self, g: usize) -> ResourceVec {
        *self.budget.resource_fraction() * self.platform.group(g).budget_scale()
    }

    /// Per-FPGA bandwidth limit on device group `g`: the budget's bandwidth
    /// fraction scaled by the group's
    /// [`budget_scale`](mfa_platform::DeviceGroup::budget_scale).
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn group_bandwidth_limit(&self, g: usize) -> f64 {
        self.budget.bandwidth_fraction() * self.platform.group(g).budget_scale()
    }

    /// The per-FPGA budget (resource constraint and bandwidth cap).
    pub fn budget(&self) -> &ResourceBudget {
        &self.budget
    }

    /// The reallocation spec riding on this problem, if any.
    pub fn reallocation(&self) -> Option<&ReallocationSpec> {
        self.reallocation.as_ref()
    }

    /// `true` when an *active* reallocation spec rides on the problem — a
    /// positive migration weight or a moved-CU bound. Solvers gate every
    /// behavioural change on this, so an inert spec (or none) keeps them
    /// byte-identical to the static solve.
    pub fn migration_active(&self) -> bool {
        self.reallocation
            .as_ref()
            .is_some_and(ReallocationSpec::is_active)
    }

    /// The incumbent aligned to this problem's kernel order (one per-group
    /// row per kernel, zeros for kernels the incumbent does not know), or
    /// `None` when no reallocation spec is attached.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::InvalidArgument`] when the incumbent's group
    /// count does not match the platform's.
    pub fn aligned_incumbent(&self) -> Result<Option<Vec<Vec<u32>>>, AllocError> {
        match &self.reallocation {
            Some(spec) => spec.incumbent().aligned_to(self).map(Some),
            None => Ok(None),
        }
    }

    /// Movement of per-group CU counts `groups` (`[kernel][group]`) against
    /// the attached incumbent. Zero when no spec is attached.
    pub fn migration_of_groups(&self, groups: &[Vec<u32>]) -> MigrationOutcome {
        let Some(spec) = &self.reallocation else {
            return MigrationOutcome::default();
        };
        let Ok(incumbent) = spec.incumbent().aligned_to(self) else {
            return MigrationOutcome::default();
        };
        let costs: Vec<f64> = (0..self.num_groups())
            .map(|g| spec.migration().group_cost(g))
            .collect();
        migration_against(&incumbent, &costs, groups)
    }

    /// Movement of a placed allocation against the attached incumbent
    /// (group-granular: reshuffles among an identical group's FPGAs are
    /// free). Zero when no spec is attached.
    pub fn migration_of(&self, allocation: &Allocation) -> MigrationOutcome {
        if self.reallocation.is_none() {
            return MigrationOutcome::default();
        }
        let mut groups = vec![vec![0u32; self.num_groups()]; self.num_kernels()];
        let num_fpgas = self.num_fpgas().min(allocation.num_fpgas());
        for (k, row) in groups.iter_mut().enumerate().take(allocation.num_kernels()) {
            for f in 0..num_fpgas {
                row[self.group_of_fpga(f)] += allocation.cus(k, f);
            }
        }
        self.migration_of_groups(&groups)
    }

    /// The objective weights.
    pub fn weights(&self) -> &GoalWeights {
        &self.weights
    }

    /// Returns a copy of the problem with a different uniform resource
    /// constraint (used by the constraint sweeps of Figs. 2–5).
    #[must_use]
    pub fn with_resource_constraint(&self, fraction: f64) -> Self {
        AllocationProblem {
            budget: ResourceBudget::new(
                ResourceVec::uniform(fraction),
                self.budget.bandwidth_fraction(),
            ),
            ..self.clone()
        }
    }

    /// Returns a copy of the problem under a different per-FPGA budget
    /// (used by the per-resource budget axis of design-space sweeps).
    #[must_use]
    pub fn with_budget(&self, budget: ResourceBudget) -> Self {
        AllocationProblem {
            budget,
            ..self.clone()
        }
    }

    /// Returns a copy of the problem on a different platform (used by the
    /// platform axis of design-space sweeps).
    #[must_use]
    pub fn with_platform(&self, platform: impl Into<HeterogeneousPlatform>) -> Self {
        AllocationProblem {
            platform: platform.into(),
            ..self.clone()
        }
    }

    /// Returns a copy of the problem with different objective weights.
    #[must_use]
    pub fn with_weights(&self, weights: GoalWeights) -> Self {
        AllocationProblem {
            weights,
            ..self.clone()
        }
    }

    /// Returns a copy of the problem with a different (or no) reallocation
    /// spec — `None` turns a re-solve back into a static solve.
    #[must_use]
    pub fn with_reallocation(&self, reallocation: Option<ReallocationSpec>) -> Self {
        AllocationProblem {
            reallocation,
            ..self.clone()
        }
    }

    /// Returns a copy of the problem on a different number of FPGAs.
    #[must_use]
    pub fn with_num_fpgas(&self, num_fpgas: usize) -> Self {
        AllocationProblem {
            platform: self.platform.with_num_fpgas(num_fpgas),
            ..self.clone()
        }
    }

    /// Largest number of CUs of kernel `k` that fit on a single FPGA of
    /// device group `g` under the current budget (resource classes and
    /// bandwidth combined).
    ///
    /// # Panics
    ///
    /// Panics if `k` or `g` is out of range.
    pub fn max_cus_per_fpga_in_group(&self, k: usize, g: usize) -> u32 {
        let resources = self.kernel_resources_on(k, g);
        let bandwidth = self.kernel_bandwidth_on(k, g);
        let resource_bound = resources.max_copies_within(&self.group_resource_limit(g));
        let bandwidth_bound = if bandwidth > 0.0 {
            Some((self.group_bandwidth_limit(g) / bandwidth + 1e-9).floor() as u32)
        } else {
            None
        };
        match (resource_bound, bandwidth_bound) {
            (Some(r), Some(b)) => r.min(b),
            (Some(r), None) => r,
            (None, Some(b)) => b,
            // A kernel with zero resources and zero bandwidth can be
            // replicated arbitrarily; cap it at something sane.
            (None, None) => u32::MAX / 2,
        }
    }

    /// Largest number of CUs of kernel `k` that fit on a single FPGA of the
    /// most capable device group under the current budget.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn max_cus_per_fpga(&self, k: usize) -> u32 {
        (0..self.num_groups())
            .map(|g| self.max_cus_per_fpga_in_group(k, g))
            .max()
            .expect("a platform has at least one device group")
    }

    /// Largest useful total CU count for kernel `k` across the whole platform
    /// (summed over device groups).
    pub fn max_total_cus(&self, k: usize) -> u32 {
        (0..self.num_groups()).fold(0u32, |acc, g| {
            acc.saturating_add(
                self.max_cus_per_fpga_in_group(k, g)
                    .saturating_mul(self.group_count(g) as u32),
            )
        })
    }

    /// Checks that at least one CU of every kernel can be placed somewhere.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Infeasible`] naming the first kernel that cannot
    /// fit a single CU within the per-FPGA budget on any device group, or
    /// whose one-CU-per-kernel baseline cannot be packed onto the platform by
    /// a simple first-fit.
    pub fn validate_feasibility(&self) -> Result<(), AllocError> {
        for (k, kernel) in self.kernels.iter().enumerate() {
            if self.max_cus_per_fpga(k) == 0 {
                return Err(AllocError::Infeasible(format!(
                    "kernel {} does not fit a single CU within the per-FPGA budget",
                    kernel.name()
                )));
            }
        }
        // First-fit-decreasing packing of one CU per kernel; the per-CU
        // demand is rescaled to each FPGA's own device group.
        let mut slack: Vec<(usize, ResourceVec, f64)> = (0..self.num_fpgas())
            .map(|f| {
                let g = self.group_of_fpga(f);
                (
                    g,
                    self.group_resource_limit(g),
                    self.group_bandwidth_limit(g),
                )
            })
            .collect();
        let mut order: Vec<usize> = (0..self.kernels.len()).collect();
        order.sort_by(|&a, &b| {
            self.kernels[b]
                .resources()
                .max_component()
                .total_cmp(&self.kernels[a].resources().max_component())
        });
        for k in order {
            let kernel = &self.kernels[k];
            let placed = slack.iter_mut().find(|(g, res, bw)| {
                self.kernel_resources_on(k, *g).fits_within(res, 1e-9)
                    && self.kernel_bandwidth_on(k, *g) <= *bw + 1e-9
            });
            match placed {
                Some((g, res, bw)) => {
                    *res = *res - self.kernel_resources_on(k, *g);
                    *bw -= self.kernel_bandwidth_on(k, *g);
                }
                None => {
                    return Err(AllocError::Infeasible(format!(
                        "one CU per kernel does not fit on {} FPGAs under the budget \
                         (kernel {} could not be placed)",
                        self.num_fpgas(),
                        kernel.name()
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Builder for [`AllocationProblem`].
#[derive(Debug, Clone, Default)]
pub struct AllocationProblemBuilder {
    kernels: Vec<Kernel>,
    platform: Option<HeterogeneousPlatform>,
    budget: Option<ResourceBudget>,
    weights: Option<GoalWeights>,
    reallocation: Option<ReallocationSpec>,
}

impl AllocationProblemBuilder {
    /// Sets the kernel pipeline (replaces any previously set kernels).
    #[must_use]
    pub fn kernels(mut self, kernels: Vec<Kernel>) -> Self {
        self.kernels = kernels;
        self
    }

    /// Adds one kernel to the pipeline.
    #[must_use]
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernels.push(kernel);
        self
    }

    /// Sets the platform (a [`MultiFpgaPlatform`] converts into the
    /// one-group heterogeneous form).
    #[must_use]
    pub fn platform(mut self, platform: impl Into<HeterogeneousPlatform>) -> Self {
        self.platform = Some(platform.into());
        self
    }

    /// Sets the per-FPGA budget.
    #[must_use]
    pub fn budget(mut self, budget: ResourceBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets the objective weights.
    #[must_use]
    pub fn weights(mut self, weights: GoalWeights) -> Self {
        self.weights = Some(weights);
        self
    }

    /// Attaches a reallocation spec (incumbent placement + migration
    /// pricing) so solvers re-solve *from* the incumbent rather than from
    /// scratch.
    #[must_use]
    pub fn reallocation(mut self, spec: ReallocationSpec) -> Self {
        self.reallocation = Some(spec);
        self
    }

    /// Builds the problem.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::InvalidArgument`] if no kernels were provided.
    /// Platform, budget and weights default to an 8-FPGA AWS F1 instance,
    /// a 100 % budget and `α = 1, β = 0`.
    pub fn build(self) -> Result<AllocationProblem, AllocError> {
        if self.kernels.is_empty() {
            return Err(AllocError::InvalidArgument(
                "an allocation problem needs at least one kernel".into(),
            ));
        }
        Ok(AllocationProblem {
            kernels: self.kernels,
            platform: self
                .platform
                .unwrap_or_else(|| MultiFpgaPlatform::aws_f1_16xlarge().into()),
            budget: self.budget.unwrap_or_default(),
            weights: self.weights.unwrap_or_default(),
            reallocation: self.reallocation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfa_cnn::paper_data;

    fn toy_kernel(name: &str, wcet: f64, dsp: f64) -> Kernel {
        Kernel::new(name, wcet, ResourceVec::bram_dsp(0.05, dsp), 0.02).unwrap()
    }

    #[test]
    fn kernel_validation() {
        assert!(Kernel::new("k", 0.0, ResourceVec::zero(), 0.0).is_err());
        assert!(Kernel::new("k", 1.0, ResourceVec::uniform(1.5), 0.0).is_err());
        assert!(Kernel::new("k", 1.0, ResourceVec::zero(), 1.5).is_err());
        let k = toy_kernel("CONV", 2.0, 0.3);
        assert_eq!(k.name(), "CONV");
        assert_eq!(k.wcet_ms(), 2.0);
        assert_eq!(k.bandwidth(), 0.02);
    }

    #[test]
    fn builder_requires_kernels_and_applies_defaults() {
        assert!(AllocationProblem::builder().build().is_err());
        let p = AllocationProblem::builder()
            .kernel(toy_kernel("a", 1.0, 0.1))
            .build()
            .unwrap();
        assert_eq!(p.num_fpgas(), 8);
        assert_eq!(p.weights().beta, 0.0);
        assert_eq!(p.budget().resource_fraction().dsp, 1.0);
        assert_eq!(p.num_kernels(), 1);
    }

    #[test]
    fn from_application_uses_paper_data() {
        let app = paper_data::alexnet_16bit();
        let p =
            AllocationProblem::from_application(&app, 2, 0.65, GoalWeights::new(1.0, 0.7)).unwrap();
        assert_eq!(p.num_kernels(), 8);
        assert_eq!(p.num_fpgas(), 2);
        assert!((p.budget().resource_fraction().dsp - 0.65).abs() < 1e-12);
        assert!(p.validate_feasibility().is_ok());
    }

    #[test]
    fn max_cus_respects_all_constraints() {
        let p = AllocationProblem::builder()
            .kernel(Kernel::new("k", 1.0, ResourceVec::bram_dsp(0.1, 0.2), 0.3).unwrap())
            .budget(ResourceBudget::uniform(0.65))
            .platform(MultiFpgaPlatform::aws_f1_4xlarge())
            .build()
            .unwrap();
        // Resource bound: floor(0.65/0.2) = 3; bandwidth bound: floor(1/0.3) = 3.
        assert_eq!(p.max_cus_per_fpga(0), 3);
        assert_eq!(p.max_total_cus(0), 6);
    }

    #[test]
    fn infeasibility_is_detected() {
        // A kernel that needs 80 % DSP under a 60 % budget cannot fit.
        let p = AllocationProblem::builder()
            .kernel(Kernel::new("big", 1.0, ResourceVec::bram_dsp(0.1, 0.8), 0.1).unwrap())
            .budget(ResourceBudget::uniform(0.6))
            .build()
            .unwrap();
        assert!(matches!(
            p.validate_feasibility(),
            Err(AllocError::Infeasible(_))
        ));
        // Too many kernels for one FPGA at one CU each.
        let p = AllocationProblem::builder()
            .kernels(
                (0..5)
                    .map(|i| toy_kernel(&format!("k{i}"), 1.0, 0.4))
                    .collect(),
            )
            .platform(MultiFpgaPlatform::aws_f1_2xlarge())
            .budget(ResourceBudget::uniform(0.9))
            .build()
            .unwrap();
        assert!(p.validate_feasibility().is_err());
    }

    #[test]
    fn heterogeneous_problems_scale_per_group() {
        use mfa_platform::{DeviceGroup, FpgaDevice, HeterogeneousPlatform};

        let fleet = HeterogeneousPlatform::new(
            "1×VU9P + 1×KU115",
            vec![
                DeviceGroup::new(FpgaDevice::vu9p(), 1),
                DeviceGroup::new(FpgaDevice::ku115(), 1),
            ],
        );
        let p = AllocationProblem::builder()
            .kernel(Kernel::new("k", 1.0, ResourceVec::bram_dsp(0.1, 0.2), 0.3).unwrap())
            .budget(ResourceBudget::uniform(0.65))
            .platform(fleet)
            .build()
            .unwrap();
        assert_eq!(p.num_groups(), 2);
        assert_eq!(p.num_fpgas(), 2);
        assert_eq!(p.group_count(0), 1);
        assert_eq!(p.group_of_fpga(0), 0);
        assert_eq!(p.group_of_fpga(1), 1);
        // Reference group: fractions unchanged.
        assert_eq!(p.kernel_resources_on(0, 0), ResourceVec::bram_dsp(0.1, 0.2));
        assert_eq!(p.kernel_bandwidth_on(0, 0), 0.3);
        // KU115: DSP fraction inflates by 6840/5520, bandwidth by 64/38.4.
        let scaled = p.kernel_resources_on(0, 1);
        assert!((scaled.dsp - 0.2 * 6_840.0 / 5_520.0).abs() < 1e-12);
        assert!((p.kernel_bandwidth_on(0, 1) - 0.3 * 64.0 / 38.4).abs() < 1e-12);
        // Per-group CU caps: VU9P bounded by resources/bandwidth as before;
        // KU115 bounded tighter (DSP 0.2478/CU → 2, bandwidth 0.5/CU → 2).
        assert_eq!(p.max_cus_per_fpga_in_group(0, 0), 3);
        assert_eq!(p.max_cus_per_fpga_in_group(0, 1), 2);
        assert_eq!(p.max_cus_per_fpga(0), 3);
        assert_eq!(p.max_total_cus(0), 5);
        assert!(p.validate_feasibility().is_ok());
    }

    #[test]
    fn with_platform_swaps_the_fleet() {
        use mfa_platform::{DeviceGroup, FpgaDevice, HeterogeneousPlatform};

        let p = AllocationProblem::builder()
            .kernel(toy_kernel("a", 1.0, 0.1))
            .build()
            .unwrap();
        let fleet = HeterogeneousPlatform::new(
            "fleet",
            vec![
                DeviceGroup::new(FpgaDevice::vu9p(), 2),
                DeviceGroup::new(FpgaDevice::ku115(), 2),
            ],
        );
        let q = p.with_platform(fleet);
        assert_eq!(q.num_fpgas(), 4);
        assert_eq!(q.num_groups(), 2);
        // Budget axis modifier.
        let r = q.with_budget(ResourceBudget::new(
            ResourceVec::new(0.9, 0.9, 0.5, 0.7),
            0.8,
        ));
        assert_eq!(r.budget().resource_fraction().bram, 0.5);
        assert_eq!(r.budget().bandwidth_fraction(), 0.8);
        // Original untouched.
        assert_eq!(p.num_fpgas(), 8);
    }

    #[test]
    fn group_scales_shift_wcet_and_limits() {
        use mfa_platform::{DeviceGroup, FpgaDevice, HeterogeneousPlatform};

        let fleet = HeterogeneousPlatform::new(
            "scaled",
            vec![
                DeviceGroup::new(FpgaDevice::vu9p(), 1),
                DeviceGroup::new(FpgaDevice::vu9p(), 1)
                    .with_wcet_scale(1.5)
                    .with_budget_scale(0.5),
            ],
        );
        let p = AllocationProblem::builder()
            .kernel(Kernel::new("k", 2.0, ResourceVec::bram_dsp(0.1, 0.2), 0.3).unwrap())
            .budget(ResourceBudget::uniform(0.65))
            .platform(fleet)
            .build()
            .unwrap();
        assert!(p.has_wcet_scaling());
        assert_eq!(p.kernel_wcet_on(0, 0), 2.0);
        assert_eq!(p.kernel_wcet_on(0, 1), 3.0);
        // Group 1's limits halve: floor(0.325/0.2)=1 by DSP, floor(0.5/0.3)=1 by bw.
        assert!((p.group_resource_limit(1).dsp - 0.325).abs() < 1e-12);
        assert!((p.group_bandwidth_limit(1) - 0.5).abs() < 1e-12);
        assert_eq!(p.max_cus_per_fpga_in_group(0, 0), 3);
        assert_eq!(p.max_cus_per_fpga_in_group(0, 1), 1);
        // Neutral scales leave the limits bit-identical to the raw budget.
        let neutral = AllocationProblem::builder()
            .kernel(Kernel::new("k", 2.0, ResourceVec::bram_dsp(0.1, 0.2), 0.3).unwrap())
            .budget(ResourceBudget::uniform(0.65))
            .platform(MultiFpgaPlatform::aws_f1_4xlarge())
            .build()
            .unwrap();
        assert!(!neutral.has_wcet_scaling());
        assert_eq!(
            neutral.group_resource_limit(0),
            *neutral.budget().resource_fraction()
        );
        assert_eq!(
            neutral.group_bandwidth_limit(0),
            neutral.budget().bandwidth_fraction()
        );
    }

    #[test]
    fn migration_accounting_rides_on_the_problem() {
        use crate::realloc::{Incumbent, MigrationCost};
        use crate::solution::Allocation;

        let p = AllocationProblem::builder()
            .kernel(toy_kernel("a", 1.0, 0.1))
            .kernel(toy_kernel("b", 2.0, 0.1))
            .platform(MultiFpgaPlatform::aws_f1_4xlarge())
            .build()
            .unwrap();
        // No spec: everything reports zero movement.
        assert_eq!(p.migration_of_groups(&[vec![5], vec![5]]).moved_cus, 0);
        assert!(!p.migration_active());

        let inc = Incumbent::new(vec![("a".into(), vec![2]), ("b".into(), vec![1])]).unwrap();
        let spec = ReallocationSpec::new(inc, MigrationCost::new(0.5).unwrap());
        let q = p.with_reallocation(Some(spec));
        assert!(q.migration_active());
        let m = q.migration_of_groups(&[vec![3], vec![1]]);
        assert_eq!(m.moved_cus, 1);
        assert!((m.cost - 1.0).abs() < 1e-12);
        // Placed form sums FPGAs into groups first.
        let mut alloc = Allocation::zeros(&q);
        alloc.set_cus(0, 0, 2);
        alloc.set_cus(0, 1, 2);
        alloc.set_cus(1, 0, 1);
        let m = q.migration_of(&alloc);
        assert_eq!(m.moved_cus, 2);
        // Inert spec (weight 0, no bound) is not "active".
        let inert = ReallocationSpec::new(
            Incumbent::new(vec![("a".into(), vec![2])]).unwrap(),
            MigrationCost::free(),
        );
        assert!(!p.with_reallocation(Some(inert)).migration_active());
    }

    #[test]
    fn with_modifiers_return_updated_copies() {
        let app = paper_data::alexnet_32bit();
        let p = AllocationProblem::from_application(&app, 4, 0.70, GoalWeights::ii_only()).unwrap();
        let tighter = p.with_resource_constraint(0.5);
        assert!((tighter.budget().resource_fraction().bram - 0.5).abs() < 1e-12);
        let weighted = p.with_weights(GoalWeights::new(1.0, 6.0));
        assert_eq!(weighted.weights().beta, 6.0);
        let bigger = p.with_num_fpgas(8);
        assert_eq!(bigger.num_fpgas(), 8);
        // Original unchanged.
        assert_eq!(p.num_fpgas(), 4);
    }
}
