//! Reporting: per-FPGA, per-kernel utilization breakdowns (the data of
//! Fig. 6) and plain-text allocation summaries.

use std::fmt::Write as _;

use crate::problem::AllocationProblem;
use crate::solution::Allocation;

/// Per-FPGA breakdown of who uses which share of the critical resource.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaBreakdown {
    /// FPGA index.
    pub fpga: usize,
    /// `(kernel name, CUs, fraction of the FPGA's critical resource)` for
    /// every kernel present on this FPGA.
    pub kernels: Vec<(String, u32, f64)>,
    /// Unused fraction of the critical resource ("SLACK" in Fig. 6).
    pub slack: f64,
}

/// Projection from a [`mfa_platform::ResourceVec`] onto one resource class
/// (LUT, FF, BRAM or DSP share).
pub type ResourceAccessor = fn(&mfa_platform::ResourceVec) -> f64;

/// The resource class whose aggregate demand is largest for this application
/// (DSPs for every paper workload) — the class whose stacked per-kernel shares
/// Fig. 6 plots.
pub fn critical_class(problem: &AllocationProblem) -> ResourceAccessor {
    let totals = problem
        .kernels()
        .iter()
        .fold(mfa_platform::ResourceVec::zero(), |acc, k| {
            acc + *k.resources()
        });
    let classes: [(f64, ResourceAccessor); 4] = [
        (totals.lut, |r| r.lut),
        (totals.ff, |r| r.ff),
        (totals.bram, |r| r.bram),
        (totals.dsp, |r| r.dsp),
    ];
    classes
        .into_iter()
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .map(|(_, accessor)| accessor)
        .expect("there are always four classes")
}

/// Computes the per-FPGA utilization breakdown of an allocation for the
/// application's [`critical_class`] (DSPs for every paper workload), exactly
/// like the stacked bars of Fig. 6.
pub fn utilization_breakdown(
    problem: &AllocationProblem,
    allocation: &Allocation,
) -> Vec<FpgaBreakdown> {
    let class = critical_class(problem);
    (0..problem.num_fpgas())
        .map(|f| {
            let mut kernels = Vec::new();
            let mut used = 0.0;
            for (k, kernel) in problem.kernels().iter().enumerate() {
                let cus = allocation.cus(k, f);
                if cus > 0 {
                    let share = class(kernel.resources()) * cus as f64;
                    used += share;
                    kernels.push((kernel.name().to_owned(), cus, share));
                }
            }
            FpgaBreakdown {
                fpga: f,
                kernels,
                slack: (1.0 - used).max(0.0),
            }
        })
        .collect()
}

/// Renders a plain-text summary of an allocation: per-kernel CU counts and
/// execution times, per-FPGA utilization, and the headline metrics.
pub fn render_summary(problem: &AllocationProblem, allocation: &Allocation) -> String {
    let mut out = String::new();
    let metrics = allocation.metrics(problem);
    let _ = writeln!(
        out,
        "II = {:.3} ms   throughput = {:.1}/s   spreading = {:.3}   goal = {:.3}",
        metrics.initiation_interval_ms,
        allocation.throughput_per_second(problem),
        metrics.spreading,
        metrics.goal
    );
    let _ = writeln!(out, "kernel            N_k   ET_k (ms)   placement");
    for (k, kernel) in problem.kernels().iter().enumerate() {
        let placement: Vec<String> = (0..problem.num_fpgas())
            .filter(|&f| allocation.cus(k, f) > 0)
            .map(|f| format!("F{}×{}", f + 1, allocation.cus(k, f)))
            .collect();
        let _ = writeln!(
            out,
            "{:<16} {:>4}   {:>9.3}   {}",
            kernel.name(),
            allocation.total_cus(k),
            allocation.execution_time(problem, k),
            placement.join(" ")
        );
    }
    let _ = writeln!(out, "fpga   critical-use   bandwidth");
    for f in 0..problem.num_fpgas() {
        let _ = writeln!(
            out,
            "F{:<5} {:>11.1}%   {:>8.1}%",
            f + 1,
            100.0 * allocation.fpga_resources(problem, f).max_component(),
            100.0 * allocation.fpga_bandwidth(problem, f)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::PaperCase;
    use crate::gpa::GpaOptions;

    #[test]
    fn breakdown_accounts_for_every_cu_and_slack() {
        let problem = PaperCase::Alex16OnTwoFpgas.problem(0.70).unwrap();
        let outcome = crate::solver::SolveRequest::new(&problem)
            .backend(crate::solver::Backend::gpa_with(GpaOptions::fast()))
            .solve()
            .unwrap();
        let breakdown = utilization_breakdown(&problem, &outcome.allocation);
        assert_eq!(breakdown.len(), 2);
        let total_cus: u32 = breakdown
            .iter()
            .flat_map(|b| b.kernels.iter().map(|&(_, cus, _)| cus))
            .sum();
        let expected: u32 = (0..problem.num_kernels())
            .map(|k| outcome.allocation.total_cus(k))
            .sum();
        assert_eq!(total_cus, expected);
        for fpga in &breakdown {
            let used: f64 = fpga.kernels.iter().map(|&(_, _, share)| share).sum();
            assert!((used + fpga.slack - 1.0).abs() < 1e-9 || fpga.slack == 0.0);
            assert!(used <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn critical_class_is_dsp_for_the_paper_workloads() {
        for case in [PaperCase::Alex32OnFourFpgas, PaperCase::VggOnEightFpgas] {
            let problem = case.problem(0.70).unwrap();
            let class = critical_class(&problem);
            let probe = mfa_platform::ResourceVec::new(1.0, 2.0, 3.0, 4.0);
            assert_eq!(class(&probe), 4.0, "{}", case.label());
        }
    }

    #[test]
    fn summary_mentions_every_kernel_and_fpga() {
        let problem = PaperCase::Alex16OnTwoFpgas.problem(0.70).unwrap();
        let outcome = crate::solver::SolveRequest::new(&problem)
            .backend(crate::solver::Backend::gpa_with(GpaOptions::fast()))
            .solve()
            .unwrap();
        let text = render_summary(&problem, &outcome.allocation);
        for kernel in problem.kernels() {
            assert!(text.contains(kernel.name()), "missing {}", kernel.name());
        }
        assert!(text.contains("F1"));
        assert!(text.contains("F2"));
        assert!(text.contains("II ="));
    }
}
