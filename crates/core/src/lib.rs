//! Exact and heuristic allocation of multi-kernel applications to multi-FPGA
//! platforms.
//!
//! This crate implements the optimization method of *Shan, Casu, Cortadella,
//! Lavagno, Lazarescu — "Exact and Heuristic Allocation of Multi-kernel
//! Applications to Multi-FPGA Platforms", DAC 2019*: given a linear pipeline
//! of kernels (each replicable into compute units, CUs) and a platform of `F`
//! FPGAs — the paper's identical devices, or a heterogeneous fleet of device
//! groups — with per-FPGA resource and DRAM-bandwidth budgets, choose how
//! many CUs to instantiate per kernel and on which FPGA to place each of
//! them so that the pipeline initiation interval `II = max_k WCET_k / N_k` is
//! minimized while the CUs of each kernel are kept together as much as
//! possible (the *spreading* objective `ϕ`).
//!
//! Two solution paths are provided, exactly as in the paper:
//!
//! * **Exact** ([`exact`]): the mixed-integer nonlinear program of Eqs. 5–10,
//!   solved globally with the [`mfa_minlp`] branch-and-bound solver, either
//!   ignoring spreading (`MINLP`, β = 0) or weighting it (`MINLP+G`).
//! * **Heuristic GP+A** ([`gpa`]): (1) a symmetric geometric-programming
//!   relaxation (Eqs. 14–18, [`gp_step`]) that yields fractional CU counts,
//!   (2) a small branch-and-bound discretization ([`discretize`]) and (3) the
//!   greedy Algorithm 1 allocator ([`greedy`]) that places the CUs while
//!   consolidating each kernel on as few FPGAs as possible.
//!
//! Every backend is driven through one request-shaped entry point —
//! [`solver::SolveRequest`] — which carries warm-start hints, deadlines,
//! node budgets and the sweep skip policy as first-class request fields and
//! returns a [`solver::SolveReport`] with structured diagnostics.
//!
//! # Quick start
//!
//! ```
//! use mfa_alloc::solver::{Backend, SolveRequest};
//! use mfa_alloc::{AllocationProblem, GoalWeights, Kernel};
//! use mfa_platform::{MultiFpgaPlatform, ResourceBudget, ResourceVec};
//!
//! # fn main() -> Result<(), mfa_alloc::AllocError> {
//! let kernels = vec![
//!     Kernel::new("produce", 4.0, ResourceVec::bram_dsp(0.05, 0.20), 0.03)?,
//!     Kernel::new("transform", 9.0, ResourceVec::bram_dsp(0.08, 0.25), 0.02)?,
//!     Kernel::new("consume", 3.0, ResourceVec::bram_dsp(0.02, 0.10), 0.05)?,
//! ];
//! let problem = AllocationProblem::builder()
//!     .kernels(kernels)
//!     .platform(MultiFpgaPlatform::aws_f1_4xlarge())
//!     .budget(ResourceBudget::uniform(0.70))
//!     .weights(GoalWeights::new(1.0, 0.7))
//!     .build()?;
//! let report = SolveRequest::new(&problem).backend(Backend::gpa()).solve()?;
//! assert!(report.initiation_interval_ms(&problem) < 9.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cases;
pub mod discretize;
mod error;
pub mod exact;
pub mod explore;
pub mod fingerprint;
pub mod gp_step;
pub mod gpa;
pub mod greedy;
mod problem;
pub mod realloc;
pub mod report;
mod solution;
pub mod solver;

pub use error::AllocError;
pub use problem::{AllocationProblem, AllocationProblemBuilder, GoalWeights, Kernel};
pub use realloc::{Incumbent, MigrationCost, MigrationOutcome, ReallocationSpec};
pub use solution::{Allocation, AllocationMetrics};
pub use solver::{
    Backend, Deadline, DualWarmStart, SkipPolicy, SolveDiagnostics, SolveReport, SolveRequest,
    SolverBackend, StageTiming, WarmStart, WarmStartReport,
};
