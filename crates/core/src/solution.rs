//! Allocation solutions and their derived metrics.

use serde::{Deserialize, Serialize};

use mfa_platform::ResourceVec;

use crate::problem::AllocationProblem;
use crate::AllocError;

/// A complete CU allocation: `n[k][f]` compute units of kernel `k` on FPGA `f`
/// (the paper's `n_{k,f}`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    n: Vec<Vec<u32>>,
}

impl Allocation {
    /// Creates an allocation from the CU matrix `n[k][f]`.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::InvalidArgument`] if the matrix is empty or
    /// ragged.
    pub fn new(n: Vec<Vec<u32>>) -> Result<Self, AllocError> {
        if n.is_empty() || n[0].is_empty() {
            return Err(AllocError::InvalidArgument(
                "allocation matrix must be non-empty".into(),
            ));
        }
        let width = n[0].len();
        if n.iter().any(|row| row.len() != width) {
            return Err(AllocError::InvalidArgument(
                "allocation matrix rows must have equal length".into(),
            ));
        }
        Ok(Allocation { n })
    }

    /// An all-zero allocation shaped for `problem`.
    pub fn zeros(problem: &AllocationProblem) -> Self {
        Allocation {
            n: vec![vec![0; problem.num_fpgas()]; problem.num_kernels()],
        }
    }

    /// Number of kernels (rows).
    pub fn num_kernels(&self) -> usize {
        self.n.len()
    }

    /// Number of FPGAs (columns).
    pub fn num_fpgas(&self) -> usize {
        self.n[0].len()
    }

    /// CUs of kernel `k` on FPGA `f`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn cus(&self, k: usize, f: usize) -> u32 {
        self.n[k][f]
    }

    /// Sets the CUs of kernel `k` on FPGA `f`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set_cus(&mut self, k: usize, f: usize, cus: u32) {
        self.n[k][f] = cus;
    }

    /// Total CUs of kernel `k` across all FPGAs (`N_k`).
    pub fn total_cus(&self, k: usize) -> u32 {
        self.n[k].iter().sum()
    }

    /// The underlying matrix, row per kernel.
    pub fn matrix(&self) -> &[Vec<u32>] {
        &self.n
    }

    /// Execution time of kernel `k` (`ET_k = WCET_k / N_k`), in milliseconds.
    ///
    /// On a platform with per-group WCET scaling, `N_k` is the *effective*
    /// parallelism `Σ_f n_{k,f} / s_{g(f)}`: a CU on a group slowed by
    /// `s > 1` contributes only `1/s` of a reference CU. Without scaling
    /// this reduces exactly to the plain count.
    ///
    /// Returns infinity if the kernel has no CUs.
    pub fn execution_time(&self, problem: &AllocationProblem, k: usize) -> f64 {
        if problem.has_wcet_scaling() {
            let effective: f64 = (0..self.num_fpgas().min(problem.num_fpgas()))
                .map(|f| {
                    let g = problem.group_of_fpga(f);
                    f64::from(self.n[k][f]) / problem.platform().group(g).wcet_scale()
                })
                .sum();
            if effective <= 0.0 {
                return f64::INFINITY;
            }
            return problem.kernels()[k].wcet_ms() / effective;
        }
        let total = self.total_cus(k);
        if total == 0 {
            f64::INFINITY
        } else {
            problem.kernels()[k].wcet_ms() / total as f64
        }
    }

    /// Pipeline initiation interval `II = max_k ET_k`, in milliseconds.
    pub fn initiation_interval(&self, problem: &AllocationProblem) -> f64 {
        (0..self.num_kernels())
            .map(|k| self.execution_time(problem, k))
            .fold(0.0, f64::max)
    }

    /// Pipeline throughput in items per second (`1000 / II`).
    pub fn throughput_per_second(&self, problem: &AllocationProblem) -> f64 {
        1_000.0 / self.initiation_interval(problem)
    }

    /// Spreading of kernel `k`: `ϕ_k = Σ_f n_{k,f} / (1 + n_{k,f})` (Eq. 4).
    pub fn spreading_of(&self, k: usize) -> f64 {
        self.n[k]
            .iter()
            .map(|&n| {
                let n = n as f64;
                n / (1.0 + n)
            })
            .sum()
    }

    /// Global spreading `ϕ = max_k ϕ_k` (Eq. 7 makes `ϕ` an upper bound on
    /// every kernel's spreading, and the objective drives it to the maximum).
    pub fn spreading(&self) -> f64 {
        (0..self.num_kernels())
            .map(|k| self.spreading_of(k))
            .fold(0.0, f64::max)
    }

    /// The goal function `g = α·II + β·ϕ` (Eq. 5).
    pub fn goal(&self, problem: &AllocationProblem) -> f64 {
        let w = problem.weights();
        w.alpha * self.initiation_interval(problem) + w.beta * self.spreading()
    }

    /// Resources used on FPGA `f`, as fractions of that FPGA's own device
    /// (per-CU demands are rescaled to the FPGA's device group). Kernels with
    /// zero CUs on `f` contribute nothing, even where the device cannot host
    /// them at all.
    pub fn fpga_resources(&self, problem: &AllocationProblem, f: usize) -> ResourceVec {
        let g = problem.group_of_fpga(f);
        (0..self.num_kernels())
            .filter(|&k| self.n[k][f] > 0)
            .map(|k| problem.kernel_resources_on(k, g) * self.n[k][f] as f64)
            .sum()
    }

    /// Bandwidth used on FPGA `f`, as a fraction of that FPGA's own device
    /// bandwidth.
    pub fn fpga_bandwidth(&self, problem: &AllocationProblem, f: usize) -> f64 {
        let g = problem.group_of_fpga(f);
        (0..self.num_kernels())
            .filter(|&k| self.n[k][f] > 0)
            .map(|k| problem.kernel_bandwidth_on(k, g) * self.n[k][f] as f64)
            .sum()
    }

    /// Average over FPGAs of the *critical* (largest) resource-class
    /// utilization, the quantity plotted on the x-axis of the paper's
    /// "Average Resource (%)" figures.
    pub fn average_utilization(&self, problem: &AllocationProblem) -> f64 {
        let total: f64 = (0..self.num_fpgas())
            .map(|f| self.fpga_resources(problem, f).max_component())
            .sum();
        total / self.num_fpgas() as f64
    }

    /// Number of FPGAs that host at least one CU.
    pub fn fpgas_used(&self) -> usize {
        (0..self.num_fpgas())
            .filter(|&f| (0..self.num_kernels()).any(|k| self.n[k][f] > 0))
            .count()
    }

    /// Checks that the allocation respects the problem: at least one CU per
    /// kernel and every per-FPGA budget satisfied (within `tol`).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::InvalidArgument`] if the matrix shape does not
    /// match the problem, and [`AllocError::Infeasible`] describing the first
    /// violated condition otherwise.
    pub fn validate(&self, problem: &AllocationProblem, tol: f64) -> Result<(), AllocError> {
        if self.num_kernels() != problem.num_kernels() || self.num_fpgas() != problem.num_fpgas() {
            return Err(AllocError::InvalidArgument(format!(
                "allocation is {}×{} but the problem is {}×{}",
                self.num_kernels(),
                self.num_fpgas(),
                problem.num_kernels(),
                problem.num_fpgas()
            )));
        }
        for k in 0..self.num_kernels() {
            if self.total_cus(k) == 0 {
                return Err(AllocError::Infeasible(format!(
                    "kernel {} has no CUs",
                    problem.kernels()[k].name()
                )));
            }
        }
        for f in 0..self.num_fpgas() {
            let g = problem.group_of_fpga(f);
            let used = self.fpga_resources(problem, f);
            if !used.fits_within(&problem.group_resource_limit(g), tol) {
                return Err(AllocError::Infeasible(format!(
                    "FPGA {f} exceeds the resource budget ({used})"
                )));
            }
            let bw = self.fpga_bandwidth(problem, f);
            if bw > problem.group_bandwidth_limit(g) + tol {
                return Err(AllocError::Infeasible(format!(
                    "FPGA {f} exceeds the bandwidth budget ({bw:.3})"
                )));
            }
        }
        Ok(())
    }

    /// Summarizes the allocation into an [`AllocationMetrics`] record.
    pub fn metrics(&self, problem: &AllocationProblem) -> AllocationMetrics {
        AllocationMetrics {
            initiation_interval_ms: self.initiation_interval(problem),
            spreading: self.spreading(),
            goal: self.goal(problem),
            average_utilization: self.average_utilization(problem),
            fpgas_used: self.fpgas_used(),
            total_cus: (0..self.num_kernels()).map(|k| self.total_cus(k)).sum(),
        }
    }
}

/// Summary metrics of an allocation (the quantities reported in the paper's
/// figures).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocationMetrics {
    /// Initiation interval in milliseconds.
    pub initiation_interval_ms: f64,
    /// Global spreading `ϕ`.
    pub spreading: f64,
    /// Goal value `α·II + β·ϕ`.
    pub goal: f64,
    /// Average per-FPGA utilization of the critical resource.
    pub average_utilization: f64,
    /// FPGAs hosting at least one CU.
    pub fpgas_used: usize,
    /// Total CU count across kernels.
    pub total_cus: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{GoalWeights, Kernel};
    use mfa_platform::{MultiFpgaPlatform, ResourceBudget, ResourceVec};

    fn problem() -> AllocationProblem {
        AllocationProblem::builder()
            .kernels(vec![
                Kernel::new("a", 8.0, ResourceVec::bram_dsp(0.05, 0.20), 0.04).unwrap(),
                Kernel::new("b", 4.0, ResourceVec::bram_dsp(0.10, 0.10), 0.02).unwrap(),
            ])
            .platform(MultiFpgaPlatform::aws_f1_4xlarge())
            .budget(ResourceBudget::uniform(0.70))
            .weights(GoalWeights::new(1.0, 0.5))
            .build()
            .unwrap()
    }

    #[test]
    fn construction_validates_shape() {
        assert!(Allocation::new(vec![]).is_err());
        assert!(Allocation::new(vec![vec![1], vec![1, 2]]).is_err());
        let a = Allocation::new(vec![vec![1, 2], vec![0, 1]]).unwrap();
        assert_eq!(a.num_kernels(), 2);
        assert_eq!(a.num_fpgas(), 2);
        assert_eq!(a.cus(0, 1), 2);
        assert_eq!(a.total_cus(0), 3);
        assert_eq!(a.matrix()[1], vec![0, 1]);
    }

    #[test]
    fn metrics_match_hand_computation() {
        let p = problem();
        // Kernel a: 2 CUs on FPGA0, 1 on FPGA1 → N=3, ET = 8/3.
        // Kernel b: 1 CU on FPGA0 → N=1, ET = 4.
        let mut a = Allocation::zeros(&p);
        a.set_cus(0, 0, 2);
        a.set_cus(0, 1, 1);
        a.set_cus(1, 0, 1);
        assert!((a.execution_time(&p, 0) - 8.0 / 3.0).abs() < 1e-12);
        assert!((a.initiation_interval(&p) - 4.0).abs() < 1e-12);
        assert!((a.throughput_per_second(&p) - 250.0).abs() < 1e-9);
        // Spreading: kernel a: 2/3 + 1/2 = 7/6; kernel b: 1/2. Global = 7/6.
        assert!((a.spreading_of(0) - 7.0 / 6.0).abs() < 1e-12);
        assert!((a.spreading() - 7.0 / 6.0).abs() < 1e-12);
        assert!((a.goal(&p) - (4.0 + 0.5 * 7.0 / 6.0)).abs() < 1e-12);
        // FPGA 0 resources: 2×(0.05,0.20) + 1×(0.10,0.10) = (0.20, 0.50).
        let r0 = a.fpga_resources(&p, 0);
        assert!((r0.dsp - 0.5).abs() < 1e-12);
        assert!((r0.bram - 0.2).abs() < 1e-12);
        assert!((a.fpga_bandwidth(&p, 0) - 0.10).abs() < 1e-12);
        assert_eq!(a.fpgas_used(), 2);
        // Average utilization over the 2 FPGAs: max components 0.5 and 0.2.
        assert!((a.average_utilization(&p) - 0.35).abs() < 1e-12);
        let m = a.metrics(&p);
        assert_eq!(m.total_cus, 4);
        assert_eq!(m.fpgas_used, 2);
    }

    #[test]
    fn validation_catches_problems() {
        let p = problem();
        let mut a = Allocation::zeros(&p);
        // Kernel b has no CUs.
        a.set_cus(0, 0, 1);
        assert!(matches!(
            a.validate(&p, 1e-9),
            Err(AllocError::Infeasible(_))
        ));
        // Too many CUs on one FPGA exceeds DSP budget (4 × 0.20 = 0.8 > 0.7).
        a.set_cus(1, 1, 1);
        a.set_cus(0, 0, 4);
        assert!(a.validate(&p, 1e-9).is_err());
        // A correct allocation validates.
        a.set_cus(0, 0, 2);
        assert!(a.validate(&p, 1e-9).is_ok());
        // Shape mismatch is reported as invalid argument.
        let wrong = Allocation::new(vec![vec![1, 1]]).unwrap();
        assert!(matches!(
            wrong.validate(&p, 1e-9),
            Err(AllocError::InvalidArgument(_))
        ));
    }

    #[test]
    fn wcet_scaling_discounts_slow_group_cus() {
        use mfa_platform::{DeviceGroup, FpgaDevice, HeterogeneousPlatform};
        let p = AllocationProblem::builder()
            .kernels(vec![Kernel::new(
                "a",
                6.0,
                ResourceVec::bram_dsp(0.05, 0.1),
                0.01,
            )
            .unwrap()])
            .platform(HeterogeneousPlatform::new(
                "fast+slow",
                vec![
                    DeviceGroup::new(FpgaDevice::vu9p(), 1),
                    DeviceGroup::new(FpgaDevice::vu9p(), 1).with_wcet_scale(2.0),
                ],
            ))
            .budget(ResourceBudget::uniform(0.7))
            .build()
            .unwrap();
        let mut a = Allocation::zeros(&p);
        a.set_cus(0, 0, 1);
        a.set_cus(0, 1, 1);
        // Effective parallelism 1 + 1/2 = 1.5 → ET = 6 / 1.5 = 4 ms, slower
        // than two reference CUs (3 ms) but faster than one (6 ms).
        assert!((a.execution_time(&p, 0) - 4.0).abs() < 1e-12);
        assert!((a.initiation_interval(&p) - 4.0).abs() < 1e-12);
        // A CU on the slow group alone runs at the scaled WCET.
        let mut slow = Allocation::zeros(&p);
        slow.set_cus(0, 1, 1);
        assert!((slow.execution_time(&p, 0) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn execution_time_of_unallocated_kernel_is_infinite() {
        let p = problem();
        let a = Allocation::zeros(&p);
        assert!(a.execution_time(&p, 0).is_infinite());
        assert!(a.initiation_interval(&p).is_infinite());
    }
}
