//! The paper's three representative experiment cases and their parameters
//! (Table 4).

use mfa_cnn::{paper_data, Application};

use crate::problem::{AllocationProblem, GoalWeights};
use crate::AllocError;

/// One of the paper's representative multi-FPGA implementation cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PaperCase {
    /// AlexNet 16-bit fixed point on 2 FPGAs (α = 1, β = 0.7).
    Alex16OnTwoFpgas,
    /// AlexNet 32-bit floating point on 4 FPGAs (α = 1, β = 6).
    Alex32OnFourFpgas,
    /// VGG 16-bit fixed point on 8 FPGAs (α = 1, β = 50).
    VggOnEightFpgas,
}

impl PaperCase {
    /// All three cases, in the paper's order.
    pub fn all() -> [PaperCase; 3] {
        [
            PaperCase::Alex16OnTwoFpgas,
            PaperCase::Alex32OnFourFpgas,
            PaperCase::VggOnEightFpgas,
        ]
    }

    /// Human-readable label as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            PaperCase::Alex16OnTwoFpgas => "Alex-16 on 2 FPGAs",
            PaperCase::Alex32OnFourFpgas => "Alex-32 on 4 FPGAs",
            PaperCase::VggOnEightFpgas => "VGG on 8 FPGAs",
        }
    }

    /// The characterized application (from the embedded paper tables).
    pub fn application(self) -> Application {
        match self {
            PaperCase::Alex16OnTwoFpgas => paper_data::alexnet_16bit(),
            PaperCase::Alex32OnFourFpgas => paper_data::alexnet_32bit(),
            PaperCase::VggOnEightFpgas => paper_data::vgg_16bit(),
        }
    }

    /// Number of FPGAs of the case.
    pub fn num_fpgas(self) -> usize {
        match self {
            PaperCase::Alex16OnTwoFpgas => 2,
            PaperCase::Alex32OnFourFpgas => 4,
            PaperCase::VggOnEightFpgas => 8,
        }
    }

    /// The goal-function weights of Table 4.
    pub fn weights(self) -> GoalWeights {
        match self {
            PaperCase::Alex16OnTwoFpgas => GoalWeights::new(1.0, 0.7),
            PaperCase::Alex32OnFourFpgas => GoalWeights::new(1.0, 6.0),
            PaperCase::VggOnEightFpgas => GoalWeights::new(1.0, 50.0),
        }
    }

    /// The resource-constraint sweep range (fractions) used in the paper's
    /// figure for this case.
    pub fn constraint_range(self) -> (f64, f64) {
        match self {
            PaperCase::Alex16OnTwoFpgas => (0.55, 0.85),
            PaperCase::Alex32OnFourFpgas => (0.65, 0.75),
            PaperCase::VggOnEightFpgas => (0.55, 0.80),
        }
    }

    /// Builds the [`AllocationProblem`] for this case at a given resource
    /// constraint.
    ///
    /// # Errors
    ///
    /// Propagates problem-construction errors.
    pub fn problem(self, resource_constraint: f64) -> Result<AllocationProblem, AllocError> {
        AllocationProblem::from_application(
            &self.application(),
            self.num_fpgas(),
            resource_constraint,
            self.weights(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_weights() {
        assert_eq!(PaperCase::Alex16OnTwoFpgas.weights().beta, 0.7);
        assert_eq!(PaperCase::Alex32OnFourFpgas.weights().beta, 6.0);
        assert_eq!(PaperCase::VggOnEightFpgas.weights().beta, 50.0);
        for case in PaperCase::all() {
            assert_eq!(case.weights().alpha, 1.0);
        }
    }

    #[test]
    fn cases_build_feasible_problems() {
        for case in PaperCase::all() {
            let (lo, hi) = case.constraint_range();
            assert!(lo < hi);
            let problem = case.problem(hi).unwrap();
            assert_eq!(problem.num_fpgas(), case.num_fpgas());
            problem.validate_feasibility().unwrap();
            assert!(!case.label().is_empty());
        }
    }

    #[test]
    fn applications_match_expected_sizes() {
        assert_eq!(PaperCase::Alex16OnTwoFpgas.application().num_kernels(), 8);
        assert_eq!(PaperCase::Alex32OnFourFpgas.application().num_kernels(), 8);
        assert_eq!(PaperCase::VggOnEightFpgas.application().num_kernels(), 17);
    }
}
