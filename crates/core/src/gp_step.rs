//! First step of the heuristic: the symmetric continuous relaxation
//! (Eqs. 14–18), solved as a geometric program.
//!
//! With the spreading objective dropped (`β = 0`) and `n_{k,f}` allowed to be
//! real, the problem becomes symmetric across the `F` identical FPGAs, so only
//! the totals `N̂_k = F·n̂_k` matter:
//!
//! ```text
//! minimize  ÎI
//! s.t.      ÎI ≥ WCET_k / N̂_k            ∀k
//!           N̂_k ≥ 1                      ∀k
//!           Σ_k (N̂_k / F) · R_k ≤ R        (per resource class)
//!           Σ_k (N̂_k / F) · B_k ≤ B
//! ```
//!
//! Two interchangeable backends solve it:
//!
//! * [`RelaxationBackend::GeometricProgram`] — the faithful route: the model
//!   is expressed in posynomial form and handed to the [`mfa_gp`]
//!   interior-point solver (the paper used GPkit here).
//! * [`RelaxationBackend::Bisection`] — an analytic route exploiting the
//!   problem's structure: for a trial `ÎI` the cheapest feasible counts are
//!   `N̂_k(ÎI) = max(1, WCET_k / ÎI)`, and resource use is monotone in `1/ÎI`,
//!   so the optimal `ÎI` is found by bisection. Used as a fast cross-check
//!   and as the default engine inside the discretization branch-and-bound.
//!
//! Both return the same optimum (verified by unit and property tests); the
//! GP backend is the default for the top-level heuristic to stay close to the
//! paper's toolchain.

use mfa_gp::{GpProblem, Monomial, Posynomial};

use crate::problem::AllocationProblem;
use crate::AllocError;

/// Which engine solves the continuous relaxation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RelaxationBackend {
    /// Posynomial model solved with the `mfa-gp` interior-point solver.
    #[default]
    GeometricProgram,
    /// Analytic bisection on `ÎI` (fast path).
    Bisection,
}

/// Result of the continuous relaxation.
#[derive(Debug, Clone, PartialEq)]
pub struct Relaxation {
    /// Fractional total CU count `N̂_k` per kernel.
    pub cu_counts: Vec<f64>,
    /// Relaxed initiation interval `ÎI` in milliseconds.
    pub initiation_interval_ms: f64,
}

/// Per-kernel bounds `lo_k ≤ N̂_k ≤ hi_k` imposed by the discretization
/// branch-and-bound on top of the base relaxation.
pub type CuBounds = [(f64, f64)];

/// Solves the unbounded relaxation (Eqs. 14–18).
///
/// # Errors
///
/// Returns [`AllocError::Infeasible`] if even one CU per kernel violates a
/// platform-wide budget, and propagates GP solver failures.
pub fn solve(
    problem: &AllocationProblem,
    backend: RelaxationBackend,
) -> Result<Relaxation, AllocError> {
    solve_with_hint(problem, backend, None)
}

/// Solves the unbounded relaxation, optionally warm-started from the relaxed
/// `ÎI` of a neighbouring problem (e.g. the same case at an adjacent resource
/// constraint in a design-space sweep).
///
/// The hint only narrows the bisection bracket — both endpoints are verified
/// before use, so a stale or wildly wrong hint degrades to the cold-start
/// bracket and the returned optimum is unaffected. The GP backend ignores the
/// hint (its interior-point iteration has no cheap warm-start path).
///
/// # Errors
///
/// Same contract as [`solve`].
pub fn solve_with_hint(
    problem: &AllocationProblem,
    backend: RelaxationBackend,
    hint_ii_ms: Option<f64>,
) -> Result<Relaxation, AllocError> {
    let unbounded: Vec<(f64, f64)> = (0..problem.num_kernels())
        .map(|k| (1.0, problem.max_total_cus(k) as f64))
        .collect();
    solve_bounded_with_hint(problem, &unbounded, backend, hint_ii_ms)
}

/// Solves the relaxation with explicit per-kernel bounds on `N̂_k` (used by
/// the discretization branch-and-bound).
///
/// # Errors
///
/// Returns [`AllocError::Infeasible`] if the bounds admit no feasible point
/// and propagates GP solver failures.
pub fn solve_bounded(
    problem: &AllocationProblem,
    bounds: &CuBounds,
    backend: RelaxationBackend,
) -> Result<Relaxation, AllocError> {
    solve_bounded_with_hint(problem, bounds, backend, None)
}

/// [`solve_bounded`] with an optional warm-start hint (see [`solve_with_hint`]).
///
/// # Errors
///
/// Same contract as [`solve_bounded`].
pub fn solve_bounded_with_hint(
    problem: &AllocationProblem,
    bounds: &CuBounds,
    backend: RelaxationBackend,
    hint_ii_ms: Option<f64>,
) -> Result<Relaxation, AllocError> {
    if bounds.len() != problem.num_kernels() {
        return Err(AllocError::InvalidArgument(format!(
            "expected {} bounds, got {}",
            problem.num_kernels(),
            bounds.len()
        )));
    }
    for (k, kernel) in problem.kernels().iter().enumerate() {
        // A kernel that cannot fit even one CU on an FPGA makes the whole
        // problem infeasible regardless of the bounds.
        if problem.max_cus_per_fpga(k) == 0 {
            return Err(AllocError::Infeasible(format!(
                "kernel {} does not fit a single CU within the per-FPGA budget",
                kernel.name()
            )));
        }
        let (lo, hi) = bounds[k];
        if !(lo >= 1.0 && hi >= lo) {
            return Err(AllocError::InvalidArgument(format!(
                "invalid CU bounds [{lo}, {hi}] for kernel {}",
                kernel.name()
            )));
        }
    }
    // Quick infeasibility check: the cheapest configuration takes the lower
    // bound everywhere.
    if !budgets_allow(
        problem,
        &bounds.iter().map(|&(lo, _)| lo).collect::<Vec<_>>(),
    ) {
        return Err(AllocError::Infeasible(
            "the minimum CU counts already exceed a platform-wide budget".into(),
        ));
    }
    match backend {
        RelaxationBackend::GeometricProgram => solve_gp(problem, bounds),
        RelaxationBackend::Bisection => Ok(solve_bisection(problem, bounds, hint_ii_ms)),
    }
}

/// Checks the aggregated budgets `Σ_k N_k·R_k ≤ F·R` and `Σ_k N_k·B_k ≤ F·B`.
pub(crate) fn budgets_allow(problem: &AllocationProblem, cu_counts: &[f64]) -> bool {
    let f = problem.num_fpgas() as f64;
    let budget = problem.budget();
    let limit = *budget.resource_fraction() * f;
    let total: mfa_platform::ResourceVec = problem
        .kernels()
        .iter()
        .zip(cu_counts)
        .map(|(k, &n)| *k.resources() * n)
        .sum();
    if !total.fits_within(&limit, 1e-9) {
        return false;
    }
    let bw: f64 = problem
        .kernels()
        .iter()
        .zip(cu_counts)
        .map(|(k, &n)| k.bandwidth() * n)
        .sum();
    bw <= budget.bandwidth_fraction() * f + 1e-9
}

fn solve_gp(problem: &AllocationProblem, bounds: &CuBounds) -> Result<Relaxation, AllocError> {
    let mut gp = GpProblem::new();
    let ii = gp.add_var("II")?;
    let mut n_vars = Vec::with_capacity(problem.num_kernels());
    for kernel in problem.kernels() {
        n_vars.push(gp.add_var(format!("N_{}", kernel.name()))?);
    }
    gp.set_objective(Posynomial::monomial(1.0, &[(ii, 1.0)]));

    for (k, kernel) in problem.kernels().iter().enumerate() {
        // ÎI ≥ WCET_k / N̂_k  ⇔  WCET_k · N̂_k⁻¹ · ÎI⁻¹ ≤ 1.
        gp.add_le_constraint(
            format!("latency_{}", kernel.name()),
            Posynomial::monomial(kernel.wcet_ms(), &[(n_vars[k], -1.0), (ii, -1.0)]),
        )?;
        // The interior-point solver needs a non-empty interior, so collapsed
        // or boundary-tight bound pairs are widened by a relative epsilon;
        // the discretization rounds the result anyway.
        let (lo, hi) = bounds[k];
        let lo = lo * (1.0 - 1e-7);
        let hi = hi * (1.0 + 1e-7);
        // N̂_k ≥ lo  ⇔  lo · N̂_k⁻¹ ≤ 1 (lo ≥ 1 covers Eq. 16).
        gp.add_le_constraint(
            format!("lower_{}", kernel.name()),
            Posynomial::monomial(lo, &[(n_vars[k], -1.0)]),
        )?;
        // N̂_k ≤ hi  ⇔  N̂_k / hi ≤ 1.
        gp.add_le_constraint(
            format!("upper_{}", kernel.name()),
            Posynomial::monomial(1.0 / hi, &[(n_vars[k], 1.0)]),
        )?;
    }

    let f = problem.num_fpgas() as f64;
    let budget = problem.budget();
    let resource_budget = budget.resource_fraction();
    // One posynomial budget row per resource class that is actually used.
    let class_rows: [(&str, crate::report::ResourceAccessor, f64); 4] = [
        ("lut", |r| r.lut, resource_budget.lut),
        ("ff", |r| r.ff, resource_budget.ff),
        ("bram", |r| r.bram, resource_budget.bram),
        ("dsp", |r| r.dsp, resource_budget.dsp),
    ];
    for (class, accessor, limit) in class_rows {
        let mut row = Posynomial::new();
        for (k, kernel) in problem.kernels().iter().enumerate() {
            let use_per_cu = accessor(kernel.resources());
            if use_per_cu > 0.0 {
                row.push(Monomial::new(use_per_cu / (f * limit), &[(n_vars[k], 1.0)]));
            }
        }
        if !row.is_empty() {
            gp.add_le_constraint(format!("budget_{class}"), row)?;
        }
    }
    let mut bw_row = Posynomial::new();
    for (k, kernel) in problem.kernels().iter().enumerate() {
        if kernel.bandwidth() > 0.0 {
            bw_row.push(Monomial::new(
                kernel.bandwidth() / (f * budget.bandwidth_fraction()),
                &[(n_vars[k], 1.0)],
            ));
        }
    }
    if !bw_row.is_empty() {
        gp.add_le_constraint("budget_bandwidth", bw_row)?;
    }

    let solution = gp.solve().map_err(|err| match err {
        mfa_gp::GpError::Infeasible => {
            AllocError::Infeasible("the GP relaxation has no feasible point".into())
        }
        other => AllocError::from(other),
    })?;
    Ok(Relaxation {
        cu_counts: n_vars.iter().map(|&v| solution.value(v)).collect(),
        initiation_interval_ms: solution.value(ii),
    })
}

/// Analytic solution by bisection on `ÎI`.
fn solve_bisection(
    problem: &AllocationProblem,
    bounds: &CuBounds,
    hint_ii_ms: Option<f64>,
) -> Relaxation {
    // For a target II the cheapest feasible counts are the WCET-driven counts
    // clamped into the node bounds; feasibility of the aggregated budgets is
    // monotone in II (larger II → fewer CUs → less resource use).
    let counts_for = |ii: f64| -> Vec<f64> {
        problem
            .kernels()
            .iter()
            .zip(bounds)
            .map(|(kernel, &(lo, hi))| (kernel.wcet_ms() / ii).max(lo).min(hi))
            .collect()
    };
    // The largest II anyone needs is when every kernel sits at its lower
    // bound; that configuration is feasible (checked by the caller).
    let mut hi = problem
        .kernels()
        .iter()
        .zip(bounds)
        .map(|(kernel, &(lo, _))| kernel.wcet_ms() / lo)
        .fold(0.0_f64, f64::max);
    // Lower limit: every kernel at its upper bound.
    let mut lo = problem
        .kernels()
        .iter()
        .zip(bounds)
        .map(|(kernel, &(_, hi_k))| kernel.wcet_ms() / hi_k)
        .fold(0.0_f64, f64::max);
    if budgets_allow(problem, &counts_for(lo)) {
        let counts = counts_for(lo);
        return Relaxation {
            cu_counts: counts,
            initiation_interval_ms: lo,
        };
    }
    // A warm-start hint from a neighbouring solve narrows the bracket. The
    // bisection invariants (lo infeasible, hi feasible) are re-verified on
    // each candidate endpoint, so a bad hint merely costs two feasibility
    // evaluations and the optimum is unchanged.
    if let Some(hint) = hint_ii_ms {
        if hint.is_finite() && hint > 0.0 {
            let cand_hi = (hint * 1.05).min(hi);
            if cand_hi > lo && budgets_allow(problem, &counts_for(cand_hi)) {
                hi = cand_hi;
            }
            let cand_lo = (hint * 0.95).max(lo);
            if cand_lo < hi && !budgets_allow(problem, &counts_for(cand_lo)) {
                lo = cand_lo;
            }
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if budgets_allow(problem, &counts_for(mid)) {
            hi = mid;
        } else {
            lo = mid;
        }
        if (hi - lo) <= 1e-12 * hi.max(1.0) {
            break;
        }
    }
    Relaxation {
        cu_counts: counts_for(hi),
        initiation_interval_ms: hi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{GoalWeights, Kernel};
    use mfa_cnn::paper_data;
    use mfa_platform::{MultiFpgaPlatform, ResourceBudget, ResourceVec};
    use proptest::prelude::*;

    fn two_kernel_problem() -> AllocationProblem {
        AllocationProblem::builder()
            .kernels(vec![
                Kernel::new("a", 3.0, ResourceVec::bram_dsp(0.0, 0.2), 0.0).unwrap(),
                Kernel::new("b", 5.0, ResourceVec::bram_dsp(0.0, 0.3), 0.0).unwrap(),
            ])
            .platform(MultiFpgaPlatform::aws_f1_2xlarge())
            .budget(ResourceBudget::uniform(1.0))
            .weights(GoalWeights::ii_only())
            .build()
            .unwrap()
    }

    /// The toy problem has the closed-form optimum II = 2.1 (both kernels
    /// critical, DSP budget tight): 0.2·3/II + 0.3·5/II = 1.
    #[test]
    fn backends_agree_on_closed_form_optimum() {
        let p = two_kernel_problem();
        let gp = solve(&p, RelaxationBackend::GeometricProgram).unwrap();
        let bis = solve(&p, RelaxationBackend::Bisection).unwrap();
        assert!(
            (gp.initiation_interval_ms - 2.1).abs() < 1e-3,
            "GP: {}",
            gp.initiation_interval_ms
        );
        assert!((bis.initiation_interval_ms - 2.1).abs() < 1e-6);
        for (a, b) in gp.cu_counts.iter().zip(&bis.cu_counts) {
            assert!((a - b).abs() < 1e-2, "counts differ: {a} vs {b}");
        }
    }

    #[test]
    fn bounded_relaxation_respects_bounds() {
        let p = two_kernel_problem();
        let bounds = vec![(1.0, 1.0), (1.0, 10.0)];
        let r = solve_bounded(&p, &bounds, RelaxationBackend::Bisection).unwrap();
        assert!((r.cu_counts[0] - 1.0).abs() < 1e-9);
        // Kernel a fixed at one CU → II at least 3.
        assert!(r.initiation_interval_ms >= 3.0 - 1e-9);
    }

    #[test]
    fn warm_start_hint_does_not_change_the_optimum() {
        let p = two_kernel_problem();
        let cold = solve(&p, RelaxationBackend::Bisection).unwrap();
        // Good, slightly-off, wildly wrong and degenerate hints all converge
        // to the same optimum because the bracket endpoints are verified.
        for hint in [
            cold.initiation_interval_ms,
            cold.initiation_interval_ms * 0.97,
            cold.initiation_interval_ms * 1.03,
            0.01,
            1_000.0,
            f64::NAN,
            -1.0,
        ] {
            let warm = solve_with_hint(&p, RelaxationBackend::Bisection, Some(hint)).unwrap();
            assert!(
                (warm.initiation_interval_ms - cold.initiation_interval_ms).abs()
                    < 1e-9 * cold.initiation_interval_ms.max(1.0),
                "hint {hint}: warm {} vs cold {}",
                warm.initiation_interval_ms,
                cold.initiation_interval_ms
            );
        }
    }

    #[test]
    fn invalid_bounds_are_rejected() {
        let p = two_kernel_problem();
        assert!(solve_bounded(&p, &[(1.0, 2.0)], RelaxationBackend::Bisection).is_err());
        assert!(
            solve_bounded(&p, &[(0.0, 2.0), (1.0, 2.0)], RelaxationBackend::Bisection).is_err()
        );
        assert!(
            solve_bounded(&p, &[(3.0, 2.0), (1.0, 2.0)], RelaxationBackend::Bisection).is_err()
        );
    }

    #[test]
    fn infeasible_budget_is_detected() {
        let p = AllocationProblem::builder()
            .kernels(vec![
                Kernel::new("a", 3.0, ResourceVec::bram_dsp(0.0, 0.6), 0.0).unwrap(),
                Kernel::new("b", 5.0, ResourceVec::bram_dsp(0.0, 0.6), 0.0).unwrap(),
            ])
            .platform(MultiFpgaPlatform::aws_f1_2xlarge())
            .budget(ResourceBudget::uniform(0.5))
            .build()
            .unwrap();
        assert!(matches!(
            solve(&p, RelaxationBackend::Bisection),
            Err(AllocError::Infeasible(_))
        ));
    }

    /// Paper case: Alex-16 on 2 FPGAs. The relaxed II must lie below the
    /// single-CU bottleneck (6.7 ms) and above the fully replicated bound.
    #[test]
    fn alex16_relaxation_is_sensible() {
        let app = paper_data::alexnet_16bit();
        let p = AllocationProblem::from_application(&app, 2, 0.65, GoalWeights::ii_only()).unwrap();
        let r = solve(&p, RelaxationBackend::Bisection).unwrap();
        assert!(r.initiation_interval_ms < 6.7);
        assert!(r.initiation_interval_ms > 0.3);
        // Every kernel gets at least one CU.
        assert!(r.cu_counts.iter().all(|&n| n >= 1.0 - 1e-9));
        // The aggregate budget is respected.
        let gp = solve(&p, RelaxationBackend::GeometricProgram).unwrap();
        assert!(
            (gp.initiation_interval_ms - r.initiation_interval_ms).abs()
                < 0.02 * r.initiation_interval_ms,
            "GP {} vs bisection {}",
            gp.initiation_interval_ms,
            r.initiation_interval_ms
        );
    }

    proptest! {
        /// On random two-kernel problems the two backends agree.
        #[test]
        fn backends_agree_on_random_problems(
            wcet_a in 1.0..20.0f64,
            wcet_b in 1.0..20.0f64,
            dsp_a in 0.05..0.3f64,
            dsp_b in 0.05..0.3f64,
            budget in 0.5..1.0f64
        ) {
            let p = AllocationProblem::builder()
                .kernels(vec![
                    Kernel::new("a", wcet_a, ResourceVec::bram_dsp(0.01, dsp_a), 0.01).unwrap(),
                    Kernel::new("b", wcet_b, ResourceVec::bram_dsp(0.01, dsp_b), 0.01).unwrap(),
                ])
                .platform(MultiFpgaPlatform::aws_f1_4xlarge())
                .budget(ResourceBudget::uniform(budget))
                .build()
                .unwrap();
            let gp = solve(&p, RelaxationBackend::GeometricProgram).unwrap();
            let bis = solve(&p, RelaxationBackend::Bisection).unwrap();
            let tol = 0.02 * bis.initiation_interval_ms.max(0.1);
            prop_assert!((gp.initiation_interval_ms - bis.initiation_interval_ms).abs() < tol,
                "GP {} vs bisection {}", gp.initiation_interval_ms, bis.initiation_interval_ms);
        }

        /// The relaxed II never exceeds the single-CU bottleneck and never
        /// goes below the everything-maximally-replicated bound.
        #[test]
        fn relaxation_is_bracketed(
            wcets in proptest::collection::vec(1.0..30.0f64, 2..6),
            budget in 0.4..1.0f64
        ) {
            let kernels: Vec<Kernel> = wcets
                .iter()
                .enumerate()
                .map(|(i, &w)| {
                    Kernel::new(format!("k{i}"), w, ResourceVec::bram_dsp(0.02, 0.1), 0.01)
                        .unwrap()
                })
                .collect();
            let p = AllocationProblem::builder()
                .kernels(kernels)
                .platform(MultiFpgaPlatform::aws_f1_4xlarge())
                .budget(ResourceBudget::uniform(budget))
                .build()
                .unwrap();
            let r = solve(&p, RelaxationBackend::Bisection).unwrap();
            let bottleneck = wcets.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!(r.initiation_interval_ms <= bottleneck + 1e-9);
            prop_assert!(r.initiation_interval_ms > 0.0);
        }
    }
}
