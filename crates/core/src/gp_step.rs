//! First step of the heuristic: the symmetric continuous relaxation
//! (Eqs. 14–18), solved as a geometric program, generalized to heterogeneous
//! platforms of device groups.
//!
//! With the spreading objective dropped (`β = 0`) and `n_{k,f}` allowed to be
//! real, the problem becomes symmetric across the identical FPGAs *within*
//! each device group, so only the per-group totals `N̂_{k,g}` matter. On the
//! paper's single-group platform (`F` identical FPGAs) this collapses to the
//! classic symmetric totals `N̂_k = F·n̂_k`:
//!
//! ```text
//! minimize  ÎI
//! s.t.      ÎI ≥ WCET_k / Σ_g N̂_{k,g}     ∀k
//!           Σ_g N̂_{k,g} ≥ 1              ∀k
//!           Σ_k N̂_{k,g} · R_{k,g} ≤ F_g·R   (per group, per resource class)
//!           Σ_k N̂_{k,g} · B_{k,g} ≤ F_g·B   (per group)
//! ```
//!
//! where `R_{k,g}`/`B_{k,g}` are kernel `k`'s per-CU fractions rescaled to
//! group `g`'s device. Two interchangeable backends solve it:
//!
//! * [`RelaxationBackend::GeometricProgram`] — the faithful route: the model
//!   is expressed in posynomial form and handed to the [`mfa_gp`]
//!   interior-point solver (the paper used GPkit here). On a single group the
//!   formulation is exact; with several groups the group-summed latency rows
//!   are not posynomial, so each is condensed into its best monomial
//!   approximation around the (exact) bisection solution — the standard
//!   signomial-programming move, anchored where it is tight — giving one
//!   latency row per kernel that sums the group contributions.
//! * [`RelaxationBackend::Bisection`] — an analytic route exploiting the
//!   problem's structure: for a trial `ÎI` the cheapest feasible totals are
//!   `N̂_k(ÎI) = max(1, WCET_k / ÎI)`, and feasibility — on several groups,
//!   the existence of a water-filling of those totals across groups, checked
//!   with the [`mfa_linprog`] simplex — is monotone in `ÎI`, so the optimal
//!   `ÎI` is found by bisection. Used as a fast cross-check and as the
//!   default engine inside the discretization branch-and-bound.
//!
//! Both return the same optimum (verified by unit and property tests); the
//! GP backend is the default for the top-level heuristic to stay close to the
//! paper's toolchain.

use mfa_gp::{GpDualState, GpProblem, Monomial, Posynomial};
use mfa_linprog::{LpError, LpProblem, Relation, Sense, SimplexOptions};

use crate::problem::AllocationProblem;
use crate::realloc::ReallocContext;
use crate::AllocError;

/// Which engine solves the continuous relaxation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RelaxationBackend {
    /// Posynomial model solved with the `mfa-gp` interior-point solver.
    #[default]
    GeometricProgram,
    /// Analytic bisection on `ÎI` (fast path).
    Bisection,
}

/// Result of the continuous relaxation.
#[derive(Debug, Clone, PartialEq)]
pub struct Relaxation {
    /// Fractional total CU count `N̂_k` per kernel (summed over groups).
    pub cu_counts: Vec<f64>,
    /// Fractional per-group CU counts `N̂_{k,g}`, kernel-major
    /// (`group_cu_counts[k][g]`). On a single-group platform every row is
    /// the one-element `[N̂_k]`.
    pub group_cu_counts: Vec<Vec<f64>>,
    /// Relaxed initiation interval `ÎI` in milliseconds.
    pub initiation_interval_ms: f64,
}

/// Per-kernel bounds `lo_k ≤ N̂_k ≤ hi_k` imposed by the discretization
/// branch-and-bound on top of the base relaxation.
pub(crate) type CuBounds = [(f64, f64)];

/// Deterministic effort and warm-start provenance of one relaxation solve:
/// bisection feasibility steps or GP Newton iterations, whether a
/// [`crate::solver::WarmStart`] relaxed-II hint was actually consumed
/// (bracket narrowed / interior point seeded), and the machine-independent
/// effort counters of the numeric substrate (barrier iterations, KKT
/// factorizations, simplex pivots).
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct RelaxStats {
    pub(crate) iterations: usize,
    pub(crate) hint_used: bool,
    /// Whether the GP backend consumed a dual warm start (final barrier `t`
    /// and constraint multipliers of a neighbouring solve). Always `false`
    /// for the bisection backend, which has no dual path.
    pub(crate) dual_hint_used: bool,
    /// Outer barrier iterations of the GP interior-point solve (0 for
    /// bisection).
    pub(crate) barrier_iterations: usize,
    /// KKT factorization attempts (full refactorizations plus in-place ridge
    /// refreshes) of the GP solve (0 for bisection).
    pub(crate) factorizations: usize,
    /// Simplex pivots spent in water-filling feasibility probes (group
    /// splits on heterogeneous platforms; 0 on a single group).
    pub(crate) simplex_pivots: usize,
    /// Final dual state of the GP solve, handed to neighbouring solves as a
    /// dual warm start. `None` for the bisection backend.
    pub(crate) dual_state: Option<GpDualState>,
}

/// Solves the unbounded relaxation (Eqs. 14–18) cold. Warm-started solves go
/// through [`crate::solver::SolveRequest`], which plumbs the request's
/// relaxed-II hint into the hinted solver below.
///
/// # Errors
///
/// Returns [`AllocError::Infeasible`] if even one CU per kernel violates a
/// platform-wide budget, and propagates GP solver failures.
pub fn solve(
    problem: &AllocationProblem,
    backend: RelaxationBackend,
) -> Result<Relaxation, AllocError> {
    relax_hinted(problem, backend, None, None).map(|(relaxation, _)| relaxation)
}

/// Solves the unbounded relaxation, optionally warm-started from the relaxed
/// `ÎI` of a neighbouring problem. The hint narrows the bisection bracket
/// (both endpoints verified before use) or seeds the GP interior point
/// (taken only when strictly feasible), so a stale or wildly wrong hint
/// degrades to the cold start and the returned optimum is unaffected.
///
/// `dual` optionally carries the neighbouring solve's final barrier
/// parameter and constraint multipliers; the GP backend uses it (only when
/// the primal seed is accepted) to re-enter the barrier path near its end,
/// skipping the early centering sweeps. A dual whose layout no longer
/// matches — e.g. a heterogeneous anchor activated a different group set —
/// is rejected by the GP solver's validation and the solve proceeds
/// primal-warm only, so a stale dual never changes the optimum. The
/// bisection backend ignores it.
///
/// # Errors
///
/// Same contract as [`solve`].
pub(crate) fn relax_hinted(
    problem: &AllocationProblem,
    backend: RelaxationBackend,
    hint_ii_ms: Option<f64>,
    dual: Option<&GpDualState>,
) -> Result<(Relaxation, RelaxStats), AllocError> {
    let unbounded: Vec<(f64, f64)> = (0..problem.num_kernels())
        .map(|k| (1.0, problem.max_total_cus(k) as f64))
        .collect();
    relax_bounded_hinted(problem, &unbounded, backend, hint_ii_ms, dual)
}

/// [`relax_hinted`] with explicit per-kernel bounds on `N̂_k` (used by the
/// discretization branch-and-bound for its node relaxations).
///
/// # Errors
///
/// Returns [`AllocError::Infeasible`] if the bounds admit no feasible point
/// and propagates GP solver failures.
pub(crate) fn relax_bounded_hinted(
    problem: &AllocationProblem,
    bounds: &CuBounds,
    backend: RelaxationBackend,
    hint_ii_ms: Option<f64>,
    dual: Option<&GpDualState>,
) -> Result<(Relaxation, RelaxStats), AllocError> {
    if bounds.len() != problem.num_kernels() {
        return Err(AllocError::InvalidArgument(format!(
            "expected {} bounds, got {}",
            problem.num_kernels(),
            bounds.len()
        )));
    }
    for (k, kernel) in problem.kernels().iter().enumerate() {
        // A kernel that cannot fit even one CU on an FPGA makes the whole
        // problem infeasible regardless of the bounds.
        if problem.max_cus_per_fpga(k) == 0 {
            return Err(AllocError::Infeasible(format!(
                "kernel {} does not fit a single CU within the per-FPGA budget",
                kernel.name()
            )));
        }
        let (lo, hi) = bounds[k];
        if !(lo >= 1.0 && hi >= lo) {
            return Err(AllocError::InvalidArgument(format!(
                "invalid CU bounds [{lo}, {hi}] for kernel {}",
                kernel.name()
            )));
        }
    }
    // Quick infeasibility check: the cheapest configuration takes the lower
    // bound everywhere.
    let mut probe_pivots = 0usize;
    if !budgets_allow(
        problem,
        &bounds.iter().map(|&(lo, _)| lo).collect::<Vec<_>>(),
        &mut probe_pivots,
    )? {
        return Err(AllocError::Infeasible(
            "the minimum CU counts already exceed a platform-wide budget".into(),
        ));
    }
    let (relaxation, mut stats) = match backend {
        RelaxationBackend::GeometricProgram => solve_gp(problem, bounds, hint_ii_ms, dual)?,
        RelaxationBackend::Bisection => solve_bisection(problem, bounds, hint_ii_ms)?,
    };
    stats.simplex_pivots += probe_pivots;
    Ok((relaxation, stats))
}

/// Checks whether the fractional totals `N_k` can be realized within the
/// platform's aggregated budgets. On a single device group this is the
/// closed-form check `Σ_k N_k·R_k ≤ F·R` and `Σ_k N_k·B_k ≤ F·B`; with
/// several groups it asks whether *some* split of the totals across groups
/// satisfies every group's aggregated budgets (see
/// [`distribute_over_groups`]). Simplex pivots spent by the multi-group
/// water-filling LP are added to `pivots`; the closed-form single-group
/// check costs none.
///
/// # Errors
///
/// Propagates [`AllocError::Linprog`] when the water-filling LP exhausts its
/// pivot budget — a structured stop, distinct from "the split is
/// infeasible" (`Ok(false)`).
pub(crate) fn budgets_allow(
    problem: &AllocationProblem,
    cu_counts: &[f64],
    pivots: &mut usize,
) -> Result<bool, AllocError> {
    if problem.num_groups() > 1 {
        return Ok(distribute_over_groups(problem, cu_counts, pivots)?.is_some());
    }
    let f = problem.num_fpgas() as f64;
    let limit = problem.group_resource_limit(0) * f;
    let total: mfa_platform::ResourceVec = problem
        .kernels()
        .iter()
        .zip(cu_counts)
        .map(|(k, &n)| *k.resources() * n)
        .sum();
    if !total.fits_within(&limit, 1e-9) {
        return Ok(false);
    }
    let bw: f64 = problem
        .kernels()
        .iter()
        .zip(cu_counts)
        .map(|(k, &n)| k.bandwidth() * n)
        .sum();
    if bw > problem.group_bandwidth_limit(0) * f + 1e-9 {
        return Ok(false);
    }
    // A moved-CU bound restricts the single-group split arithmetically: the
    // only split of total N_k is N_k itself, so the fractional movement is
    // Σ_k max(0, N_k − inc_k).
    if let Some(ctx) = ReallocContext::from_problem(problem)? {
        if let Some(bound) = ctx.moved_bound {
            let moved: f64 = cu_counts
                .iter()
                .enumerate()
                .map(|(k, &n)| (n - ctx.inc_totals.get(k).copied().unwrap_or(0) as f64).max(0.0))
                .sum();
            if moved > f64::from(bound) + 1e-9 {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Fractional water-filling of per-kernel totals across device groups: finds
/// `x_{k,g} ≥ 0` with `Σ_g x_{k,g} = N_k` satisfying every group's
/// aggregated resource and bandwidth budgets, or `Ok(None)` when no split
/// exists. The multi-resource transportation feasibility problem is solved
/// with the [`mfa_linprog`] two-phase simplex (deterministic, so sweeps stay
/// reproducible) under the default [`SimplexOptions`] pivot budget; pivots
/// spent are added to `pivots` either way. Kernels that cannot be hosted on
/// a group (a resource class the device lacks) get no variable there.
///
/// # Errors
///
/// Returns [`AllocError::Linprog`] wrapping
/// [`LpError::PivotBudgetExceeded`] when the simplex runs out of pivots —
/// never silently reported as infeasibility — and propagates LP model
/// construction failures the same way.
// `vars` is indexed `[kernel][group]`; clippy's enumerate-based rewrite of
// the `g`/`k` loops would iterate the wrong dimension, so the range loops
// stay (same situation as the MINLP model builder in `exact`).
#[allow(clippy::needless_range_loop)]
pub(crate) fn distribute_over_groups(
    problem: &AllocationProblem,
    cu_counts: &[f64],
    pivots: &mut usize,
) -> Result<Option<Vec<Vec<f64>>>, AllocError> {
    let groups = problem.num_groups();
    if groups == 1 {
        return Ok(Some(cu_counts.iter().map(|&n| vec![n]).collect()));
    }
    let num_kernels = problem.num_kernels();
    let realloc = ReallocContext::from_problem(problem)?;
    let mut lp = LpProblem::new(Sense::Minimize);
    let mut vars: Vec<Vec<Option<mfa_linprog::VarId>>> = vec![vec![None; groups]; num_kernels];
    for k in 0..num_kernels {
        for (g, slot) in vars[k].iter_mut().enumerate() {
            let res = problem.kernel_resources_on(k, g);
            let hostable = [res.lut, res.ff, res.bram, res.dsp]
                .iter()
                .all(|x| x.is_finite())
                && problem.kernel_bandwidth_on(k, g).is_finite();
            if hostable {
                *slot = Some(
                    lp.add_var(format!("x_{k}_{g}"), 0.0, cu_counts[k].max(0.0))
                        .expect("bounds are finite and ordered"),
                );
            }
        }
        let terms: Vec<(mfa_linprog::VarId, f64)> =
            vars[k].iter().flatten().map(|&v| (v, 1.0)).collect();
        if terms.is_empty() {
            // No group can host this kernel at all.
            return Ok(None);
        }
        lp.add_constraint(format!("total_{k}"), &terms, Relation::Equal, cu_counts[k])?;
    }
    for g in 0..groups {
        let fpgas = problem.group_count(g) as f64;
        let group_limit = problem.group_resource_limit(g);
        type Accessor = fn(&mfa_platform::ResourceVec) -> f64;
        let classes: [(&str, Accessor, f64); 4] = [
            ("lut", |r| r.lut, group_limit.lut),
            ("ff", |r| r.ff, group_limit.ff),
            ("bram", |r| r.bram, group_limit.bram),
            ("dsp", |r| r.dsp, group_limit.dsp),
        ];
        for (class, accessor, limit) in classes {
            let terms: Vec<(mfa_linprog::VarId, f64)> = (0..num_kernels)
                .filter_map(|k| {
                    let coeff = accessor(&problem.kernel_resources_on(k, g));
                    vars[k][g].filter(|_| coeff > 0.0).map(|v| (v, coeff))
                })
                .collect();
            if !terms.is_empty() {
                lp.add_constraint(
                    format!("{class}_{g}"),
                    &terms,
                    Relation::LessEq,
                    fpgas * limit + 1e-9,
                )?;
            }
        }
        let bw_terms: Vec<(mfa_linprog::VarId, f64)> = (0..num_kernels)
            .filter_map(|k| {
                let coeff = problem.kernel_bandwidth_on(k, g);
                vars[k][g].filter(|_| coeff > 0.0).map(|v| (v, coeff))
            })
            .collect();
        if !bw_terms.is_empty() {
            lp.add_constraint(
                format!("bandwidth_{g}"),
                &bw_terms,
                Relation::LessEq,
                fpgas * problem.group_bandwidth_limit(g) + 1e-9,
            )?;
        }
    }
    // Migration-aware water-filling: with an active reallocation spec the
    // split is not just *a* feasible one — it is the feasible split moving
    // the least priced CUs. Movement variables `m_{k,g} ≥ max(0, x_{k,g} −
    // inc_{k,g})` linearize the rectifier exactly (the migration term
    // condenses into linear rows, like the latency rows do in the GP), the
    // objective minimizes `Σ c_g · m_{k,g}`, and an optional row caps the
    // fractional total movement. Inactive specs skip all of this, keeping the
    // LP — and its pivot trace — bit-identical to the static solve.
    if let Some(ctx) = &realloc {
        let mut moved_terms: Vec<(mfa_linprog::VarId, f64)> = Vec::new();
        for k in 0..num_kernels {
            for g in 0..groups {
                let Some(x) = vars[k][g] else { continue };
                let m = lp
                    .add_var(format!("m_{k}_{g}"), 0.0, cu_counts[k].max(0.0))
                    .expect("bounds are finite and ordered");
                // x_{k,g} − m_{k,g} ≤ inc_{k,g}.
                lp.add_constraint(
                    format!("moved_{k}_{g}"),
                    &[(x, 1.0), (m, -1.0)],
                    Relation::LessEq,
                    f64::from(ctx.inc_groups[k][g]),
                )?;
                // A zero-cost group still gets a tiny uniform coefficient so
                // the auxiliary variables are driven to the true movement
                // (and the split deterministically prefers fewer moves).
                lp.set_objective_coefficient(m, ctx.costs[g] + 1e-9)?;
                moved_terms.push((m, 1.0));
            }
        }
        if let Some(bound) = ctx.moved_bound {
            lp.add_constraint(
                "moved_total",
                &moved_terms,
                Relation::LessEq,
                f64::from(bound) + 1e-9,
            )?;
        }
    }
    let solution = lp.solve_with(&SimplexOptions::default()).map_err(|err| {
        if let LpError::PivotBudgetExceeded { pivots: spent } = &err {
            *pivots += spent;
        }
        AllocError::Linprog(err)
    })?;
    *pivots += solution.pivots();
    if !solution.is_optimal() {
        return Ok(None);
    }
    Ok(Some(
        vars.iter()
            .map(|row| {
                row.iter()
                    .map(|slot| slot.map_or(0.0, |v| solution.value(v).max(0.0)))
                    .collect()
            })
            .collect(),
    ))
}

fn solve_gp(
    problem: &AllocationProblem,
    bounds: &CuBounds,
    hint_ii_ms: Option<f64>,
    dual: Option<&GpDualState>,
) -> Result<(Relaxation, RelaxStats), AllocError> {
    if problem.num_groups() == 1 {
        solve_gp_homogeneous(problem, bounds, hint_ii_ms, dual)
    } else {
        solve_gp_heterogeneous(problem, bounds, hint_ii_ms, dual)
    }
}

/// Builds a strictly interior GP start point from a relaxed-II hint: the
/// target `ÎI` is inflated by 5 % and each kernel's total sits a hair above
/// its WCET-driven (or lower-bound) count, so every latency, bound and
/// budget row has positive slack near the optimum. The GP solver verifies
/// strict feasibility anyway — a point this construction gets wrong is
/// simply ignored and the solve falls back to phase I.
fn gp_warm_counts(
    problem: &AllocationProblem,
    bounds: &CuBounds,
    hint_ii_ms: f64,
) -> Option<(f64, Vec<f64>)> {
    if !(hint_ii_ms.is_finite() && hint_ii_ms > 0.0) {
        return None;
    }
    let ii0 = hint_ii_ms * 1.05;
    let counts = problem
        .kernels()
        .iter()
        .zip(bounds)
        .map(|(kernel, &(lo, hi))| {
            let wcet_driven = kernel.wcet_ms() / ii0;
            if wcet_driven <= lo {
                // Floor kernel: sit a hair above the lower bound.
                (lo * 1.001).min(hi * 0.999)
            } else {
                // Critical kernel: 2 % above the WCET-driven count keeps the
                // latency row strictly slack while staying ~3 % below the
                // (budget-tight) optimum counts.
                (wcet_driven * 1.02).min(hi * 0.999)
            }
        })
        .collect();
    Some((ii0, counts))
}

/// The exact posynomial model over the totals `N̂_k` (single device group).
fn solve_gp_homogeneous(
    problem: &AllocationProblem,
    bounds: &CuBounds,
    hint_ii_ms: Option<f64>,
    dual: Option<&GpDualState>,
) -> Result<(Relaxation, RelaxStats), AllocError> {
    let mut gp = GpProblem::new();
    let ii = gp.add_var("II")?;
    let mut n_vars = Vec::with_capacity(problem.num_kernels());
    for kernel in problem.kernels() {
        n_vars.push(gp.add_var(format!("N_{}", kernel.name()))?);
    }
    gp.set_objective(Posynomial::monomial(1.0, &[(ii, 1.0)]));

    for (k, kernel) in problem.kernels().iter().enumerate() {
        // ÎI ≥ WCET_k / N̂_k  ⇔  WCET_k · N̂_k⁻¹ · ÎI⁻¹ ≤ 1.
        gp.add_le_constraint(
            format!("latency_{}", kernel.name()),
            Posynomial::monomial(kernel.wcet_ms(), &[(n_vars[k], -1.0), (ii, -1.0)]),
        )?;
        // The interior-point solver needs a non-empty interior, so collapsed
        // or boundary-tight bound pairs are widened by a relative epsilon;
        // the discretization rounds the result anyway. The widened lower
        // bound is clamped at 1.0 so `N̂_k ≥ 1` (Eq. 16) is never relaxed —
        // widening `lo == 1.0` downward used to let counts dip below one.
        let (lo, hi) = bounds[k];
        let lo = (lo * (1.0 - 1e-7)).max(1.0);
        let hi = hi * (1.0 + 1e-7);
        // N̂_k ≥ lo  ⇔  lo · N̂_k⁻¹ ≤ 1 (lo ≥ 1 covers Eq. 16).
        gp.add_le_constraint(
            format!("lower_{}", kernel.name()),
            Posynomial::monomial(lo, &[(n_vars[k], -1.0)]),
        )?;
        // N̂_k ≤ hi  ⇔  N̂_k / hi ≤ 1.
        gp.add_le_constraint(
            format!("upper_{}", kernel.name()),
            Posynomial::monomial(1.0 / hi, &[(n_vars[k], 1.0)]),
        )?;
    }

    let f = problem.num_fpgas() as f64;
    let resource_budget = problem.group_resource_limit(0);
    let bandwidth_budget = problem.group_bandwidth_limit(0);
    // One posynomial budget row per resource class that is actually used.
    let class_rows: [(&str, crate::report::ResourceAccessor, f64); 4] = [
        ("lut", |r| r.lut, resource_budget.lut),
        ("ff", |r| r.ff, resource_budget.ff),
        ("bram", |r| r.bram, resource_budget.bram),
        ("dsp", |r| r.dsp, resource_budget.dsp),
    ];
    for (class, accessor, limit) in class_rows {
        let mut row = Posynomial::new();
        for (k, kernel) in problem.kernels().iter().enumerate() {
            let use_per_cu = accessor(kernel.resources());
            if use_per_cu > 0.0 {
                row.push(Monomial::new(use_per_cu / (f * limit), &[(n_vars[k], 1.0)]));
            }
        }
        if !row.is_empty() {
            gp.add_le_constraint(format!("budget_{class}"), row)?;
        }
    }
    let mut bw_row = Posynomial::new();
    for (k, kernel) in problem.kernels().iter().enumerate() {
        if kernel.bandwidth() > 0.0 {
            bw_row.push(Monomial::new(
                kernel.bandwidth() / (f * bandwidth_budget),
                &[(n_vars[k], 1.0)],
            ));
        }
    }
    if !bw_row.is_empty() {
        gp.add_le_constraint("budget_bandwidth", bw_row)?;
    }

    // A relaxed-II hint seeds the interior point (variable order: II first,
    // then the totals — matching creation order above).
    let mut options = mfa_gp::SolverOptions::default();
    if let Some((ii0, counts)) = hint_ii_ms.and_then(|h| gp_warm_counts(problem, bounds, h)) {
        let mut point = Vec::with_capacity(1 + counts.len());
        point.push(ii0);
        point.extend(counts);
        options.initial_point = Some(point);
        // Neighbouring sweep points share the problem shape, so the same
        // constraint rows exist in the same order and the neighbour's
        // multipliers line up row for row; the GP solver validates the dual
        // against the seeded point and ignores anything stale.
        options.initial_dual = dual.cloned();
    }
    let solution = gp.solve_with(&options).map_err(|err| match err {
        mfa_gp::GpError::Infeasible => {
            AllocError::Infeasible("the GP relaxation has no feasible point".into())
        }
        other => AllocError::from(other),
    })?;
    let stats = RelaxStats {
        iterations: solution.newton_iterations(),
        hint_used: solution.warm_started(),
        dual_hint_used: solution.dual_warm_started(),
        barrier_iterations: solution.barrier_iterations(),
        factorizations: solution.factorizations(),
        simplex_pivots: 0,
        dual_state: solution.dual_state().cloned(),
    };
    let cu_counts: Vec<f64> = n_vars.iter().map(|&v| solution.value(v)).collect();
    Ok((
        Relaxation {
            group_cu_counts: cu_counts.iter().map(|&n| vec![n]).collect(),
            cu_counts,
            initiation_interval_ms: solution.value(ii),
        },
        stats,
    ))
}

/// The heterogeneous GP: per-group variables `N̂_{k,g}`, exact per-group
/// budget and upper-bound rows, and one latency row per kernel summing the
/// group contributions. The group sum in a denominator is not posynomial, so
/// the latency (and lower-bound) rows condense `Σ_g N̂_{k,g}` into its best
/// monomial approximation `S₀·Π_g (N̂_{k,g}/x₀_{k,g})^{α_{k,g}}` with
/// `α = x₀/S₀`, anchored at the exact bisection optimum `x₀` — where the
/// approximation is tight (AM–GM), so the condensed GP shares the true
/// optimum and the solve stays a single interior-point run.
// `vars` is indexed `[kernel][group]`; see `distribute_over_groups`.
#[allow(clippy::needless_range_loop)]
fn solve_gp_heterogeneous(
    problem: &AllocationProblem,
    bounds: &CuBounds,
    hint_ii_ms: Option<f64>,
    dual: Option<&GpDualState>,
) -> Result<(Relaxation, RelaxStats), AllocError> {
    let (anchor, anchor_stats) = solve_bisection(problem, bounds, hint_ii_ms)?;
    let groups = problem.num_groups();
    let num_kernels = problem.num_kernels();

    let mut gp = GpProblem::new();
    let ii = gp.add_var("II")?;
    let mut vars: Vec<Vec<Option<mfa_gp::GpVarId>>> = vec![vec![None; groups]; num_kernels];
    for (k, kernel) in problem.kernels().iter().enumerate() {
        for g in 0..groups {
            // Only groups the anchor actually uses get a variable: GP
            // variables are strictly positive, and the condensation is
            // anchored where the optimum lies anyway.
            if anchor.group_cu_counts[k][g] > 1e-9 {
                vars[k][g] = Some(gp.add_var(format!("N_{}_{g}", kernel.name()))?);
            }
        }
    }
    gp.set_objective(Posynomial::monomial(1.0, &[(ii, 1.0)]));

    for (k, kernel) in problem.kernels().iter().enumerate() {
        let active: Vec<usize> = (0..groups).filter(|&g| vars[k][g].is_some()).collect();
        let s0: f64 = active
            .iter()
            .map(|&g| anchor.group_cu_counts[k][g])
            .sum::<f64>();
        // Exponents and constant of the condensed monomial m_k ≈ Σ_g N̂_{k,g}:
        // m_k = S₀ · Π (N̂_{k,g}/x₀_g)^{α_g}, so
        // m_k⁻¹ = (1/S₀) · Π x₀_g^{α_g} · Π N̂_{k,g}^{-α_g}.
        let alphas: Vec<f64> = active
            .iter()
            .map(|&g| anchor.group_cu_counts[k][g] / s0)
            .collect();
        let m_inv_coeff: f64 = active
            .iter()
            .zip(&alphas)
            .map(|(&g, &a)| anchor.group_cu_counts[k][g].powf(a))
            .product::<f64>()
            / s0;
        let inv_exponents: Vec<(mfa_gp::GpVarId, f64)> = active
            .iter()
            .zip(&alphas)
            .map(|(&g, &a)| (vars[k][g].expect("active"), -a))
            .collect();
        // Latency: WCET_k · ÎI⁻¹ · m_k⁻¹ ≤ 1.
        let mut latency_exponents = vec![(ii, -1.0)];
        latency_exponents.extend(inv_exponents.iter().copied());
        gp.add_le_constraint(
            format!("latency_{}", kernel.name()),
            Posynomial::monomial(kernel.wcet_ms() * m_inv_coeff, &latency_exponents),
        )?;
        let (lo, hi) = bounds[k];
        // Lower bound on the total: lo · m_k⁻¹ ≤ 1 (clamped at 1.0 so Eq. 16
        // is never relaxed by the interior widening).
        let lo = (lo * (1.0 - 1e-7)).max(1.0);
        gp.add_le_constraint(
            format!("lower_{}", kernel.name()),
            Posynomial::monomial(lo * m_inv_coeff, &inv_exponents),
        )?;
        // Upper bound on the total is exactly posynomial: Σ_g N̂_{k,g}/hi ≤ 1.
        let hi = hi * (1.0 + 1e-7);
        let mut upper = Posynomial::new();
        for &g in &active {
            upper.push(Monomial::new(
                1.0 / hi,
                &[(vars[k][g].expect("active"), 1.0)],
            ));
        }
        gp.add_le_constraint(format!("upper_{}", kernel.name()), upper)?;
    }

    // Per-group aggregated budget rows (exactly posynomial), under each
    // group's own scaled limits.
    for g in 0..groups {
        let fpgas = problem.group_count(g) as f64;
        let group_limit = problem.group_resource_limit(g);
        let class_rows: [(&str, crate::report::ResourceAccessor, f64); 4] = [
            ("lut", |r| r.lut, group_limit.lut),
            ("ff", |r| r.ff, group_limit.ff),
            ("bram", |r| r.bram, group_limit.bram),
            ("dsp", |r| r.dsp, group_limit.dsp),
        ];
        for (class, accessor, limit) in class_rows {
            let mut row = Posynomial::new();
            for k in 0..num_kernels {
                let Some(var) = vars[k][g] else { continue };
                let use_per_cu = accessor(&problem.kernel_resources_on(k, g));
                if use_per_cu > 0.0 {
                    row.push(Monomial::new(use_per_cu / (fpgas * limit), &[(var, 1.0)]));
                }
            }
            if !row.is_empty() {
                gp.add_le_constraint(format!("budget_{class}_{g}"), row)?;
            }
        }
        let mut bw_row = Posynomial::new();
        for k in 0..num_kernels {
            let Some(var) = vars[k][g] else { continue };
            let bw = problem.kernel_bandwidth_on(k, g);
            if bw > 0.0 {
                bw_row.push(Monomial::new(
                    bw / (fpgas * problem.group_bandwidth_limit(g)),
                    &[(var, 1.0)],
                ));
            }
        }
        if !bw_row.is_empty() {
            gp.add_le_constraint(format!("budget_bandwidth_{g}"), bw_row)?;
        }
    }

    // A hint the anchor bisection verified and consumed seeds the interior
    // point from the (exact) anchor:
    // II is inflated by 5 % and each kernel's group split is scaled by
    // `max(0.98, 1.001·lo/S₀)` — strictly inside the budget rows for
    // critical kernels, a hair above the lower bound for floor kernels. The
    // condensed latency monomials are degree-one in a uniform per-kernel
    // scaling, so the same slack analysis as the homogeneous case applies;
    // anything this construction gets wrong is rejected by the GP solver's
    // strict-feasibility check and the solve falls back to phase I.
    let mut options = mfa_gp::SolverOptions::default();
    if anchor_stats.hint_used {
        let mut point = vec![anchor.initiation_interval_ms * 1.05];
        for (k, row) in vars.iter().enumerate() {
            let s0: f64 = anchor.group_cu_counts[k].iter().sum();
            let (lo, _) = bounds[k];
            let scale = (1.001 * lo / s0.max(f64::MIN_POSITIVE)).max(0.98);
            for (g, slot) in row.iter().enumerate() {
                if slot.is_some() {
                    point.push(anchor.group_cu_counts[k][g] * scale);
                }
            }
        }
        options.initial_point = Some(point);
        // The condensed model's constraint layout depends on which groups
        // the anchor activates; when a neighbour's anchor differs, the
        // multiplier count no longer matches and the GP solver's dual
        // validation silently drops the hint.
        options.initial_dual = dual.cloned();
    }
    let solution = gp.solve_with(&options).map_err(|err| match err {
        mfa_gp::GpError::Infeasible => {
            AllocError::Infeasible("the GP relaxation has no feasible point".into())
        }
        other => AllocError::from(other),
    })?;
    let stats = RelaxStats {
        iterations: solution.newton_iterations(),
        // The seed above exists only when the bisection verified and
        // consumed the hint, so a rejected hint never claims provenance.
        hint_used: anchor_stats.hint_used,
        dual_hint_used: solution.dual_warm_started(),
        barrier_iterations: solution.barrier_iterations(),
        factorizations: solution.factorizations(),
        simplex_pivots: anchor_stats.simplex_pivots,
        dual_state: solution.dual_state().cloned(),
    };
    let group_cu_counts: Vec<Vec<f64>> = vars
        .iter()
        .map(|row| {
            row.iter()
                .map(|slot| slot.map_or(0.0, |v| solution.value(v)))
                .collect()
        })
        .collect();
    Ok((
        Relaxation {
            cu_counts: group_cu_counts.iter().map(|row| row.iter().sum()).collect(),
            group_cu_counts,
            initiation_interval_ms: solution.value(ii),
        },
        stats,
    ))
}

/// Assembles a [`Relaxation`] from feasible totals, water-filling them
/// across device groups (trivial on a single group).
fn relaxation_from_totals(
    problem: &AllocationProblem,
    cu_counts: Vec<f64>,
    initiation_interval_ms: f64,
    pivots: &mut usize,
) -> Result<Relaxation, AllocError> {
    let group_cu_counts = distribute_over_groups(problem, &cu_counts, pivots)?
        .expect("totals were verified feasible before assembling the relaxation");
    Ok(Relaxation {
        cu_counts,
        group_cu_counts,
        initiation_interval_ms,
    })
}

/// Analytic solution by bisection on `ÎI`.
fn solve_bisection(
    problem: &AllocationProblem,
    bounds: &CuBounds,
    hint_ii_ms: Option<f64>,
) -> Result<(Relaxation, RelaxStats), AllocError> {
    // For a target II the cheapest feasible counts are the WCET-driven counts
    // clamped into the node bounds; feasibility of the aggregated budgets is
    // monotone in II (larger II → fewer CUs → less resource use, and any
    // group water-filling of larger totals scales down to smaller ones).
    let counts_for = |ii: f64| -> Vec<f64> {
        problem
            .kernels()
            .iter()
            .zip(bounds)
            .map(|(kernel, &(lo, hi))| (kernel.wcet_ms() / ii).max(lo).min(hi))
            .collect()
    };
    // The largest II anyone needs is when every kernel sits at its lower
    // bound; that configuration is feasible (checked by the caller).
    let mut hi = problem
        .kernels()
        .iter()
        .zip(bounds)
        .map(|(kernel, &(lo, _))| kernel.wcet_ms() / lo)
        .fold(0.0_f64, f64::max);
    // Lower limit: every kernel at its upper bound.
    let mut lo = problem
        .kernels()
        .iter()
        .zip(bounds)
        .map(|(kernel, &(_, hi_k))| kernel.wcet_ms() / hi_k)
        .fold(0.0_f64, f64::max);
    let mut pivots = 0usize;
    if budgets_allow(problem, &counts_for(lo), &mut pivots)? {
        let relaxation = relaxation_from_totals(problem, counts_for(lo), lo, &mut pivots)?;
        return Ok((
            relaxation,
            RelaxStats {
                simplex_pivots: pivots,
                ..RelaxStats::default()
            },
        ));
    }
    // A warm-start hint from a neighbouring solve narrows the bracket. The
    // bisection invariants (lo infeasible, hi feasible) are re-verified on
    // each candidate endpoint, so a bad hint merely costs two feasibility
    // evaluations and the optimum is unchanged.
    let mut hint_used = false;
    if let Some(hint) = hint_ii_ms {
        if hint.is_finite() && hint > 0.0 {
            let cand_hi = (hint * 1.05).min(hi);
            if cand_hi > lo && budgets_allow(problem, &counts_for(cand_hi), &mut pivots)? {
                hi = cand_hi;
                hint_used = true;
            }
            let cand_lo = (hint * 0.95).max(lo);
            if cand_lo < hi && !budgets_allow(problem, &counts_for(cand_lo), &mut pivots)? {
                lo = cand_lo;
                hint_used = true;
            }
        }
    }
    let mut iterations = 0usize;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        iterations += 1;
        if budgets_allow(problem, &counts_for(mid), &mut pivots)? {
            hi = mid;
        } else {
            lo = mid;
        }
        if (hi - lo) <= 1e-12 * hi.max(1.0) {
            break;
        }
    }
    let relaxation = relaxation_from_totals(problem, counts_for(hi), hi, &mut pivots)?;
    Ok((
        relaxation,
        RelaxStats {
            iterations,
            hint_used,
            simplex_pivots: pivots,
            ..RelaxStats::default()
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{GoalWeights, Kernel};
    use mfa_cnn::paper_data;
    use mfa_platform::{MultiFpgaPlatform, ResourceBudget, ResourceVec};
    use proptest::prelude::*;

    fn two_kernel_problem() -> AllocationProblem {
        AllocationProblem::builder()
            .kernels(vec![
                Kernel::new("a", 3.0, ResourceVec::bram_dsp(0.0, 0.2), 0.0).unwrap(),
                Kernel::new("b", 5.0, ResourceVec::bram_dsp(0.0, 0.3), 0.0).unwrap(),
            ])
            .platform(MultiFpgaPlatform::aws_f1_2xlarge())
            .budget(ResourceBudget::uniform(1.0))
            .weights(GoalWeights::ii_only())
            .build()
            .unwrap()
    }

    /// The toy problem has the closed-form optimum II = 2.1 (both kernels
    /// critical, DSP budget tight): 0.2·3/II + 0.3·5/II = 1.
    #[test]
    fn backends_agree_on_closed_form_optimum() {
        let p = two_kernel_problem();
        let gp = solve(&p, RelaxationBackend::GeometricProgram).unwrap();
        let bis = solve(&p, RelaxationBackend::Bisection).unwrap();
        assert!(
            (gp.initiation_interval_ms - 2.1).abs() < 1e-3,
            "GP: {}",
            gp.initiation_interval_ms
        );
        assert!((bis.initiation_interval_ms - 2.1).abs() < 1e-6);
        for (a, b) in gp.cu_counts.iter().zip(&bis.cu_counts) {
            assert!((a - b).abs() < 1e-2, "counts differ: {a} vs {b}");
        }
    }

    #[test]
    fn bounded_relaxation_respects_bounds() {
        let p = two_kernel_problem();
        let bounds = vec![(1.0, 1.0), (1.0, 10.0)];
        let (r, _) =
            relax_bounded_hinted(&p, &bounds, RelaxationBackend::Bisection, None, None).unwrap();
        assert!((r.cu_counts[0] - 1.0).abs() < 1e-9);
        // Kernel a fixed at one CU → II at least 3.
        assert!(r.initiation_interval_ms >= 3.0 - 1e-9);
    }

    #[test]
    fn warm_start_hint_does_not_change_the_optimum() {
        let p = two_kernel_problem();
        let cold = solve(&p, RelaxationBackend::Bisection).unwrap();
        // Good, slightly-off, wildly wrong and degenerate hints all converge
        // to the same optimum because the bracket endpoints are verified.
        for hint in [
            cold.initiation_interval_ms,
            cold.initiation_interval_ms * 0.97,
            cold.initiation_interval_ms * 1.03,
            0.01,
            1_000.0,
            f64::NAN,
            -1.0,
        ] {
            let (warm, _) =
                relax_hinted(&p, RelaxationBackend::Bisection, Some(hint), None).unwrap();
            assert!(
                (warm.initiation_interval_ms - cold.initiation_interval_ms).abs()
                    < 1e-9 * cold.initiation_interval_ms.max(1.0),
                "hint {hint}: warm {} vs cold {}",
                warm.initiation_interval_ms,
                cold.initiation_interval_ms
            );
        }
    }

    #[test]
    fn good_hints_narrow_the_bisection_bracket() {
        let p = two_kernel_problem();
        let (cold, cold_stats) =
            relax_hinted(&p, RelaxationBackend::Bisection, None, None).unwrap();
        assert!(!cold_stats.hint_used);
        let (warm, warm_stats) = relax_hinted(
            &p,
            RelaxationBackend::Bisection,
            Some(cold.initiation_interval_ms),
            None,
        )
        .unwrap();
        assert!(warm_stats.hint_used);
        assert!(
            warm_stats.iterations < cold_stats.iterations,
            "warm {} vs cold {} bisection steps",
            warm_stats.iterations,
            cold_stats.iterations
        );
        assert!(
            (warm.initiation_interval_ms - cold.initiation_interval_ms).abs()
                < 1e-9 * cold.initiation_interval_ms
        );
    }

    #[test]
    fn gp_backend_consumes_the_hint_as_an_interior_start() {
        let p = two_kernel_problem();
        let (cold, cold_stats) =
            relax_hinted(&p, RelaxationBackend::GeometricProgram, None, None).unwrap();
        assert!(!cold_stats.hint_used);
        let (warm, warm_stats) = relax_hinted(
            &p,
            RelaxationBackend::GeometricProgram,
            Some(cold.initiation_interval_ms),
            None,
        )
        .unwrap();
        assert!(warm_stats.hint_used, "hint point rejected");
        assert!(
            warm_stats.iterations < cold_stats.iterations,
            "warm {} vs cold {} Newton steps",
            warm_stats.iterations,
            cold_stats.iterations
        );
        assert!(
            (warm.initiation_interval_ms - cold.initiation_interval_ms).abs()
                < 1e-4 * cold.initiation_interval_ms
        );
    }

    /// Tentpole contract: handing the GP backend the previous solve's dual
    /// state on top of the primal hint strictly reduces barrier iterations
    /// and KKT factorizations, and the optimum is unchanged.
    #[test]
    fn dual_hints_cut_barrier_iterations_and_factorizations() {
        let p = two_kernel_problem();
        let (cold, cold_stats) =
            relax_hinted(&p, RelaxationBackend::GeometricProgram, None, None).unwrap();
        let dual = cold_stats
            .dual_state
            .clone()
            .expect("the GP backend reports its final dual state");
        let hint = Some(cold.initiation_interval_ms);
        let (_, primal_stats) =
            relax_hinted(&p, RelaxationBackend::GeometricProgram, hint, None).unwrap();
        let (warm, warm_stats) =
            relax_hinted(&p, RelaxationBackend::GeometricProgram, hint, Some(&dual)).unwrap();
        assert!(!primal_stats.dual_hint_used);
        assert!(warm_stats.hint_used && warm_stats.dual_hint_used);
        assert!(
            warm_stats.barrier_iterations < cold_stats.barrier_iterations,
            "dual-warm {} vs cold {} barrier iterations",
            warm_stats.barrier_iterations,
            cold_stats.barrier_iterations
        );
        assert!(
            warm_stats.factorizations < cold_stats.factorizations,
            "dual-warm {} vs cold {} factorizations",
            warm_stats.factorizations,
            cold_stats.factorizations
        );
        assert!(
            (warm.initiation_interval_ms - cold.initiation_interval_ms).abs()
                < 1e-4 * cold.initiation_interval_ms
        );
    }

    /// The effort counters separate the substrates: bisection on a
    /// heterogeneous fleet spends simplex pivots but no barrier iterations,
    /// the GP backend the other way around (plus the anchor's pivots).
    #[test]
    fn effort_counters_attribute_work_to_the_right_substrate() {
        let p = mixed_fleet_problem(0.6);
        let (_, bis) = relax_hinted(&p, RelaxationBackend::Bisection, None, None).unwrap();
        assert!(bis.simplex_pivots > 0, "water-filling probes pivot");
        assert_eq!(bis.barrier_iterations, 0);
        assert_eq!(bis.factorizations, 0);
        assert!(bis.dual_state.is_none());
        let (_, gp) = relax_hinted(&p, RelaxationBackend::GeometricProgram, None, None).unwrap();
        assert!(gp.barrier_iterations > 0);
        assert!(gp.factorizations > 0);
        assert!(gp.simplex_pivots > 0, "the anchor bisection pivots");
        assert!(gp.dual_state.is_some());
        // Single-group problems never touch the LP.
        let (_, homo) = relax_hinted(
            &two_kernel_problem(),
            RelaxationBackend::Bisection,
            None,
            None,
        )
        .unwrap();
        assert_eq!(homo.simplex_pivots, 0);
    }

    /// Regression for the interior-widening bug: with a bound pair pinned at
    /// `(1.0, 1.0)` the widened lower bound used to become `1 − 1e-7`, and a
    /// kernel under downward resource pressure converged below one CU,
    /// violating Eq. 16. The widened lower bound is now clamped at 1.0.
    #[test]
    fn gp_lower_bound_clamps_at_one_cu() {
        // Kernel "a" is resource-heavy but latency-light, so the optimizer
        // pushes N̂_a down to free DSPs for the bottleneck kernel "b".
        let p = AllocationProblem::builder()
            .kernels(vec![
                Kernel::new("a", 0.1, ResourceVec::bram_dsp(0.0, 0.5), 0.0).unwrap(),
                Kernel::new("b", 5.0, ResourceVec::bram_dsp(0.0, 0.3), 0.0).unwrap(),
            ])
            .platform(MultiFpgaPlatform::aws_f1_2xlarge())
            .budget(ResourceBudget::uniform(1.0))
            .weights(GoalWeights::ii_only())
            .build()
            .unwrap();
        let bounds = vec![(1.0, 1.0), (1.0, 10.0)];
        let (r, _) =
            relax_bounded_hinted(&p, &bounds, RelaxationBackend::GeometricProgram, None, None)
                .unwrap();
        assert!(
            r.cu_counts[0] >= 1.0 - 1e-8,
            "N̂_a = {} dips below the Eq. 16 floor",
            r.cu_counts[0]
        );
    }

    fn mixed_fleet_problem(budget: f64) -> AllocationProblem {
        use mfa_platform::{DeviceGroup, FpgaDevice, HeterogeneousPlatform};
        AllocationProblem::builder()
            .kernels(vec![
                Kernel::new("a", 3.0, ResourceVec::bram_dsp(0.02, 0.2), 0.01).unwrap(),
                Kernel::new("b", 5.0, ResourceVec::bram_dsp(0.02, 0.3), 0.01).unwrap(),
                Kernel::new("c", 8.0, ResourceVec::bram_dsp(0.05, 0.15), 0.02).unwrap(),
            ])
            .platform(HeterogeneousPlatform::new(
                "2×VU9P + 2×KU115",
                vec![
                    DeviceGroup::new(FpgaDevice::vu9p(), 2),
                    DeviceGroup::new(FpgaDevice::ku115(), 2),
                ],
            ))
            .budget(ResourceBudget::uniform(budget))
            .weights(GoalWeights::ii_only())
            .build()
            .unwrap()
    }

    #[test]
    fn heterogeneous_backends_agree_within_two_percent() {
        for budget in [0.4, 0.6, 0.8] {
            let p = mixed_fleet_problem(budget);
            let bis = solve(&p, RelaxationBackend::Bisection).unwrap();
            let gp = solve(&p, RelaxationBackend::GeometricProgram).unwrap();
            assert!(
                (gp.initiation_interval_ms - bis.initiation_interval_ms).abs()
                    < 0.02 * bis.initiation_interval_ms,
                "budget {budget}: GP {} vs bisection {}",
                gp.initiation_interval_ms,
                bis.initiation_interval_ms
            );
            for (a, b) in gp.cu_counts.iter().zip(&bis.cu_counts) {
                assert!(
                    (a - b).abs() < 0.05 * b.max(1.0),
                    "counts differ: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn heterogeneous_group_counts_sum_to_totals_and_respect_budgets() {
        let p = mixed_fleet_problem(0.6);
        let r = solve(&p, RelaxationBackend::Bisection).unwrap();
        assert_eq!(r.group_cu_counts.len(), p.num_kernels());
        for (k, row) in r.group_cu_counts.iter().enumerate() {
            assert_eq!(row.len(), p.num_groups());
            let total: f64 = row.iter().sum();
            assert!(
                (total - r.cu_counts[k]).abs() < 1e-6 * r.cu_counts[k].max(1.0),
                "kernel {k}: group split {total} vs total {}",
                r.cu_counts[k]
            );
        }
        // Every group's aggregated DSP budget holds for the split.
        for g in 0..p.num_groups() {
            let used: f64 = (0..p.num_kernels())
                .map(|k| r.group_cu_counts[k][g] * p.kernel_resources_on(k, g).dsp)
                .sum();
            let limit = p.group_count(g) as f64 * p.budget().resource_fraction().dsp;
            assert!(used <= limit + 1e-6, "group {g}: {used} > {limit}");
        }
    }

    #[test]
    fn heterogeneous_relaxation_beats_the_reference_group_alone() {
        // The mixed fleet has strictly more capacity than its first group, so
        // the relaxed II must improve on (or match) the 2×VU9P sub-platform.
        let fleet = mixed_fleet_problem(0.6);
        let sub = AllocationProblem::builder()
            .kernels(fleet.kernels().to_vec())
            .platform(MultiFpgaPlatform::aws_f1_4xlarge())
            .budget(ResourceBudget::uniform(0.6))
            .weights(GoalWeights::ii_only())
            .build()
            .unwrap();
        let fleet_r = solve(&fleet, RelaxationBackend::Bisection).unwrap();
        let sub_r = solve(&sub, RelaxationBackend::Bisection).unwrap();
        assert!(fleet_r.initiation_interval_ms <= sub_r.initiation_interval_ms + 1e-9);
    }

    #[test]
    fn homogeneous_relaxation_reports_single_group_counts() {
        let p = two_kernel_problem();
        let r = solve(&p, RelaxationBackend::Bisection).unwrap();
        assert_eq!(r.group_cu_counts.len(), 2);
        for (k, row) in r.group_cu_counts.iter().enumerate() {
            assert_eq!(row.len(), 1);
            assert_eq!(row[0], r.cu_counts[k]);
        }
    }

    #[test]
    fn invalid_bounds_are_rejected() {
        let p = two_kernel_problem();
        let bounded = |bounds: &[(f64, f64)]| {
            relax_bounded_hinted(&p, bounds, RelaxationBackend::Bisection, None, None)
        };
        assert!(bounded(&[(1.0, 2.0)]).is_err());
        assert!(bounded(&[(0.0, 2.0), (1.0, 2.0)]).is_err());
        assert!(bounded(&[(3.0, 2.0), (1.0, 2.0)]).is_err());
    }

    #[test]
    fn infeasible_budget_is_detected() {
        let p = AllocationProblem::builder()
            .kernels(vec![
                Kernel::new("a", 3.0, ResourceVec::bram_dsp(0.0, 0.6), 0.0).unwrap(),
                Kernel::new("b", 5.0, ResourceVec::bram_dsp(0.0, 0.6), 0.0).unwrap(),
            ])
            .platform(MultiFpgaPlatform::aws_f1_2xlarge())
            .budget(ResourceBudget::uniform(0.5))
            .build()
            .unwrap();
        assert!(matches!(
            solve(&p, RelaxationBackend::Bisection),
            Err(AllocError::Infeasible(_))
        ));
    }

    /// Paper case: Alex-16 on 2 FPGAs. The relaxed II must lie below the
    /// single-CU bottleneck (6.7 ms) and above the fully replicated bound.
    #[test]
    fn alex16_relaxation_is_sensible() {
        let app = paper_data::alexnet_16bit();
        let p = AllocationProblem::from_application(&app, 2, 0.65, GoalWeights::ii_only()).unwrap();
        let r = solve(&p, RelaxationBackend::Bisection).unwrap();
        assert!(r.initiation_interval_ms < 6.7);
        assert!(r.initiation_interval_ms > 0.3);
        // Every kernel gets at least one CU.
        assert!(r.cu_counts.iter().all(|&n| n >= 1.0 - 1e-9));
        // The aggregate budget is respected.
        let gp = solve(&p, RelaxationBackend::GeometricProgram).unwrap();
        assert!(
            (gp.initiation_interval_ms - r.initiation_interval_ms).abs()
                < 0.02 * r.initiation_interval_ms,
            "GP {} vs bisection {}",
            gp.initiation_interval_ms,
            r.initiation_interval_ms
        );
    }

    proptest! {
        /// On random two-kernel problems the two backends agree.
        #[test]
        fn backends_agree_on_random_problems(
            wcet_a in 1.0..20.0f64,
            wcet_b in 1.0..20.0f64,
            dsp_a in 0.05..0.3f64,
            dsp_b in 0.05..0.3f64,
            budget in 0.5..1.0f64
        ) {
            let p = AllocationProblem::builder()
                .kernels(vec![
                    Kernel::new("a", wcet_a, ResourceVec::bram_dsp(0.01, dsp_a), 0.01).unwrap(),
                    Kernel::new("b", wcet_b, ResourceVec::bram_dsp(0.01, dsp_b), 0.01).unwrap(),
                ])
                .platform(MultiFpgaPlatform::aws_f1_4xlarge())
                .budget(ResourceBudget::uniform(budget))
                .build()
                .unwrap();
            let gp = solve(&p, RelaxationBackend::GeometricProgram).unwrap();
            let bis = solve(&p, RelaxationBackend::Bisection).unwrap();
            let tol = 0.02 * bis.initiation_interval_ms.max(0.1);
            prop_assert!((gp.initiation_interval_ms - bis.initiation_interval_ms).abs() < tol,
                "GP {} vs bisection {}", gp.initiation_interval_ms, bis.initiation_interval_ms);
        }

        /// The relaxed II never exceeds the single-CU bottleneck and never
        /// goes below the everything-maximally-replicated bound.
        #[test]
        fn relaxation_is_bracketed(
            wcets in proptest::collection::vec(1.0..30.0f64, 2..6),
            budget in 0.4..1.0f64
        ) {
            let kernels: Vec<Kernel> = wcets
                .iter()
                .enumerate()
                .map(|(i, &w)| {
                    Kernel::new(format!("k{i}"), w, ResourceVec::bram_dsp(0.02, 0.1), 0.01)
                        .unwrap()
                })
                .collect();
            let p = AllocationProblem::builder()
                .kernels(kernels)
                .platform(MultiFpgaPlatform::aws_f1_4xlarge())
                .budget(ResourceBudget::uniform(budget))
                .build()
                .unwrap();
            let r = solve(&p, RelaxationBackend::Bisection).unwrap();
            let bottleneck = wcets.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!(r.initiation_interval_ms <= bottleneck + 1e-9);
            prop_assert!(r.initiation_interval_ms > 0.0);
        }
    }
}
